// Package ring provides a growable FIFO ring buffer used for the
// simulator's hot-path queues (cache read/write/prefetch queues, fill
// queues, commit queues). Unlike the head-reslicing `q = q[1:]` idiom,
// popping clears the vacated slot and reuses the backing array, so a
// steady-state queue performs zero allocations per operation and never
// retains dead head pointers.
package ring

// Buf is a FIFO ring buffer. The zero value is an empty, unallocated
// buffer ready for use.
//
// The backing array's length is always a power of two (grow doubles
// from 8), so every index wrap is a mask instead of a division — these
// queues sit on the simulator's hottest paths.
type Buf[T any] struct {
	buf  []T
	mask int // len(buf) - 1; meaningful once allocated (first Push grows)
	head int
	n    int
}

// Len returns the number of queued elements.
func (b *Buf[T]) Len() int { return b.n }

// Push appends v at the tail, growing the backing array if full.
func (b *Buf[T]) Push(v T) {
	if b.n == len(b.buf) {
		b.grow()
	}
	b.buf[(b.head+b.n)&b.mask] = v
	b.n++
}

// Front returns the head element without removing it. It panics on an
// empty buffer, like indexing an empty slice.
func (b *Buf[T]) Front() T {
	if b.n == 0 {
		panic("ring: Front of empty buffer")
	}
	return b.buf[b.head]
}

// PopFront removes and returns the head element, zeroing the vacated
// slot so the buffer never retains references to popped elements.
func (b *Buf[T]) PopFront() T {
	if b.n == 0 {
		panic("ring: PopFront of empty buffer")
	}
	var zero T
	v := b.buf[b.head]
	b.buf[b.head] = zero
	b.head = (b.head + 1) & b.mask
	b.n--
	return v
}

// At returns the i-th element from the head (0 = front).
func (b *Buf[T]) At(i int) T {
	if i < 0 || i >= b.n {
		panic("ring: index out of range")
	}
	return b.buf[(b.head+i)&b.mask]
}

// grow doubles the backing array, compacting elements to the front.
// Doubling from a power-of-two floor keeps the length a power of two —
// the masked indexing above depends on it.
func (b *Buf[T]) grow() {
	newCap := len(b.buf) * 2
	if newCap == 0 {
		newCap = 8
	}
	if newCap&(newCap-1) != 0 {
		panic("ring: capacity must stay a power of two")
	}
	nb := make([]T, newCap)
	for i := 0; i < b.n; i++ {
		nb[i] = b.buf[(b.head+i)&b.mask]
	}
	b.buf = nb
	b.mask = newCap - 1
	b.head = 0
}

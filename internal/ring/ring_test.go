package ring

import "testing"

func TestFIFOOrderAcrossGrowth(t *testing.T) {
	var b Buf[int]
	for i := 0; i < 100; i++ {
		b.Push(i)
	}
	for i := 0; i < 50; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	for i := 100; i < 200; i++ {
		b.Push(i) // wraps and grows with a non-zero head
	}
	if b.Len() != 150 {
		t.Fatalf("Len = %d, want 150", b.Len())
	}
	for i := 50; i < 200; i++ {
		if got := b.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("Len = %d after draining", b.Len())
	}
}

func TestFrontAndAt(t *testing.T) {
	var b Buf[string]
	b.Push("a")
	b.Push("b")
	b.Push("c")
	if b.Front() != "a" || b.At(0) != "a" || b.At(2) != "c" {
		t.Fatalf("Front/At wrong: %q %q %q", b.Front(), b.At(0), b.At(2))
	}
	b.PopFront()
	if b.Front() != "b" {
		t.Fatalf("Front after pop = %q", b.Front())
	}
}

// TestPopClearsSlot verifies popped slots do not retain references (the
// queue-head leak the ring replaces head-reslicing for).
func TestPopClearsSlot(t *testing.T) {
	var b Buf[*int]
	v := new(int)
	b.Push(v)
	b.PopFront()
	// The single backing slot must have been zeroed.
	if b.buf[0] != nil {
		t.Fatal("PopFront retained a pointer in the backing array")
	}
}

// TestSteadyStateZeroAlloc verifies a warm ring allocates nothing.
func TestSteadyStateZeroAlloc(t *testing.T) {
	var b Buf[int]
	for i := 0; i < 16; i++ {
		b.Push(i)
	}
	for b.Len() > 0 {
		b.PopFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			b.Push(i)
		}
		for b.Len() > 0 {
			b.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring allocated %.1f/op, want 0", allocs)
	}
}

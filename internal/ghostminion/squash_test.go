package ghostminion

import (
	"testing"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/probe"
)

// issue issues a speculative load with an explicit timestamp without
// stepping the rig, so MSHR entries pile up in flight. It returns a
// pointer to the load's completion flag.
func (r *rig) issue(t *testing.T, line mem.Line, ts uint64) *bool {
	t.Helper()
	done := new(bool)
	req := &mem.Request{Line: line, Kind: mem.KindLoad, Issued: r.now, Timestamp: ts,
		Owner: mem.CompleterFunc(func(*mem.Request) { *done = true })}
	if !r.gm.IssueLoad(req) {
		t.Fatalf("load line=%d ts=%d rejected", line, ts)
	}
	return done
}

// TestSquashDropsDisplacedRetryEntries fills every MSHR, leapfrogs the
// youngest entry into the retry queue, then squashes: the displaced
// waiter (timestamp above the squash point) must be scrubbed from the
// retry queue, not silently re-issued once capacity frees up.
func TestSquashDropsDisplacedRetryEntries(t *testing.T) {
	r := newRig()
	cfg := DefaultConfig()
	dones := make(map[uint64]*bool)
	lines := make(map[uint64]mem.Line)
	for i := 0; i < cfg.MSHRs; i++ {
		ts := uint64(100 + i)
		lines[ts] = mem.Line(1000 + i)
		dones[ts] = r.issue(t, lines[ts], ts)
	}
	// The older load displaces the youngest entry (ts 115); its waiter
	// lands in the retry queue.
	doneOld := r.issue(t, 2000, 5)
	if r.gm.Stats.Leapfrogs != 1 {
		t.Fatalf("Leapfrogs = %d, want 1", r.gm.Stats.Leapfrogs)
	}

	r.gm.Squash(110)
	r.step(500)

	for ts, done := range dones {
		if ts < 110 && !*done {
			t.Errorf("load ts=%d (below squash point) never completed", ts)
		}
		if ts >= 110 && *done {
			t.Errorf("squashed load ts=%d completed", ts)
		}
		if ts >= 110 && r.gm.Contains(lines[ts]) {
			t.Errorf("squashed line %d (ts=%d) filled the GM", lines[ts], ts)
		}
	}
	if !*doneOld {
		t.Error("older load (ts=5) never completed")
	}
}

// TestSquashKeepsOlderRetryEntries is the other side of the boundary:
// a displaced waiter older than the squash point stays queued and
// completes once MSHR capacity frees up.
func TestSquashKeepsOlderRetryEntries(t *testing.T) {
	r := newRig()
	cfg := DefaultConfig()
	dones := make(map[uint64]*bool)
	for i := 0; i < cfg.MSHRs; i++ {
		ts := uint64(100 + i)
		dones[ts] = r.issue(t, mem.Line(1000+i), ts)
	}
	doneOld := r.issue(t, 2000, 5)
	if r.gm.Stats.Leapfrogs != 1 {
		t.Fatalf("Leapfrogs = %d, want 1", r.gm.Stats.Leapfrogs)
	}

	r.gm.Squash(116) // above every issued timestamp: nothing is squashed

	for i := 0; i < 20000; i++ {
		all := *doneOld
		for _, done := range dones {
			all = all && *done
		}
		if all {
			return
		}
		r.step(1)
	}
	for ts, done := range dones {
		if !*done {
			t.Errorf("load ts=%d never completed after squash above it", ts)
		}
	}
	if !*doneOld {
		t.Error("older load (ts=5) never completed")
	}
}

// TestSquashTimestampBoundary pins the >= semantics: a line inserted at
// exactly the squash timestamp dies, one just below survives.
func TestSquashTimestampBoundary(t *testing.T) {
	r := newRig()
	_, s1 := r.specLoad(800)
	_, s2 := r.specLoad(801)
	if s2 != s1+1 {
		t.Fatalf("rig sequence numbers not consecutive: %d, %d", s1, s2)
	}
	r.gm.Squash(s2)
	if !r.gm.Contains(800) {
		t.Error("line below the squash timestamp was invalidated")
	}
	if r.gm.Contains(801) {
		t.Error("line at the squash timestamp survived")
	}
}

// TestSquashFreesMSHRCapacity cancels every in-flight fetch and checks
// the slots (and the mshrInUse accounting behind IssueLoad's fast path)
// are immediately reusable without leapfrogging.
func TestSquashFreesMSHRCapacity(t *testing.T) {
	cfg := DefaultConfig()
	// A zero-bandwidth L1D keeps every fetch in flight forever.
	stall := cache.New(cache.Config{
		Name: "stall", Level: mem.LvlL1D, SizeKiB: 1, Ways: 2, Latency: 2,
		MSHRs: 1, RQSize: 1, WQSize: 1, PQSize: 1,
		MaxReads: 0, MaxWrites: 0, MaxPrefetches: 0, MaxFills: 0,
	}, nil)
	gm := New(cfg, stall, nil)
	for i := 0; i < cfg.MSHRs; i++ {
		req := &mem.Request{Line: mem.Line(1000 + i), Kind: mem.KindLoad, Timestamp: uint64(100 + i)}
		if !gm.IssueLoad(req) {
			t.Fatalf("load %d rejected with free MSHRs", i)
		}
	}
	gm.Squash(100)
	// Every slot must be back: a second full set is accepted without
	// displacing anyone.
	for i := 0; i < cfg.MSHRs; i++ {
		req := &mem.Request{Line: mem.Line(4000 + i), Kind: mem.KindLoad, Timestamp: uint64(200 + i)}
		if !gm.IssueLoad(req) {
			t.Fatalf("post-squash load %d rejected: MSHR slot not freed", i)
		}
	}
	if gm.Stats.Leapfrogs != 0 {
		t.Errorf("Leapfrogs = %d: post-squash loads displaced entries instead of reusing freed slots", gm.Stats.Leapfrogs)
	}
}

type obsRecorder struct{ events []probe.Event }

func (o *obsRecorder) Event(ev probe.Event) { o.events = append(o.events, ev) }

// TestSquashEmitsEvent checks the observer contract: one EvSquash at
// the GM carrying the first squashed timestamp, before any state dies.
func TestSquashEmitsEvent(t *testing.T) {
	r := newRig()
	rec := &obsRecorder{}
	r.gm.Obs = rec
	r.gm.Squash(42)
	var squashes []probe.Event
	for _, ev := range rec.events {
		if ev.Kind == probe.EvSquash {
			squashes = append(squashes, ev)
		}
	}
	if len(squashes) != 1 {
		t.Fatalf("EvSquash count = %d, want 1 (events: %v)", len(squashes), rec.events)
	}
	ev := squashes[0]
	if ev.Site != probe.SiteGM || ev.Seq != 42 || !ev.Spec {
		t.Errorf("EvSquash = {Site: %v, Seq: %d, Spec: %v}, want {GM, 42, true}", ev.Site, ev.Seq, ev.Spec)
	}
}

// Package ghostminion implements the GhostMinion secure cache system
// (Ainsworth, MICRO 2021) as configured by the paper: a small
// strictness-ordered speculative cache (the GM) accessed in parallel
// with L1D, which holds the data of speculative loads until they
// commit. Speculative misses travel the hierarchy as invisible probes
// (no replacement-state updates, no fills) and the response fills only
// the GM. At commit, a GM hit triggers an on-commit write moving the
// line to L1D (with GhostMinion writeback bits governing clean
// propagation on later evictions), and a GM miss triggers a re-fetch
// into the non-speculative hierarchy. TimeGuarding enforces strictness
// ordering: a load may only observe GM insertions made by program-
// older instructions, and MSHR leapfrogging lets older loads displace
// younger ones when the GM MSHR is full.
//
// The Secure Update Filter (SUF) from the paper hooks in at commit
// time via the Filter interface; see internal/core.
package ghostminion

import (
	"math/bits"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/probe"
	"secpref/internal/ring"
	"secpref/internal/stats"
)

// Config sizes the GM.
type Config struct {
	// Lines is the GM capacity in cache lines (2 KB = 32 lines, fully
	// associative, per the paper).
	Lines   int
	Latency mem.Cycle
	MSHRs   int
	// CommitQueue bounds in-flight commit-time hierarchy updates;
	// retirement stalls when it is full.
	CommitQueue int
}

// DefaultConfig returns the paper's 2 KB GM. The array itself reads in
// 1 cycle; the modeled hit latency of 4 is the full load-to-use path
// (AGU + TLB + tag + data), slightly under the L1D's 5 cycles — using
// the raw 1-cycle array latency would make the secure system *faster*
// than the baseline on GM-hit-heavy code, which neither GhostMinion nor
// this paper observes.
func DefaultConfig() Config {
	return Config{Lines: 32, Latency: 4, MSHRs: 16, CommitQueue: 32}
}

// Filter decides, at commit time, how the hierarchy update for a
// committed load should proceed. The baseline GhostMinion filter always
// updates fully; SUF (internal/core) drops or trims updates using the
// recorded hit level.
type Filter interface {
	// OnCommit receives the committed line and the 2-bit hit level
	// recorded when the data returned. It returns drop=true to suppress
	// the hierarchy update entirely, and otherwise the writeback bits
	// to attach (bit 0: L1D propagates to L2 on eviction; bit 1: L2
	// propagates to LLC).
	OnCommit(line mem.Line, hitLevel mem.Level) (drop bool, wbBits uint8)
}

// FullUpdate is the baseline GhostMinion behaviour: never drop, always
// propagate commit writes up the whole hierarchy.
type FullUpdate struct{}

// OnCommit implements Filter.
func (FullUpdate) OnCommit(mem.Line, mem.Level) (bool, uint8) { return false, 0b11 }

// GM line state is struct-of-arrays, like the cache levels: the tag
// slice is all a lookup touches (the GM is fully associative, so every
// IssueLoad scans all of it), and the per-line metadata lives in a
// parallel slice read only on hits, fills, commits, and squashes.
//
// gmInvalid marks an empty slot; the all-ones line address is
// unreachable (address 0 is the only reserved trace value), so it
// never collides with a real tag.
const gmInvalid = ^mem.Line(0)

type gmLineMeta struct {
	timestamp uint64 // inserting instruction's program order
	lru       uint32
	servedBy  mem.Level // hit level recorded at fill (SUF input)
	fetchLat  mem.Cycle // measured fetch latency to GM (TSB input)
}

type gmMSHR struct {
	valid     bool
	slot      int // this entry's index (mshrFree mirror key)
	line      mem.Line
	timestamp uint64 // oldest waiter
	alloc     mem.Cycle
	waiters   []*mem.Request
	canceled  bool
}

type commitUpdate struct {
	req *mem.Request
}

// GM is the GhostMinion speculative cache plus its commit engine.
type GM struct {
	cfg   Config
	tags  []mem.Line   // per-line tag; gmInvalid = empty slot
	lmeta []gmLineMeta // parallel per-line metadata
	// sig is a conservative presence signature over tags: bit line&63
	// is set for every live line (and possibly for stale ones — bits
	// are only reclaimed by periodic rebuilds, see noteStale). A clear
	// bit proves the line absent, so the common lookup miss skips the
	// tag scan entirely; a set bit just falls through to the scan.
	sig      uint64
	sigStale int
	mshr     []gmMSHR
	// mshrFree is a bitmask of free MSHR slots (bit i of word i/64 set
	// = slot i free): allocation takes the lowest set bit — the same
	// slot a first-free linear scan would pick — without striding over
	// the entries.
	mshrFree []uint64
	// mshrLine mirrors each live MSHR entry's line (gmInvalid when the
	// slot is free or canceled), so the per-load merge scan walks a
	// compact tag array instead of the entries.
	mshrLine []mem.Line
	// mshrSig is the presence-signature scheme applied to the in-flight
	// lines: bit (line & 63) set for every live MSHR entry. A clear bit
	// proves no merge candidate and skips the scan. Bits of departed
	// entries linger (false positives only) until a rebuild, counted by
	// mshrSigStale.
	mshrSig      uint64
	mshrSigStale int
	// mshrMaxTs is a conservative upper bound on the timestamps of live
	// MSHR entries (raised on fetch start, tightened whenever a full
	// leapfrog scan runs). A leapfrog needs a victim strictly younger
	// than the incoming load, so ts >= mshrMaxTs proves there is none
	// without scanning.
	mshrMaxTs uint64
	l1d       *cache.Cache
	clock     uint32
	now       mem.Cycle
	filter    Filter

	// wake counts externally delivered work (accepted loads, probe
	// completions, commits, squashes); see WakeCount.
	wake uint64

	// retryq holds loads displaced by leapfrogging, awaiting re-issue.
	retryq ring.Buf[*mem.Request]
	// commitq holds commit-time updates awaiting L1D queue space.
	commitq ring.Buf[*mem.Request]
	// pending holds probes rejected by a full L1D read queue.
	pending []pendingProbe
	// resp holds responses awaiting the GM hit latency.
	resp []gmResp

	pool *mem.RequestPool
	// ver counts state mutations that could turn a rejected IssueLoad
	// into an accepted one; the core gates issue retries on it.
	ver uint64
	// mshrInUse tracks valid MSHR entries so per-cycle occupancy
	// statistics don't rescan the array.
	mshrInUse int

	// Stats uses the cache counter block: KindLoad accesses/misses are
	// speculative GM lookups; demand miss latency is the load-observed
	// (GM-level) miss latency in the secure system.
	Stats stats.CacheStats

	// OnFill, if set, observes GM fills with the measured fetch latency
	// (the TSB X-LQ records it). ip and accessed describe the access
	// that allocated the GM MSHR entry.
	OnFill func(line mem.Line, servedBy mem.Level, latency mem.Cycle, cycle mem.Cycle, ip mem.Addr, accessed mem.Cycle)
	// OnAccess, if set, observes every accepted speculative load with
	// its GM hit/miss outcome — the training stream for on-access
	// prefetching on the secure system (misses additionally surface at
	// L1D via its OnSpecAccess hook with L1D hit information).
	OnAccess func(line mem.Line, ip mem.Addr, hit bool, cycle mem.Cycle)

	// Obs, if set, receives access/merge/fill/drop/commit/SUF events at
	// the GM. Observers are read-only; see internal/probe.
	Obs probe.Observer
}

// New builds a GM in front of l1d.
func New(cfg Config, l1d *cache.Cache, filter Filter) *GM {
	if filter == nil {
		filter = FullUpdate{}
	}
	g := &GM{
		cfg:    cfg,
		tags:   make([]mem.Line, cfg.Lines),
		lmeta:  make([]gmLineMeta, cfg.Lines),
		mshr:   make([]gmMSHR, cfg.MSHRs),
		l1d:    l1d,
		filter: filter,
		pool:   &mem.RequestPool{},
	}
	for i := range g.tags {
		g.tags[i] = gmInvalid
	}
	g.mshrFree = make([]uint64, (cfg.MSHRs+63)/64)
	for i := 0; i < cfg.MSHRs; i++ {
		g.mshrMarkFree(i)
	}
	g.mshrLine = make([]mem.Line, cfg.MSHRs)
	for i := range g.mshrLine {
		g.mshrLine[i] = gmInvalid
	}
	// Pre-slice waiter lists from one backing array (see cache.New).
	const waiterCap = 4
	waiterBuf := make([]*mem.Request, cfg.MSHRs*waiterCap)
	for i := range g.mshr {
		g.mshr[i].waiters = waiterBuf[i*waiterCap : i*waiterCap : (i+1)*waiterCap]
	}
	return g
}

func (g *GM) mshrMarkFree(i int) { g.mshrFree[i>>6] |= 1 << uint(i&63) }
func (g *GM) mshrMarkUsed(i int) { g.mshrFree[i>>6] &^= 1 << uint(i&63) }

// SetPool shares the machine-wide request pool with the GM.
func (g *GM) SetPool(p *mem.RequestPool) { g.pool = p }

// StateVersion counts GM mutations after which a previously rejected
// IssueLoad could succeed (fills, fetch starts, leapfrogs, squashes).
// A rejected IssueLoad has no side effects and its outcome is a pure
// function of GM state, so the core may skip retrying a blocked load
// until the version changes — provably the same accept cycle as
// retrying every cycle, at a fraction of the cost.
func (g *GM) StateVersion() uint64 { return g.ver }

// SetFilter replaces the commit filter (used to toggle SUF).
func (g *GM) SetFilter(f Filter) { g.filter = f }

// sigRebuildAfter bounds signature staleness: after this many tag
// invalidations the signature is recomputed from the live tags, so
// dead bits cannot accumulate into an always-pass filter.
const sigRebuildAfter = 8

func sigBit(l mem.Line) uint64 { return 1 << uint(l&63) }

// noteStale records one tag invalidation and periodically rebuilds the
// signature from scratch.
func (g *GM) noteStale() {
	g.sigStale++
	if g.sigStale < sigRebuildAfter {
		return
	}
	g.sigStale = 0
	var sig uint64
	for _, t := range g.tags {
		if t != gmInvalid {
			sig |= sigBit(t)
		}
	}
	g.sig = sig
}

// Contains probes the GM without state changes.
func (g *GM) Contains(l mem.Line) bool {
	if g.sig&sigBit(l) == 0 {
		return false
	}
	for _, t := range g.tags {
		if t == l {
			return true
		}
	}
	return false
}

// lookupVisible returns the slot index of the GM entry for l visible
// to an instruction with the given timestamp under TimeGuarding
// (insertions by younger instructions are invisible), or -1.
func (g *GM) lookupVisible(l mem.Line, ts uint64) int {
	if g.sig&sigBit(l) == 0 {
		return -1
	}
	for i, t := range g.tags {
		if t == l && g.lmeta[i].timestamp <= ts {
			return i
		}
	}
	return -1
}

// IssueLoad accepts a speculative load. The request's Done fires when
// data is available (from GM, or via an invisible hierarchy probe that
// fills the GM). Returns false when the load cannot be accepted this
// cycle (MSHR full and not leapfroggable); the core retries.
func (g *GM) IssueLoad(r *mem.Request) bool {
	if !g.issueLoad(r, true, true) {
		return false
	}
	g.wake++
	return true
}

// WakeCount is a monotonic counter of peer-delivered work: accepted
// loads, probe completions, commits, and squashes. A scheduler holding
// the GM asleep past its own NextEvent must re-arm it when the counter
// moves.
func (g *GM) WakeCount() uint64 { return g.wake }

// issueLoad implements IssueLoad; countStats is false for internal
// re-issues of leapfrog-displaced loads (the architectural access was
// already counted), which also may not leapfrog others — without that
// restriction displaced loads and fresh younger loads cancel each other
// in a ping-pong that wastes a memory fetch per round.
func (g *GM) issueLoad(r *mem.Request, countStats, allowLeapfrog bool) bool {
	if w := g.lookupVisible(r.Line, r.Timestamp); w >= 0 {
		if countStats {
			g.Stats.Accesses[mem.KindLoad]++
			if g.Obs != nil {
				g.Obs.Event(probe.Event{
					Kind: probe.EvAccess, Site: probe.SiteGM, Cycle: g.now,
					Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: mem.KindLoad, Hit: true,
					Spec: true,
				})
			}
		}
		if g.OnAccess != nil {
			g.OnAccess(r.Line, r.IP, true, g.now)
		}
		g.clock++
		g.lmeta[w].lru = g.clock
		r.ServedBy = mem.LvlL1D // GM counts as the lowest level
		g.respond(r)
		return true
	}
	// Merge with an in-flight fetch if TimeGuarding allows: the waiter
	// may ride along only if the fill it will observe comes from an
	// older-or-equal instruction. Fills adopt the oldest waiter's
	// timestamp, so merging is always safe for younger requests. An
	// empty MSHR or a clear signature bit proves no merge candidate.
	if g.mshrInUse > 0 && g.mshrSig&(1<<(uint64(r.Line)&63)) != 0 {
		for i, l := range g.mshrLine {
			if l != r.Line {
				continue
			}
			e := &g.mshr[i]
			e.waiters = append(e.waiters, r)
			if r.Timestamp < e.timestamp {
				e.timestamp = r.Timestamp
			}
			if countStats {
				g.Stats.Accesses[mem.KindLoad]++
				g.Stats.Misses[mem.KindLoad]++
			}
			g.Stats.MSHRMerges++
			if g.Obs != nil {
				g.Obs.Event(probe.Event{
					Kind: probe.EvMerge, Site: probe.SiteGM, Cycle: g.now,
					Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: mem.KindLoad,
					Spec: true,
				})
			}
			return true
		}
	}
	idx := g.allocMSHR(r.Timestamp, allowLeapfrog)
	if idx < 0 {
		return false // rejected: the core retries; count only accepted attempts
	}
	if countStats {
		g.Stats.Accesses[mem.KindLoad]++
		g.Stats.Misses[mem.KindLoad]++
		if g.Obs != nil {
			g.Obs.Event(probe.Event{
				Kind: probe.EvAccess, Site: probe.SiteGM, Cycle: g.now,
				Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: mem.KindLoad,
				Spec: true,
			})
		}
	}
	g.startFetch(idx, r)
	return true
}

// leapfrogMaxAge bounds which fetches may be cancelled: displacing a
// nearly-complete fetch wastes the memory round trip for nothing, so
// only young entries are eligible.
const leapfrogMaxAge = 16

// allocMSHR finds a free entry, or (when allowed) leapfrogs the
// youngest recently-started entry that is strictly younger than ts.
// Returns the entry index, or -1.
func (g *GM) allocMSHR(ts uint64, allowLeapfrog bool) int {
	for w, m := range g.mshrFree {
		if m != 0 {
			return w<<6 | bits.TrailingZeros64(m)
		}
	}
	if !allowLeapfrog || ts >= g.mshrMaxTs {
		return -1
	}
	// Leapfrog: displace the youngest entry if it is younger than the
	// incoming request (strictness ordering favors older instructions).
	// The scan also recomputes the exact timestamp maximum, re-tightening
	// mshrMaxTs (merges lower entry timestamps after the bound was set).
	victim := -1
	maxTs := uint64(0)
	for i := range g.mshr {
		e := &g.mshr[i]
		if e.timestamp > maxTs {
			maxTs = e.timestamp
		}
		if e.canceled || g.now-e.alloc > leapfrogMaxAge {
			continue
		}
		if e.timestamp > ts && (victim < 0 || e.timestamp > g.mshr[victim].timestamp) {
			victim = i
		}
	}
	g.mshrMaxTs = maxTs
	if victim < 0 {
		return -1
	}
	g.Stats.Leapfrogs++
	g.ver++
	// Displaced waiters are re-issued by the GM when capacity frees up;
	// the in-flight probe's eventual fill is discarded (the completion
	// handler sees a slot whose line no longer matches).
	v := &g.mshr[victim]
	if g.Obs != nil {
		g.Obs.Event(probe.Event{
			Kind: probe.EvDrop, Site: probe.SiteGM, Cycle: g.now,
			Seq: v.timestamp, Line: v.line, Req: mem.KindLoad,
			Aux: probe.DropLeapfrog, Spec: true,
		})
	}
	for i, w := range v.waiters {
		g.retryq.Push(w)
		v.waiters[i] = nil
	}
	waiters := v.waiters[:0]
	*v = gmMSHR{}
	v.waiters = waiters // keep the backing array for reuse
	g.mshrInUse--
	g.mshrMarkFree(victim)
	g.mshrLine[victim] = gmInvalid
	g.mshrSigNoteStale()
	return victim
}

// mshrSigNoteStale counts a departed MSHR line; after enough of them
// the merge-scan signature is rebuilt from the live lines so lingering
// false-positive bits do not accumulate.
func (g *GM) mshrSigNoteStale() {
	if g.mshrSigStale++; g.mshrSigStale >= sigRebuildAfter {
		g.mshrSigStale = 0
		var sig uint64
		for _, l := range g.mshrLine {
			if l != gmInvalid {
				sig |= 1 << (uint64(l) & 63)
			}
		}
		g.mshrSig = sig
	}
}

// startFetch initializes MSHR slot idx for r and sends the invisible
// probe to L1D.
func (g *GM) startFetch(idx int, r *mem.Request) {
	e := &g.mshr[idx]
	*e = gmMSHR{
		valid:     true,
		slot:      idx,
		line:      r.Line,
		timestamp: r.Timestamp,
		alloc:     g.now,
		waiters:   append(e.waiters[:0], r),
	}
	g.mshrInUse++
	g.mshrMarkUsed(idx)
	g.mshrLine[idx] = r.Line
	g.mshrSig |= 1 << (uint64(r.Line) & 63)
	if r.Timestamp > g.mshrMaxTs {
		g.mshrMaxTs = r.Timestamp
	}
	g.ver++
	probe := g.pool.Get()
	probe.Line = r.Line
	probe.IP = r.IP
	probe.Kind = mem.KindLoad
	probe.Core = r.Core
	probe.Issued = g.now
	probe.Timestamp = r.Timestamp
	probe.SpecBypass = true
	probe.Owner = g
	probe.OwnerTag = uint32(idx)
	if !g.l1d.Enqueue(probe) {
		// L1D read queue full: hold and retry each cycle.
		g.pending = append(g.pending, pendingProbe{e, probe})
	}
}

// Complete implements mem.Completer: the invisible probe for MSHR slot
// OwnerTag returned from the hierarchy. Stale fills (slot canceled or
// recycled for another line) are dropped: the speculative data simply
// never lands in the GM. Either way the probe terminates here.
func (g *GM) Complete(pr *mem.Request) {
	g.wake++
	e := &g.mshr[pr.OwnerTag]
	if e.valid && !e.canceled && e.line == pr.Line {
		g.fill(e, pr)
	}
	g.pool.Put(pr)
}

type pendingProbe struct {
	entry *gmMSHR
	probe *mem.Request
}

// fill installs the returned line into the GM and wakes waiters.
func (g *GM) fill(e *gmMSHR, pr *mem.Request) {
	lat := g.now - e.alloc
	servedBy := pr.ServedBy
	g.insertLine(e.line, gmLineMeta{
		timestamp: e.timestamp,
		servedBy:  servedBy,
		fetchLat:  lat,
	})
	if g.OnFill != nil {
		var ip mem.Addr
		var accessed mem.Cycle
		if len(e.waiters) > 0 {
			ip = e.waiters[0].IP
			accessed = e.waiters[0].Issued
		}
		g.OnFill(e.line, servedBy, lat, g.now, ip, accessed)
	}
	for _, w := range e.waiters {
		w.ServedBy = servedBy
		w.MergedPrefetch = pr.MergedPrefetch
		if pr.HitPrefetched {
			// The probe hit a prefetched L1D line: the waiter observes
			// that line's stored latency (the X-LQ Hitp case).
			w.HitPrefetched = true
			w.FillLat = pr.FillLat
		} else {
			w.FillLat = g.now - w.Issued
		}
		g.Stats.DemandMissLatSum += uint64(g.now - w.Issued)
		g.Stats.DemandMissLatCnt++
		if g.Obs != nil {
			g.Obs.Event(probe.Event{
				Kind: probe.EvFill, Site: probe.SiteGM, Cycle: g.now,
				Seq: w.Timestamp, Line: w.Line, IP: w.IP, Req: mem.KindLoad,
				Level: servedBy, Hit: w.HitPrefetched, Aux: uint64(g.now - w.Issued),
				Spec: true,
			})
		}
		g.respond(w)
	}
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.valid = false
	e.waiters = e.waiters[:0]
	g.mshrInUse--
	g.mshrMarkFree(e.slot)
	g.mshrLine[e.slot] = gmInvalid
	g.mshrSigNoteStale()
	g.ver++
}

// insertLine places a line in the GM, evicting the oldest-timestamp
// entry when full (an evicted speculative line is simply dropped; its
// commit will take the re-fetch path).
func (g *GM) insertLine(line mem.Line, nl gmLineMeta) {
	slot := -1
	for i, t := range g.tags {
		if t == line {
			slot = i
			break
		}
		if slot < 0 && t == gmInvalid {
			slot = i
		}
	}
	if slot < 0 {
		slot = 0
		for i := range g.lmeta {
			if g.lmeta[i].timestamp < g.lmeta[slot].timestamp {
				slot = i
			}
		}
		g.Stats.Evictions++
		g.noteStale() // the evicted line's signature bit goes stale
	}
	g.clock++
	nl.lru = g.clock
	g.tags[slot] = line
	g.lmeta[slot] = nl
	g.sig |= sigBit(line)
}

// respond schedules r's completion after the GM latency.
func (g *GM) respond(r *mem.Request) {
	g.resp = append(g.resp, gmResp{r, g.now + g.cfg.Latency})
}

type gmResp struct {
	req   *mem.Request
	ready mem.Cycle
}

// CanCommit reports whether the commit engine can accept another
// update; retirement stalls otherwise.
func (g *GM) CanCommit() bool { return g.commitq.Len() < g.cfg.CommitQueue }

// Commit processes the retirement of a load: it consults the filter and
// emits the on-commit write (GM hit) or re-fetch (GM miss) into the
// hierarchy. It returns the path taken for statistics. The recorded
// hit level (from the GM line, or the level tracked in the load queue)
// is supplied by the caller, which owns the LQ.
func (g *GM) Commit(line mem.Line, ts uint64, hitLevel mem.Level, cs *stats.CoreStats) {
	g.wake++
	gme := g.lookupVisible(line, ts)
	drop, wbb := g.filter.OnCommit(line, hitLevel)
	if g.Obs != nil {
		g.Obs.Event(probe.Event{
			Kind: probe.EvSUF, Site: probe.SiteGM, Cycle: g.now,
			Seq: ts, Line: line, Level: hitLevel, Hit: drop, Aux: uint64(wbb),
		})
	}
	if drop {
		cs.SUFDrops++
		if g.Obs != nil {
			g.Obs.Event(probe.Event{
				Kind: probe.EvCommit, Site: probe.SiteGM, Cycle: g.now,
				Seq: ts, Line: line, Level: hitLevel, Aux: probe.CommitSUFDrop,
			})
		}
		// Oracle accuracy probe: was the line truly still in L1D, as
		// the recorded hit level promised?
		if !g.l1d.Contains(line) {
			cs.SUFDropWrong++
		}
		// The committed line's GM entry is released either way.
		if gme >= 0 {
			g.tags[gme] = gmInvalid
			g.noteStale()
		}
		return
	}
	if gme >= 0 {
		cs.CommitGMHits++
		if g.Obs != nil {
			g.Obs.Event(probe.Event{
				Kind: probe.EvCommit, Site: probe.SiteGM, Cycle: g.now,
				Seq: ts, Line: line, Level: hitLevel, Hit: true, Aux: probe.CommitGMHit,
			})
		}
		// On-commit write: transfer GM -> L1D.
		r := g.pool.Get()
		r.Line = line
		r.Kind = mem.KindCommitWrite
		r.Issued = g.now
		r.WBBits = wbb
		g.tags[gme] = gmInvalid
		g.noteStale()
		g.commitq.Push(r)
		return
	}
	cs.CommitGMMisses++
	if g.Obs != nil {
		g.Obs.Event(probe.Event{
			Kind: probe.EvCommit, Site: probe.SiteGM, Cycle: g.now,
			Seq: ts, Line: line, Level: hitLevel, Aux: probe.CommitGMMiss,
		})
	}
	// Re-fetch into the non-speculative hierarchy.
	r := g.pool.Get()
	r.Line = line
	r.Kind = mem.KindRefetch
	r.Issued = g.now
	r.Timestamp = ts
	g.commitq.Push(r)
}

// Squash discards all speculative state created by instructions with
// timestamp >= ts: GM lines are invalidated and in-flight fetches are
// cancelled. The attack harness uses it to model transient-instruction
// squash; note the non-speculative hierarchy is untouched, which is
// exactly GhostMinion's security argument.
func (g *GM) Squash(ts uint64) {
	g.wake++
	if g.Obs != nil {
		g.Obs.Event(probe.Event{
			Kind: probe.EvSquash, Site: probe.SiteGM, Cycle: g.now,
			Seq: ts, Spec: true,
		})
	}
	for i, t := range g.tags {
		if t != gmInvalid && g.lmeta[i].timestamp >= ts {
			g.tags[i] = gmInvalid
			g.noteStale()
		}
	}
	for i := range g.mshr {
		e := &g.mshr[i]
		if e.valid && e.timestamp >= ts {
			e.canceled = true
			e.valid = false
			g.mshrInUse--
			g.mshrMarkFree(i)
			g.mshrLine[i] = gmInvalid
			g.mshrSigNoteStale()
			for j := range e.waiters {
				e.waiters[j] = nil
			}
			e.waiters = e.waiters[:0]
		}
	}
	// Squashed retry entries are dropped as well.
	for n := g.retryq.Len(); n > 0; n-- {
		r := g.retryq.PopFront()
		if r.Timestamp < ts {
			g.retryq.Push(r)
		}
	}
	g.ver++
}

// Tick advances the GM one cycle: deliver responses, retry blocked
// probes, reissue displaced loads, and drain the commit queue into the
// L1D.
func (g *GM) Tick(now mem.Cycle) {
	g.now = now

	// Responses.
	w := 0
	for _, p := range g.resp {
		if p.ready <= now {
			if p.req.Owner != nil {
				p.req.Complete()
			} else {
				g.pool.Put(p.req)
			}
		} else {
			g.resp[w] = p
			w++
		}
	}
	for i := w; i < len(g.resp); i++ {
		g.resp[i] = gmResp{} // clear vacated slots
	}
	g.resp = g.resp[:w]

	// Blocked probes.
	w = 0
	for _, pp := range g.pending {
		if !pp.entry.valid || pp.entry.line != pp.probe.Line {
			g.pool.Put(pp.probe)
			continue // canceled
		}
		if !g.l1d.Enqueue(pp.probe) {
			g.pending[w] = pp
			w++
		}
	}
	for i := w; i < len(g.pending); i++ {
		g.pending[i] = pendingProbe{}
	}
	g.pending = g.pending[:w]

	// Reissue displaced loads (bounded per cycle; no stats, no
	// leapfrogging — see issueLoad).
	for n := 0; n < 2 && g.retryq.Len() > 0; n++ {
		if !g.issueLoad(g.retryq.Front(), false, false) {
			break
		}
		g.retryq.PopFront()
	}

	// Drain commit updates.
	for g.commitq.Len() > 0 {
		if !g.l1d.Enqueue(g.commitq.Front()) {
			break
		}
		g.commitq.PopFront()
	}

	// Occupancy statistics.
	g.Stats.Cycles++
	g.Stats.MSHROccupancy += uint64(g.mshrInUse)
	if g.mshrInUse == g.cfg.MSHRs {
		g.Stats.MSHRFullCycles++
	}
}

// NextEvent reports the earliest future cycle at which the GM has work
// of its own: a response maturing, or queued probes/retries/commits to
// push (retried every cycle). mem.NoEvent means idle — in-flight
// probes are the hierarchy's work until they return.
func (g *GM) NextEvent(now mem.Cycle) mem.Cycle {
	if len(g.pending) > 0 || g.retryq.Len() > 0 || g.commitq.Len() > 0 {
		return now + 1
	}
	next := mem.NoEvent
	for _, p := range g.resp {
		if p.ready < next {
			next = p.ready
		}
	}
	if next != mem.NoEvent && next <= now {
		next = now + 1
	}
	return next
}

// SkipIdle integrates the per-cycle occupancy statistics for k skipped
// idle cycles (exact: nothing in the GM changes while idle).
func (g *GM) SkipIdle(k mem.Cycle) {
	g.now += k // keep MSHR ages and fill latencies exact across the skip
	g.Stats.Cycles += uint64(k)
	g.Stats.MSHROccupancy += uint64(g.mshrInUse) * uint64(k)
	if g.mshrInUse == g.cfg.MSHRs {
		g.Stats.MSHRFullCycles += uint64(k)
	}
}

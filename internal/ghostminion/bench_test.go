package ghostminion

import (
	"testing"

	"secpref/internal/mem"
)

// BenchmarkComponentGMIssue measures the speculative-issue path on a
// warm GhostMinion: each op issues a load for a resident line (the
// MSHR-signature merge guard, buffer lookup, and commit-queue
// bookkeeping) and ticks until the data returns.
func BenchmarkComponentGMIssue(b *testing.B) {
	r := newRig()
	r.specLoad(100) // install the line in the GM buffer
	done := false
	completer := mem.CompleterFunc(func(*mem.Request) { done = true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.seq++
		done = false
		req := &mem.Request{Line: 100, Kind: mem.KindLoad, Issued: r.now,
			Timestamp: r.seq, Owner: completer}
		for !r.gm.IssueLoad(req) {
			r.step(1)
		}
		for !done {
			r.step(1)
		}
	}
}

// BenchmarkComponentGMIssueMiss measures the miss side of the issue
// path: every op targets a fresh line, so the GM allocates an MSHR,
// fetches from the backing stub, and leapfrog-fills its buffer.
func BenchmarkComponentGMIssueMiss(b *testing.B) {
	r := newRig()
	done := false
	completer := mem.CompleterFunc(func(*mem.Request) { done = true })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.seq++
		done = false
		req := &mem.Request{Line: mem.Line(1000 + i), Kind: mem.KindLoad,
			Issued: r.now, Timestamp: r.seq, Owner: completer}
		for !r.gm.IssueLoad(req) {
			r.step(1)
		}
		for !done {
			r.step(1)
		}
	}
}

package ghostminion

import "secpref/internal/observatory"

// StateDigest hashes the GhostMinion's architectural state: live line
// tags and metadata, live MSHR entries with their waiters, the retry
// and commit queues, pending probes, delayed responses, and the state
// version. The presence signature (sig/sigStale) and the mshrMaxTs
// leapfrog bound are conservative accelerators over this state, not
// state of their own, and are deliberately excluded.
func (g *GM) StateDigest() uint64 {
	d := observatory.NewDigest()
	for i, t := range g.tags {
		if t == gmInvalid {
			continue
		}
		m := &g.lmeta[i]
		d = d.Word(uint64(i)).Word(uint64(t)).Word(m.timestamp)
		d = d.Word(uint64(m.lru) | uint64(m.servedBy)<<32).Word(uint64(m.fetchLat))
	}
	for i := range g.mshr {
		e := &g.mshr[i]
		if !e.valid {
			continue
		}
		d = d.Word(uint64(i)).Word(uint64(e.line)).Word(e.timestamp)
		d = d.Word(uint64(e.alloc)).Bool(e.canceled).Word(uint64(len(e.waiters)))
		for _, wr := range e.waiters {
			d = observatory.DigestRequest(d, wr)
		}
	}
	d = d.Word(uint64(g.mshrInUse)).Word(uint64(g.clock)).Word(g.ver).Word(g.wake)
	d = d.Word(uint64(g.retryq.Len()))
	for i := 0; i < g.retryq.Len(); i++ {
		d = observatory.DigestRequest(d, g.retryq.At(i))
	}
	d = d.Word(uint64(g.commitq.Len()))
	for i := 0; i < g.commitq.Len(); i++ {
		d = observatory.DigestRequest(d, g.commitq.At(i))
	}
	d = d.Word(uint64(len(g.pending)))
	for i := range g.pending {
		d = observatory.DigestRequest(d, g.pending[i].probe)
	}
	d = d.Word(uint64(len(g.resp)))
	for i := range g.resp {
		d = observatory.DigestRequest(d, g.resp[i].req).Word(uint64(g.resp[i].ready))
	}
	d = d.Word(g.Stats.TotalAccesses()).Word(g.Stats.Cycles)
	return d.Sum()
}

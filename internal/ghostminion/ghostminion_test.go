package ghostminion

import (
	"testing"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/stats"
)

// rig is a GM in front of a small L1D backed by an auto-responding
// memory stub.
type rig struct {
	gm   *GM
	l1d  *cache.Cache
	next *memStub
	now  mem.Cycle
	seq  uint64
	cs   stats.CoreStats
}

type memStub struct{ reads, writes int }

func (m *memStub) Enqueue(r *mem.Request) bool {
	switch r.Kind {
	case mem.KindWriteback, mem.KindCommitWrite:
		m.writes++
	default:
		m.reads++
		r.ServedBy = mem.LvlDRAM
		r.Complete()
	}
	return true
}

func newRig() *rig {
	next := &memStub{}
	l1cfg := cache.L1DConfig()
	l1cfg.SizeKiB, l1cfg.Ways = 1, 2
	l1d := cache.New(l1cfg, next)
	return &rig{gm: New(DefaultConfig(), l1d, nil), l1d: l1d, next: next}
}

func (r *rig) step(n int) {
	for i := 0; i < n; i++ {
		r.now++
		r.gm.Tick(r.now)
		r.l1d.Tick(r.now)
	}
}

// specLoad issues a speculative load and waits for data; returns the
// serving level and the sequence number used.
func (r *rig) specLoad(line mem.Line) (mem.Level, uint64) {
	r.seq++
	seq := r.seq
	done := false
	req := &mem.Request{Line: line, Kind: mem.KindLoad, Issued: r.now, Timestamp: seq,
		Owner: mem.CompleterFunc(func(*mem.Request) { done = true })}
	for !r.gm.IssueLoad(req) {
		r.step(1)
	}
	for !done {
		r.step(1)
		if r.now > 100000 {
			panic("load never completed")
		}
	}
	return req.ServedBy, seq
}

func TestSpecLoadFillsOnlyGM(t *testing.T) {
	r := newRig()
	served, _ := r.specLoad(100)
	if served != mem.LvlDRAM {
		t.Errorf("ServedBy = %v, want DRAM", served)
	}
	if !r.gm.Contains(100) {
		t.Fatal("GM missing the speculative fill")
	}
	if r.l1d.Contains(100) {
		t.Fatal("speculative load filled L1D (visible speculation!)")
	}
}

func TestGMHitServesYoungerLoads(t *testing.T) {
	r := newRig()
	_, _ = r.specLoad(200)
	reads := r.next.reads
	served, _ := r.specLoad(200)
	if served != mem.LvlL1D {
		t.Errorf("ServedBy = %v, want L1D-equivalent (GM hit)", served)
	}
	if r.next.reads != reads {
		t.Error("GM hit still fetched from memory")
	}
}

func TestTimeGuardingHidesYoungerInsertions(t *testing.T) {
	r := newRig()
	_, seq := r.specLoad(300) // inserted with this timestamp
	// An OLDER instruction (smaller timestamp) must not see it.
	older := &mem.Request{Line: 300, Kind: mem.KindLoad, Issued: r.now, Timestamp: seq - 1}
	done := false
	older.Owner = mem.CompleterFunc(func(*mem.Request) { done = true })
	reads := r.next.reads
	for !r.gm.IssueLoad(older) {
		r.step(1)
	}
	for !done {
		r.step(1)
	}
	if r.next.reads == reads {
		t.Error("older load observed a younger instruction's GM insertion")
	}
}

func TestCommitGMHitMovesLineToL1D(t *testing.T) {
	r := newRig()
	_, seq := r.specLoad(400)
	r.gm.Commit(400, seq, mem.LvlDRAM, &r.cs)
	r.step(20)
	if !r.l1d.Contains(400) {
		t.Fatal("commit write did not install into L1D")
	}
	if r.gm.Contains(400) {
		t.Error("committed line still in GM (should transfer)")
	}
	if r.cs.CommitGMHits != 1 {
		t.Errorf("CommitGMHits = %d", r.cs.CommitGMHits)
	}
}

func TestCommitGMMissRefetches(t *testing.T) {
	r := newRig()
	// Commit a line that never entered the GM: the re-fetch path.
	r.gm.Commit(500, 1, mem.LvlDRAM, &r.cs)
	r.step(30)
	if r.cs.CommitGMMisses != 1 {
		t.Errorf("CommitGMMisses = %d", r.cs.CommitGMMisses)
	}
	if !r.l1d.Contains(500) {
		t.Fatal("re-fetch did not populate L1D")
	}
}

func TestSquashErasesSpeculativeState(t *testing.T) {
	r := newRig()
	_, seq := r.specLoad(600)
	r.gm.Squash(seq)
	if r.gm.Contains(600) {
		t.Fatal("squashed line survived in GM")
	}
	if r.l1d.Contains(600) {
		t.Fatal("squashed line reached L1D")
	}
	// Commit after squash takes the refetch path (GM miss).
	r.gm.Commit(600, seq, mem.LvlL1D, &r.cs)
	if r.cs.CommitGMMisses != 1 {
		t.Errorf("post-squash commit: CommitGMMisses = %d", r.cs.CommitGMMisses)
	}
}

// dropFilter mimics SUF dropping everything.
type dropFilter struct{ drops int }

func (d *dropFilter) OnCommit(mem.Line, mem.Level) (bool, uint8) {
	d.drops++
	return true, 0
}

func TestFilterDropSuppressesUpdate(t *testing.T) {
	r := newRig()
	f := &dropFilter{}
	r.gm.SetFilter(f)
	_, seq := r.specLoad(700)
	writes := r.next.writes
	r.gm.Commit(700, seq, mem.LvlL1D, &r.cs)
	r.step(20)
	if f.drops != 1 {
		t.Errorf("filter consulted %d times", f.drops)
	}
	if r.l1d.Contains(700) {
		t.Error("dropped update still installed into L1D")
	}
	if r.next.writes != writes {
		t.Error("dropped update still propagated")
	}
	if r.cs.SUFDrops != 1 {
		t.Errorf("SUFDrops = %d", r.cs.SUFDrops)
	}
	// The line was NOT in L1D, so the oracle flags the drop as wrong.
	if r.cs.SUFDropWrong != 1 {
		t.Errorf("SUFDropWrong = %d (oracle should catch the bad drop)", r.cs.SUFDropWrong)
	}
}

func TestLeapfrogDisplacesYoungest(t *testing.T) {
	r := newRig()
	cfg := DefaultConfig()
	// A stub L1D that never responds keeps MSHRs occupied.
	stall := cache.New(cache.Config{
		Name: "stall", Level: mem.LvlL1D, SizeKiB: 1, Ways: 2, Latency: 2,
		MSHRs: 1, RQSize: 1, WQSize: 1, PQSize: 1,
		MaxReads: 0, MaxWrites: 0, MaxPrefetches: 0, MaxFills: 0, // zero bandwidth
	}, nil)
	gm := New(cfg, stall, nil)
	_ = r
	// Fill every GM MSHR with young loads.
	for i := 0; i < cfg.MSHRs; i++ {
		req := &mem.Request{Line: mem.Line(1000 + i), Kind: mem.KindLoad, Timestamp: uint64(100 + i)}
		if !gm.IssueLoad(req) {
			t.Fatalf("load %d rejected with free MSHRs", i)
		}
	}
	// An OLDER load must leapfrog the youngest entry.
	older := &mem.Request{Line: 2000, Kind: mem.KindLoad, Timestamp: 5}
	if !gm.IssueLoad(older) {
		t.Fatal("older load failed to leapfrog a full MSHR")
	}
	if gm.Stats.Leapfrogs != 1 {
		t.Errorf("Leapfrogs = %d", gm.Stats.Leapfrogs)
	}
	// A YOUNGER load must not.
	younger := &mem.Request{Line: 3000, Kind: mem.KindLoad, Timestamp: 9999}
	if gm.IssueLoad(younger) {
		t.Fatal("youngest load should be rejected, not leapfrog")
	}
}

func TestGMEvictionOldestTimestamp(t *testing.T) {
	r := newRig()
	n := DefaultConfig().Lines
	for i := 0; i <= n; i++ {
		r.specLoad(mem.Line(5000 + i))
	}
	if r.gm.Contains(5000) {
		t.Error("oldest GM entry should have been evicted")
	}
	if !r.gm.Contains(mem.Line(5000 + n)) {
		t.Error("newest GM entry missing")
	}
}

package ghostminion

import (
	"testing"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/stats"
)

func TestCommitQueueBackpressure(t *testing.T) {
	// An L1D with zero write bandwidth never drains commit writes; the
	// GM's commit queue must fill and CanCommit must go false.
	stall := cache.New(cache.Config{
		Name: "stall", Level: mem.LvlL1D, SizeKiB: 1, Ways: 2, Latency: 2,
		MSHRs: 4, RQSize: 4, WQSize: 1, PQSize: 1,
		MaxReads: 0, MaxWrites: 0, MaxPrefetches: 0, MaxFills: 0,
	}, nil)
	cfg := DefaultConfig()
	cfg.CommitQueue = 4
	g := New(cfg, stall, nil)
	var cs = newCoreStats()
	for i := 0; !g.CanCommit(); i++ {
		t.Fatal("fresh GM should accept commits")
		_ = i
	}
	n := 0
	for g.CanCommit() && n < 100 {
		g.Commit(mem.Line(1000+n), uint64(n+1), mem.LvlDRAM, cs)
		g.Tick(mem.Cycle(n + 1))
		n++
	}
	if n >= 100 {
		t.Fatal("commit queue never exerted back-pressure")
	}
	// The L1D WQ holds one entry; commitq capacity 4: refusal comes
	// once both are saturated.
	if n < 4 {
		t.Errorf("back-pressure after only %d commits", n)
	}
}

func TestCommitWithSUFLevels(t *testing.T) {
	// Verify the GM honors the filter's writeback bits end to end: a
	// hit-level of LLC must produce a commit write whose propagation
	// stops at L2 (bit pattern 0b01).
	rec := &recordingPort{}
	l1cfg := cache.L1DConfig()
	l1cfg.SizeKiB, l1cfg.Ways = 1, 2
	l1d := cache.New(l1cfg, rec)
	g := New(DefaultConfig(), l1d, sufLike{})
	cs := newCoreStats()
	// Put a line into the GM via a spec load.
	done := false
	r := &mem.Request{Line: 42, Kind: mem.KindLoad, Timestamp: 1,
		Owner: mem.CompleterFunc(func(*mem.Request) { done = true })}
	g.IssueLoad(r)
	for i := 0; !done && i < 10000; i++ {
		g.Tick(mem.Cycle(i))
		l1d.Tick(mem.Cycle(i))
	}
	g.Commit(42, 1, mem.LvlLLC, cs)
	for i := 10000; i < 10050; i++ {
		g.Tick(mem.Cycle(i))
		l1d.Tick(mem.Cycle(i))
	}
	if !l1d.Contains(42) {
		t.Fatal("commit write not installed")
	}
}

// sufLike trims like SUF for the LLC hit level.
type sufLike struct{}

func (sufLike) OnCommit(_ mem.Line, hl mem.Level) (bool, uint8) {
	if hl == mem.LvlL1D {
		return true, 0
	}
	if hl == mem.LvlLLC {
		return false, 0b01
	}
	return false, 0b11
}

// recordingPort responds to reads instantly and remembers writes.
type recordingPort struct{ writes []*mem.Request }

func (p *recordingPort) Enqueue(r *mem.Request) bool {
	switch r.Kind {
	case mem.KindWriteback, mem.KindCommitWrite:
		p.writes = append(p.writes, r)
	default:
		r.ServedBy = mem.LvlDRAM
		r.Complete()
	}
	return true
}

// newCoreStats allocates the counter block the commit engine updates.
func newCoreStats() *stats.CoreStats { return &stats.CoreStats{} }

// Package energy models dynamic energy consumption of the memory
// hierarchy. The paper computes it with CACTI-P and the Micron DRAM
// power calculator at 7 nm; since Fig. 14 reports energy *normalized*
// to a baseline, what matters is the per-access energy ratio between
// levels, which we take from CACTI-P-class numbers for the Table II
// geometries. Traffic counts come straight from the simulation.
package energy

import (
	"secpref/internal/stats"
)

// PerAccess holds per-access dynamic energy in picojoules.
type PerAccess struct {
	GM, L1D, L2, LLC, DRAM float64
}

// DefaultPerAccess returns CACTI-P-class 7 nm estimates: energy grows
// roughly with array size; DRAM dominates per access.
func DefaultPerAccess() PerAccess {
	return PerAccess{
		GM:   2,    // 2 KB scratch structure
		L1D:  15,   // 48 KB, 12-way
		L2:   60,   // 512 KB
		LLC:  250,  // 2 MB bank
		DRAM: 5000, // activate+rw+precharge amortized per 64 B
	}
}

// Breakdown is the dynamic energy split by structure, in picojoules.
type Breakdown struct {
	GM, L1D, L2, LLC, DRAM float64
}

// Total sums the breakdown.
func (b Breakdown) Total() float64 { return b.GM + b.L1D + b.L2 + b.LLC + b.DRAM }

// Compute derives the dynamic energy of one simulation from the
// per-level access counts. gmAccesses is zero for non-secure systems.
func Compute(p PerAccess, gmAccesses uint64, l1d, l2, llc *stats.CacheStats, dram *stats.DRAMStats) Breakdown {
	return Breakdown{
		GM:   p.GM * float64(gmAccesses),
		L1D:  p.L1D * float64(l1d.TotalAccesses()),
		L2:   p.L2 * float64(l2.TotalAccesses()),
		LLC:  p.LLC * float64(llc.TotalAccesses()),
		DRAM: p.DRAM * float64(dram.Reads+dram.Writes),
	}
}

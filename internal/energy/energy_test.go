package energy

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/stats"
)

func TestComputeScalesWithTraffic(t *testing.T) {
	p := DefaultPerAccess()
	var l1, l2, llc stats.CacheStats
	var d stats.DRAMStats
	l1.Accesses[mem.KindLoad] = 1000
	l2.Accesses[mem.KindLoad] = 100
	llc.Accesses[mem.KindLoad] = 10
	d.Reads = 5
	b := Compute(p, 0, &l1, &l2, &llc, &d)
	if b.GM != 0 {
		t.Errorf("GM energy %f without GM accesses", b.GM)
	}
	want := p.L1D*1000 + p.L2*100 + p.LLC*10 + p.DRAM*5
	if b.Total() != want {
		t.Errorf("Total = %f, want %f", b.Total(), want)
	}
	// Doubling L1D traffic raises only the L1D term.
	l1.Accesses[mem.KindLoad] = 2000
	b2 := Compute(p, 0, &l1, &l2, &llc, &d)
	if b2.L1D != 2*b.L1D || b2.L2 != b.L2 {
		t.Error("per-level scaling wrong")
	}
}

func TestHierarchyEnergyOrdering(t *testing.T) {
	p := DefaultPerAccess()
	if !(p.GM < p.L1D && p.L1D < p.L2 && p.L2 < p.LLC && p.LLC < p.DRAM) {
		t.Error("per-access energy must grow with structure size")
	}
}

func TestSpecAccessesCount(t *testing.T) {
	p := DefaultPerAccess()
	var l1, l2, llc stats.CacheStats
	var d stats.DRAMStats
	l1.SpecAccesses = 500 // GhostMinion probes still burn L1D energy
	b := Compute(p, 200, &l1, &l2, &llc, &d)
	if b.L1D != p.L1D*500 {
		t.Errorf("spec accesses not charged: %f", b.L1D)
	}
	if b.GM != p.GM*200 {
		t.Errorf("GM accesses not charged: %f", b.GM)
	}
}

package cpu

import "fmt"

// DebugHead describes the ROB head entry for diagnostics.
func (c *Core) DebugHead() string {
	if c.count == 0 {
		return fmt.Sprintf("rob empty (srcDone=%v staged=%v stores=%d)", c.srcDone, c.hasStaged, c.stores.Len())
	}
	e := &c.rob[c.head]
	return fmt.Sprintf("rob head: seq=%d isLoad=%v issued=%v done=%v line=%#x pendLoads=%d lqFree=%d count=%d",
		e.seq, e.isLoad, e.issued, e.done, e.in.Load, c.pendLen, c.lqFree, c.count)
}

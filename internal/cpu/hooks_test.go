package cpu

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

func TestOnIssueLoadHook(t *testing.T) {
	port := &fixedLatencyPort{lat: 3}
	src := seqTrace(20, func(i int) trace.Instr {
		return trace.Instr{IP: mem.Addr(0x400 + 4*i), Load: mem.Addr(0x60000 + 64*i)}
	})
	c := New(DefaultConfig(), src, port, &sinkStore{})
	var issued []mem.Line
	lqIDs := map[int]bool{}
	c.OnIssueLoad = func(line mem.Line, _ mem.Addr, lqID int, _ mem.Cycle) {
		issued = append(issued, line)
		lqIDs[lqID] = true
	}
	run(t, c, port, 10000)
	if len(issued) != 20 {
		t.Fatalf("%d issue events, want 20", len(issued))
	}
	if len(lqIDs) != 20 {
		t.Errorf("%d distinct LQ ids for 20 loads", len(lqIDs))
	}
}

func TestTLBDelaysColdLoads(t *testing.T) {
	// Two identical single-load runs; the TLB run must take longer
	// because of page-walk latency on cold pages.
	mk := func(withTLB bool) mem.Cycle {
		port := &fixedLatencyPort{lat: 5}
		src := seqTrace(100, func(i int) trace.Instr {
			// One load per page: every access is a cold translation.
			return trace.Instr{IP: 0x400, Load: mem.Addr(0x100000 + i<<tlb.PageBits), Dep: true}
		})
		c := New(DefaultConfig(), src, port, &sinkStore{})
		if withTLB {
			c.TLB = tlb.New(tlb.DefaultConfig())
		}
		return run(t, c, port, 1000000)
	}
	without := mk(false)
	with := mk(true)
	if with <= without {
		t.Errorf("TLB did not add latency: %d vs %d cycles", with, without)
	}
	// 100 serialized walks at ~69 cycles: expect thousands of extra cycles.
	if with-without < 1000 {
		t.Errorf("TLB cost only %d cycles for 100 cold pages", with-without)
	}
}

func TestTLBHitsAreCheap(t *testing.T) {
	mk := func(withTLB bool) mem.Cycle {
		port := &fixedLatencyPort{lat: 5}
		src := seqTrace(2000, func(i int) trace.Instr {
			// All loads in one page: a single walk, then dTLB hits.
			return trace.Instr{IP: 0x400, Load: mem.Addr(0x200000 + 8*(i%100))}
		})
		c := New(DefaultConfig(), src, port, &sinkStore{})
		if withTLB {
			c.TLB = tlb.New(tlb.DefaultConfig())
		}
		return run(t, c, port, 1000000)
	}
	without := mk(false)
	with := mk(true)
	// One cold walk plus per-load 1-cycle translations: small overhead.
	if float64(with) > float64(without)*1.6 {
		t.Errorf("hot-page TLB overhead too high: %d vs %d cycles", with, without)
	}
}

func TestStoresReachPort(t *testing.T) {
	port := &fixedLatencyPort{lat: 1}
	store := &sinkStore{}
	src := seqTrace(50, func(i int) trace.Instr {
		return trace.Instr{IP: 0x400, Store: mem.Addr(0x70000 + 64*i)}
	})
	c := New(DefaultConfig(), src, port, store)
	run(t, c, port, 10000)
	if store.n != 50 {
		t.Errorf("%d stores reached the port, want 50", store.n)
	}
}

// Package cpu models the trace-driven out-of-order core of the paper's
// Table II baseline: a 352-entry ROB, 128-entry load queue, 6-wide
// dispatch, 4-wide retire, and a hashed perceptron branch predictor.
//
// The model captures exactly the properties the paper's mechanisms
// depend on: loads issue to the memory system *speculatively* at
// dispatch and *commit* at retire (the access-time/commit-time gap that
// secure prefetching is about); dependent loads (pointer chases, as
// flagged in the trace) serialize on the previous load; branch
// mispredictions stall dispatch; and retirement can stall on the secure
// cache system's commit engine.
package cpu

import (
	"secpref/internal/bpred"
	"secpref/internal/mem"
	"secpref/internal/probe"
	"secpref/internal/ring"
	"secpref/internal/stats"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// Config sizes the core (defaults per Table II).
type Config struct {
	ROBSize     int
	LQSize      int
	StoreBuffer int
	// DispatchWidth instructions enter the ROB per cycle; RetireWidth
	// leave it.
	DispatchWidth int
	RetireWidth   int
	// IssueLoadsPerCycle bounds speculative load issue bandwidth.
	IssueLoadsPerCycle int
	// MispredictPenalty stalls dispatch after a mispredicted branch
	// (redirect + refill).
	MispredictPenalty mem.Cycle
}

// DefaultConfig returns the Table II core.
func DefaultConfig() Config {
	return Config{
		ROBSize:            352,
		LQSize:             128,
		StoreBuffer:        32,
		DispatchWidth:      6,
		RetireWidth:        4,
		IssueLoadsPerCycle: 2,
		MispredictPenalty:  15,
	}
}

// LoadPort accepts speculative loads: the GM in a secure system, the
// L1D (via an adapter) otherwise. IssueLoad returns false when the load
// cannot be accepted this cycle; the core retries.
type LoadPort interface {
	IssueLoad(r *mem.Request) bool
}

// VersionedPort is an optional LoadPort extension: StateVersion changes
// whenever port state mutates such that a previously rejected IssueLoad
// could now succeed. For ports whose rejections are side-effect-free
// (the GM), the core skips retrying a blocked load until the version
// changes — the load still issues on exactly the same cycle it would
// with per-cycle retries. Ports with rejection side effects (the plain
// L1D adapter counts RQFull per attempt) must not implement this.
type VersionedPort interface {
	LoadPort
	StateVersion() uint64
}

// StorePort accepts retirement-time stores.
type StorePort interface {
	IssueStore(r *mem.Request) bool
}

// CommitInfo describes a retiring load; the simulator's commit hook
// receives it (GhostMinion update, SUF, on-commit prefetcher training).
type CommitInfo struct {
	Line          mem.Line
	IP            mem.Addr
	Seq           uint64
	LQID          int
	AccessCycle   mem.Cycle
	CommitCycle   mem.Cycle
	HitLevel      mem.Level
	FetchLat      mem.Cycle
	HitPrefetched bool
	// WasMiss reports the load missed the first level (GM/L1D).
	WasMiss bool
	// MergedPrefetch reports the classic late-prefetch merge.
	MergedPrefetch bool
}

type robEntry struct {
	in  trace.Instr
	seq uint64

	isLoad  bool
	issued  bool
	done    bool
	retired bool

	lqID        int
	accessCycle mem.Cycle
	hitLevel    mem.Level
	fetchLat    mem.Cycle
	hitPref     bool
	mergedPref  bool

	execReady mem.Cycle
	// depIdx is the ROB index (ring position) of the load this entry's
	// address depends on, or -1.
	depIdx int
	// req is the load's memory request, built once and reused across
	// issue retries (ports reject when queues are full).
	req *mem.Request
	// transReady is the cycle address translation completes; the load
	// issues to the memory system no earlier.
	transReady mem.Cycle
	translated bool
	// portBlocked/blockedVer gate issue retries against a VersionedPort:
	// a load rejected at version v is not retried until the version
	// moves.
	portBlocked bool
	blockedVer  uint64
}

// Core is the out-of-order core.
type Core struct {
	cfg  Config
	src  trace.Source
	pred *bpred.Perceptron

	rob        []robEntry
	head, tail int // ring [head, tail)
	count      int

	// wake counts externally delivered work (load completions). The
	// event-driven engine re-examines the core's schedule whenever it
	// moves; see WakeCount.
	wake uint64

	// Bulk-decode buffer for sources supporting trace.BatchSource;
	// batcher is nil when the source only does one-at-a-time reads.
	batcher  trace.BatchSource
	batch    []trace.Instr
	batchPos int

	// Issue gate: when a full issueLoads pass issues nothing and every
	// examined load is blocked on an observable signal — a producer
	// load's completion (wake), a version-gated port (verPort), or a
	// translation finishing at a known cycle — the scan is provably
	// fruitless until one of those moves, and Tick skips it. place()
	// drops the gate when a new load enters the window.
	gateValid bool
	gateWake  uint64
	gateVer   uint64
	gateUntil mem.Cycle // earliest translation-ready cycle (NoEvent if none)

	lqFree  int
	nextLQ  int
	stores  ring.Buf[*mem.Request]
	loads   LoadPort
	verPort VersionedPort // loads, if it reports a state version
	storeTo StorePort
	pool    *mem.RequestPool

	now        mem.Cycle
	seq        uint64
	stallUntil mem.Cycle
	srcDone    bool
	lastLoad   int // ROB ring index of most recent dispatched load, -1 if none
	// staged holds an instruction held back by a full LQ (valid when
	// hasStaged). Stored by value: a pointer here escapes a fresh copy
	// to the heap every cycle the LQ stays full.
	staged    trace.Instr
	hasStaged bool
	// pendBuf/pendHead/pendLen ring the ROB indices of
	// dispatched-but-unissued loads in program order. Issue examines a
	// bounded window at the head and compacts only that window in
	// place, so a long blocked tail is never copied per cycle. Loads
	// hold LQ slots until retirement, so occupancy is bounded by
	// LQSize; pendPush still grows defensively. The capacity is kept a
	// power of two so every ring index is pendMask arithmetic.
	pendBuf  []int
	pendMask int
	pendHead int
	pendLen  int

	// OnCommitLoad is invoked for every retiring load; returning false
	// stalls retirement this cycle (commit engine back-pressure).
	OnCommitLoad func(ci CommitInfo) bool
	// OnIssueLoad is invoked when a load is sent to the memory system
	// (the on-access training stream and the X-LQ record point).
	OnIssueLoad func(line mem.Line, ip mem.Addr, lqID int, cycle mem.Cycle)

	// TLB, if set, charges address-translation latency before each load
	// issues (the Table II dTLB/STLB hierarchy).
	TLB *tlb.Hierarchy

	// Obs, if set, receives issue/fill/commit events for retiring loads.
	// Observers are read-only; see internal/probe.
	Obs probe.Observer

	// Stats is the core's counter block.
	Stats stats.CoreStats
}

// New builds a core reading from src, issuing loads to loads and
// retirement stores to storeTo.
func New(cfg Config, src trace.Source, loads LoadPort, storeTo StorePort) *Core {
	c := &Core{
		cfg:      cfg,
		src:      src,
		pred:     bpred.New(),
		rob:      make([]robEntry, cfg.ROBSize),
		lqFree:   cfg.LQSize,
		loads:    loads,
		storeTo:  storeTo,
		lastLoad: -1,
		pool:     &mem.RequestPool{},
	}
	pendCap := 1
	for pendCap < cfg.LQSize {
		pendCap *= 2
	}
	c.pendBuf = make([]int, pendCap)
	c.pendMask = pendCap - 1
	if vp, ok := loads.(VersionedPort); ok {
		c.verPort = vp
	}
	if b, ok := src.(trace.BatchSource); ok {
		c.batcher = b
		c.batch = make([]trace.Instr, 0, dispatchBatch)
	}
	return c
}

// dispatchBatch is how many instructions one ReadBatch call decodes.
// Large enough to amortize the per-call source chain (Repeat wrapping
// Offset wrapping a slice), small enough that the buffer stays resident
// in L1.
const dispatchBatch = 256

// nextInstr fetches the next trace instruction, refilling the batch
// buffer when the source supports bulk decode.
func (c *Core) nextInstr() (trace.Instr, bool) {
	if c.batchPos < len(c.batch) {
		in := c.batch[c.batchPos]
		c.batchPos++
		return in, true
	}
	if c.batcher != nil {
		n := c.batcher.ReadBatch(c.batch[:dispatchBatch])
		if n == 0 {
			return trace.Instr{}, false
		}
		c.batch = c.batch[:n]
		c.batchPos = 1
		return c.batch[0], true
	}
	return c.src.Next()
}

// SetPool shares the machine-wide request pool with the core.
func (c *Core) SetPool(p *mem.RequestPool) { c.pool = p }

// Done reports whether the trace is exhausted and the ROB drained.
func (c *Core) Done() bool {
	return c.srcDone && c.count == 0 && c.stores.Len() == 0 && !c.hasStaged
}

// pendAt returns the i-th pending-load ROB index from the ring head.
func (c *Core) pendAt(i int) int {
	return c.pendBuf[(c.pendHead+i)&c.pendMask]
}

// pendPush appends a pending load at the ring tail.
func (c *Core) pendPush(idx int) {
	if c.pendLen == len(c.pendBuf) {
		// Cannot happen while pending loads hold LQ slots (see the
		// field comment); kept as a safety valve for exotic configs.
		grown := make([]int, 2*len(c.pendBuf))
		for i := 0; i < c.pendLen; i++ {
			grown[i] = c.pendAt(i)
		}
		c.pendBuf = grown
		c.pendMask = len(grown) - 1
		c.pendHead = 0
	}
	c.pendBuf[(c.pendHead+c.pendLen)&c.pendMask] = idx
	c.pendLen++
}

// Now returns the core's current cycle.
func (c *Core) Now() mem.Cycle { return c.now }

// Tick advances the core one cycle: retire, dispatch, issue.
func (c *Core) Tick(now mem.Cycle) {
	c.now = now
	c.Stats.Cycles++
	c.retire()
	c.drainStores()
	c.dispatch()
	c.issueLoads()
}

func (c *Core) retire() {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.done || e.execReady > c.now {
			return
		}
		if e.isLoad {
			if c.OnCommitLoad != nil {
				ci := CommitInfo{
					Line:           mem.LineOf(e.in.Load),
					IP:             e.in.IP,
					Seq:            e.seq,
					LQID:           e.lqID,
					AccessCycle:    e.accessCycle,
					CommitCycle:    c.now,
					HitLevel:       e.hitLevel,
					FetchLat:       e.fetchLat,
					HitPrefetched:  e.hitPref,
					WasMiss:        e.hitLevel > mem.LvlL1D,
					MergedPrefetch: e.mergedPref,
				}
				if !c.OnCommitLoad(ci) {
					return // commit engine full; stall retirement
				}
			}
			if c.Obs != nil {
				c.Obs.Event(probe.Event{
					Kind: probe.EvCommit, Site: probe.SiteCore, Cycle: c.now,
					Seq: e.seq, Line: mem.LineOf(e.in.Load), IP: e.in.IP,
					Req: mem.KindLoad, Level: e.hitLevel, Hit: e.hitPref,
					Aux: uint64(e.fetchLat),
				})
			}
			c.lqFree++
		}
		if e.in.Store != 0 {
			if c.stores.Len() >= c.cfg.StoreBuffer {
				return
			}
			sr := c.pool.Get()
			sr.Line = mem.LineOf(e.in.Store)
			sr.IP = e.in.IP
			sr.Kind = mem.KindRFO
			sr.Issued = c.now
			sr.Timestamp = e.seq
			c.stores.Push(sr)
			c.Stats.Stores++
		}
		c.Stats.Instructions++
		e.retired = true
		// Compare-and-wrap: the ROB size (352) is not a power of two, so
		// a modulo here is a real division on the retire path.
		if c.head++; c.head == len(c.rob) {
			c.head = 0
		}
		c.count--
	}
}

// drainStores sends buffered retirement stores to the L1D.
func (c *Core) drainStores() {
	for c.stores.Len() > 0 {
		if !c.storeTo.IssueStore(c.stores.Front()) {
			return
		}
		c.stores.PopFront()
	}
}

func (c *Core) dispatch() {
	if c.now < c.stallUntil {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if c.count == len(c.rob) {
			return
		}
		var in trace.Instr
		if c.hasStaged {
			in = c.staged
		} else {
			if c.srcDone {
				return
			}
			next, ok := c.nextInstr()
			if !ok {
				c.srcDone = true
				return
			}
			in = next
		}
		if in.Load != 0 && c.lqFree == 0 {
			// LQ full: the trace source cannot un-read, so hold the
			// instruction in a one-slot staging latch until a slot
			// frees.
			c.Stats.LQFullCycles++
			c.staged = in
			c.hasStaged = true
			return
		}
		c.hasStaged = false
		c.place(in)
	}
}

func (c *Core) place(in trace.Instr) {
	e := &c.rob[c.tail]
	// Field-by-field reset instead of a struct literal: the literal
	// builds a 136-byte temporary and bulk-copies it per instruction
	// (it was the core's top duffcopy source). Every robEntry field
	// must be (re)assigned here — the slot is recycled ring storage.
	e.in = in
	e.seq = c.seq
	e.isLoad = false
	e.issued = false
	e.done = false
	e.retired = false
	e.lqID = 0
	e.accessCycle = 0
	e.hitLevel = 0
	e.fetchLat = 0
	e.hitPref = false
	e.mergedPref = false
	e.execReady = c.now + 1
	e.depIdx = -1
	e.req = nil
	e.transReady = 0
	e.translated = false
	e.portBlocked = false
	e.blockedVer = 0
	c.seq++
	if in.Branch {
		c.Stats.Branches++
		if !c.pred.Train(in.IP, in.Taken) {
			c.Stats.Mispredicts++
			// Dispatch resumes after the redirect penalty (the branch
			// resolves at execute; penalty approximates resolve+refill).
			c.stallUntil = c.now + c.cfg.MispredictPenalty
		}
	}
	if in.Load != 0 {
		e.isLoad = true
		e.done = false
		e.lqID = c.nextLQ
		if c.nextLQ++; c.nextLQ == c.cfg.LQSize {
			c.nextLQ = 0
		}
		c.lqFree--
		if in.Dep {
			e.depIdx = c.lastLoad
		}
		c.lastLoad = c.tail
		c.pendPush(c.tail)
		c.gateValid = false // new load entered the scheduling window
		c.Stats.Loads++
	} else {
		e.done = true
	}
	if c.tail++; c.tail == len(c.rob) {
		c.tail = 0
	}
	c.count++
}

// issueWindow bounds how many pending loads the scheduler examines per
// cycle (an issue-queue-width approximation).
const issueWindow = 16

// issueLoads sends ready, un-issued loads to the memory system in
// program order, bounded per cycle. Dependent loads whose producer has
// not completed are skipped (younger independent loads may issue —
// that is the memory-level parallelism of an OoO core).
func (c *Core) issueLoads() {
	if c.gateValid {
		// A previous pass proved every window-visible load blocked on a
		// completion, a port version, or a translation deadline; skip
		// the scan until one of those moves (see the gate fields).
		ver := uint64(0)
		if c.verPort != nil {
			ver = c.verPort.StateVersion()
		}
		if c.wake == c.gateWake && ver == c.gateVer && c.now < c.gateUntil {
			return
		}
		c.gateValid = false
	}
	// One StateVersion read serves the whole pass; within a pass only a
	// successful issue can move it, so it is re-read after each issue.
	// A stale (older) cached version can only cause an extra retry of a
	// side-effect-free rejection — never a skipped one.
	ver := uint64(0)
	if c.verPort != nil {
		ver = c.verPort.StateVersion()
	}
	issued := 0
	gate := true
	until := mem.NoEvent
	var keptBuf [issueWindow]int
	examined, kept := 0, 0
	for i := 0; i < c.pendLen; i++ {
		if issued >= c.cfg.IssueLoadsPerCycle || i >= issueWindow {
			// Loads beyond the window stay invisible until a window
			// entry issues, so an all-blocked window still gates.
			break
		}
		examined++
		idx := c.pendAt(i)
		e := &c.rob[idx]
		if !c.tryIssue(e, idx, ver) {
			keptBuf[kept] = idx
			kept++
			// Classify the block, mirroring tryIssue's checks in order:
			// only observable blocks keep the pass gateable.
			switch {
			case e.depIdx >= 0 && func() bool {
				dep := &c.rob[e.depIdx]
				return dep.isLoad && dep.seq < e.seq && !dep.retired && !dep.done
			}():
				// Producer completion arrives via Complete (wake).
			case e.transReady > c.now:
				if e.transReady < until {
					until = e.transReady
				}
			case e.portBlocked && c.verPort != nil:
				// Retry is version-gated; a fresh rejection just
				// recorded the current version.
			default:
				gate = false // unobservable (e.g. unversioned port)
			}
			continue
		}
		issued++
		if c.verPort != nil {
			ver = c.verPort.StateVersion()
		}
	}
	// Compact in place: the kept window entries slide to the end of the
	// examined region (order preserved), the head advances over the
	// issued ones, and the unexamined tail is untouched.
	if removed := examined - kept; removed > 0 {
		newHead := (c.pendHead + removed) & c.pendMask
		c.pendHead = newHead
		c.pendLen -= removed
		for j := 0; j < kept; j++ {
			c.pendBuf[(newHead+j)&c.pendMask] = keptBuf[j]
		}
	}
	if issued == 0 && gate && c.pendLen > 0 {
		c.gateValid = true
		c.gateWake = c.wake
		c.gateVer = ver
		c.gateUntil = until
	}
}

// tryIssue attempts to send one load; it returns true when the load no
// longer needs scheduling (issued). ver is the caller's current read
// of the versioned port's state version.
func (c *Core) tryIssue(e *robEntry, idx int, ver uint64) bool {
	if e.depIdx >= 0 {
		dep := &c.rob[e.depIdx]
		// The dependency is live only while that entry still holds the
		// older load (not retired/recycled).
		if dep.isLoad && dep.seq < e.seq && !dep.retired && !dep.done {
			return false // address not ready
		}
	}
	if c.TLB != nil && !e.translated {
		// Translation starts once the address is ready (dependencies
		// resolved above) and delays issue by its latency.
		e.transReady = c.now + c.TLB.Translate(e.in.Load) - 1
		e.translated = true
	}
	if e.transReady > c.now {
		return false // translation in flight
	}
	if e.portBlocked && c.verPort != nil && ver == e.blockedVer {
		// The port rejected this load and nothing that could change the
		// outcome has happened since; skip the (side-effect-free) retry.
		return false
	}
	if e.req == nil {
		r := c.pool.Get()
		r.Line = mem.LineOf(e.in.Load)
		r.IP = e.in.IP
		r.Kind = mem.KindLoad
		r.Issued = c.now // first attempt: port back-pressure counts as access latency
		r.Timestamp = e.seq
		// The response routes back via the ROB slot index; seq (carried
		// in Timestamp) guards against a recycled entry.
		r.Owner = c
		r.OwnerTag = uint32(idx)
		e.req = r
		e.accessCycle = c.now
	}
	if !c.loads.IssueLoad(e.req) {
		// Port rejected (queue/MSHR full): retry when its state moves.
		// The rejection was side-effect-free, so ver is still current.
		if c.verPort != nil {
			e.portBlocked = true
			e.blockedVer = ver
		}
		return false
	}
	e.issued = true
	e.portBlocked = false
	if c.OnIssueLoad != nil {
		c.OnIssueLoad(e.req.Line, e.req.IP, e.lqID, c.now)
	}
	if c.Obs != nil {
		c.Obs.Event(probe.Event{
			Kind: probe.EvIssue, Site: probe.SiteCore, Cycle: c.now,
			Seq: e.seq, Line: mem.LineOf(e.in.Load), IP: e.in.IP,
			Req: mem.KindLoad,
		})
	}
	return true
}

// Complete implements mem.Completer: a load response arrived. The ROB
// slot rides in OwnerTag; a stale response (entry recycled — loads pin
// entries, so this is defensive) only recycles the request.
func (c *Core) Complete(r *mem.Request) {
	c.wake++
	ent := &c.rob[r.OwnerTag]
	if ent.seq != r.Timestamp || !ent.isLoad || ent.req != r {
		c.pool.Put(r)
		return
	}
	ent.done = true
	ent.hitLevel = r.ServedBy
	ent.fetchLat = r.FillLat
	ent.hitPref = r.HitPrefetched
	ent.mergedPref = r.MergedPrefetch
	ent.req = nil
	if c.Obs != nil {
		c.Obs.Event(probe.Event{
			Kind: probe.EvFill, Site: probe.SiteCore, Cycle: c.now,
			Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
			Level: r.ServedBy, Hit: r.HitPrefetched, Aux: uint64(r.FillLat),
		})
	}
	c.pool.Put(r)
}

// WakeCount is a monotonic counter of peer-delivered work: it moves
// whenever a load completion arrives. A scheduler holding the core
// asleep past its own NextEvent must re-arm it when the counter moves
// (or when the versioned load port's StateVersion moves — the one
// unblocking event with no completion attached).
func (c *Core) WakeCount() uint64 { return c.wake }

// NextEvent reports the earliest future cycle at which the core has
// work of its own. mem.NoEvent means every remaining step waits on an
// external completion: the ROB head is an un-returned load, every
// window-visible pending load is dependence- or port-blocked, and
// there is nothing to dispatch, drain, or retire. See SkipIdle for the
// one statistic that still accrues while idle.
func (c *Core) NextEvent(now mem.Cycle) mem.Cycle {
	// This probe runs every cycle of the main loop, so the common busy
	// cases return now+1 immediately — no candidate can beat it.
	min := now + 1
	if c.stores.Len() > 0 {
		return min // store drain retries every cycle
	}
	next := mem.NoEvent
	earliest := func(t mem.Cycle) {
		if t <= now {
			t = min
		}
		if t < next {
			next = t
		}
	}
	if c.count > 0 {
		if h := &c.rob[c.head]; h.done {
			// Retirement becomes possible once the head's latency
			// elapses (commit-engine back-pressure resolves via the GM's
			// own next event).
			if h.execReady <= now {
				return min
			}
			earliest(h.execReady)
		}
	}
	if c.count < len(c.rob) {
		if c.hasStaged {
			if c.lqFree > 0 {
				if c.stallUntil <= now {
					return min // staged instruction places
				}
				earliest(c.stallUntil)
			}
			// LQ-blocked staging only counts LQFullCycles; SkipIdle
			// integrates that without waking the core.
		} else if !c.srcDone {
			if c.stallUntil <= now {
				return min // dispatch reads the source
			}
			earliest(c.stallUntil)
		}
	}
	// One version read serves the whole (read-only) probe.
	ver := uint64(0)
	if c.verPort != nil {
		ver = c.verPort.StateVersion()
	}
	if c.gateValid && c.wake == c.gateWake && ver == c.gateVer {
		// The issue gate already classified every window-visible load:
		// all blocked externally except translations due at gateUntil.
		earliest(c.gateUntil)
		return next
	}
	n := c.pendLen
	if n > issueWindow {
		n = issueWindow
	}
	for i := 0; i < n; i++ {
		e := &c.rob[c.pendAt(i)]
		if e.depIdx >= 0 {
			dep := &c.rob[e.depIdx]
			if dep.isLoad && dep.seq < e.seq && !dep.retired && !dep.done {
				continue // waits on the producer load (external)
			}
		}
		if !e.translated {
			return min // translation must be charged by a Tick
		}
		if e.transReady > now {
			earliest(e.transReady)
			continue
		}
		if e.portBlocked && c.verPort != nil && ver == e.blockedVer {
			continue // waits on port state (external)
		}
		return min // issuable now
	}
	return next
}

// SkipIdle integrates per-cycle core statistics for k skipped idle
// cycles following cycle now (exact — see NextEvent): the cycle
// counter always runs, and an LQ-blocked staged instruction counts an
// LQFullCycles for every skipped cycle dispatch would have attempted
// (those at or past stallUntil).
func (c *Core) SkipIdle(now, k mem.Cycle) {
	c.now = now + k
	c.Stats.Cycles += uint64(k)
	if c.hasStaged && c.lqFree == 0 && c.count < len(c.rob) {
		attempts := k
		if c.stallUntil > now+1 {
			stalled := c.stallUntil - now - 1 // leading cycles below stallUntil
			if stalled >= k {
				attempts = 0
			} else {
				attempts -= stalled
			}
		}
		c.Stats.LQFullCycles += uint64(attempts)
	}
}

// Package cpu models the trace-driven out-of-order core of the paper's
// Table II baseline: a 352-entry ROB, 128-entry load queue, 6-wide
// dispatch, 4-wide retire, and a hashed perceptron branch predictor.
//
// The model captures exactly the properties the paper's mechanisms
// depend on: loads issue to the memory system *speculatively* at
// dispatch and *commit* at retire (the access-time/commit-time gap that
// secure prefetching is about); dependent loads (pointer chases, as
// flagged in the trace) serialize on the previous load; branch
// mispredictions stall dispatch; and retirement can stall on the secure
// cache system's commit engine.
package cpu

import (
	"secpref/internal/bpred"
	"secpref/internal/mem"
	"secpref/internal/stats"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// Config sizes the core (defaults per Table II).
type Config struct {
	ROBSize     int
	LQSize      int
	StoreBuffer int
	// DispatchWidth instructions enter the ROB per cycle; RetireWidth
	// leave it.
	DispatchWidth int
	RetireWidth   int
	// IssueLoadsPerCycle bounds speculative load issue bandwidth.
	IssueLoadsPerCycle int
	// MispredictPenalty stalls dispatch after a mispredicted branch
	// (redirect + refill).
	MispredictPenalty mem.Cycle
}

// DefaultConfig returns the Table II core.
func DefaultConfig() Config {
	return Config{
		ROBSize:            352,
		LQSize:             128,
		StoreBuffer:        32,
		DispatchWidth:      6,
		RetireWidth:        4,
		IssueLoadsPerCycle: 2,
		MispredictPenalty:  15,
	}
}

// LoadPort accepts speculative loads: the GM in a secure system, the
// L1D (via an adapter) otherwise. IssueLoad returns false when the load
// cannot be accepted this cycle; the core retries.
type LoadPort interface {
	IssueLoad(r *mem.Request) bool
}

// StorePort accepts retirement-time stores.
type StorePort interface {
	IssueStore(r *mem.Request) bool
}

// CommitInfo describes a retiring load; the simulator's commit hook
// receives it (GhostMinion update, SUF, on-commit prefetcher training).
type CommitInfo struct {
	Line          mem.Line
	IP            mem.Addr
	Seq           uint64
	LQID          int
	AccessCycle   mem.Cycle
	CommitCycle   mem.Cycle
	HitLevel      mem.Level
	FetchLat      mem.Cycle
	HitPrefetched bool
	// WasMiss reports the load missed the first level (GM/L1D).
	WasMiss bool
	// MergedPrefetch reports the classic late-prefetch merge.
	MergedPrefetch bool
}

type robEntry struct {
	in  trace.Instr
	seq uint64

	isLoad  bool
	issued  bool
	done    bool
	retired bool

	lqID        int
	accessCycle mem.Cycle
	hitLevel    mem.Level
	fetchLat    mem.Cycle
	hitPref     bool
	mergedPref  bool

	execReady mem.Cycle
	// depIdx is the ROB index (ring position) of the load this entry's
	// address depends on, or -1.
	depIdx int
	// req is the load's memory request, built once and reused across
	// issue retries (ports reject when queues are full).
	req *mem.Request
	// transReady is the cycle address translation completes; the load
	// issues to the memory system no earlier.
	transReady mem.Cycle
	translated bool
}

// Core is the out-of-order core.
type Core struct {
	cfg  Config
	src  trace.Source
	pred *bpred.Perceptron

	rob        []robEntry
	head, tail int // ring [head, tail)
	count      int

	lqFree  int
	nextLQ  int
	stores  []*mem.Request
	loads   LoadPort
	storeTo StorePort

	now        mem.Cycle
	seq        uint64
	stallUntil mem.Cycle
	srcDone    bool
	lastLoad   int          // ROB ring index of most recent dispatched load, -1 if none
	staged     *trace.Instr // instruction held back by a full LQ
	// pendLoads lists ROB ring indices of dispatched-but-unissued loads
	// in program order (issue scans a bounded window of it).
	pendLoads []int

	// OnCommitLoad is invoked for every retiring load; returning false
	// stalls retirement this cycle (commit engine back-pressure).
	OnCommitLoad func(ci CommitInfo) bool
	// OnIssueLoad is invoked when a load is sent to the memory system
	// (the on-access training stream and the X-LQ record point).
	OnIssueLoad func(line mem.Line, ip mem.Addr, lqID int, cycle mem.Cycle)

	// TLB, if set, charges address-translation latency before each load
	// issues (the Table II dTLB/STLB hierarchy).
	TLB *tlb.Hierarchy

	// Stats is the core's counter block.
	Stats stats.CoreStats
}

// New builds a core reading from src, issuing loads to loads and
// retirement stores to storeTo.
func New(cfg Config, src trace.Source, loads LoadPort, storeTo StorePort) *Core {
	return &Core{
		cfg:      cfg,
		src:      src,
		pred:     bpred.New(),
		rob:      make([]robEntry, cfg.ROBSize),
		lqFree:   cfg.LQSize,
		loads:    loads,
		storeTo:  storeTo,
		lastLoad: -1,
	}
}

// Done reports whether the trace is exhausted and the ROB drained.
func (c *Core) Done() bool {
	return c.srcDone && c.count == 0 && len(c.stores) == 0 && c.staged == nil
}

// Now returns the core's current cycle.
func (c *Core) Now() mem.Cycle { return c.now }

// Tick advances the core one cycle: retire, dispatch, issue.
func (c *Core) Tick(now mem.Cycle) {
	c.now = now
	c.Stats.Cycles++
	c.retire()
	c.drainStores()
	c.dispatch()
	c.issueLoads()
}

func (c *Core) retire() {
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if !e.done || e.execReady > c.now {
			return
		}
		if e.isLoad {
			if c.OnCommitLoad != nil {
				ci := CommitInfo{
					Line:           mem.LineOf(e.in.Load),
					IP:             e.in.IP,
					Seq:            e.seq,
					LQID:           e.lqID,
					AccessCycle:    e.accessCycle,
					CommitCycle:    c.now,
					HitLevel:       e.hitLevel,
					FetchLat:       e.fetchLat,
					HitPrefetched:  e.hitPref,
					WasMiss:        e.hitLevel > mem.LvlL1D,
					MergedPrefetch: e.mergedPref,
				}
				if !c.OnCommitLoad(ci) {
					return // commit engine full; stall retirement
				}
			}
			c.lqFree++
		}
		if e.in.Store != 0 {
			if len(c.stores) >= c.cfg.StoreBuffer {
				return
			}
			c.stores = append(c.stores, &mem.Request{
				Line:      mem.LineOf(e.in.Store),
				IP:        e.in.IP,
				Kind:      mem.KindRFO,
				Issued:    c.now,
				Timestamp: e.seq,
			})
			c.Stats.Stores++
		}
		c.Stats.Instructions++
		e.retired = true
		c.head = (c.head + 1) % len(c.rob)
		c.count--
	}
}

// drainStores sends buffered retirement stores to the L1D.
func (c *Core) drainStores() {
	for len(c.stores) > 0 {
		if !c.storeTo.IssueStore(c.stores[0]) {
			return
		}
		c.stores = c.stores[1:]
	}
}

func (c *Core) dispatch() {
	if c.now < c.stallUntil {
		return
	}
	for n := 0; n < c.cfg.DispatchWidth; n++ {
		if c.count == len(c.rob) {
			return
		}
		var in trace.Instr
		if c.staged != nil {
			in = *c.staged
		} else {
			if c.srcDone {
				return
			}
			next, ok := c.src.Next()
			if !ok {
				c.srcDone = true
				return
			}
			in = next
		}
		if in.Load != 0 && c.lqFree == 0 {
			// LQ full: the trace source cannot un-read, so hold the
			// instruction in a one-slot staging latch until a slot
			// frees.
			c.Stats.LQFullCycles++
			staged := in
			c.staged = &staged
			return
		}
		c.staged = nil
		c.place(in)
	}
}

func (c *Core) place(in trace.Instr) {
	e := &c.rob[c.tail]
	*e = robEntry{in: in, seq: c.seq, depIdx: -1, execReady: c.now + 1}
	c.seq++
	if in.Branch {
		c.Stats.Branches++
		if !c.pred.Train(in.IP, in.Taken) {
			c.Stats.Mispredicts++
			// Dispatch resumes after the redirect penalty (the branch
			// resolves at execute; penalty approximates resolve+refill).
			c.stallUntil = c.now + c.cfg.MispredictPenalty
		}
	}
	if in.Load != 0 {
		e.isLoad = true
		e.done = false
		e.lqID = c.nextLQ
		c.nextLQ = (c.nextLQ + 1) % c.cfg.LQSize
		c.lqFree--
		if in.Dep {
			e.depIdx = c.lastLoad
		}
		c.lastLoad = c.tail
		c.pendLoads = append(c.pendLoads, c.tail)
		c.Stats.Loads++
	} else {
		e.done = true
	}
	c.tail = (c.tail + 1) % len(c.rob)
	c.count++
}

// issueWindow bounds how many pending loads the scheduler examines per
// cycle (an issue-queue-width approximation).
const issueWindow = 16

// issueLoads sends ready, un-issued loads to the memory system in
// program order, bounded per cycle. Dependent loads whose producer has
// not completed are skipped (younger independent loads may issue —
// that is the memory-level parallelism of an OoO core).
func (c *Core) issueLoads() {
	issued := 0
	kept := c.pendLoads[:0]
	for i, idx := range c.pendLoads {
		if issued >= c.cfg.IssueLoadsPerCycle || i >= issueWindow {
			kept = append(kept, c.pendLoads[i:]...)
			break
		}
		e := &c.rob[idx]
		if !c.tryIssue(e, idx) {
			kept = append(kept, idx)
			continue
		}
		issued++
	}
	c.pendLoads = kept
}

// tryIssue attempts to send one load; it returns true when the load no
// longer needs scheduling (issued).
func (c *Core) tryIssue(e *robEntry, idx int) bool {
	if e.depIdx >= 0 {
		dep := &c.rob[e.depIdx]
		// The dependency is live only while that entry still holds the
		// older load (not retired/recycled).
		if dep.isLoad && dep.seq < e.seq && !dep.retired && !dep.done {
			return false // address not ready
		}
	}
	if c.TLB != nil && !e.translated {
		// Translation starts once the address is ready (dependencies
		// resolved above) and delays issue by its latency.
		e.transReady = c.now + c.TLB.Translate(e.in.Load) - 1
		e.translated = true
	}
	if e.transReady > c.now {
		return false // translation in flight
	}
	if e.req == nil {
		seq := e.seq
		myIdx := idx
		r := &mem.Request{
			Line:      mem.LineOf(e.in.Load),
			IP:        e.in.IP,
			Kind:      mem.KindLoad,
			Issued:    c.now, // first attempt: port back-pressure counts as access latency
			Timestamp: seq,
		}
		r.Done = func(rr *mem.Request) {
			ent := &c.rob[myIdx]
			if ent.seq != seq || !ent.isLoad {
				return // entry recycled (loads pin entries, so this is defensive)
			}
			ent.done = true
			ent.hitLevel = rr.ServedBy
			ent.fetchLat = rr.FillLat
			ent.hitPref = rr.HitPrefetched
			ent.mergedPref = rr.MergedPrefetch
		}
		e.req = r
		e.accessCycle = c.now
	}
	if !c.loads.IssueLoad(e.req) {
		// Port rejected (queue/MSHR full): retry next cycle.
		return false
	}
	e.issued = true
	if c.OnIssueLoad != nil {
		c.OnIssueLoad(e.req.Line, e.req.IP, e.lqID, c.now)
	}
	return true
}

package cpu

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/trace"
)

// fixedLatencyPort serves loads after a fixed delay.
type fixedLatencyPort struct {
	lat     int
	pending []struct {
		r  *mem.Request
		at int
	}
	tick   int
	issued int
	reject bool
}

func (p *fixedLatencyPort) IssueLoad(r *mem.Request) bool {
	if p.reject {
		return false
	}
	p.issued++
	p.pending = append(p.pending, struct {
		r  *mem.Request
		at int
	}{r, p.tick + p.lat})
	return true
}

func (p *fixedLatencyPort) step() {
	p.tick++
	w := 0
	for _, e := range p.pending {
		if e.at <= p.tick {
			e.r.ServedBy = mem.LvlL2
			e.r.FillLat = mem.Cycle(p.lat)
			e.r.Complete()
		} else {
			p.pending[w] = e
			w++
		}
	}
	p.pending = p.pending[:w]
}

type sinkStore struct{ n int }

func (s *sinkStore) IssueStore(*mem.Request) bool { s.n++; return true }

// run drives the core until done or maxCycles.
func run(t *testing.T, c *Core, port *fixedLatencyPort, maxCycles int) mem.Cycle {
	t.Helper()
	now := mem.Cycle(0)
	for !c.Done() {
		now++
		c.Tick(now)
		port.step()
		if int(now) > maxCycles {
			t.Fatalf("core did not finish in %d cycles: %s", maxCycles, c.DebugHead())
		}
	}
	return now
}

func seqTrace(n int, mk func(i int) trace.Instr) trace.Source {
	tr := &trace.Trace{Name: "t"}
	for i := 0; i < n; i++ {
		tr.Instrs = append(tr.Instrs, mk(i))
	}
	return trace.NewSource(tr)
}

func TestRetiresAllInstructions(t *testing.T) {
	port := &fixedLatencyPort{lat: 10}
	store := &sinkStore{}
	src := seqTrace(1000, func(i int) trace.Instr {
		in := trace.Instr{IP: mem.Addr(0x400 + 4*i)}
		if i%5 == 0 {
			in.Load = mem.Addr(0x10000 + 64*i)
		}
		if i%17 == 0 {
			in.Store = mem.Addr(0x90000 + 64*i)
		}
		return in
	})
	c := New(DefaultConfig(), src, port, store)
	run(t, c, port, 100000)
	if c.Stats.Instructions != 1000 {
		t.Errorf("retired %d, want 1000", c.Stats.Instructions)
	}
	if c.Stats.Loads != 200 {
		t.Errorf("loads %d, want 200", c.Stats.Loads)
	}
	if store.n == 0 {
		t.Error("no stores issued")
	}
}

func TestIPCBoundedByRetireWidth(t *testing.T) {
	port := &fixedLatencyPort{lat: 1}
	c := New(DefaultConfig(), seqTrace(4000, func(i int) trace.Instr {
		return trace.Instr{IP: mem.Addr(0x400 + 4*i)}
	}), port, &sinkStore{})
	cycles := run(t, c, port, 100000)
	ipc := float64(c.Stats.Instructions) / float64(cycles)
	if ipc > float64(DefaultConfig().RetireWidth)+0.01 {
		t.Errorf("IPC %.2f exceeds retire width", ipc)
	}
	if ipc < 3.0 {
		t.Errorf("IPC %.2f too low for pure ALU code", ipc)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	mk := func(dep bool) func(i int) trace.Instr {
		return func(i int) trace.Instr {
			return trace.Instr{IP: 0x400, Load: mem.Addr(0x10000 + 64*i), Dep: dep}
		}
	}
	lat := 50
	portA := &fixedLatencyPort{lat: lat}
	a := New(DefaultConfig(), seqTrace(200, mk(false)), portA, &sinkStore{})
	cyclesIndep := run(t, a, portA, 1000000)

	portB := &fixedLatencyPort{lat: lat}
	b := New(DefaultConfig(), seqTrace(200, mk(true)), portB, &sinkStore{})
	cyclesDep := run(t, b, portB, 1000000)

	// Dependent chains serialize: roughly latency per load.
	if cyclesDep < 3*cyclesIndep {
		t.Errorf("dependent loads not serialized: %d vs %d cycles", cyclesDep, cyclesIndep)
	}
	if int(cyclesDep) < 200*lat {
		t.Errorf("dependent chain finished too fast: %d cycles", cyclesDep)
	}
}

func TestMispredictsSlowDispatch(t *testing.T) {
	rngOutcome := func(i int) bool { return (i*2654435761)>>13&1 == 0 }
	mkBranchy := func(random bool) trace.Source {
		return seqTrace(4000, func(i int) trace.Instr {
			in := trace.Instr{IP: mem.Addr(0x400 + 4*(i%8))}
			if i%4 == 3 {
				in.Branch = true
				if random {
					in.Taken = rngOutcome(i)
				} else {
					in.Taken = true
				}
			}
			return in
		})
	}
	portA := &fixedLatencyPort{lat: 1}
	predictable := New(DefaultConfig(), mkBranchy(false), portA, &sinkStore{})
	cp := run(t, predictable, portA, 1000000)

	portB := &fixedLatencyPort{lat: 1}
	random := New(DefaultConfig(), mkBranchy(true), portB, &sinkStore{})
	cr := run(t, random, portB, 1000000)

	if random.Stats.Mispredicts <= predictable.Stats.Mispredicts {
		t.Errorf("mispredicts: random %d <= predictable %d", random.Stats.Mispredicts, predictable.Stats.Mispredicts)
	}
	if cr <= cp {
		t.Errorf("random branches not slower: %d vs %d cycles", cr, cp)
	}
}

func TestCommitHookSeesLoadMetadata(t *testing.T) {
	port := &fixedLatencyPort{lat: 7}
	src := seqTrace(10, func(i int) trace.Instr {
		return trace.Instr{IP: mem.Addr(0x400 + 4*i), Load: mem.Addr(0x20000 + 64*i)}
	})
	c := New(DefaultConfig(), src, port, &sinkStore{})
	var commits []CommitInfo
	c.OnCommitLoad = func(ci CommitInfo) bool {
		commits = append(commits, ci)
		return true
	}
	run(t, c, port, 10000)
	if len(commits) != 10 {
		t.Fatalf("%d commits, want 10", len(commits))
	}
	for i, ci := range commits {
		if ci.Line != mem.LineOf(mem.Addr(0x20000+64*i)) {
			t.Errorf("commit %d wrong line", i)
		}
		if !ci.WasMiss || ci.HitLevel != mem.LvlL2 {
			t.Errorf("commit %d: WasMiss=%v HitLevel=%v", i, ci.WasMiss, ci.HitLevel)
		}
		if ci.CommitCycle <= ci.AccessCycle {
			t.Errorf("commit %d: commit cycle %d <= access cycle %d", i, ci.CommitCycle, ci.AccessCycle)
		}
		if ci.FetchLat != 7 {
			t.Errorf("commit %d: FetchLat = %d, want 7", i, ci.FetchLat)
		}
	}
	// Sequence numbers must be strictly increasing (program order).
	for i := 1; i < len(commits); i++ {
		if commits[i].Seq <= commits[i-1].Seq {
			t.Error("commits out of program order")
		}
	}
}

func TestCommitBackpressureStallsRetire(t *testing.T) {
	port := &fixedLatencyPort{lat: 1}
	src := seqTrace(20, func(i int) trace.Instr {
		return trace.Instr{IP: 0x400, Load: mem.Addr(0x30000 + 64*i)}
	})
	c := New(DefaultConfig(), src, port, &sinkStore{})
	allow := false
	commits := 0
	c.OnCommitLoad = func(CommitInfo) bool {
		if !allow {
			return false
		}
		commits++
		return true
	}
	now := mem.Cycle(0)
	for i := 0; i < 200; i++ {
		now++
		c.Tick(now)
		port.step()
	}
	if c.Stats.Instructions != 0 {
		t.Fatalf("retired %d instructions against commit back-pressure", c.Stats.Instructions)
	}
	allow = true
	for !c.Done() {
		now++
		c.Tick(now)
		port.step()
	}
	if commits != 20 {
		t.Errorf("%d commits after release, want 20", commits)
	}
}

func TestPortRejectionRetries(t *testing.T) {
	port := &fixedLatencyPort{lat: 1, reject: true}
	src := seqTrace(5, func(i int) trace.Instr {
		return trace.Instr{IP: 0x400, Load: mem.Addr(0x40000 + 64*i)}
	})
	c := New(DefaultConfig(), src, port, &sinkStore{})
	now := mem.Cycle(0)
	for i := 0; i < 50; i++ {
		now++
		c.Tick(now)
		port.step()
	}
	if port.issued != 0 {
		t.Fatal("loads issued while port rejecting")
	}
	port.reject = false
	for !c.Done() {
		now++
		c.Tick(now)
		port.step()
	}
	if c.Stats.Instructions != 5 {
		t.Errorf("retired %d, want 5", c.Stats.Instructions)
	}
}

func TestLQCapacityStallsDispatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LQSize = 4
	// Loads never complete at first: LQ must fill and stall dispatch.
	port := &fixedLatencyPort{lat: 1 << 30}
	src := seqTrace(100, func(i int) trace.Instr {
		return trace.Instr{IP: 0x400, Load: mem.Addr(0x50000 + 64*i)}
	})
	c := New(cfg, src, port, &sinkStore{})
	now := mem.Cycle(0)
	for i := 0; i < 100; i++ {
		now++
		c.Tick(now)
		port.step()
	}
	if c.Stats.Loads > 4 {
		t.Errorf("dispatched %d loads with a 4-entry LQ", c.Stats.Loads)
	}
	if c.Stats.LQFullCycles == 0 {
		t.Error("LQ-full stalls not recorded")
	}
}

package cpu

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/trace"
)

// benchInstrs is the per-op trace length: long enough that steady-state
// issue/retire dominates the core's construction cost.
const benchInstrs = 2000

// BenchmarkComponentCoreIssueRetire measures the core's front-to-back
// pipeline cost: dispatch, the ring-compacted pending-load scan with
// the hoisted port-version check, and in-order retirement, against a
// fixed-latency load port. ns/op covers one full benchInstrs-long run;
// instrs/s is reported as a derived metric.
func BenchmarkComponentCoreIssueRetire(b *testing.B) {
	mk := func(i int) trace.Instr {
		in := trace.Instr{IP: mem.Addr(0x400 + 4*i)}
		if i%5 == 0 {
			in.Load = mem.Addr(0x10000 + 64*i)
		}
		if i%17 == 0 {
			in.Store = mem.Addr(0x90000 + 64*i)
		}
		return in
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		port := &fixedLatencyPort{lat: 10}
		store := &sinkStore{}
		tr := &trace.Trace{Name: "bench"}
		for i := 0; i < benchInstrs; i++ {
			tr.Instrs = append(tr.Instrs, mk(i))
		}
		c := New(DefaultConfig(), trace.NewSource(tr), port, store)
		now := mem.Cycle(0)
		for !c.Done() {
			now++
			c.Tick(now)
			port.step()
			if now > 10*benchInstrs {
				b.Fatal("core wedged")
			}
		}
	}
	b.StopTimer()
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)*benchInstrs/elapsed, "instrs/s")
	}
}

package cpu

import "secpref/internal/observatory"

// StateDigest hashes the core's architectural state: the ROB window
// (entries between head and tail with their issue/completion state and
// in-flight requests), the store queue, the pending-load scan list,
// load-queue accounting, and the headline retirement counters. The
// issue gate (gateValid and friends) and the bulk-decode buffer are
// engine-side caches over this state — an idle lockstep Tick may warm
// them where a SkipIdle does not — so they are deliberately excluded:
// including them would make the digest diverge between bit-identical
// engines.
func (c *Core) StateDigest() uint64 {
	d := observatory.NewDigest()
	d = d.Word(uint64(c.head)).Word(uint64(c.tail)).Word(uint64(c.count)).Word(c.seq)
	for i := 0; i < c.count; i++ {
		e := &c.rob[(c.head+i)%len(c.rob)]
		d = d.Word(e.seq).Bool(e.isLoad).Bool(e.issued).Bool(e.done).Bool(e.retired)
		d = d.Word(uint64(int64(e.lqID)) | uint64(e.hitLevel)<<32)
		d = d.Word(uint64(e.accessCycle)).Word(uint64(e.fetchLat))
		d = d.Bool(e.hitPref).Bool(e.mergedPref)
		d = d.Word(uint64(e.execReady)).Word(uint64(int64(e.depIdx)))
		d = d.Word(uint64(e.transReady)).Bool(e.translated)
		d = d.Bool(e.portBlocked).Word(e.blockedVer)
		d = observatory.DigestRequest(d, e.req)
	}
	d = d.Word(uint64(int64(c.lqFree))).Word(uint64(int64(c.nextLQ)))
	d = d.Word(uint64(c.stallUntil)).Bool(c.srcDone).Bool(c.hasStaged)
	d = d.Word(uint64(int64(c.lastLoad)))
	d = d.Word(uint64(c.stores.Len()))
	for i := 0; i < c.stores.Len(); i++ {
		d = observatory.DigestRequest(d, c.stores.At(i))
	}
	d = d.Word(uint64(c.pendLen))
	for i := 0; i < c.pendLen; i++ {
		d = d.Word(uint64(int64(c.pendAt(i))))
	}
	d = d.Word(c.wake)
	d = d.Word(c.Stats.Instructions).Word(c.Stats.Loads).Word(c.Stats.Cycles)
	return d.Sum()
}

package sim

import (
	"fmt"

	"secpref/internal/mem"
	"secpref/internal/observatory"
)

// EngineVersion identifies the simulation-engine generation. It is
// stamped into bench history records, digest streams, sim-profile
// exports, and campaign snapshots so that performance and determinism
// artifacts recorded under different engines never get compared as if
// they were interchangeable. Bump it whenever the engine's scheduling
// or skipping behaviour changes in a way that could move numbers.
const EngineVersion = "ev7-flat-profile"

// ComponentNames fixes the order of the per-component state-digest
// vector (StateDigests). Absent components (GM on a non-secure system,
// TLB when disabled, Berti when another prefetcher is configured)
// digest to zero at their slot so vectors from different configs stay
// index-compatible.
var ComponentNames = [...]string{"core", "gm", "l1d", "l2", "llc", "dram", "tlb", "berti"}

// NumComponents is the digest vector length.
const NumComponents = len(ComponentNames)

// rankNames names the calendar-queue ranks for attribution profiling,
// in rank order.
var rankNames = [...]string{"core", "gm", "l1d", "l2", "llc", "dram"}

// PrivateComponentNames orders the per-core slice of a sharded
// system's digest vector (Machine.PrivateDigests). The full multicore
// vector is cores × this block followed by the shared {llc, dram} pair;
// MulticoreComponentNames spells it out.
var PrivateComponentNames = [...]string{"core", "gm", "l1d", "l2", "tlb", "berti", "link"}

// NumPrivateComponents is the per-core digest block length.
const NumPrivateComponents = len(PrivateComponentNames)

// MulticoreComponentNames names every index of an n-core sharded
// digest vector: core0/core, core0/gm, …, core{n-1}/link, llc, dram.
func MulticoreComponentNames(n int) []string {
	names := make([]string, 0, n*NumPrivateComponents+2)
	for i := 0; i < n; i++ {
		for _, c := range PrivateComponentNames {
			names = append(names, fmt.Sprintf("core%d/%s", i, c))
		}
	}
	return append(names, "llc", "dram")
}

// DefaultDigestEvery is the digest-stream interval when
// Probes.DigestEvery is zero.
const DefaultDigestEvery mem.Cycle = 4096

// Now returns the machine's current cycle.
func (m *Machine) Now() mem.Cycle { return m.now }

// UseReferenceEngine selects between the calendar-queue event engine
// (false, the default) and the lockstep tick-every-cycle reference
// engine the equivalence machinery compares against.
func (m *Machine) UseReferenceEngine(on bool) { m.noSkip = on }

// StateDigests appends the per-component architectural-state digests
// (ComponentNames order) to dst and returns it. Two engines that have
// executed the same machine to the same cycle must produce equal
// vectors; the divergence bisector depends on it.
func (m *Machine) StateDigests(dst []uint64) []uint64 {
	var comps [NumComponents]uint64
	comps[0] = m.core.StateDigest()
	if m.gm != nil {
		comps[1] = m.gm.StateDigest()
	}
	comps[2] = m.l1d.StateDigest()
	comps[3] = m.l2.StateDigest()
	comps[4] = m.llc.StateDigest()
	comps[5] = m.mem.StateDigest()
	if m.tlbs != nil {
		comps[6] = m.tlbs.StateDigest()
	}
	if m.bertiPF != nil {
		comps[7] = m.bertiPF.StateDigest()
	}
	return append(dst, comps[:]...)
}

// attachProfile arms engine-attribution profiling. Nil leaves the run
// unprofiled (the hot paths pay one nil check per rank slot).
func (m *Machine) attachProfile(p *observatory.Profile) {
	if p == nil {
		return
	}
	p.EnsureRanks(rankNames[:])
	if p.EngineVersion == "" {
		p.EngineVersion = EngineVersion
	}
	m.prof = p
}

// armDigests arms the rolling digest stream: the run emits the
// per-component state digests into sink at every multiple of the
// interval. The event engine clamps its calendar jumps to digest
// boundaries so both engines sample the same cycles — visiting a
// boundary cycle where nothing is due integrates one idle cycle per
// rank, which is exactly what lockstep stepping does there.
func (m *Machine) armDigests(sink observatory.DigestSink, every mem.Cycle) {
	if sink == nil {
		return
	}
	if every == 0 {
		every = DefaultDigestEvery
	}
	m.digSink = sink
	m.digEvery = every
	m.digNext = m.now - m.now%every + every
	if rec, ok := sink.(*observatory.Recorder); ok {
		rec.EngineVersion = EngineVersion
		rec.Interval = every
		rec.Components = ComponentNames[:]
	}
}

// emitDigests samples the component digests at the current cycle and
// advances the next digest boundary past it.
func (m *Machine) emitDigests() {
	m.digBuf = m.StateDigests(m.digBuf[:0])
	m.digSink.Digest(m.now, m.digBuf)
	for m.digNext <= m.now {
		m.digNext += m.digEvery
	}
	if m.prof != nil {
		m.prof.TrackSample(uint64(m.now))
	}
}

// RunToCycle advances the machine to exactly cycle t, or less when the
// workload finishes first, and reports the clock it stopped at and
// whether the workload is done. It implements observatory.DigestEngine:
// the divergence bisector drives two machines through interleaved
// RunToCycle calls, comparing StateDigests between them. Repeated calls
// with increasing targets continue the same run; the calendar is
// re-primed on each call so the engine state is correct regardless of
// what ran in between.
func (m *Machine) RunToCycle(t mem.Cycle) (mem.Cycle, bool, error) {
	if m.noSkip {
		for m.now < t && !m.core.Done() {
			m.step()
			if m.digSink != nil && m.now >= m.digNext {
				m.emitDigests()
			}
			if err := m.trackProgress(); err != nil {
				return m.now, false, err
			}
		}
		return m.now, m.core.Done(), nil
	}
	if m.now < t && !m.core.Done() {
		m.primeSchedule()
	}
	for m.now < t && !m.core.Done() {
		next := m.evq.Next()
		clamped := false
		if next > t {
			next, clamped = t, true
		}
		if m.digSink != nil && next > m.digNext {
			next, clamped = m.digNext, true
		}
		if limit := m.rtProgress + wedgeWindow + 1; next > limit {
			next, clamped = limit, true
		}
		m.advanceTo(next)
		if m.prof != nil {
			m.prof.Advance(clamped)
		}
		if m.digSink != nil && m.now >= m.digNext {
			m.emitDigests()
		}
		if err := m.trackProgress(); err != nil {
			return m.now, false, err
		}
	}
	return m.now, m.core.Done(), nil
}

// trackProgress is RunToCycle's wedge detector: it remembers the last
// cycle an instruction retired and fails once the machine has spun a
// full wedge window without one.
func (m *Machine) trackProgress() error {
	if n := m.core.Stats.Instructions; n != m.rtCount {
		m.rtCount = n
		m.rtProgress = m.now
	} else if m.now-m.rtProgress > wedgeWindow {
		return ErrNoProgress
	}
	return nil
}

package sim

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// TestDiagBingo inspects Bingo's behaviour on a stencil and a stream
// trace (diagnostic).
func TestDiagBingo(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, name := range []string{"654.roms-1007B", "619.lbm-2676B", "605.mcf-1554B"} {
		tr, err := workload.Get(name, workload.Params{Instrs: 60_000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		base := DefaultConfig()
		base.WarmupInstrs = 10_000
		base.MaxInstrs = 50_000
		bres, err := Run(base, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Prefetcher = "bingo"
		res, err := Run(cfg, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: speedup=%.3f L2prefI=%d L2prefF=%d L2prefU=%d L2prefHitLocal=%d L2pqFull=%d dram=%d(base %d) L2evict=%d",
			name, res.Speedup(bres),
			res.L2.PrefIssued, res.L2.PrefFilled, res.L2.PrefUseful, res.L2.PrefHitLocal, res.L2.PQFull,
			res.DRAM.Reads, bres.DRAM.Reads, res.L2.Evictions)
		_ = mem.LvlL2
	}
}

package sim

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

// TestPoolSoakNoLeak drives a memory-bound, prefetch-heavy workload long
// enough for every queue to hit its high-water mark, then keeps going:
// the pool's fresh-allocation counter must plateau. If any component
// leaked requests (the old queue-head reslicing bug) or recycled them
// into the wrong pool, News would track Gets instead of the bounded
// in-flight population.
func TestPoolSoakNoLeak(t *testing.T) {
	poolSoak(t, false)
}

// TestPoolSoakNoLeakProbed repeats the soak with a tracer and interval
// sampler attached: observers are read-only and retain no requests, so
// the pool's steady-state plateau must be unaffected.
func TestPoolSoakNoLeakProbed(t *testing.T) {
	poolSoak(t, true)
}

func poolSoak(t *testing.T, probed bool) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultConfig()
	cfg.MaxInstrs = 50_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure

	m, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 50_000))
	if err != nil {
		t.Fatal(err)
	}
	if probed {
		m.attachObserver(probe.NewTracer(4, 4096))
		m.armWindows(probe.NewIntervalSampler(64), 1000)
	}
	maxCycles := mem.Cycle(1000 * cfg.MaxInstrs)

	// Phase 1: reach steady state.
	if err := m.runUntil(10_000, maxCycles); err != nil {
		t.Fatalf("soak phase 1: %v", err)
	}
	newsBefore, getsBefore := m.pool.News, m.pool.Gets
	if getsBefore == 0 {
		t.Fatal("pool never used")
	}

	// Phase 2: four times as much traffic must allocate almost nothing new.
	if err := m.runUntil(40_000, maxCycles); err != nil {
		t.Fatalf("soak phase 2: %v", err)
	}
	newsGrowth := m.pool.News - newsBefore
	getsGrowth := m.pool.Gets - getsBefore
	if getsGrowth == 0 {
		t.Fatal("no pool traffic in soak phase")
	}
	// Allow a sliver of late growth (a queue depth not yet visited), but
	// a leak makes News scale with Gets (hundreds of thousands here).
	if newsGrowth*100 > getsGrowth {
		t.Errorf("request pool still allocating in steady state: %d new objects over %d checkouts (warm pool was %d)",
			newsGrowth, getsGrowth, newsBefore)
	}
	if m.pool.News*10 > m.pool.Gets {
		t.Errorf("poor recycling: News=%d vs Gets=%d", m.pool.News, m.pool.Gets)
	}
	t.Logf("pool: Gets=%d News=%d (steady-state growth %d)", m.pool.Gets, m.pool.News, newsGrowth)
}

package sim

import (
	"reflect"
	"testing"

	"secpref/internal/mem"
	"secpref/internal/observatory"
)

// obsConfig is the richest test configuration: secure system with GM,
// SUF, Berti in TSB mode — every digest component live.
func obsConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 15_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure
	return cfg
}

// TestDigestStreamEquivalence runs the event engine and the lockstep
// reference engine over the same workload with digest recorders
// attached and requires the two digest streams to agree at every
// checkpoint — the rolling-digest generalization of
// TestIdleSkipEquivalence.
func TestDigestStreamEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"nonsecure-nopref", func(c *Config) {}},
		{"secure-tsb-suf-berti", func(c *Config) {
			c.Secure = true
			c.SUF = true
			c.Prefetcher = "berti"
			c.Mode = ModeTimelySecure
		}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.WarmupInstrs = 2000
			cfg.MaxInstrs = 15_000
			tc.mut(&cfg)
			run := func(ref bool) *observatory.Recorder {
				rec := observatory.NewRecorder()
				_, err := RunProbed(cfg, smokeTrace(t, "bfs-3B", 17_000), Probes{
					Digest:          rec,
					DigestEvery:     1024,
					ReferenceEngine: ref,
				})
				if err != nil {
					t.Fatal(err)
				}
				return rec
			}
			event, ref := run(false), run(true)
			if event.Len() == 0 {
				t.Fatal("event engine recorded no digest points")
			}
			if event.EngineVersion != EngineVersion {
				t.Errorf("recorder engine version = %q, want %q", event.EngineVersion, EngineVersion)
			}
			if div, ok := observatory.FirstDivergence(event, ref); ok {
				name := "?"
				if div.Component >= 0 && div.Component < NumComponents {
					name = ComponentNames[div.Component]
				}
				t.Errorf("digest streams diverge (%s): %v", name, div)
			}
		})
	}
}

// TestRunToCycleMatchesEngines drives both engines through repeated
// RunToCycle calls (the bisector's access pattern) and checks clocks,
// completion, and digest vectors stay equal at every probe point.
func TestRunToCycleMatchesEngines(t *testing.T) {
	cfg := obsConfig()
	src := func() *Machine {
		m, err := NewMachine(cfg, smokeTrace(t, "602.gcc-1850B", 17_000))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := src(), src()
	b.UseReferenceEngine(true)
	var bufA, bufB []uint64
	for _, target := range []mem.Cycle{100, 1000, 1001, 5000, 20_000} {
		nowA, doneA, err := a.RunToCycle(target)
		if err != nil {
			t.Fatal(err)
		}
		nowB, doneB, err := b.RunToCycle(target)
		if err != nil {
			t.Fatal(err)
		}
		if nowA != nowB || doneA != doneB {
			t.Fatalf("at target %d: event (now=%d done=%v) != reference (now=%d done=%v)",
				target, nowA, doneA, nowB, doneB)
		}
		bufA = a.StateDigests(bufA[:0])
		bufB = b.StateDigests(bufB[:0])
		if !reflect.DeepEqual(bufA, bufB) {
			t.Fatalf("at cycle %d: digests diverge\nevent: %v\nref:   %v", nowA, bufA, bufB)
		}
	}
}

// faultyEngine wraps a machine and corrupts one component's digest from
// a chosen cycle onward — an injected single-component divergence the
// bisector must localize exactly.
type faultyEngine struct {
	*Machine
	faultCycle mem.Cycle
	comp       int
}

func (f faultyEngine) StateDigests(dst []uint64) []uint64 {
	out := f.Machine.StateDigests(dst)
	if f.Machine.Now() >= f.faultCycle {
		out[len(out)-NumComponents+f.comp] ^= 0xdeadbeef
	}
	return out
}

// TestBisectLocalizesInjectedDivergence injects a divergence into one
// component at a known cycle and requires Bisect to return exactly that
// (cycle, component) coordinate.
func TestBisectLocalizesInjectedDivergence(t *testing.T) {
	cfg := obsConfig()
	const faultCycle = 3000
	const faultComp = 4 // llc
	fresh := func() (observatory.DigestEngine, observatory.DigestEngine, error) {
		a, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 17_000))
		if err != nil {
			return nil, nil, err
		}
		b, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 17_000))
		if err != nil {
			return nil, nil, err
		}
		return a, faultyEngine{b, faultCycle, faultComp}, nil
	}
	div, err := observatory.Bisect(fresh, observatory.BisectOptions{Step: 1024, Limit: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("bisect found no divergence despite injected fault")
	}
	if div.Cycle != faultCycle || div.Component != faultComp {
		t.Errorf("bisect localized (cycle=%d, component=%d), want (%d, %d)",
			div.Cycle, div.Component, faultCycle, faultComp)
	}
}

// TestBisectCleanPair checks that a genuinely equivalent engine pair
// (event vs lockstep) bisects to "no divergence".
func TestBisectCleanPair(t *testing.T) {
	cfg := obsConfig()
	fresh := func() (observatory.DigestEngine, observatory.DigestEngine, error) {
		a, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 17_000))
		if err != nil {
			return nil, nil, err
		}
		b, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 17_000))
		if err != nil {
			return nil, nil, err
		}
		b.UseReferenceEngine(true)
		return a, b, nil
	}
	div, err := observatory.Bisect(fresh, observatory.BisectOptions{Step: 8192, Limit: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		name := "?"
		if div.Component >= 0 && div.Component < NumComponents {
			name = ComponentNames[div.Component]
		}
		t.Errorf("clean engine pair diverges (%s): %v", name, div)
	}
}

// TestProfiledRunIsBitIdentical attaches attribution profiling and
// digest recording and requires the simulated outcome to stay
// bit-identical to an unprobed run — the observatory must observe, not
// perturb.
func TestProfiledRunIsBitIdentical(t *testing.T) {
	cfg := obsConfig()
	plain, err := Run(cfg, smokeTrace(t, "bfs-3B", 17_000))
	if err != nil {
		t.Fatal(err)
	}
	prof := observatory.NewProfile()
	prof.WallSampleEvery = 64
	probed, err := RunProbed(cfg, smokeTrace(t, "bfs-3B", 17_000), Probes{
		Profile: prof,
		Digest:  observatory.NewRecorder(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Errorf("observatory changed the simulation:\nplain:  %+v\nprobed: %+v", plain.Core, probed.Core)
	}
	if prof.EngineVersion != EngineVersion {
		t.Errorf("profile engine version = %q, want %q", prof.EngineVersion, EngineVersion)
	}
	if prof.Advances == 0 || prof.VisitedCycles == 0 {
		t.Error("profile recorded no advances")
	}
	if prof.SkippedCycles == 0 {
		t.Error("event engine skipped no cycles on a memory-bound trace")
	}
	var coreTicks uint64
	for _, r := range prof.Ranks {
		if r.Name == "core" {
			coreTicks = r.Ticks
		}
	}
	if coreTicks == 0 {
		t.Error("profile attributed no ticks to the core rank")
	}
	// The profile covers warmup too, so it must account for at least the
	// measured cycles.
	if total := prof.VisitedCycles + prof.SkippedCycles; total < plain.Cycles {
		t.Errorf("profile covers %d cycles, run took %d measured cycles", total, plain.Cycles)
	}
}

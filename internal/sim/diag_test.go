package sim

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

var lastBertiTable []string

// TestDiagShapes prints detailed per-config statistics on a streaming
// and a pointer-chasing trace so paper-shape regressions are visible.
func TestDiagShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	const n = 50_000
	for _, tn := range []string{"603.bwa-2931B", "605.mcf-1554B"} {
		tr, err := workload.Get(tn, workload.Params{Instrs: n, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("=== trace %s ===", tn)
		for _, tc := range []struct {
			label string
			mut   func(*Config)
		}{
			{"nonsec-nopref", func(c *Config) {}},
			{"sec-nopref", func(c *Config) { c.Secure = true }},
			{"nonsec-berti", func(c *Config) { c.Prefetcher = "berti" }},
			{"sec-berti-acc", func(c *Config) { c.Secure = true; c.Prefetcher = "berti" }},
			{"sec-berti-com", func(c *Config) { c.Secure = true; c.Prefetcher = "berti"; c.Mode = ModeOnCommit }},
			{"sec-tsb", func(c *Config) { c.Secure = true; c.Prefetcher = "berti"; c.Mode = ModeTimelySecure }},
			{"nonsec-ipstride", func(c *Config) { c.Prefetcher = "ip-stride" }},
			{"sec-ipstride-com", func(c *Config) { c.Secure = true; c.Prefetcher = "ip-stride"; c.Mode = ModeOnCommit }},
		} {
			cfg := DefaultConfig()
			cfg.WarmupInstrs = 5_000
			cfg.MaxInstrs = n
			tc.mut(&cfg)
			m, err := NewMachine(cfg, trace.NewSource(tr))
			if err != nil {
				t.Errorf("%s: %v", tc.label, err)
				continue
			}
			if err := m.runUntil(uint64(cfg.WarmupInstrs), 1<<40); err != nil {
				t.Errorf("%s: %v", tc.label, err)
				continue
			}
			m.resetStats()
			start := m.now
			if err := m.runUntil(uint64(cfg.MaxInstrs), 1<<40); err != nil {
				t.Errorf("%s: %v", tc.label, err)
				continue
			}
			res := m.result(tr.Name, m.now-start)
			lastBertiTable = m.BertiDebug()
			if m.bertiPF != nil {
				t.Logf("%-18s   berti train=%d observe=%d issueAttempts=%d", tc.label, m.bertiPF.TrainCalls, m.bertiPF.ObserveCalls, m.bertiPF.IssueAttempts)
			}
			ap := res.L1DAPKI()
			t.Logf("%-18s IPC=%.3f missLat=%5.1f APKI(L=%5.0f P=%5.0f C=%5.0f) L1Dmshr-full=%4.1f%% dram=%d prefI=%d prefF=%d prefU=%d gmMiss=%d refetch=%d cw=%d",
				tc.label, res.IPC, res.LoadMissLatency(),
				ap.Load, ap.Prefetch, ap.Commit,
				res.L1D.MSHRFullFrac()*100, res.DRAM.Reads,
				res.L1D.PrefIssued, res.L1D.PrefFilled, res.L1D.PrefUseful,
				res.GM.Misses[mem.KindLoad], res.L1D.Accesses[mem.KindRefetch], res.L1D.Accesses[mem.KindCommitWrite])
			t.Logf("%-18s   prefHitLocal=%d prefDropped=%d pqFull=%d", tc.label, res.L1D.PrefHitLocal, res.L1D.PrefDroppedQ, res.L1D.PQFull)
			if tn == "605.mcf-1554B" && tc.label == "sec-berti-acc" {
				for _, s := range lastBertiTable {
					t.Logf("  berti %s", s)
				}
			}
		}
	}
}

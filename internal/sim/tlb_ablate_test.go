package sim

import (
	"testing"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

// TestDisableTLBSpeedsUp checks the translation model's direction: a
// pointer chase over a huge pool walks the page table constantly, so
// disabling translation must not slow the run down.
func TestDisableTLBSpeedsUp(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tr, err := workload.Get("605.mcf-1554B", workload.Params{Instrs: 40_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(disable bool) *Result {
		cfg := DefaultConfig()
		cfg.WarmupInstrs = 5_000
		cfg.MaxInstrs = 30_000
		cfg.DisableTLB = disable
		res, err := Run(cfg, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(false)
	without := run(true)
	if without.IPC < with.IPC {
		t.Errorf("free translation slower than modeled translation: %.3f vs %.3f", without.IPC, with.IPC)
	}
	if with.TLB.Accesses == 0 || with.TLB.STLBMisses == 0 {
		t.Errorf("TLB stats empty: %+v", with.TLB)
	}
	if without.TLB.Accesses != 0 {
		t.Error("disabled TLB recorded accesses")
	}
}

// TestLatenessThresholdConfig checks the threshold override plumbs
// through to different adaptation behaviour.
func TestLatenessThresholdConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tr, err := workload.Get("619.lbm-2676B", workload.Params{Instrs: 40_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(thr float64) *Result {
		cfg := DefaultConfig()
		cfg.WarmupInstrs = 5_000
		cfg.MaxInstrs = 30_000
		cfg.Secure = true
		cfg.Prefetcher = "ip-stride"
		cfg.Mode = ModeTimelySecure
		cfg.LatenessThreshold = thr
		cfg.LatenessInterval = 128
		res, err := Run(cfg, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	strict := run(0.001) // hair-trigger: adapts on any rising lateness
	lax := run(0.99)     // never adapts
	if lax.DistanceAdaptations != 0 {
		t.Errorf("threshold 0.99 still adapted %d times", lax.DistanceAdaptations)
	}
	if strict.DistanceAdaptations < lax.DistanceAdaptations {
		t.Error("stricter threshold adapted less")
	}
}

// TestSecureNeverUsesL1DForSpecFills is the central invisibility
// invariant at system level: run a secure no-prefetch simulation and
// verify L1D never recorded a demand fill that bypassed the commit
// path (all L1D installs are commit writes, refetch fills, or RFOs).
func TestSecureL1DInstallsAreCommitPathOnly(t *testing.T) {
	tr, err := workload.Get("641.leela-1083B", workload.Params{Instrs: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 18_000
	cfg.Secure = true
	res, err := Run(cfg, trace.NewSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	// In the secure system no plain demand loads enter L1D's RQ — only
	// speculative probes (SpecAccesses), refetches, and RFOs.
	if res.L1D.Accesses[0] != 0 { // mem.KindLoad
		t.Errorf("%d non-speculative demand loads reached the secure L1D", res.L1D.Accesses[0])
	}
	if res.L1D.SpecAccesses == 0 {
		t.Error("no speculative probes recorded")
	}
}

package sim

import (
	"testing"

	"secpref/internal/probe"
)

// windowRecorder collects interval samples.
type windowRecorder struct{ samples []probe.Sample }

func (w *windowRecorder) Window(s probe.Sample) { w.samples = append(w.samples, s) }

// TestWindowExactBoundary pins the sampler's window-edge semantics: a
// retirement event landing exactly on a window boundary produces
// exactly one sample, boundaries never repeat, and the final flush does
// not duplicate the last sample. WindowInstrs=1 makes every retirement
// an exact edge, the most adversarial cadence the dedupe loop faces.
func TestWindowExactBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 500
	cfg.MaxInstrs = 2000
	rec := &windowRecorder{}
	res, err := RunProbed(cfg, smokeTrace(t, "bfs-3B", 3000), Probes{
		Window:       rec,
		WindowInstrs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.samples) == 0 {
		t.Fatal("no windows sampled")
	}
	for i := 1; i < len(rec.samples); i++ {
		prev, cur := rec.samples[i-1], rec.samples[i]
		if cur.Instructions <= prev.Instructions {
			t.Fatalf("window %d not strictly increasing: %d then %d",
				i, prev.Instructions, cur.Instructions)
		}
		if cur.Cycle <= prev.Cycle {
			t.Fatalf("window %d cycle not strictly increasing: %d then %d",
				i, prev.Cycle, cur.Cycle)
		}
	}
	last := rec.samples[len(rec.samples)-1]
	if last.Instructions != res.Instructions {
		t.Errorf("final window at %d instructions, run retired %d",
			last.Instructions, res.Instructions)
	}
	// With a 1-instruction window every sample is an exact edge; the
	// sample count may be below the instruction count (several retires
	// in one cycle collapse into one sample) but never above it.
	if uint64(len(rec.samples)) > res.Instructions {
		t.Errorf("%d samples for %d instructions: boundary sampled twice",
			len(rec.samples), res.Instructions)
	}
}

// TestWindowCoarseBoundary covers the multi-crossing case: a wide
// retire window can step over several boundaries in one cycle; the
// dedupe loop must emit one sample and re-arm past the crossed edges.
func TestWindowCoarseBoundary(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 5000
	rec := &windowRecorder{}
	res, err := RunProbed(cfg, smokeTrace(t, "bfs-3B", 5500), Probes{
		Window:       rec,
		WindowInstrs: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, s := range rec.samples {
		if seen[s.Instructions] {
			t.Fatalf("duplicate window at %d instructions", s.Instructions)
		}
		seen[s.Instructions] = true
	}
	want := res.Instructions/100 + 1 // plus the final flush
	if uint64(len(rec.samples)) > want {
		t.Errorf("%d samples, at most %d boundaries exist", len(rec.samples), want)
	}
}

package sim

import (
	"strings"
	"testing"

	"secpref/internal/mem"
	"secpref/internal/stats"
)

func TestAPKISplitNonSecure(t *testing.T) {
	r := &Result{Instructions: 1000}
	r.L1D.Accesses[mem.KindLoad] = 200
	r.L1D.Accesses[mem.KindRFO] = 50
	r.L1D.Accesses[mem.KindPrefetch] = 100
	ap := r.L1DAPKI()
	if ap.Load != 250 || ap.Prefetch != 100 || ap.Commit != 0 {
		t.Errorf("split %+v", ap)
	}
	if ap.Total() != 350 {
		t.Errorf("total %f", ap.Total())
	}
}

func TestAPKISplitSecure(t *testing.T) {
	r := &Result{Instructions: 1000}
	r.Config.Secure = true
	r.L1D.SpecAccesses = 200
	r.L1D.Accesses[mem.KindRFO] = 50
	r.L1D.Accesses[mem.KindCommitWrite] = 150
	r.L1D.Accesses[mem.KindRefetch] = 30
	ap := r.L1DAPKI()
	if ap.Load != 250 {
		t.Errorf("secure load APKI %f (spec probes + RFOs)", ap.Load)
	}
	if ap.Commit != 180 {
		t.Errorf("commit APKI %f", ap.Commit)
	}
}

func TestLoadMissLatencySelectsLevel(t *testing.T) {
	r := &Result{}
	r.L1D.DemandMissLatSum, r.L1D.DemandMissLatCnt = 500, 5
	r.GM.DemandMissLatSum, r.GM.DemandMissLatCnt = 900, 3
	if r.LoadMissLatency() != 100 {
		t.Errorf("non-secure latency %f", r.LoadMissLatency())
	}
	r.Config.Secure = true
	if r.LoadMissLatency() != 300 {
		t.Errorf("secure latency %f (should read the GM)", r.LoadMissLatency())
	}
}

func TestPrefAccuracyAggregatesDeeperLevels(t *testing.T) {
	r := &Result{}
	r.L1D.PrefFilled, r.L1D.PrefUseful = 10, 9
	r.L2.PrefFilled, r.L2.PrefUseful = 10, 1
	if acc := r.PrefAccuracy(mem.LvlL1D); acc != 0.5 {
		t.Errorf("L1D-home accuracy %f, want 0.5 (aggregated)", acc)
	}
	if acc := r.PrefAccuracy(mem.LvlL2); acc != 0.1 {
		t.Errorf("L2-home accuracy %f", acc)
	}
}

func TestHomeLevelMPKI(t *testing.T) {
	r := &Result{Instructions: 10_000}
	r.L1D.Misses[mem.KindLoad] = 400
	r.L1D.Misses[mem.KindRFO] = 100
	r.GM.Misses[mem.KindLoad] = 900
	r.L2.Misses[mem.KindLoad] = 200
	r.L2.Misses[mem.KindRFO] = 50
	r.L2.Misses[mem.KindRefetch] = 30
	r.L2.SpecMisses = 170

	if got := r.HomeLevelMPKI(mem.LvlL1D); got != 50 {
		t.Errorf("non-secure L1D MPKI %f, want 50 (load+RFO misses)", got)
	}
	if got := r.HomeLevelMPKI(mem.LvlL2); got != 28 {
		t.Errorf("non-secure L2 MPKI %f, want 28 (demand + refetch)", got)
	}
	r.Config.Secure = true
	if got := r.HomeLevelMPKI(mem.LvlL1D); got != 90 {
		t.Errorf("secure L1D MPKI %f, want 90 (the GM observes the loads)", got)
	}
	if got := r.HomeLevelMPKI(mem.LvlL2); got != 17 {
		t.Errorf("secure L2 MPKI %f, want 17 (speculative-probe misses)", got)
	}
}

func TestTrafficAPKI(t *testing.T) {
	r := &Result{Instructions: 2000}
	r.L2.Accesses[mem.KindLoad] = 300
	r.L2.Accesses[mem.KindPrefetch] = 100
	r.L2.SpecAccesses = 200
	if got := r.TrafficAPKI(mem.LvlL2); got != 300 {
		t.Errorf("L2 traffic APKI %f, want 300 (all kinds + spec probes)", got)
	}
	if got := r.TrafficAPKI(mem.LvlLLC); got != 0 {
		t.Errorf("idle LLC traffic APKI %f, want 0", got)
	}
}

func TestPerKIZeroInstructions(t *testing.T) {
	if got := stats.PerKI(500, 0); got != 0 {
		t.Errorf("PerKI(500, 0) = %f, want 0 (no division by zero)", got)
	}
	if got := stats.PerKI(500, 10_000); got != 50 {
		t.Errorf("PerKI(500, 10k) = %f, want 50", got)
	}
}

func TestSpeedupGuards(t *testing.T) {
	r := &Result{IPC: 2}
	if r.Speedup(nil) != 0 || r.Speedup(&Result{}) != 0 {
		t.Error("speedup must guard nil/zero baselines")
	}
	if r.Speedup(&Result{IPC: 1}) != 2 {
		t.Error("speedup wrong")
	}
}

func TestConfigLabels(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Label() != "no-pref/non-secure" {
		t.Errorf("label %q", cfg.Label())
	}
	cfg.Secure, cfg.SUF = true, true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure
	if got := cfg.Label(); !strings.Contains(got, "berti") || !strings.Contains(got, "SUF") {
		t.Errorf("label %q", got)
	}
	for m, want := range map[Mode]string{ModeOnAccess: "on-access", ModeOnCommit: "on-commit", ModeTimelySecure: "timely-secure"} {
		if m.String() != want {
			t.Errorf("Mode(%d) = %q", m, m.String())
		}
	}
}

func TestValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero MaxInstrs should fail validation")
	}
	cfg = DefaultConfig()
	cfg.SUF = true
	if err := cfg.Validate(); err == nil {
		t.Error("SUF without Secure should fail validation")
	}
	_ = stats.CacheStats{}
}

package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"secpref/internal/trace"
)

// TestRunDeterministic runs the same configuration twice from
// identically-seeded traces and requires bit-identical results: the
// simulator has no hidden nondeterminism (map iteration, pointer
// hashing, pool recycling order) that leaks into architectural state or
// statistics.
func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 15_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure

	run := func() *Result {
		res, err := Run(cfg, smokeTrace(t, "605.mcf-1554B", 17_000))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different results:\nfirst:  %+v\nsecond: %+v", a, b)
	}
}

// emptySource is a trace that yields nothing — the degenerate input
// NewMachine must reject up front rather than wedge on.
type emptySource struct{}

func (emptySource) Name() string              { return "empty-trace" }
func (emptySource) Next() (trace.Instr, bool) { return trace.Instr{}, false }
func (emptySource) Reset()                    {}

// TestNewMachineRejectsEmptyTrace covers the trace.Repeat-over-nothing
// footgun: a Repeat around an empty source spins forever producing zero
// instructions. Machine construction must fail immediately with a
// descriptive error instead of timing out much later with ErrNoProgress.
func TestNewMachineRejectsEmptyTrace(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxInstrs = 1000
	for _, src := range []trace.Source{
		emptySource{},
		trace.Repeat(emptySource{}, 1000),
	} {
		_, err := NewMachine(cfg, src)
		if err == nil {
			t.Fatalf("NewMachine accepted empty source %q", src.Name())
		}
		if !errors.Is(err, trace.ErrEmptySource) {
			t.Errorf("error not ErrEmptySource: %v", err)
		}
		if !strings.Contains(err.Error(), "empty-trace") {
			t.Errorf("error does not name the trace: %v", err)
		}
	}
}

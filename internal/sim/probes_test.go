package sim

import (
	"reflect"
	"testing"

	"secpref/internal/probe"
)

// probedConfig exercises every emission site: secure (GM + SUF + commit
// path), TSB prefetching (prefetch drops/merges/installs), and enough
// instructions to reach DRAM.
func probedConfig() Config {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 15_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure
	return cfg
}

// TestRunProbedEquivalence pins the observability layer's core
// guarantee: attaching observers never changes the simulated outcome.
// The full Result — every architectural counter and derived statistic —
// must be bit-identical with and without probes.
func TestRunProbedEquivalence(t *testing.T) {
	cfg := probedConfig()

	plain, err := Run(cfg, smokeTrace(t, "605.mcf-1554B", 17_000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	probed, err := RunProbed(cfg, smokeTrace(t, "605.mcf-1554B", 17_000), Probes{
		Observer:     probe.Fanout(probe.NewTracer(4, 4096)),
		Window:       probe.NewIntervalSampler(32),
		WindowInstrs: 1000,
	})
	if err != nil {
		t.Fatalf("RunProbed: %v", err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Errorf("observers perturbed the simulation:\nplain:  %+v\nprobed: %+v", plain, probed)
	}
}

// TestRunProbedWindows checks the interval sampler's contract: windows
// land at the configured boundaries, cumulative counters are monotone,
// and the final (flushed) sample covers the whole measured phase.
func TestRunProbedWindows(t *testing.T) {
	cfg := probedConfig()
	s := probe.NewIntervalSampler(32)
	res, err := RunProbed(cfg, smokeTrace(t, "605.mcf-1554B", 17_000), Probes{
		Window:       s,
		WindowInstrs: 1000,
	})
	if err != nil {
		t.Fatalf("RunProbed: %v", err)
	}
	samples := s.Samples()
	if len(samples) < 10 {
		t.Fatalf("%d windows for 15k instrs at 1k interval, want >= 10", len(samples))
	}
	var prev probe.Sample
	for i, sm := range samples {
		if sm.Instructions < prev.Instructions || sm.Cycle < prev.Cycle {
			t.Errorf("window %d not monotone: %+v after %+v", i, sm, prev)
		}
		prev = sm
	}
	last := samples[len(samples)-1]
	if last.Instructions != res.Instructions {
		t.Errorf("final sample at %d instructions, result has %d", last.Instructions, res.Instructions)
	}
	if last.Cycle != res.Cycles {
		t.Errorf("final sample at cycle %d, result has %d", last.Cycle, res.Cycles)
	}
	if last.DemandMisses == 0 || last.DRAMReads == 0 {
		t.Errorf("mcf run recorded no misses/DRAM reads: %+v", last)
	}
	// The derived time series must be valid for every window.
	for i, row := range s.Rows() {
		if row.IPC <= 0 || row.IPC > 8 {
			t.Errorf("row %d has implausible IPC %v", i, row.IPC)
		}
	}
}

// TestRunProbedTracerChains checks that a traced load's lifecycle chain
// actually spans sites: the ring must contain core issues, GM lookups,
// and commit outcomes for the same sampled sequence numbers.
func TestRunProbedTracerChains(t *testing.T) {
	cfg := probedConfig()
	tr := probe.NewTracer(8, 1<<14)
	if _, err := RunProbed(cfg, smokeTrace(t, "605.mcf-1554B", 17_000), Probes{Observer: tr}); err != nil {
		t.Fatalf("RunProbed: %v", err)
	}
	var issues, gmEvents, commits int
	for _, ev := range tr.Events() {
		if ev.Seq%8 != 0 {
			t.Fatalf("unsampled seq %d in ring", ev.Seq)
		}
		switch {
		case ev.Kind == probe.EvIssue && ev.Site == probe.SiteCore:
			issues++
		case ev.Site == probe.SiteGM:
			gmEvents++
		case ev.Kind == probe.EvCommit && ev.Site == probe.SiteCore:
			commits++
		}
	}
	if issues == 0 || gmEvents == 0 || commits == 0 {
		t.Errorf("lifecycle chain incomplete: %d issues, %d GM events, %d commits", issues, gmEvents, commits)
	}
}

// TestSampleWindowZeroAlloc bounds the interval sampler's per-boundary
// overhead: assembling and recording a Sample into a preallocated
// sampler must not allocate.
func TestSampleWindowZeroAlloc(t *testing.T) {
	cfg := probedConfig()
	m, err := NewMachine(cfg, smokeTrace(t, "605.mcf-1554B", 17_000))
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	if err := m.runUntil(5000, 1<<40); err != nil {
		t.Fatalf("runUntil: %v", err)
	}
	m.armWindows(probe.NewIntervalSampler(512), 1000)
	if avg := testing.AllocsPerRun(200, m.sampleWindow); avg != 0 {
		t.Errorf("sampleWindow allocates %.1f objects/op, want 0", avg)
	}
}

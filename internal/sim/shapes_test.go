package sim

import (
	"math"
	"testing"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

// shapeTraces is a small representative set: a pointer chase, a stream,
// a stencil, and a graph kernel.
var shapeTraces = []string{"605.mcf-1554B", "603.bwa-2931B", "654.roms-1007B", "bfs-3B"}

// geomeanSpeedup runs variant and baseline over shapeTraces and returns
// the geometric-mean speedup.
func geomeanSpeedup(t *testing.T, mut func(*Config)) float64 {
	t.Helper()
	sum := 0.0
	for _, name := range shapeTraces {
		tr, err := workload.Get(name, workload.Params{Instrs: 60_000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		base := DefaultConfig()
		base.WarmupInstrs = 10_000
		base.MaxInstrs = 50_000
		bres, err := Run(base, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		mut(&cfg)
		res, err := Run(cfg, trace.NewSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Log(res.Speedup(bres))
	}
	return math.Exp(sum / float64(len(shapeTraces)))
}

// TestPaperShapes guards the qualitative results the reproduction
// stands on. Tolerances are wide: these are direction checks, not
// calibration checks.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}

	secure := geomeanSpeedup(t, func(c *Config) { c.Secure = true })
	if secure >= 1.0 || secure < 0.80 {
		t.Errorf("GhostMinion speedup %.3f: paper reports a modest slowdown (~5%%)", secure)
	}

	onCommit := geomeanSpeedup(t, func(c *Config) {
		c.Secure = true
		c.Prefetcher = "berti"
		c.Mode = ModeOnCommit
	})
	tsb := geomeanSpeedup(t, func(c *Config) {
		c.Secure = true
		c.Prefetcher = "berti"
		c.Mode = ModeTimelySecure
	})
	if tsb <= onCommit {
		t.Errorf("TSB (%.3f) must beat on-commit Berti (%.3f)", tsb, onCommit)
	}

	tsbSUF := geomeanSpeedup(t, func(c *Config) {
		c.Secure = true
		c.SUF = true
		c.Prefetcher = "berti"
		c.Mode = ModeTimelySecure
	})
	if tsbSUF < tsb*0.995 {
		t.Errorf("TSB+SUF (%.3f) should not fall below TSB (%.3f)", tsbSUF, tsb)
	}

	onAccess := geomeanSpeedup(t, func(c *Config) { c.Prefetcher = "berti" })
	if onAccess <= 1.0 {
		t.Errorf("on-access Berti speedup %.3f: prefetching must help the non-secure system", onAccess)
	}
	t.Logf("shapes: secure=%.3f onAccess=%.3f onCommit=%.3f tsb=%.3f tsb+suf=%.3f",
		secure, onAccess, onCommit, tsb, tsbSUF)
}

// TestSUFAccuracyHigh checks the §VII-A claim that SUF filters
// correctly almost always.
func TestSUFAccuracyHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	tr, err := workload.Get("654.roms-1007B", workload.Params{Instrs: 60_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 10_000
	cfg.MaxInstrs = 50_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure
	res, err := Run(cfg, trace.NewSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	if res.Core.SUFDrops == 0 {
		t.Fatal("SUF never dropped an update")
	}
	if acc := res.SUFAccuracy(); acc < 0.90 {
		t.Errorf("SUF accuracy %.3f, paper reports >87%% worst-case and ~99%% average", acc)
	}
}

package sim

import (
	"errors"
	"testing"

	"secpref/internal/cpu"
	"secpref/internal/mem"
)

// blackHolePort accepts every load and never completes it: the issuing
// core stalls at the first load's retirement and the machine drains to
// full quiescence — the all-components-idle edge the run loop's wedge
// clamp exists for.
type blackHolePort struct{}

func (blackHolePort) IssueLoad(*mem.Request) bool { return true }

// wedgedMachine builds a normal machine, then swaps in a core whose
// load port is a black hole. Everything downstream of the core is real,
// so stores and writebacks drain normally before the machine goes
// quiescent.
func wedgedMachine(t *testing.T, noSkip bool) *Machine {
	t.Helper()
	cfg := DefaultConfig()
	cfg.MaxInstrs = 10_000
	cfg.DisableTLB = true
	m, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 12_000))
	if err != nil {
		t.Fatal(err)
	}
	m.core = cpu.New(cfg.Core, smokeTrace(t, "bfs-3B", 12_000), blackHolePort{}, l1dStorePort{m.l1d})
	m.wirePool()
	m.wireCommit()
	m.noSkip = noSkip
	return m
}

// TestWedgeDetectionQuiescent pins the fully-quiescent wedge edge: when
// no component will ever act again (calendar empty, NextEvent reports
// mem.NoEvent), the event engine must not silently stall or spin — the
// run loop's clamp turns the empty calendar into one bounded jump to
// the wedge boundary and reports ErrNoProgress on exactly the cycle the
// per-cycle reference engine reports it.
func TestWedgeDetectionQuiescent(t *testing.T) {
	run := func(noSkip bool) (*Machine, error) {
		m := wedgedMachine(t, noSkip)
		return m, m.runUntil(10_000, 100_000_000)
	}

	skipM, skipErr := run(false)
	stepM, stepErr := run(true)

	if !errors.Is(skipErr, ErrNoProgress) {
		t.Fatalf("event engine: got %v, want ErrNoProgress", skipErr)
	}
	if !errors.Is(stepErr, ErrNoProgress) {
		t.Fatalf("reference engine: got %v, want ErrNoProgress", stepErr)
	}
	if skipM.now != stepM.now {
		t.Errorf("wedge reported at cycle %d by the event engine, %d by per-cycle stepping", skipM.now, stepM.now)
	}
	// The machine must be genuinely quiescent: an empty calendar is what
	// forces the clamp path. If a component were re-arming itself every
	// cycle (spinning to the boundary instead of jumping), it would
	// still be armed here.
	if next := skipM.evq.Next(); next != mem.NoEvent {
		t.Errorf("calendar not empty at the wedge boundary: next event at %d", next)
	}
}

package sim

import (
	"secpref/internal/cache"
	seccore "secpref/internal/core"
	"secpref/internal/cpu"
	"secpref/internal/dram"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// CoreSystem is one core's private slice of a multi-core system: the
// core, its GM (if secure), private L1D and L2, and the prefetcher
// harness — everything except the shared LLC and DRAM.
type CoreSystem = Machine

// BuildShared assembles cores private systems around one shared LLC
// bank group and one DRAM channel, per the paper's Table II multi-core
// organization. The returned tick function advances the DRAM channel.
func BuildShared(cfg Config, cores int, mix []trace.Source) ([]*CoreSystem, *cache.Cache, func(mem.Cycle), error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	channel := dram.New(cfg.DRAM)
	llcCfg := cache.LLCConfig(cores)
	llc := cache.New(llcCfg, channel)
	// All cores and the shared levels are stepped by one goroutine, so
	// one request pool serves the whole system (requests cross levels).
	pool := &mem.RequestPool{}
	channel.SetPool(pool)
	llc.SetPool(pool)

	machines := make([]*CoreSystem, 0, cores)
	for i := 0; i < cores; i++ {
		// Each core gets a disjoint address space, as separate processes
		// would (1 TiB apart — far beyond any generator's regions). The
		// trace replays without bound: cores that finish their measured
		// budget keep running (and keep contending for the shared LLC
		// and DRAM) until the slowest core finishes, as in ChampSim.
		src := trace.Repeat(trace.Offset(mix[i], mem.Addr(i)<<40), 1<<62)
		m := &Machine{cfg: cfg, pool: pool}
		m.mem = channel
		m.llc = llc
		m.l2 = cache.New(cfg.L2, llc)
		m.l1d = cache.New(cfg.L1D, m.l2)
		var loadPort cpu.LoadPort = l1dLoadPort{m.l1d}
		if cfg.Secure {
			var filter ghostminion.Filter = ghostminion.FullUpdate{}
			if cfg.SUF {
				m.suf = new(seccore.SUF)
				filter = m.suf
			}
			m.gm = ghostminion.New(cfg.GM, m.l1d, filter)
			loadPort = m.gm
		}
		m.core = cpu.New(cfg.Core, src, loadPort, l1dStorePort{m.l1d})
		if !cfg.DisableTLB {
			m.tlbs = tlb.New(cfg.TLB)
			m.core.TLB = m.tlbs
		}
		if err := m.buildPrefetcher(); err != nil {
			return nil, nil, nil, err
		}
		m.core.SetPool(pool)
		if m.gm != nil {
			m.gm.SetPool(pool)
		}
		m.l1d.SetPool(pool)
		m.l2.SetPool(pool)
		m.wireCommit()
		machines = append(machines, m)
	}
	return machines, llc, channel.Tick, nil
}

// TickCore advances this core's private components one cycle (the
// caller ticks the shared LLC and DRAM once per cycle).
func (m *Machine) TickCore(now mem.Cycle) {
	m.now = now
	m.core.Tick(now)
	if m.gm != nil {
		m.gm.Tick(now)
	}
	m.l1d.Tick(now)
	m.l2.Tick(now)
}

// Instructions returns the retired instruction count.
func (m *Machine) Instructions() uint64 { return m.core.Stats.Instructions }

// ResetStats zeroes this core's private counters (shared-LLC variant
// leaves the shared structures to the caller; the single-core variant
// resets everything).
func (m *Machine) ResetStats() { m.resetStats() }

// Snapshot assembles the result over the measured window.
func (m *Machine) Snapshot(traceName string, cycles mem.Cycle) *Result {
	return m.result(traceName, cycles)
}

package sim

import (
	"secpref/internal/mem"
)

// CoreSystem is one core's private slice of a multi-core system: the
// core, its GM (if secure), private L1D and L2, the prefetcher harness,
// and the link into the shared domain — everything except the shared
// LLC and DRAM. Built by BuildSharded.
type CoreSystem = Machine

// Instructions returns the retired instruction count.
func (m *Machine) Instructions() uint64 { return m.core.Stats.Instructions }

// ResetStats zeroes this core's counters at the warmup boundary. On a
// sharded system the shared LLC/DRAM stats are zeroed too; calling it
// once per core at the same barrier is idempotent for those.
func (m *Machine) ResetStats() { m.resetStats() }

// Snapshot assembles the result over the measured window.
func (m *Machine) Snapshot(traceName string, cycles mem.Cycle) *Result {
	return m.result(traceName, cycles)
}

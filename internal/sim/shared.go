package sim

import (
	"secpref/internal/mem"
	"secpref/internal/probe"
)

// CoreSystem is one core's private slice of a multi-core system: the
// core, its GM (if secure), private L1D and L2, the prefetcher harness,
// and the link into the shared domain — everything except the shared
// LLC and DRAM. Built by BuildSharded.
type CoreSystem = Machine

// Instructions returns the retired instruction count.
func (m *Machine) Instructions() uint64 { return m.core.Stats.Instructions }

// ResetStats zeroes this core's counters at the warmup boundary. On a
// sharded system the shared LLC/DRAM stats are zeroed too; calling it
// once per core at the same barrier is idempotent for those.
func (m *Machine) ResetStats() { m.resetStats() }

// Snapshot assembles the result over the measured window.
func (m *Machine) Snapshot(traceName string, cycles mem.Cycle) *Result {
	return m.result(traceName, cycles)
}

// ArmCoreWindows starts per-core interval sampling on a sharded
// system: samples are stamped with the core index and cover only this
// core's private domain (see sampleWindow). Call after the warmup
// stats reset so windows count from the measured phase.
func (m *Machine) ArmCoreWindows(core int, w probe.WindowObserver, every uint64) {
	m.winCore = core
	m.armWindows(w, every)
}

// FlushCoreWindows emits the final (usually partial) window at run end.
func (m *Machine) FlushCoreWindows() { m.flushWindow() }

// AttachCoreObserver points this core's private components (core, GM,
// L1D, L2 — not the shared LLC/DRAM) at o. Sharded systems attach
// shared-domain observers separately, exactly once.
func (m *Machine) AttachCoreObserver(o probe.Observer) {
	if o == nil {
		return
	}
	m.obs = o
	m.core.Obs = o
	if m.gm != nil {
		m.gm.Obs = o
	}
	m.l1d.Obs = o
	m.l2.Obs = o
}

package sim

import (
	"secpref/internal/energy"
	"secpref/internal/mem"
	"secpref/internal/stats"
)

// Result is the measured outcome of one simulation.
type Result struct {
	Config    Config
	TraceName string

	Instructions uint64
	Cycles       uint64
	IPC          float64

	Core stats.CoreStats
	GM   stats.CacheStats // zero value for non-secure systems
	L1D  stats.CacheStats
	L2   stats.CacheStats
	LLC  stats.CacheStats
	DRAM stats.DRAMStats
	TLB  stats.TLBStats

	Class  stats.MissClass
	Energy energy.Breakdown

	SUFDrops            uint64
	SUFTrims            uint64
	DistanceAdaptations uint64
	PhaseResets         uint64
	FinalDistance       int
}

// APKISplit is the Fig. 3 decomposition of L1D accesses per kilo
// instruction into demand-load, prefetch, and commit-request traffic.
type APKISplit struct {
	Load, Prefetch, Commit float64
}

// Total sums the split.
func (a APKISplit) Total() float64 { return a.Load + a.Prefetch + a.Commit }

// L1DAPKI computes the Fig. 3/5b split. In the secure system the
// demand-load component is the speculative probes (GhostMinion accesses
// L1D in parallel with the GM), and the commit component covers both
// on-commit writes and re-fetches.
func (r *Result) L1DAPKI() APKISplit {
	ins := r.Instructions
	load := r.L1D.Accesses[mem.KindLoad] + r.L1D.Accesses[mem.KindRFO] + r.L1D.SpecAccesses
	commit := r.L1D.Accesses[mem.KindCommitWrite] + r.L1D.Accesses[mem.KindRefetch]
	if r.Config.Secure {
		// Demand loads reach L1D only as speculative probes; refetches
		// are commit traffic (already excluded from load above).
		load = r.L1D.SpecAccesses + r.L1D.Accesses[mem.KindRFO]
	}
	return APKISplit{
		Load:     stats.PerKI(load, ins),
		Prefetch: stats.PerKI(r.L1D.Accesses[mem.KindPrefetch], ins),
		Commit:   stats.PerKI(commit, ins),
	}
}

// LoadMissLatency returns the average demand-load miss latency observed
// by the core: the GM's in the secure system (loads are served via the
// GM), L1D's otherwise (Fig. 4 / Fig. 5c).
func (r *Result) LoadMissLatency() float64 {
	if r.Config.Secure {
		return r.GM.AvgDemandMissLat()
	}
	return r.L1D.AvgDemandMissLat()
}

// HomeLevelMPKI returns demand misses per kilo instruction at the
// prefetcher's home level — the quantity Fig. 6 decomposes. For L1D
// homes in the secure system this is the speculative-probe miss rate.
func (r *Result) HomeLevelMPKI(home mem.Level) float64 {
	var misses uint64
	switch home {
	case mem.LvlL2:
		misses = r.L2.DemandMisses() + r.L2.Misses[mem.KindRefetch]
		if r.Config.Secure {
			misses = r.L2.SpecMisses
		}
	default:
		misses = r.L1D.DemandMisses()
		if r.Config.Secure {
			misses = r.GM.Misses[mem.KindLoad]
		}
	}
	return stats.PerKI(misses, r.Instructions)
}

// PrefAccuracy returns the prefetch accuracy for a prefetcher homed at
// the given level (Fig. 13). Fills are aggregated across the home level
// and the deeper cache levels, because the prefetchers legitimately
// orchestrate fills deeper (Berti's L2 fills, SPP's LLC fills, and
// MSHR-pressure demotions).
func (r *Result) PrefAccuracy(home mem.Level) float64 {
	var useful, filled uint64
	levels := []*stats.CacheStats{&r.L1D, &r.L2, &r.LLC}
	for _, s := range levels[home:] {
		useful += s.PrefUseful
		filled += s.PrefFilled
	}
	if filled == 0 {
		return 0
	}
	return float64(useful) / float64(filled)
}

// TrafficAPKI returns total accesses per kilo instruction at a level
// (the memory-hierarchy traffic metric of §VII-A).
func (r *Result) TrafficAPKI(level mem.Level) float64 {
	var s *stats.CacheStats
	switch level {
	case mem.LvlL2:
		s = &r.L2
	case mem.LvlLLC:
		s = &r.LLC
	default:
		s = &r.L1D
	}
	return stats.PerKI(s.TotalAccesses(), r.Instructions)
}

// SUFAccuracy returns the fraction of SUF drops that were correct.
func (r *Result) SUFAccuracy() float64 { return r.Core.SUFAccuracy() }

// Speedup returns r's IPC relative to a baseline result.
func (r *Result) Speedup(baseline *Result) float64 {
	if baseline == nil || baseline.IPC == 0 {
		return 0
	}
	return r.IPC / baseline.IPC
}

package sim

// Blank imports pull in every prefetcher implementation so that the
// registry can resolve names.
import (
	_ "secpref/internal/prefetch/bingo"
	_ "secpref/internal/prefetch/ipcp"
	_ "secpref/internal/prefetch/ipstride"
	_ "secpref/internal/prefetch/spp"
)

// Package sim wires the substrates into the paper's evaluated systems:
// a single out-of-order core with a non-secure or GhostMinion-secured
// three-level hierarchy, one of five hardware prefetchers trained
// on-access, on-commit, or in timely-secure (TS/TSB) form, optionally
// behind the Secure Update Filter, plus the Fig. 6 shadow classifier.
package sim

import (
	"fmt"

	"secpref/internal/cache"
	"secpref/internal/cpu"
	"secpref/internal/dram"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/tlb"
)

// Mode selects when the prefetcher trains and triggers.
type Mode int

const (
	// ModeOnAccess trains and triggers on (speculative) accesses — the
	// conventional, insecure placement.
	ModeOnAccess Mode = iota
	// ModeOnCommit trains and triggers at instruction commit — secure
	// but timeliness-impaired (the paper's gray bars).
	ModeOnCommit
	// ModeTimelySecure is the paper's contribution: on-commit training
	// with the timeliness fix — TSB for Berti, lateness-driven adaptive
	// distance for the others (§V).
	ModeTimelySecure
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOnAccess:
		return "on-access"
	case ModeOnCommit:
		return "on-commit"
	case ModeTimelySecure:
		return "timely-secure"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config describes one simulated system.
type Config struct {
	// Secure selects the GhostMinion secure cache system.
	Secure bool
	// SUF enables the Secure Update Filter (requires Secure).
	SUF bool
	// Prefetcher names the engine: "none", "ip-stride", "ipcp",
	// "bingo", "spp-ppf", "berti".
	Prefetcher string
	// Mode selects the training/trigger point.
	Mode Mode
	// Classify enables the Fig. 6 shadow classifier (adds a second
	// prefetcher instance; measurement only).
	Classify bool

	// WarmupInstrs run before statistics are reset; MaxInstrs then run
	// measured. MaxCycles bounds runaway simulations (0 = 1000 cycles
	// per instruction).
	WarmupInstrs int
	MaxInstrs    int
	MaxCycles    mem.Cycle

	Core cpu.Config
	L1D  cache.Config
	L2   cache.Config
	LLC  cache.Config
	GM   ghostminion.Config
	DRAM dram.Config
	// TLB models the Table II dTLB/STLB translation latency on the load
	// path; DisableTLB turns it off (ablation).
	TLB        tlb.HierarchyConfig
	DisableTLB bool

	// LatenessThreshold overrides the TS adaptive-distance trigger
	// (§V-D); zero selects the paper's values (0.14, or 0.05 for
	// Bingo).
	LatenessThreshold float64
	// LatenessInterval overrides the TS monitoring interval in misses;
	// zero selects the paper's values (512 at L1D, 4096 at L2). The
	// paper's intervals assume 200M-instruction runs; laptop-scale runs
	// need proportionally shorter intervals for the adaptation to
	// engage (the experiment harness sets this).
	LatenessInterval uint64
}

// DefaultConfig returns the paper's Table II single-core baseline with
// a 20k-instruction warmup and 100k measured instructions (the paper
// uses 50M/200M; scale with MaxInstrs for longer runs).
func DefaultConfig() Config {
	return Config{
		Prefetcher:   "none",
		Mode:         ModeOnAccess,
		WarmupInstrs: 20_000,
		MaxInstrs:    100_000,
		Core:         cpu.DefaultConfig(),
		L1D:          cache.L1DConfig(),
		L2:           cache.L2Config(),
		LLC:          cache.LLCConfig(1),
		GM:           ghostminion.DefaultConfig(),
		DRAM:         dram.DefaultConfig(),
		TLB:          tlb.DefaultConfig(),
	}
}

// Validate reports configuration contradictions.
func (c Config) Validate() error {
	if c.SUF && !c.Secure {
		return fmt.Errorf("sim: SUF requires the secure cache system")
	}
	if c.Mode != ModeOnAccess && !c.Secure && c.Prefetcher == "none" {
		return fmt.Errorf("sim: commit-time modes need a prefetcher or a secure system")
	}
	if c.MaxInstrs <= 0 {
		return fmt.Errorf("sim: MaxInstrs must be positive, got %d", c.MaxInstrs)
	}
	return nil
}

// Label summarizes the configuration the way the paper's legends do.
func (c Config) Label() string {
	sys := "non-secure"
	if c.Secure {
		sys = "secure"
		if c.SUF {
			sys = "secure+SUF"
		}
	}
	if c.Prefetcher == "none" || c.Prefetcher == "" {
		return fmt.Sprintf("no-pref/%s", sys)
	}
	return fmt.Sprintf("%s/%s/%s", c.Prefetcher, c.Mode, sys)
}

package sim

import (
	"fmt"

	"secpref/internal/cache"
	seccore "secpref/internal/core"
	"secpref/internal/cpu"
	"secpref/internal/dram"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// BuildSMT assembles a 2-way SMT core: two hardware threads with
// private GMs (speculative state is per-context) sharing one L1D, L2,
// LLC and DRAM channel — the §VII-B configuration where cross-thread
// evictions can invalidate SUF's recorded hit levels. Each thread runs
// its own trace in a disjoint address space.
//
// The returned tick function advances the shared levels and DRAM once
// per cycle (threads are ticked individually via TickSMT).
func BuildSMT(cfg Config, threads []trace.Source) ([]*Machine, func(mem.Cycle), error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if len(threads) != 2 {
		return nil, nil, fmt.Errorf("sim: SMT model is 2-way, got %d threads", len(threads))
	}
	channel := dram.New(cfg.DRAM)
	llc := cache.New(cache.LLCConfig(1), channel)
	l2 := cache.New(cfg.L2, llc)
	l1d := cache.New(cfg.L1D, l2)
	// One goroutine steps both threads and the shared levels: a single
	// request pool serves the whole SMT system.
	pool := &mem.RequestPool{}
	channel.SetPool(pool)
	llc.SetPool(pool)
	l2.SetPool(pool)
	l1d.SetPool(pool)

	var machines []*Machine
	for i, src := range threads {
		src = trace.Repeat(trace.Offset(src, mem.Addr(i)<<40), 1<<62)
		m := &Machine{cfg: cfg, pool: pool}
		m.mem = channel
		m.llc = llc
		m.l2 = l2
		m.l1d = l1d
		var loadPort cpu.LoadPort = l1dLoadPort{l1d}
		if cfg.Secure {
			var filter ghostminion.Filter = ghostminion.FullUpdate{}
			if cfg.SUF {
				m.suf = new(seccore.SUF)
				filter = m.suf
			}
			m.gm = ghostminion.New(cfg.GM, l1d, filter)
			loadPort = m.gm
		}
		m.core = cpu.New(cfg.Core, src, loadPort, l1dStorePort{l1d})
		if !cfg.DisableTLB {
			m.tlbs = tlb.New(cfg.TLB)
			m.core.TLB = m.tlbs
		}
		if i == 0 {
			// The SMT core has ONE prefetcher at the shared L1D; thread
			// 0 owns it and its access-stream hooks observe both
			// threads' traffic.
			if err := m.buildPrefetcher(); err != nil {
				return nil, nil, err
			}
		} else if len(machines) > 0 {
			// Later threads share the engine but keep a private X-LQ
			// (it is part of the per-thread load queue).
			first := machines[0]
			m.pf = first.pf
			m.bertiPF = first.bertiPF
			m.monitor = first.monitor
			m.classifier = first.classifier
			if first.xlq != nil {
				m.xlq = &seccore.XLQ{}
			}
		}
		m.core.SetPool(pool)
		if m.gm != nil {
			m.gm.SetPool(pool)
		}
		m.wireCommit()
		machines = append(machines, m)
	}
	shared := func(now mem.Cycle) {
		l1d.Tick(now)
		l2.Tick(now)
		llc.Tick(now)
		channel.Tick(now)
	}
	return machines, shared, nil
}

// TickSMT advances only this thread's private components (core, GM);
// the shared levels are ticked once per cycle by the BuildSMT tick
// function.
func (m *Machine) TickSMT(now mem.Cycle) {
	m.now = now
	m.core.Tick(now)
	if m.gm != nil {
		m.gm.Tick(now)
	}
}

// RunSMT simulates a 2-thread SMT pair until both threads retire the
// configured instruction budget, returning per-thread results.
func RunSMT(cfg Config, threads []trace.Source) ([]*Result, error) {
	machines, shared, err := BuildSMT(cfg, threads)
	if err != nil {
		return nil, err
	}
	warmup := uint64(cfg.WarmupInstrs)
	measured := uint64(cfg.MaxInstrs)
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = mem.Cycle(2000 * (cfg.WarmupInstrs + cfg.MaxInstrs))
	}
	var now mem.Cycle
	var lastSum uint64
	lastProgress := now
	runTo := func(n uint64) error {
		for {
			done := true
			var sum uint64
			for _, m := range machines {
				if m.Instructions() < n {
					done = false
				}
				sum += m.Instructions()
			}
			if done {
				return nil
			}
			now++
			for _, m := range machines {
				m.TickSMT(now)
			}
			shared(now)
			if sum != lastSum {
				lastSum = sum
				lastProgress = now
			} else if now-lastProgress > 500_000 {
				return ErrNoProgress
			}
			if now > maxCycles {
				return fmt.Errorf("sim: SMT cycle budget exhausted at %d", now)
			}
		}
	}
	if warmup > 0 {
		if err := runTo(warmup); err != nil {
			return nil, err
		}
		for _, m := range machines {
			m.resetStats()
		}
	}
	start := now
	if err := runTo(measured); err != nil {
		return nil, err
	}
	var out []*Result
	for i, m := range machines {
		out = append(out, m.result(threads[i].Name(), now-start))
	}
	return out, nil
}

package sim

import (
	"testing"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

func smtSources(t *testing.T, a, b string, n int) []trace.Source {
	t.Helper()
	out := make([]trace.Source, 2)
	for i, name := range []string{a, b} {
		tr, err := workload.Get(name, workload.Params{Instrs: n, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = trace.NewSource(tr)
	}
	return out
}

func TestSMTBothThreadsRetire(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 10_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = ModeTimelySecure
	res, err := RunSMT(cfg, smtSources(t, "605.mcf-1554B", "602.gcc-1850B", 12_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Instructions < 10_000 {
			t.Errorf("thread %d retired %d", i, r.Instructions)
		}
		if r.Core.SUFDrops == 0 {
			t.Errorf("thread %d: SUF inactive", i)
		}
		t.Logf("thread %d (%s): IPC=%.3f SUF acc=%.1f%%", i, r.TraceName, r.IPC, r.SUFAccuracy()*100)
	}
}

func TestSMTSharingSlowsThreads(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 20_000
	cfg.Secure = true
	// Alone.
	tr, err := workload.Get("605.mcf-1554B", workload.Params{Instrs: 24_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	alone, err := Run(cfg, trace.NewSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	// Sharing the L1D/L2 with a second copy of itself.
	pair, err := RunSMT(cfg, smtSources(t, "605.mcf-1554B", "605.mcf-1554B", 24_000))
	if err != nil {
		t.Fatal(err)
	}
	if pair[0].IPC >= alone.IPC*1.02 {
		t.Errorf("SMT thread faster than running alone: %.3f vs %.3f", pair[0].IPC, alone.IPC)
	}
}

func TestSMTRequiresTwoThreads(t *testing.T) {
	cfg := DefaultConfig()
	if _, _, err := BuildSMT(cfg, nil); err == nil {
		t.Fatal("expected thread-count error")
	}
}

// Sharded multi-core support: the per-core link (the private-L2 to
// shared-LLC interconnect), the shared LLC/DRAM domain with its
// deterministic cross-core drain, and the private-domain event engine
// that advances one core system independently of its peers.
//
// Topology: each core's L2 forwards into its CoreLink instead of the
// shared LLC directly. The link buffers outbound requests (stamped with
// their issue cycle) until the shared domain drains them, and delays
// responses by LinkLatency cycles on the way back. Because a response
// produced at shared cycle u becomes visible to the core only at
// u+LinkLatency, a core advanced through cycle T needs nothing the
// shared domain produces after T-ε for any epoch of length ε ≤
// LinkLatency — the epoch-safety bound that lets every core run a whole
// barrier interval without observing its peers. See docs/performance.md.
package sim

import (
	"secpref/internal/cache"
	seccore "secpref/internal/core"
	"secpref/internal/cpu"
	"secpref/internal/dram"
	"secpref/internal/event"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// DefaultLinkLatency is the private-L2 to shared-LLC interconnect
// latency (response path) when the multicore configuration does not
// override it. It doubles as the parallel engine's maximum barrier
// interval.
const DefaultLinkLatency mem.Cycle = 24

// rankLink is the link's slot in a private core system's calendar: it
// occupies the position the LLC holds in the single-core rank order
// (core < GM < L1D < L2 < link), so cross-component clock reads behave
// exactly as they do in the lockstep reference.
const rankLink = rankLLC

// ShardProfileRanks names the attribution ranks of a sharded multicore
// run. Indices 0-5 match the single-core vocabulary (so campaign
// aggregates mixing single- and multi-core runs line up); the link is
// appended as rank 6.
var ShardProfileRanks = [...]string{"core", "gm", "l1d", "l2", "llc", "dram", "link"}

// profileRank maps a private calendar rank to its attribution index.
func profileRank(r int) int {
	if r == rankLink {
		return 6
	}
	return r
}

// linkEntry is one buffered request: at is the issue cycle on the
// outbound path and the visibility cycle on the inbound path.
type linkEntry struct {
	at  mem.Cycle
	req *mem.Request
}

// ownerSlot parks a request's original completion routing while the
// shared domain owns it.
type ownerSlot struct {
	owner mem.Completer
	tag   uint32
	live  bool
}

// CoreLink is one core's bridge to the shared domain. The core side
// (its L2 and the private advance loop) touches out-appends and
// in-drains; the shared side (drain and completions) touches out-drains
// and in-appends. The two sides run in alternating phases separated by
// barriers, so no field needs a lock.
type CoreLink struct {
	core   int // owning core's index, stamped onto outbound requests
	lat    mem.Cycle
	shared *SharedDomain // for the response-visibility stamp

	now mem.Cycle // core-domain clock, stamped onto outbound requests

	// kindCounts tallies outbound requests by mem.Kind — the per-core
	// shared-link traffic the interference observatory samples at
	// barriers. Measurement only: deliberately excluded from StateDigest
	// (it is not architectural state), written by the core's goroutine
	// during epochs and read serially at barrier boundaries.
	kindCounts [mem.NumKinds]uint64

	out     []linkEntry // issued by L2, awaiting the deterministic drain
	outHead int
	in      []linkEntry // completed by the shared domain, awaiting injection
	inHead  int

	slots     []ownerSlot
	freeSlots []uint32
}

// Enqueue implements cache.Port for the core's L2: the interconnect
// buffers without bound, so issue-side back-pressure is applied at
// drain time (head-of-line, per core) instead of at the L2's forward
// port. The request is stamped with the core-domain cycle it was
// issued and with the owning core's index — the single choke point
// every request entering the shared domain passes through, so all
// shared-domain traffic (and its children: MSHR fetches, victim
// writebacks) carries its originating core. Core is not digested
// (observatory.DigestRequest excludes it), so the stamp cannot perturb
// determinism digests.
func (l *CoreLink) Enqueue(r *mem.Request) bool {
	r.Core = l.core
	l.kindCounts[r.Kind]++
	l.out = append(l.out, linkEntry{at: l.now, req: r})
	return true
}

// KindCounts snapshots the cumulative outbound request tally by
// mem.Kind. Only meaningful between core phases (barrier boundaries),
// where the happens-before edge from the worker join makes the
// core-goroutine writes visible.
func (l *CoreLink) KindCounts() [mem.NumKinds]uint64 { return l.kindCounts }

// headAt peeks the oldest undrained outbound request's issue cycle.
func (l *CoreLink) headAt() (mem.Cycle, bool) {
	if l.outHead < len(l.out) {
		return l.out[l.outHead].at, true
	}
	return 0, false
}

func (l *CoreLink) peekHead() *mem.Request { return l.out[l.outHead].req }

func (l *CoreLink) popHead() *mem.Request {
	r := l.out[l.outHead].req
	l.out[l.outHead] = linkEntry{}
	l.outHead++
	if l.outHead == len(l.out) {
		l.out = l.out[:0]
		l.outHead = 0
	}
	return r
}

// swapOwner parks r's completion routing in a slot and points the
// request at the link, so the shared domain's completion lands back
// here instead of inside the (possibly still mid-epoch) core.
func (l *CoreLink) swapOwner(r *mem.Request) {
	if r.Owner == nil {
		return // fire-and-forget traffic terminates in the shared domain
	}
	var s uint32
	if n := len(l.freeSlots); n > 0 {
		s = l.freeSlots[n-1]
		l.freeSlots = l.freeSlots[:n-1]
	} else {
		l.slots = append(l.slots, ownerSlot{})
		s = uint32(len(l.slots) - 1)
	}
	l.slots[s] = ownerSlot{owner: r.Owner, tag: r.OwnerTag, live: true}
	r.Owner, r.OwnerTag = l, s
}

// unswapOwner undoes swapOwner after a rejected drain attempt.
func (l *CoreLink) unswapOwner(r *mem.Request) {
	if r.Owner != mem.Completer(l) {
		return
	}
	s := r.OwnerTag
	r.Owner, r.OwnerTag = l.slots[s].owner, l.slots[s].tag
	l.slots[s] = ownerSlot{}
	l.freeSlots = append(l.freeSlots, s)
}

// Complete implements mem.Completer for the shared side: the LLC or
// DRAM finished r, so restore its original routing and schedule it for
// injection into the core LinkLatency cycles from now. Visibility
// cycles are nondecreasing (the shared clock only moves forward), so
// the inbound buffer stays sorted by construction.
func (l *CoreLink) Complete(r *mem.Request) {
	s := r.OwnerTag
	r.Owner, r.OwnerTag = l.slots[s].owner, l.slots[s].tag
	l.slots[s] = ownerSlot{}
	l.freeSlots = append(l.freeSlots, s)
	l.in = append(l.in, linkEntry{at: l.shared.now + l.lat, req: r})
}

// NextInject reports the earliest future cycle an inbound response
// becomes visible to the core, or mem.NoEvent.
func (l *CoreLink) NextInject(now mem.Cycle) mem.Cycle {
	if l.inHead < len(l.in) {
		if at := l.in[l.inHead].at; at > now {
			return at
		}
		return now + 1
	}
	return mem.NoEvent
}

// Inject delivers every inbound response visible at cycle now to its
// original owner (the L2's Complete, which queues the fill and bumps
// its wake counter).
func (l *CoreLink) Inject(now mem.Cycle) {
	for l.inHead < len(l.in) && l.in[l.inHead].at <= now {
		r := l.in[l.inHead].req
		l.in[l.inHead] = linkEntry{}
		l.inHead++
		r.Owner.Complete(r)
	}
	if l.inHead == len(l.in) {
		l.in = l.in[:0]
		l.inHead = 0
	}
}

// StateDigest folds the link's architectural state — buffered requests
// on both paths and the parked completion slots — so mid-flight bridge
// state participates in the determinism digests.
func (l *CoreLink) StateDigest() uint64 {
	d := observatory.NewDigest().Word(uint64(l.lat))
	d = d.Word(uint64(len(l.out) - l.outHead))
	for _, e := range l.out[l.outHead:] {
		d = d.Word(uint64(e.at))
		d = observatory.DigestRequest(d, e.req)
	}
	d = d.Word(uint64(len(l.in) - l.inHead))
	for _, e := range l.in[l.inHead:] {
		d = d.Word(uint64(e.at))
		d = observatory.DigestRequest(d, e.req)
	}
	for i, s := range l.slots {
		if s.live {
			d = d.Word(uint64(i)).Word(uint64(s.tag))
		}
	}
	return d.Sum()
}

// Shared-domain calendar ranks.
const (
	sharedRankLLC = iota
	sharedRankDRAM
	numSharedRanks
)

// SharedDomain is the serial half of a sharded system: the shared LLC,
// the DRAM channel, and the deterministic drain that merges the cores'
// buffered requests. It only ever runs between core phases, on one
// goroutine.
type SharedDomain struct {
	llc   *cache.Cache
	dram  *dram.DRAM
	links []*CoreLink
	seed  uint64

	// BlackHole, when >= 0, silently drops that core's outbound
	// requests at drain time (wedge-injection test hook).
	BlackHole int

	now      mem.Cycle
	evq      *event.Queue
	primed   bool
	lastWake [numSharedRanks]uint64
	stall    []bool // per-core head-of-line stall, valid within one drain cycle

	prof *observatory.Profile
}

// LLC exposes the shared cache (diagnostics and stats snapshots).
func (s *SharedDomain) LLC() *cache.Cache { return s.llc }

// DRAM exposes the shared memory channel (observer attachment and
// stats snapshots).
func (s *SharedDomain) DRAM() *dram.DRAM { return s.dram }

// Now returns the cycle the shared domain has completed.
func (s *SharedDomain) Now() mem.Cycle { return s.now }

// AttachProfile arms attribution profiling for the shared ranks.
func (s *SharedDomain) AttachProfile(p *observatory.Profile) {
	if p == nil {
		return
	}
	p.EnsureRanks(ShardProfileRanks[:])
	if p.EngineVersion == "" {
		p.EngineVersion = EngineVersion
	}
	s.prof = p
}

// StateDigests appends the shared components' digests (LLC, DRAM).
func (s *SharedDomain) StateDigests(dst []uint64) []uint64 {
	return append(dst, s.llc.StateDigest(), s.dram.StateDigest())
}

// nextArrival reports the earliest cycle a buffered request wants to
// enter the LLC: a head rejected at or before the current cycle retries
// next cycle.
func (s *SharedDomain) nextArrival() mem.Cycle {
	next := mem.NoEvent
	for _, l := range s.links {
		if at, ok := l.headAt(); ok {
			if at <= s.now {
				return s.now + 1
			}
			if at < next {
				next = at
			}
		}
	}
	return next
}

// drain moves every buffered request with issue cycle <= t into the
// LLC, in the seeded deterministic merge order: strictly by issue
// cycle, ties between cores broken by core index rotated by
// (seed+cycle) mod cores. A request the LLC rejects (queue full) stalls
// its core's FIFO for this cycle and retries on the next; other cores
// keep draining. The order depends only on buffered state, never on
// which goroutine produced it.
func (s *SharedDomain) drain(t mem.Cycle) {
	n := len(s.links)
	for i := range s.stall {
		s.stall[i] = false
	}
	for {
		best, bestOrd := -1, 0
		bestAt := mem.NoEvent
		for i, l := range s.links {
			if s.stall[i] {
				continue
			}
			at, ok := l.headAt()
			if !ok || at > t {
				continue
			}
			rot := int((s.seed + uint64(at)) % uint64(n))
			ord := (i - rot + n) % n
			if at < bestAt || (at == bestAt && ord < bestOrd) {
				best, bestAt, bestOrd = i, at, ord
			}
		}
		if best < 0 {
			return
		}
		l := s.links[best]
		if best == s.BlackHole {
			l.popHead() // dropped: never reaches the LLC, never completes
			continue
		}
		r := l.peekHead()
		l.swapOwner(r)
		if !s.llc.Enqueue(r) {
			l.unswapOwner(r)
			s.stall[best] = true
			continue
		}
		l.popHead()
	}
}

// LockstepCycle advances the shared domain one cycle: arrivals first
// (the L2-to-LLC hand-off happens before the LLC's tick, exactly as the
// single-core rank order has it), then the LLC and the channel.
func (s *SharedDomain) LockstepCycle(u mem.Cycle) {
	s.now = u
	s.drain(u)
	s.llc.Tick(u)
	s.dram.Tick(u)
}

// Advance runs the shared domain from its current cycle to exactly
// `to`, event-driven: idle gaps are integrated with SkipIdle, visited
// cycles drain arrivals and tick whichever of LLC/DRAM is due or was
// poked. Bit-identical to calling LockstepCycle for every cycle.
func (s *SharedDomain) Advance(to mem.Cycle) {
	if s.now >= to {
		return
	}
	// Prime once: between phases the cores only append to their links'
	// outbound buffers (seen by nextArrival each iteration), never touch
	// the LLC or DRAM, so the calendar from the previous phase is still
	// exact.
	if !s.primed {
		s.evq.Schedule(sharedRankLLC, s.llc.NextEvent(s.now))
		s.lastWake[sharedRankLLC] = s.llc.WakeCount()
		s.evq.Schedule(sharedRankDRAM, s.dram.NextEvent(s.now))
		s.lastWake[sharedRankDRAM] = s.dram.WakeCount()
		s.primed = true
	}

	for s.now < to {
		next := s.evq.Next()
		if a := s.nextArrival(); a < next {
			next = a
		}
		if next > to {
			// Provably idle through the phase boundary: integrate and stop.
			k := to - s.now
			s.llc.SkipIdle(k)
			s.dram.SkipIdle(k)
			s.now = to
			if s.prof != nil {
				s.prof.Gap(uint64(k))
			}
			return
		}
		s.advanceSharedTo(next)
	}
}

// advanceSharedTo skips the provably idle gap and processes cycle t.
func (s *SharedDomain) advanceSharedTo(t mem.Cycle) {
	if k := t - s.now - 1; k > 0 {
		s.llc.SkipIdle(k)
		s.dram.SkipIdle(k)
		s.now += k
		if s.prof != nil {
			s.prof.Gap(uint64(k))
		}
	}
	s.now = t
	if s.prof != nil {
		s.prof.Advance(false)
	}
	s.drain(t)

	var ticked [numSharedRanks]bool
	{
		due := s.evq.At(sharedRankLLC) <= t
		woke := s.llc.WakeCount() != s.lastWake[sharedRankLLC]
		if due || woke {
			s.llc.Tick(t)
			ticked[sharedRankLLC] = true
		} else {
			s.llc.SkipIdle(1)
		}
		if s.prof != nil {
			s.prof.Visit(rankLLC, ticked[sharedRankLLC], due, woke, false)
		}
	}
	{
		due := s.evq.At(sharedRankDRAM) <= t
		woke := s.dram.WakeCount() != s.lastWake[sharedRankDRAM]
		if due || woke {
			s.dram.Tick(t)
			ticked[sharedRankDRAM] = true
		} else {
			s.dram.SkipIdle(1)
		}
		if s.prof != nil {
			s.prof.Visit(rankDRAM, ticked[sharedRankDRAM], due, woke, false)
		}
	}

	if ticked[sharedRankLLC] || s.llc.WakeCount() != s.lastWake[sharedRankLLC] {
		s.evq.Schedule(sharedRankLLC, s.llc.NextEvent(t))
		s.lastWake[sharedRankLLC] = s.llc.WakeCount()
		if s.prof != nil {
			s.prof.Rearm(rankLLC, true)
		}
	} else if s.prof != nil {
		s.prof.Rearm(rankLLC, false)
	}
	if ticked[sharedRankDRAM] || s.dram.WakeCount() != s.lastWake[sharedRankDRAM] {
		s.evq.Schedule(sharedRankDRAM, s.dram.NextEvent(t))
		s.lastWake[sharedRankDRAM] = s.dram.WakeCount()
		if s.prof != nil {
			s.prof.Rearm(rankDRAM, true)
		}
	} else if s.prof != nil {
		s.prof.Rearm(rankDRAM, false)
	}
}

// ShardedSystem is a built multi-core system: per-core private domains
// behind links, around one shared LLC/DRAM domain.
type ShardedSystem struct {
	Cores  []*CoreSystem
	Links  []*CoreLink
	Shared *SharedDomain
	// LinkLatency is the configured interconnect latency — the epoch-
	// safety bound for barrier intervals.
	LinkLatency mem.Cycle
}

// BuildSharded assembles a sharded multi-core system: each core gets
// its own request pool (core phases run on separate goroutines), a
// private GM/L1D/L2 stack forwarding into its CoreLink, and the shared
// domain owns the LLC, the DRAM channel, and their pool. linkLat <= 0
// selects DefaultLinkLatency; seed parameterizes the drain rotation.
func BuildSharded(cfg Config, cores int, mix []trace.Source, linkLat mem.Cycle, seed uint64) (*ShardedSystem, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if linkLat <= 0 {
		linkLat = DefaultLinkLatency
	}
	channel := dram.New(cfg.DRAM)
	// The shared LLC scales the per-core bank config by the core count:
	// capacity, MSHRs, queues, and ports all multiply (with the default
	// cache.LLCConfig(1) bank this reproduces cache.LLCConfig(cores)
	// exactly), while associativity, latency, and the prefetch port stay
	// per-bank. Shrinking cfg.LLC therefore shrinks the shared cache —
	// the contention tests rely on that.
	llcCfg := cfg.LLC
	llcCfg.SizeKiB *= cores
	llcCfg.MSHRs *= cores
	llcCfg.RQSize *= cores
	llcCfg.WQSize *= cores
	llcCfg.PQSize *= cores
	llcCfg.MaxReads *= cores
	llcCfg.MaxWrites *= cores
	llcCfg.MaxFills *= cores
	llc := cache.New(llcCfg, channel)
	sharedPool := &mem.RequestPool{}
	channel.SetPool(sharedPool)
	llc.SetPool(sharedPool)

	shared := &SharedDomain{
		llc:       llc,
		dram:      channel,
		seed:      seed,
		BlackHole: -1,
		evq:       event.New(numSharedRanks),
		stall:     make([]bool, cores),
	}

	sys := &ShardedSystem{Shared: shared, LinkLatency: linkLat}
	for i := 0; i < cores; i++ {
		// Each core gets a disjoint address space, as separate processes
		// would (1 TiB apart — far beyond any generator's regions). The
		// trace replays without bound: cores that finish their measured
		// budget keep running (and keep contending for the shared LLC
		// and DRAM) until the slowest core finishes, as in ChampSim.
		src := trace.Repeat(trace.Offset(mix[i], mem.Addr(i)<<40), 1<<62)
		link := &CoreLink{core: i, lat: linkLat, shared: shared}
		pool := &mem.RequestPool{}
		m := &Machine{cfg: cfg, pool: pool}
		m.mem = channel
		m.llc = llc
		m.link = link
		m.l2 = cache.New(cfg.L2, link)
		m.l1d = cache.New(cfg.L1D, m.l2)
		var loadPort cpu.LoadPort = l1dLoadPort{m.l1d}
		if cfg.Secure {
			var filter ghostminion.Filter = ghostminion.FullUpdate{}
			if cfg.SUF {
				m.suf = new(seccore.SUF)
				filter = m.suf
			}
			m.gm = ghostminion.New(cfg.GM, m.l1d, filter)
			loadPort = m.gm
		}
		m.core = cpu.New(cfg.Core, src, loadPort, l1dStorePort{m.l1d})
		if !cfg.DisableTLB {
			m.tlbs = tlb.New(cfg.TLB)
			m.core.TLB = m.tlbs
		}
		if err := m.buildPrefetcher(); err != nil {
			return nil, err
		}
		m.core.SetPool(pool)
		if m.gm != nil {
			m.gm.SetPool(pool)
		}
		m.l1d.SetPool(pool)
		m.l2.SetPool(pool)
		m.wireCommit()
		sys.Cores = append(sys.Cores, m)
		shared.links = append(shared.links, link)
	}
	sys.Links = shared.links
	return sys, nil
}

// StepCore advances this core's private domain one cycle: the core,
// its GM, L1D, L2, and finally the link's response injection — the
// lockstep reference order the event-driven advance reproduces.
func (m *Machine) StepCore(u mem.Cycle) {
	m.now = u
	m.link.now = u
	m.core.Tick(u)
	if m.gm != nil {
		m.gm.Tick(u)
	}
	m.l1d.Tick(u)
	m.l2.Tick(u)
	m.link.Inject(u)
	m.checkCoreWindow()
}

// checkCoreWindow samples the per-core window series when the retired
// instruction count crossed the next boundary. Both sharded engines
// call it at every visited cycle; instructions only retire on core
// ticks, so the crossing cycle is always visited and the sample point
// is engine-, worker-, and interval-invariant.
func (m *Machine) checkCoreWindow() {
	if m.winObs != nil && m.core.Stats.Instructions >= m.winNext {
		m.sampleWindow()
		for m.core.Stats.Instructions >= m.winNext {
			m.winNext += m.winEvery
		}
	}
}

// AttachShardProfile arms attribution profiling with the multicore rank
// vocabulary (ShardProfileRanks).
func (m *Machine) AttachShardProfile(p *observatory.Profile) {
	if p == nil {
		return
	}
	p.EnsureRanks(ShardProfileRanks[:])
	if p.EngineVersion == "" {
		p.EngineVersion = EngineVersion
	}
	m.prof = p
}

// PrivateDigests appends this core's private-component state digests in
// PrivateComponentNames order (absent components digest to zero).
func (m *Machine) PrivateDigests(dst []uint64) []uint64 {
	var comps [NumPrivateComponents]uint64
	comps[0] = m.core.StateDigest()
	if m.gm != nil {
		comps[1] = m.gm.StateDigest()
	}
	comps[2] = m.l1d.StateDigest()
	comps[3] = m.l2.StateDigest()
	if m.tlbs != nil {
		comps[4] = m.tlbs.StateDigest()
	}
	if m.bertiPF != nil {
		comps[5] = m.bertiPF.StateDigest()
	}
	comps[6] = m.link.StateDigest()
	return append(dst, comps[:]...)
}

// primePrivate (re)builds the private calendar: core, GM, L1D, L2 at
// their own NextEvent, the link at its next response visibility. The
// DRAM rank is cancelled — the shared domain is not this machine's to
// schedule.
func (m *Machine) primePrivate() {
	if m.evq == nil {
		m.evq = event.New(numRanks)
	}
	m.evq.Schedule(rankCore, m.core.NextEvent(m.now))
	m.lastWake[rankCore] = m.core.WakeCount()
	if m.gm != nil {
		m.evq.Schedule(rankGM, m.gm.NextEvent(m.now))
		m.lastWake[rankGM] = m.gm.WakeCount()
		m.lastGMVer = m.gm.StateVersion()
	}
	m.evq.Schedule(rankL1D, m.l1d.NextEvent(m.now))
	m.lastWake[rankL1D] = m.l1d.WakeCount()
	m.evq.Schedule(rankL2, m.l2.NextEvent(m.now))
	m.lastWake[rankL2] = m.l2.WakeCount()
	m.evq.Schedule(rankLink, m.link.NextInject(m.now))
	m.evq.Cancel(rankDRAM)
}

// AdvanceCore advances the private domain to exactly cycle `to`. When
// target > 0 the advance pauses at the first cycle the retired
// instruction count reaches target (the multicore engine's stop
// staging: the barrier computes the global stop cycle from the pause
// cycles, then resumes). Returns the cycle reached and whether the
// target was hit. Uses the lockstep reference when the machine's
// reference engine is selected.
func (m *Machine) AdvanceCore(to mem.Cycle, target uint64) (mem.Cycle, bool) {
	if target > 0 && m.core.Stats.Instructions >= target {
		return m.now, true
	}
	if m.noSkip {
		for m.now < to {
			m.StepCore(m.now + 1)
			if target > 0 && m.core.Stats.Instructions >= target {
				return m.now, true
			}
		}
		return m.now, false
	}
	// Prime once; on later epochs only the link rank can have gained an
	// event from outside (responses completed by the shared domain
	// between core phases) — every other rank's schedule is still exact
	// because nothing but this goroutine touches those components.
	if !m.shardPrimed {
		m.primePrivate()
		m.shardPrimed = true
	} else {
		m.evq.Schedule(rankLink, m.link.NextInject(m.now))
	}
	for m.now < to {
		next := m.evq.Next()
		clamped := false
		if next > to {
			next, clamped = to, true
		}
		m.advancePrivateTo(next)
		m.checkCoreWindow()
		if m.prof != nil {
			m.prof.Advance(clamped)
		}
		if target > 0 && m.core.Stats.Instructions >= target {
			return m.now, true
		}
	}
	return m.now, false
}

// advancePrivateTo is advanceTo for the private ranks: gap-skip the
// provably idle stretch, then process cycle t in rank order — core, GM,
// L1D, L2, link injection — with the same due/woke/version tick
// conditions and conditional re-arms as the single-core engine.
func (m *Machine) advancePrivateTo(t mem.Cycle) {
	if k := t - m.now - 1; k > 0 {
		m.core.SkipIdle(m.now, k)
		if m.gm != nil {
			m.gm.SkipIdle(k)
		}
		m.l1d.SkipIdle(k)
		m.l2.SkipIdle(k)
		m.now += k
		if m.prof != nil {
			m.prof.Gap(uint64(k))
		}
	}
	m.now = t
	m.link.now = t
	var ticked [numRanks]bool

	{
		due := m.evq.At(rankCore) <= t
		woke := m.core.WakeCount() != m.lastWake[rankCore]
		ver := m.gm != nil && m.gm.StateVersion() != m.lastGMVer
		if due || woke || ver {
			m.core.Tick(t)
			ticked[rankCore] = true
		} else {
			m.core.SkipIdle(t-1, 1)
		}
		if m.prof != nil {
			m.prof.Visit(rankCore, ticked[rankCore], due, woke, ver)
		}
	}
	if m.gm != nil {
		due := m.evq.At(rankGM) <= t
		woke := m.gm.WakeCount() != m.lastWake[rankGM]
		if due || woke {
			m.gm.Tick(t)
			ticked[rankGM] = true
		} else {
			m.gm.SkipIdle(1)
		}
		if m.prof != nil {
			m.prof.Visit(rankGM, ticked[rankGM], due, woke, false)
		}
	}
	caches := [...]*cache.Cache{m.l1d, m.l2}
	for i, c := range caches {
		r := rankL1D + i
		due := m.evq.At(r) <= t
		woke := c.WakeCount() != m.lastWake[r]
		if due || woke {
			c.Tick(t)
			ticked[r] = true
		} else {
			c.SkipIdle(1)
		}
		if m.prof != nil {
			m.prof.Visit(r, ticked[r], due, woke, false)
		}
	}
	{
		due := m.evq.At(rankLink) <= t
		if due {
			m.link.Inject(t)
			ticked[rankLink] = true
		}
		if m.prof != nil {
			m.prof.Visit(profileRank(rankLink), ticked[rankLink], due, false, false)
		}
	}

	// Conditional re-arms, as in advanceTo: a rank that ticked or was
	// poked this cycle gets a fresh schedule.
	if ticked[rankCore] || m.core.WakeCount() != m.lastWake[rankCore] ||
		(m.gm != nil && m.gm.StateVersion() != m.lastGMVer) {
		m.evq.Schedule(rankCore, m.core.NextEvent(t))
		m.lastWake[rankCore] = m.core.WakeCount()
		if m.gm != nil {
			m.lastGMVer = m.gm.StateVersion()
		}
		if m.prof != nil {
			m.prof.Rearm(rankCore, true)
		}
	} else if m.prof != nil {
		m.prof.Rearm(rankCore, false)
	}
	if m.gm != nil {
		if ticked[rankGM] || m.gm.WakeCount() != m.lastWake[rankGM] {
			m.evq.Schedule(rankGM, m.gm.NextEvent(t))
			m.lastWake[rankGM] = m.gm.WakeCount()
			if m.prof != nil {
				m.prof.Rearm(rankGM, true)
			}
		} else if m.prof != nil {
			m.prof.Rearm(rankGM, false)
		}
	}
	for i, c := range caches {
		r := rankL1D + i
		if ticked[r] || c.WakeCount() != m.lastWake[r] {
			m.evq.Schedule(r, c.NextEvent(t))
			m.lastWake[r] = c.WakeCount()
			if m.prof != nil {
				m.prof.Rearm(r, true)
			}
		} else if m.prof != nil {
			m.prof.Rearm(r, false)
		}
	}
	m.evq.Schedule(rankLink, m.link.NextInject(t))
	if m.prof != nil {
		m.prof.Rearm(profileRank(rankLink), ticked[rankLink])
	}
}

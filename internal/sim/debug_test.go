package sim

import (
	"testing"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

// TestDebugWedge reproduces a wedged configuration and dumps machine
// state for diagnosis. It is skipped once the smoke test passes; keep
// it around as a diagnostic harness.
func TestDebugWedge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 20_000
	cfg.Prefetcher = "berti"

	tr, err := workload.Get("605.mcf-1554B", workload.Params{Instrs: 20_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachine(cfg, trace.NewSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	last := uint64(0)
	lastCycle := m.now
	for m.core.Stats.Instructions < 20_000 && !m.core.Done() {
		m.step()
		if m.core.Stats.Instructions != last {
			last = m.core.Stats.Instructions
			lastCycle = m.now
		}
		if m.now-lastCycle > 100_000 {
			t.Logf("WEDGED at cycle %d, %d instructions retired", m.now, last)
			t.Logf("L1D: rq=%d wq=%d pq=%d fills=%d mshr=%d/%d fwdq=%d",
				len(m.l1d.DebugQueues()), m.l1d.DebugWQ(), m.l1d.DebugPQ(), m.l1d.DebugFills(), m.l1d.Config().MSHRs-m.l1d.MSHRFree(), m.l1d.Config().MSHRs, m.l1d.DebugFwd())
			t.Logf("L2 : rq=%d wq=%d pq=%d fills=%d mshr=%d/%d fwdq=%d",
				len(m.l2.DebugQueues()), m.l2.DebugWQ(), m.l2.DebugPQ(), m.l2.DebugFills(), m.l2.Config().MSHRs-m.l2.MSHRFree(), m.l2.Config().MSHRs, m.l2.DebugFwd())
			t.Logf("LLC: rq=%d wq=%d pq=%d fills=%d mshr=%d/%d fwdq=%d",
				len(m.llc.DebugQueues()), m.llc.DebugWQ(), m.llc.DebugPQ(), m.llc.DebugFills(), m.llc.Config().MSHRs-m.llc.MSHRFree(), m.llc.Config().MSHRs, m.llc.DebugFwd())
			t.Logf("DRAM: rq=%d wq=%d resp=%d", m.mem.DebugRQ(), m.mem.DebugWQ(), m.mem.DebugResp())
			t.Logf("core: %s", m.core.DebugHead())
			for _, s := range m.l1d.DebugMSHR() {
				t.Logf("L1D mshr: %s", s)
			}
			t.FailNow()
		}
	}
	t.Logf("completed OK at cycle %d", m.now)
}

package sim

import (
	"fmt"

	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/stats"
	"secpref/internal/trace"
)

// Probes configures the observability attachments for one run. The zero
// value attaches nothing: every component's observer field stays nil and
// the hot paths pay only their branch-on-nil guard (RunProbed with zero
// Probes is exactly Run).
//
// Probes deliberately lives outside Config: observers are runtime
// attachments, not part of the simulated system's identity, so Config
// stays comparable/serializable and results from probed and unprobed
// runs of the same Config are directly comparable (and bit-identical —
// see TestRunProbedEquivalence).
type Probes struct {
	// Observer receives fine-grained hot-path events from every site
	// (core, GM, cache levels, DRAM). Use probe.Fanout to attach several.
	Observer probe.Observer
	// Window receives cumulative counter snapshots at instruction-window
	// boundaries of the measured phase (warmup is never sampled), plus
	// one final snapshot at run end.
	Window probe.WindowObserver
	// WindowInstrs is the sampling interval in retired instructions;
	// 0 means DefaultWindowInstrs.
	WindowInstrs uint64
	// Profile, if set, accumulates engine-attribution counters for the
	// whole run (warmup included): per-rank tick/integration splits,
	// wake-poke causes, re-arm outcomes, and gap-size histograms. One
	// Profile belongs to one run; use observatory.Aggregate to combine
	// across a campaign.
	Profile *observatory.Profile
	// Digest, if set, receives the per-component architectural-state
	// digest vector every DigestEvery cycles, from cycle zero (warmup
	// included, so streams from two engines are comparable end to end).
	Digest observatory.DigestSink
	// DigestEvery is the digest interval in cycles; 0 means
	// DefaultDigestEvery.
	DigestEvery mem.Cycle
	// ReferenceEngine runs the lockstep tick-every-cycle engine instead
	// of the calendar-queue event engine. Results and digest streams
	// must be bit-identical between the two; the divergence machinery
	// exists to localize any case where they are not.
	ReferenceEngine bool
}

// DefaultWindowInstrs is the sampling interval when Probes.WindowInstrs
// is zero.
const DefaultWindowInstrs = 1000

// attachObserver points every component's observer field at o.
func (m *Machine) attachObserver(o probe.Observer) {
	if o == nil {
		return
	}
	m.obs = o
	m.core.Obs = o
	if m.gm != nil {
		m.gm.Obs = o
	}
	m.l1d.Obs = o
	m.l2.Obs = o
	m.llc.Obs = o
	m.mem.Obs = o
}

// armWindows starts interval sampling. Called after warmup's stats
// reset, so samples count from the start of the measured phase.
func (m *Machine) armWindows(w probe.WindowObserver, every uint64) {
	if w == nil {
		return
	}
	if every == 0 {
		every = DefaultWindowInstrs
	}
	m.winObs = w
	m.winEvery = every
	m.winNext = m.core.Stats.Instructions + every
	m.winStart = m.now
}

// sampleWindow assembles the cumulative counter snapshot and hands it to
// the window observer. All counters are measured-phase cumulative
// (resetStats zeroed them at the warmup boundary), so consecutive
// samples difference into per-interval rates.
func (m *Machine) sampleWindow() {
	// The first level the core observes: the GM on a secure system.
	first := &m.l1d.Stats
	demandMisses := m.l1d.Stats.DemandMisses()
	if m.gm != nil {
		first = &m.gm.Stats
		demandMisses = m.gm.Stats.Misses[mem.KindLoad]
	}
	l2Misses := m.l2.Stats.DemandMisses() + m.l2.Stats.Misses[mem.KindRefetch]
	if m.cfg.Secure {
		l2Misses = m.l2.Stats.SpecMisses
	}
	home := m.homeCache()
	s := probe.Sample{
		Core:           m.winCore,
		Cycle:          uint64(m.now - m.winStart),
		Instructions:   m.core.Stats.Instructions,
		Loads:          m.core.Stats.Loads,
		DemandMisses:   demandMisses,
		L2DemandMisses: l2Misses,
		MissLatSum:     first.DemandMissLatSum,
		MissLatCnt:     first.DemandMissLatCnt,
		MSHROccupancy:  home.Stats.MSHROccupancy,
		MSHRFullCycles: home.Stats.MSHRFullCycles,
		MSHRCycles:     home.Stats.Cycles,
		PrefIssued:     home.Stats.PrefIssued,
		CommitGMHits:   m.core.Stats.CommitGMHits,
		CommitGMMisses: m.core.Stats.CommitGMMisses,
		SUFDrops:       m.core.Stats.SUFDrops,
	}
	// Prefetch fills aggregate from the home level down, matching
	// Result.PrefAccuracy (prefetchers legitimately fill deeper). In a
	// sharded system the LLC and DRAM belong to the shared domain, which
	// advances on another goroutine mid-epoch: the per-core sample stops
	// at the private L2 and leaves DRAMReads zero — per-core
	// shared-domain activity is the interference observatory's job.
	levels := [...]*stats.CacheStats{&m.l1d.Stats, &m.l2.Stats, &m.llc.Stats}
	n := len(levels)
	if m.link != nil {
		n-- // shared LLC excluded from per-core samples
	} else {
		s.DRAMReads = m.mem.Stats.Reads
	}
	for _, cs := range levels[int(home.Level()):n] {
		s.PrefFilled += cs.PrefFilled
		s.PrefUseful += cs.PrefUseful
		s.PrefLate += cs.PrefLate
	}
	if m.gm != nil {
		s.PrefLate += m.gm.Stats.PrefLate
	}
	m.winObs.Window(s)
	m.winLast = s.Instructions
	if m.prof != nil {
		m.prof.TrackSample(uint64(m.now))
	}
}

// flushWindow emits the final (usually partial) window at run end.
func (m *Machine) flushWindow() {
	if m.winObs != nil && m.core.Stats.Instructions > m.winLast {
		m.sampleWindow()
	}
}

// RunProbed executes the configured simulation with observers attached.
// Observers see warmup-phase events (the tracer's ring keeps the newest
// anyway); window sampling covers only the measured phase. Attaching
// probes never changes the simulated outcome: observers are read-only
// and nothing is read back from them.
func RunProbed(cfg Config, src trace.Source, p Probes) (*Result, error) {
	m, err := NewMachine(cfg, src)
	if err != nil {
		return nil, err
	}
	if p.ReferenceEngine {
		m.noSkip = true
	}
	m.attachObserver(p.Observer)
	m.attachProfile(p.Profile)
	m.armDigests(p.Digest, p.DigestEvery)
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = mem.Cycle(1000 * (cfg.WarmupInstrs + cfg.MaxInstrs))
	}

	// Warmup phase.
	if cfg.WarmupInstrs > 0 {
		if err := m.runUntil(uint64(cfg.WarmupInstrs), maxCycles); err != nil {
			return nil, fmt.Errorf("%w (warmup, trace %s, %s)", err, src.Name(), cfg.Label())
		}
		m.resetStats()
	}
	m.armWindows(p.Window, p.WindowInstrs)

	startCycle := m.now
	if err := m.runUntil(uint64(cfg.MaxInstrs), maxCycles); err != nil {
		return nil, fmt.Errorf("%w (trace %s, %s)", err, src.Name(), cfg.Label())
	}
	m.flushWindow()
	if m.classifier != nil {
		m.classifier.Finalize()
	}
	return m.result(src.Name(), m.now-startCycle), nil
}

package sim

import (
	"errors"
	"fmt"
	"time"

	"secpref/internal/cache"
	seccore "secpref/internal/core"
	"secpref/internal/cpu"
	"secpref/internal/dram"
	"secpref/internal/energy"
	"secpref/internal/event"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/prefetch"
	"secpref/internal/prefetch/berti"
	"secpref/internal/probe"
	"secpref/internal/stats"
	"secpref/internal/tlb"
	"secpref/internal/trace"
)

// ErrNoProgress reports a wedged simulation (a modeling bug, not a
// workload property); it aborts rather than spinning forever.
var ErrNoProgress = errors.New("sim: no instruction retired for too long")

// Component ranks: each component's fixed position in the calendar
// queue, identical to the lockstep tick order. Ties at the same cycle
// tick in ascending rank order, so the event-driven engine processes
// simultaneous wakeups exactly as step() would.
const (
	rankCore = iota
	rankGM
	rankL1D
	rankL2
	rankLLC
	rankDRAM
	numRanks
)

// Machine is one assembled single-core system.
type Machine struct {
	cfg Config
	// pool is the machine-wide request free list; every component
	// allocates and recycles mem.Requests through it.
	pool *mem.RequestPool
	// noSkip disables idle-cycle fast-forward (equivalence tests).
	noSkip bool

	core *cpu.Core
	gm   *ghostminion.GM
	l1d  *cache.Cache
	l2   *cache.Cache
	llc  *cache.Cache
	mem  *dram.DRAM
	tlbs *tlb.Hierarchy
	// link bridges this core's L2 to a shared LLC/DRAM domain in
	// sharded multi-core builds (BuildSharded); nil on single-core
	// machines. shardPrimed tracks whether AdvanceCore has built the
	// private calendar (it stays exact across epochs).
	link        *CoreLink
	shardPrimed bool

	pf         prefetch.Prefetcher
	bertiPF    *berti.Prefetcher
	shadow     prefetch.Prefetcher
	shadowBert *berti.Prefetcher
	classifier *prefetch.Classifier
	monitor    *seccore.LatenessMonitor
	xlq        *seccore.XLQ
	suf        *seccore.SUF

	// obs receives prefetcher-training events (EvTrain) emitted by the
	// machine itself; the components' own Obs fields are set alongside
	// it by attachObserver. Nil means disabled.
	obs probe.Observer

	// Interval sampling state (armWindows / sampleWindow in probes.go);
	// winObs nil means disabled and the run loop pays one nil check.
	winObs   probe.WindowObserver
	winEvery uint64
	winNext  uint64
	winLast  uint64
	winStart mem.Cycle
	winCore  int // core index stamped onto samples (sharded systems)

	// Calendar-queue engine state (see runUntil / advanceTo). lastWake
	// and lastGMVer are the wake counters / GM state version observed
	// when each rank was last (re)scheduled; a component whose counter
	// moved was handed work by a peer and must tick even if its own
	// schedule says otherwise.
	evq       *event.Queue
	lastWake  [numRanks]uint64
	lastGMVer uint64

	// Observatory state (observatory.go). prof accumulates engine
	// attribution; digSink receives the rolling per-component state
	// digests every digEvery cycles (digNext is the next boundary,
	// digBuf the reused vector). rtProgress/rtCount are RunToCycle's
	// wedge detector. All nil/zero when unarmed: the run loop pays one
	// nil check each.
	prof       *observatory.Profile
	digSink    observatory.DigestSink
	digEvery   mem.Cycle
	digNext    mem.Cycle
	digBuf     []uint64
	rtProgress mem.Cycle
	rtCount    uint64

	now mem.Cycle
}

type l1dLoadPort struct{ c *cache.Cache }

func (p l1dLoadPort) IssueLoad(r *mem.Request) bool { return p.c.Enqueue(r) }

type l1dStorePort struct{ c *cache.Cache }

func (p l1dStorePort) IssueStore(r *mem.Request) bool { return p.c.Enqueue(r) }

// NewMachine assembles a system per cfg, reading instructions from src.
// The source is wrapped so it repeats if shorter than the requested
// instruction count.
func NewMachine(cfg Config, src trace.Source) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// An empty source would silently simulate zero instructions and
	// surface much later as a confusing ErrNoProgress; reject it here.
	src, err := trace.NonEmpty(src)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	// Slack covers retire-width overshoot at the warmup boundary (the
	// warmup loop can retire a few instructions past its target).
	total := cfg.WarmupInstrs + cfg.MaxInstrs + 64
	src = trace.Repeat(src, total)

	m := &Machine{cfg: cfg, pool: &mem.RequestPool{}}
	m.mem = dram.New(cfg.DRAM)
	m.llc = cache.New(cfg.LLC, m.mem)
	m.l2 = cache.New(cfg.L2, m.llc)
	m.l1d = cache.New(cfg.L1D, m.l2)

	var loadPort cpu.LoadPort = l1dLoadPort{m.l1d}
	if cfg.Secure {
		var filter ghostminion.Filter = ghostminion.FullUpdate{}
		if cfg.SUF {
			m.suf = &seccore.SUF{}
			filter = m.suf
		}
		m.gm = ghostminion.New(cfg.GM, m.l1d, filter)
		loadPort = m.gm
	}
	m.core = cpu.New(cfg.Core, src, loadPort, l1dStorePort{m.l1d})
	if !cfg.DisableTLB {
		m.tlbs = tlb.New(cfg.TLB)
		m.core.TLB = m.tlbs
	}
	m.wirePool()

	if err := m.buildPrefetcher(); err != nil {
		return nil, err
	}
	m.wireCommit()
	return m, nil
}

// homeCache returns the cache level the prefetcher lives at.
func (m *Machine) homeCache() *cache.Cache {
	if m.pf != nil && m.pf.Home() == mem.LvlL2 {
		return m.l2
	}
	return m.l1d
}

func (m *Machine) buildPrefetcher() error {
	name := m.cfg.Prefetcher
	if name == "" || name == "none" {
		return nil
	}
	// The issuer routes into the home cache's prefetch queue and
	// notifies the classifier of real issues. On the secure system,
	// commit-time prefetches probe the GM first: a line whose data is
	// already speculatively resident is bound to reach L1D via the
	// commit path, so fetching it again from the hierarchy would only
	// duplicate traffic (the commit engine performs the same lookup).
	issuer := func(line mem.Line, ip mem.Addr, fill mem.Level) bool {
		if m.classifier != nil {
			m.classifier.OnRealIssue(line, m.now)
		}
		if m.gm != nil && m.cfg.Mode != ModeOnAccess && m.gm.Contains(line) {
			return true // satisfied by GM-resident data
		}
		return m.homeCache().Prefetch(line, ip, fill, m.now)
	}
	pf, err := prefetch.New(name, issuer)
	if err != nil {
		return err
	}
	m.pf = pf
	if b, ok := pf.(*berti.Prefetcher); ok {
		m.bertiPF = b
		b.MSHRFree = m.l1d.MSHRFree
	}

	// Timely-secure machinery for non-self-timing prefetchers.
	if m.cfg.Mode == ModeTimelySecure {
		if dt, ok := pf.(prefetch.DistanceTunable); ok {
			threshold := seccore.DefaultLateness
			if name == "bingo" {
				threshold = seccore.BingoLateness
			}
			if m.cfg.LatenessThreshold > 0 {
				threshold = m.cfg.LatenessThreshold
			}
			home := m.homeCache()
			m.monitor = seccore.NewLatenessMonitor(dt, threshold, m.cfg.LatenessInterval, func() (uint64, uint64) {
				return home.Stats.PrefLate, home.Stats.PrefUseful
			})
		}
		if m.bertiPF != nil {
			m.xlq = &seccore.XLQ{}
		}
	}

	if m.cfg.Classify {
		m.classifier = prefetch.NewClassifier()
		shadow, err := prefetch.New(name, m.classifier.ShadowIssue)
		if err != nil {
			return err
		}
		m.shadow = shadow
		m.classifier.AttachShadow(shadow)
		if sb, ok := shadow.(*berti.Prefetcher); ok {
			m.shadowBert = sb
		}
	}

	m.wireTraining()
	return nil
}

// wireTraining attaches the access-stream hooks: on-access training for
// ModeOnAccess, shadow training for the classifier, Berti fill
// observation, and the lateness monitor's miss/phase feed.
func (m *Machine) wireTraining() {
	home := m.homeCache()

	accessEv := func(ai cache.AccessInfo) prefetch.Event {
		return prefetch.Event{
			Line:          ai.Line,
			IP:            ai.IP,
			Hit:           ai.Hit,
			HitPrefetched: ai.HitPrefetched,
			PrefFetchLat:  ai.PrefFetchLat,
			Cycle:         ai.Cycle,
			AccessCycle:   ai.Cycle,
		}
	}

	onAccess := func(ai cache.AccessInfo) {
		ev := accessEv(ai)
		if m.cfg.Mode == ModeOnAccess {
			// On-access training consumes the access before the load
			// commits: speculative provenance. (Shadow training below is
			// measurement-only state and is not audited.)
			if m.obs != nil {
				m.obs.Event(probe.Event{
					Kind: probe.EvTrain, Site: probe.SitePF, Cycle: ai.Cycle,
					Line: ai.Line, IP: ai.IP, Req: ai.Kind, Hit: ai.Hit,
					Spec: true,
				})
			}
			m.pf.Train(ev)
			if m.bertiPF != nil && ai.HitPrefetched {
				// Hit on a prefetched line: the stored latency trains
				// the timely-delta search immediately.
				m.bertiPF.Observe(ai.IP, ai.Line, ai.Cycle, ai.PrefFetchLat)
			}
		}
		if m.shadow != nil {
			m.shadow.Train(ev)
			if m.shadowBert != nil && ai.HitPrefetched {
				m.shadowBert.Observe(ai.IP, ai.Line, ai.Cycle, ai.PrefFetchLat)
			}
		}
		if m.monitor != nil && !ai.Hit {
			m.monitor.OnMiss(ai.IP)
		}
		if m.classifier != nil && !ai.Hit {
			// Classification happens at miss time (the paper's
			// definition is anchored to "the time of a demand cache
			// miss"); whether the on-commit prefetcher triggers the
			// line resolves the commit-late vs missed-opportunity split
			// afterwards.
			m.classifier.OnDemandMiss(ai.Line, ai.Merged, ai.Cycle)
		}
	}

	if m.cfg.Secure {
		home.OnSpecAccess = onAccess
		if home == m.l1d {
			// GM hits never reach L1D, so the on-access trigger stream
			// for L1D prefetchers also includes them (hits trigger
			// issuing but do not insert history).
			m.gm.OnAccess = func(line mem.Line, ip mem.Addr, hit bool, cycle mem.Cycle) {
				if !hit {
					return // the miss trains via the L1D probe instead
				}
				onAccess(cache.AccessInfo{Line: line, IP: ip, Kind: mem.KindLoad, Hit: true, Cycle: cycle})
			}
		}
	} else {
		home.OnAccess = onAccess
	}

	// Berti's fetch-latency observation (on-access mode and shadow).
	if m.cfg.Secure && m.gm != nil {
		m.gm.OnFill = func(line mem.Line, _ mem.Level, lat mem.Cycle, _ mem.Cycle, ip mem.Addr, accessed mem.Cycle) {
			if m.cfg.Mode == ModeOnAccess && m.bertiPF != nil {
				m.bertiPF.Observe(ip, line, accessed, lat)
			}
			if m.shadowBert != nil {
				m.shadowBert.Observe(ip, line, accessed, lat)
			}
		}
	} else {
		home.OnFill = func(fi cache.FillInfo) {
			if fi.Prefetch {
				return
			}
			if m.cfg.Mode == ModeOnAccess && m.bertiPF != nil {
				m.bertiPF.Observe(fi.IP, fi.Line, fi.ReqIssued, fi.Latency)
			}
			if m.shadowBert != nil {
				m.shadowBert.Observe(fi.IP, fi.Line, fi.ReqIssued, fi.Latency)
			}
		}
	}
}

// wireCommit attaches the retirement hook: GhostMinion's commit engine
// (with SUF), on-commit/TSB prefetcher training, and the classifier.
func (m *Machine) wireCommit() {
	m.core.OnCommitLoad = func(ci cpu.CommitInfo) bool {
		if m.gm != nil {
			if !m.gm.CanCommit() {
				return false
			}
			m.gm.Commit(ci.Line, ci.Seq, ci.HitLevel, &m.core.Stats)
		}
		m.core.Stats.CommitHitLevel[ci.HitLevel]++
		if m.pf != nil {
			m.commitTrain(ci)
		}
		return true
	}
}

// commitTrain feeds the prefetcher at retirement for the commit-time
// modes.
func (m *Machine) commitTrain(ci cpu.CommitInfo) {
	if m.cfg.Mode == ModeOnAccess {
		return
	}
	isL2 := m.pf.Home() == mem.LvlL2
	ev := prefetch.Event{
		Line:          ci.Line,
		IP:            ci.IP,
		Hit:           !ci.WasMiss,
		HitPrefetched: ci.HitPrefetched,
		PrefFetchLat:  ci.FetchLat,
		Cycle:         ci.CommitCycle,
		AccessCycle:   ci.AccessCycle,
		FetchLat:      ci.FetchLat,
	}
	emitTrain := func(hit bool) {
		if m.obs != nil {
			m.obs.Event(probe.Event{
				Kind: probe.EvTrain, Site: probe.SitePF, Cycle: ci.CommitCycle,
				Seq: ci.Seq, Line: ci.Line, IP: ci.IP, Req: mem.KindLoad,
				Hit: hit,
			})
		}
	}
	if isL2 {
		// L2 prefetchers only observe the post-L1D stream.
		if ci.HitLevel < mem.LvlL2 {
			return
		}
		ev.Hit = ci.HitLevel == mem.LvlL2
		emitTrain(ev.Hit)
		m.pf.Train(ev)
		return
	}
	emitTrain(ev.Hit)
	m.pf.Train(ev)

	if m.bertiPF == nil {
		return
	}
	trainable := ci.WasMiss || ci.HitPrefetched
	if !trainable {
		return
	}
	switch m.cfg.Mode {
	case ModeOnCommit:
		// Naive on-commit Berti: the observed "latency" is the GM-to-
		// L1D on-commit write latency, and the reference time is the
		// commit — the misleading training of §V-B.
		m.bertiPF.Observe(ci.IP, ci.Line, ci.CommitCycle, m.cfg.GM.Latency)
	case ModeTimelySecure:
		// TSB: the X-LQ carries the access timestamp and the true fetch
		// latency to the GM from the speculative phase to commit.
		m.xlq.Record(ci.LQID, ci.AccessCycle, ci.HitPrefetched, ci.FetchLat)
		if !ci.HitPrefetched {
			m.xlq.SetLatency(ci.LQID, ci.FetchLat)
		}
		access, lat, _, ok := m.xlq.Read(ci.LQID, ci.CommitCycle)
		if ok {
			m.bertiPF.Observe(ci.IP, ci.Line, access, lat)
		}
		m.xlq.Release(ci.LQID)
	}
}

// CoreDebug describes the core's ROB head (diagnostics).
func (m *Machine) CoreDebug() string { return m.core.DebugHead() }

// L1DDebug exposes the L1D cache (diagnostics).
func (m *Machine) L1DDebug() *cache.Cache { return m.l1d }

// L2Debug exposes the L2 cache (diagnostics).
func (m *Machine) L2Debug() *cache.Cache { return m.l2 }

// BertiDebug dumps the Berti delta tables when the configured
// prefetcher is Berti (diagnostics).
func (m *Machine) BertiDebug() []string {
	if m.bertiPF == nil {
		return nil
	}
	return m.bertiPF.DebugTable()
}

// wirePool shares the machine's request pool with every component.
func (m *Machine) wirePool() {
	m.core.SetPool(m.pool)
	if m.gm != nil {
		m.gm.SetPool(m.pool)
	}
	m.l1d.SetPool(m.pool)
	m.l2.SetPool(m.pool)
	m.llc.SetPool(m.pool)
	m.mem.SetPool(m.pool)
}

// step advances the whole machine one cycle.
func (m *Machine) step() {
	m.now++
	m.core.Tick(m.now)
	if m.gm != nil {
		m.gm.Tick(m.now)
	}
	m.l1d.Tick(m.now)
	m.l2.Tick(m.now)
	m.llc.Tick(m.now)
	m.mem.Tick(m.now)
	if m.prof != nil {
		// The lockstep reference engine visits every rank every cycle;
		// attribute each as a plain due tick so profiles from both
		// engines share a vocabulary.
		m.prof.Advance(false)
		for r := 0; r < numRanks; r++ {
			if r == rankGM && m.gm == nil {
				continue
			}
			m.prof.Visit(r, true, true, false, false)
		}
	}
}

// primeSchedule (re)builds the calendar from scratch: every rank is
// scheduled at its component's own NextEvent and the wake counters are
// snapshotted. Called at the top of each runUntil so the calendar is
// correct regardless of what happened between runs (warmup boundary,
// stats reset, window arming).
func (m *Machine) primeSchedule() {
	if m.evq == nil {
		m.evq = event.New(numRanks)
	}
	m.evq.Schedule(rankCore, m.core.NextEvent(m.now))
	m.lastWake[rankCore] = m.core.WakeCount()
	if m.gm != nil {
		m.evq.Schedule(rankGM, m.gm.NextEvent(m.now))
		m.lastWake[rankGM] = m.gm.WakeCount()
		m.lastGMVer = m.gm.StateVersion()
	}
	m.evq.Schedule(rankL1D, m.l1d.NextEvent(m.now))
	m.lastWake[rankL1D] = m.l1d.WakeCount()
	m.evq.Schedule(rankL2, m.l2.NextEvent(m.now))
	m.lastWake[rankL2] = m.l2.WakeCount()
	m.evq.Schedule(rankLLC, m.llc.NextEvent(m.now))
	m.lastWake[rankLLC] = m.llc.WakeCount()
	m.evq.Schedule(rankDRAM, m.mem.NextEvent(m.now))
	m.lastWake[rankDRAM] = m.mem.WakeCount()
}

// advanceTo moves the machine from m.now to cycle t (t > m.now). The
// gap (m.now, t) is provably idle for every component — t is the
// calendar's earliest wake, possibly clamped down — so all components
// first SkipIdle across it (exact: identical to empty Ticks). Cycle t
// itself is then processed in rank order: a component ticks if its
// schedule is due, if a peer handed it work (wake counter moved), or —
// for the core — if the GM's state version moved (port-blocked loads
// retry on version change); otherwise it integrates one empty cycle at
// its rank position via SkipIdle. Running the idle components' SkipIdle
// *in rank order with the ticks* keeps every cross-component clock read
// bit-identical to lockstep stepping: a component poked by a
// lower-ranked peer still shows t-1, one poked by a higher-ranked peer
// shows t.
func (m *Machine) advanceTo(t mem.Cycle) {
	if k := t - m.now - 1; k > 0 {
		m.core.SkipIdle(m.now, k)
		if m.gm != nil {
			m.gm.SkipIdle(k)
		}
		m.l1d.SkipIdle(k)
		m.l2.SkipIdle(k)
		m.llc.SkipIdle(k)
		m.mem.SkipIdle(k)
		m.now += k
		if m.prof != nil {
			m.prof.Gap(uint64(k))
		}
	}
	m.now = t
	var ticked [numRanks]bool

	{
		due := m.evq.At(rankCore) <= t
		woke := m.core.WakeCount() != m.lastWake[rankCore]
		ver := m.gm != nil && m.gm.StateVersion() != m.lastGMVer
		if due || woke || ver {
			if m.prof != nil && m.prof.WallDue(rankCore) {
				s := time.Now()
				m.core.Tick(t)
				m.prof.WallRecord(rankCore, time.Since(s))
			} else {
				m.core.Tick(t)
			}
			ticked[rankCore] = true
		} else {
			m.core.SkipIdle(t-1, 1)
		}
		if m.prof != nil {
			m.prof.Visit(rankCore, ticked[rankCore], due, woke, ver)
		}
	}
	if m.gm != nil {
		due := m.evq.At(rankGM) <= t
		woke := m.gm.WakeCount() != m.lastWake[rankGM]
		if due || woke {
			if m.prof != nil && m.prof.WallDue(rankGM) {
				s := time.Now()
				m.gm.Tick(t)
				m.prof.WallRecord(rankGM, time.Since(s))
			} else {
				m.gm.Tick(t)
			}
			ticked[rankGM] = true
		} else {
			m.gm.SkipIdle(1)
		}
		if m.prof != nil {
			m.prof.Visit(rankGM, ticked[rankGM], due, woke, false)
		}
	}
	caches := [...]*cache.Cache{m.l1d, m.l2, m.llc}
	for i, c := range caches {
		r := rankL1D + i
		due := m.evq.At(r) <= t
		woke := c.WakeCount() != m.lastWake[r]
		if due || woke {
			if m.prof != nil && m.prof.WallDue(r) {
				s := time.Now()
				c.Tick(t)
				m.prof.WallRecord(r, time.Since(s))
			} else {
				c.Tick(t)
			}
			ticked[r] = true
		} else {
			c.SkipIdle(1)
		}
		if m.prof != nil {
			m.prof.Visit(r, ticked[r], due, woke, false)
		}
	}
	{
		due := m.evq.At(rankDRAM) <= t
		woke := m.mem.WakeCount() != m.lastWake[rankDRAM]
		if due || woke {
			if m.prof != nil && m.prof.WallDue(rankDRAM) {
				s := time.Now()
				m.mem.Tick(t)
				m.prof.WallRecord(rankDRAM, time.Since(s))
			} else {
				m.mem.Tick(t)
			}
			ticked[rankDRAM] = true
		} else {
			m.mem.SkipIdle(1)
		}
		if m.prof != nil {
			m.prof.Visit(rankDRAM, ticked[rankDRAM], due, woke, false)
		}
	}

	// Re-arm: a rank that ticked, or that was poked during this cycle
	// (wake counter moved — including pokes from higher-ranked peers
	// after its slot passed), gets a fresh schedule. Untouched ranks
	// keep their existing calendar entry.
	if ticked[rankCore] || m.core.WakeCount() != m.lastWake[rankCore] ||
		(m.gm != nil && m.gm.StateVersion() != m.lastGMVer) {
		m.evq.Schedule(rankCore, m.core.NextEvent(t))
		m.lastWake[rankCore] = m.core.WakeCount()
		if m.gm != nil {
			m.lastGMVer = m.gm.StateVersion()
		}
		if m.prof != nil {
			m.prof.Rearm(rankCore, true)
		}
	} else if m.prof != nil {
		m.prof.Rearm(rankCore, false)
	}
	if m.gm != nil {
		if ticked[rankGM] || m.gm.WakeCount() != m.lastWake[rankGM] {
			m.evq.Schedule(rankGM, m.gm.NextEvent(t))
			m.lastWake[rankGM] = m.gm.WakeCount()
			if m.prof != nil {
				m.prof.Rearm(rankGM, true)
			}
		} else if m.prof != nil {
			m.prof.Rearm(rankGM, false)
		}
	}
	for i, c := range caches {
		r := rankL1D + i
		if ticked[r] || c.WakeCount() != m.lastWake[r] {
			m.evq.Schedule(r, c.NextEvent(t))
			m.lastWake[r] = c.WakeCount()
			if m.prof != nil {
				m.prof.Rearm(r, true)
			}
		} else if m.prof != nil {
			m.prof.Rearm(r, false)
		}
	}
	if ticked[rankDRAM] || m.mem.WakeCount() != m.lastWake[rankDRAM] {
		m.evq.Schedule(rankDRAM, m.mem.NextEvent(t))
		m.lastWake[rankDRAM] = m.mem.WakeCount()
		if m.prof != nil {
			m.prof.Rearm(rankDRAM, true)
		}
	} else if m.prof != nil {
		m.prof.Rearm(rankDRAM, false)
	}
}

// resetStats zeroes every counter block (end of warmup).
func (m *Machine) resetStats() {
	m.core.Stats = stats.CoreStats{}
	m.l1d.Stats = stats.CacheStats{}
	m.l2.Stats = stats.CacheStats{}
	m.llc.Stats = stats.CacheStats{}
	m.mem.Stats = stats.DRAMStats{}
	if m.gm != nil {
		m.gm.Stats = stats.CacheStats{}
	}
	if m.tlbs != nil {
		m.tlbs.Stats = stats.TLBStats{}
	}
	if m.suf != nil {
		*m.suf = seccore.SUF{}
	}
	if m.monitor != nil {
		m.monitor.Rebase()
	}
}

// Run executes the configured simulation to completion. It is
// RunProbed with nothing attached (see probes.go).
func Run(cfg Config, src trace.Source) (*Result, error) {
	return RunProbed(cfg, src, Probes{})
}

// wedgeWindow is how many cycles without a retirement the run loop
// tolerates before declaring the simulation wedged.
const wedgeWindow = 500_000

// WedgeWindow exposes the wedge-detection window to the multicore
// engine, whose per-core progress checks use the same threshold.
const WedgeWindow mem.Cycle = wedgeWindow

// runUntil advances the machine until the core has retired n more
// instructions (or the trace ends), failing on wedge or cycle budget
// exhaustion.
//
// The default engine is event-driven: the calendar queue (see
// advanceTo) yields the earliest cycle any component is due, the
// machine jumps there in one advance, and only due or freshly-poked
// components tick. A fully quiescent machine — empty trace tail,
// every component idle, calendar empty — yields mem.NoEvent; the
// clamps below turn that into a single bounded jump to the wedge (or
// budget) boundary, where the same ErrNoProgress / budget error fires
// on exactly the cycle per-cycle stepping would have reported, instead
// of the engine spinning through wedgeWindow dead iterations one cycle
// at a time. The noSkip path keeps the lockstep reference engine that
// the equivalence tests compare against.
func (m *Machine) runUntil(n uint64, maxCycles mem.Cycle) error {
	target := m.core.Stats.Instructions + n
	lastProgress := m.now
	lastCount := m.core.Stats.Instructions
	if m.noSkip {
		for m.core.Stats.Instructions < target && !m.core.Done() {
			m.step()
			if m.digSink != nil && m.now >= m.digNext {
				m.emitDigests()
			}
			if m.winObs != nil && m.core.Stats.Instructions >= m.winNext {
				m.sampleWindow()
				for m.core.Stats.Instructions >= m.winNext {
					m.winNext += m.winEvery
				}
			}
			if m.core.Stats.Instructions != lastCount {
				lastCount = m.core.Stats.Instructions
				lastProgress = m.now
			} else if m.now-lastProgress > wedgeWindow {
				return ErrNoProgress
			}
			if m.now > maxCycles {
				return fmt.Errorf("sim: cycle budget exhausted (%d cycles, %d instructions)", m.now, m.core.Stats.Instructions)
			}
		}
		return nil
	}
	m.primeSchedule()
	for m.core.Stats.Instructions < target && !m.core.Done() {
		next := m.evq.Next() // > m.now, or mem.NoEvent when quiescent
		clamped := false
		if limit := lastProgress + wedgeWindow + 1; next > limit {
			next, clamped = limit, true
		}
		if limit := maxCycles + 1; next > limit {
			next, clamped = limit, true
		}
		// Digest boundaries are visited exactly so both engines sample
		// the same cycles (see armDigests).
		if m.digSink != nil && next > m.digNext {
			next, clamped = m.digNext, true
		}
		m.advanceTo(next)
		if m.prof != nil {
			m.prof.Advance(clamped)
		}
		if m.digSink != nil && m.now >= m.digNext {
			m.emitDigests()
		}
		if m.winObs != nil && m.core.Stats.Instructions >= m.winNext {
			m.sampleWindow()
			for m.core.Stats.Instructions >= m.winNext {
				m.winNext += m.winEvery
			}
		}
		if m.core.Stats.Instructions != lastCount {
			lastCount = m.core.Stats.Instructions
			lastProgress = m.now
		} else if m.now-lastProgress > wedgeWindow {
			return ErrNoProgress
		}
		if m.now > maxCycles {
			return fmt.Errorf("sim: cycle budget exhausted (%d cycles, %d instructions)", m.now, m.core.Stats.Instructions)
		}
	}
	return nil
}

// result assembles the Result snapshot.
func (m *Machine) result(traceName string, cycles mem.Cycle) *Result {
	r := &Result{
		Config:       m.cfg,
		TraceName:    traceName,
		Instructions: m.core.Stats.Instructions,
		Cycles:       uint64(cycles),
		Core:         m.core.Stats,
		L1D:          m.l1d.Stats,
		L2:           m.l2.Stats,
		LLC:          m.llc.Stats,
		DRAM:         m.mem.Stats,
	}
	if m.tlbs != nil {
		r.TLB = m.tlbs.Stats
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.Instructions) / float64(r.Cycles)
	}
	var gmAcc uint64
	if m.gm != nil {
		r.GM = m.gm.Stats
		gmAcc = m.gm.Stats.TotalAccesses()
	}
	r.Energy = energy.Compute(energy.DefaultPerAccess(), gmAcc, &r.L1D, &r.L2, &r.LLC, &r.DRAM)
	if m.classifier != nil {
		r.Class = m.classifier.Class
	}
	if m.monitor != nil {
		r.DistanceAdaptations = m.monitor.Adaptations
		r.PhaseResets = m.monitor.Resets
	}
	if dt, ok := m.pf.(prefetch.DistanceTunable); ok {
		r.FinalDistance = dt.Distance()
	}
	if m.suf != nil {
		r.SUFDrops = m.suf.Drops
		r.SUFTrims = m.suf.TrimmedPropagations
	}
	return r
}

package sim

import (
	"testing"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

func smokeTrace(t *testing.T, name string, n int) trace.Source {
	t.Helper()
	tr, err := workload.Get(name, workload.Params{Instrs: n, Seed: 1})
	if err != nil {
		t.Fatalf("workload.Get(%s): %v", name, err)
	}
	return trace.NewSource(tr)
}

func TestSmokeAllConfigs(t *testing.T) {
	traceN := 20_000
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"nonsecure-nopref", func(c *Config) {}},
		{"secure-nopref", func(c *Config) { c.Secure = true }},
		{"secure-suf-nopref", func(c *Config) { c.Secure = true; c.SUF = true }},
		{"nonsecure-berti", func(c *Config) { c.Prefetcher = "berti" }},
		{"secure-berti-onaccess", func(c *Config) { c.Secure = true; c.Prefetcher = "berti" }},
		{"secure-berti-oncommit", func(c *Config) { c.Secure = true; c.Prefetcher = "berti"; c.Mode = ModeOnCommit }},
		{"secure-tsb-suf", func(c *Config) {
			c.Secure = true
			c.SUF = true
			c.Prefetcher = "berti"
			c.Mode = ModeTimelySecure
		}},
		{"secure-ipstride-ts", func(c *Config) {
			c.Secure = true
			c.Prefetcher = "ip-stride"
			c.Mode = ModeTimelySecure
		}},
		{"secure-ipcp-oncommit-classify", func(c *Config) {
			c.Secure = true
			c.Prefetcher = "ipcp"
			c.Mode = ModeOnCommit
			c.Classify = true
		}},
		{"secure-bingo-oncommit", func(c *Config) { c.Secure = true; c.Prefetcher = "bingo"; c.Mode = ModeOnCommit }},
		{"secure-spp-oncommit", func(c *Config) { c.Secure = true; c.Prefetcher = "spp-ppf"; c.Mode = ModeOnCommit }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.WarmupInstrs = 2000
			cfg.MaxInstrs = traceN
			tc.mut(&cfg)
			res, err := Run(cfg, smokeTrace(t, "605.mcf-1554B", traceN))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Instructions == 0 || res.Cycles == 0 {
				t.Fatalf("empty result: %+v", res)
			}
			if res.IPC <= 0 || res.IPC > 6 {
				t.Errorf("implausible IPC %.3f", res.IPC)
			}
			t.Logf("%s: IPC=%.3f cycles=%d L1D-miss-lat=%.1f", cfg.Label(), res.IPC, res.Cycles, res.LoadMissLatency())
		})
	}
}

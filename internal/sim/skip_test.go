package sim

import (
	"reflect"
	"testing"

	"secpref/internal/mem"
)

// runMachine replicates Run for an explicitly-assembled Machine so the
// test can flip noSkip on an otherwise identical system.
func runMachine(t *testing.T, m *Machine, cfg Config) *Result {
	t.Helper()
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = mem.Cycle(1000 * (cfg.WarmupInstrs + cfg.MaxInstrs))
	}
	if cfg.WarmupInstrs > 0 {
		if err := m.runUntil(uint64(cfg.WarmupInstrs), maxCycles); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		m.resetStats()
	}
	start := m.now
	if err := m.runUntil(uint64(cfg.MaxInstrs), maxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.result("t", m.now-start)
}

// TestIdleSkipEquivalence verifies the fast-forward invariant the run
// loop depends on: skipping provably-idle cycles yields a simulation
// bit-identical to stepping through every cycle — same final cycle
// count, same every counter in every component.
func TestIdleSkipEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Config)
	}{
		{"nonsecure-nopref", func(c *Config) {}},
		{"secure-nopref", func(c *Config) { c.Secure = true }},
		{"secure-tsb-suf-berti", func(c *Config) {
			c.Secure = true
			c.SUF = true
			c.Prefetcher = "berti"
			c.Mode = ModeTimelySecure
		}},
		{"nonsecure-ipstride", func(c *Config) { c.Prefetcher = "ip-stride" }},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.WarmupInstrs = 2000
			cfg.MaxInstrs = 15_000
			tc.mut(&cfg)
			run := func(noSkip bool) *Result {
				m, err := NewMachine(cfg, smokeTrace(t, "bfs-3B", 17_000))
				if err != nil {
					t.Fatal(err)
				}
				m.noSkip = noSkip
				return runMachine(t, m, cfg)
			}
			skipped, stepped := run(false), run(true)
			if !reflect.DeepEqual(skipped, stepped) {
				t.Errorf("skip changed the simulation:\nskip: cycles=%d core=%+v\nstep: cycles=%d core=%+v",
					skipped.Cycles, skipped.Core, stepped.Cycles, stepped.Core)
				if !reflect.DeepEqual(skipped.L1D, stepped.L1D) {
					t.Errorf("L1D:\nskip: %+v\nstep: %+v", skipped.L1D, stepped.L1D)
				}
				if !reflect.DeepEqual(skipped.L2, stepped.L2) {
					t.Errorf("L2:\nskip: %+v\nstep: %+v", skipped.L2, stepped.L2)
				}
				if !reflect.DeepEqual(skipped.LLC, stepped.LLC) {
					t.Errorf("LLC:\nskip: %+v\nstep: %+v", skipped.LLC, stepped.LLC)
				}
				if !reflect.DeepEqual(skipped.DRAM, stepped.DRAM) {
					t.Errorf("DRAM:\nskip: %+v\nstep: %+v", skipped.DRAM, stepped.DRAM)
				}
				if !reflect.DeepEqual(skipped.GM, stepped.GM) {
					t.Errorf("GM:\nskip: %+v\nstep: %+v", skipped.GM, stepped.GM)
				}
				if !reflect.DeepEqual(skipped.TLB, stepped.TLB) {
					t.Errorf("TLB:\nskip: %+v\nstep: %+v", skipped.TLB, stepped.TLB)
				}
			}
		})
	}
}

// Package stats defines the counter structures every simulator
// component exposes. The experiment harness derives the paper's
// metrics from them: APKI and its load/prefetch/commit split (Fig. 3,
// Fig. 5b), demand-miss latency (Fig. 4, Fig. 5c), MPKI and its
// coverage/lateness classification (Fig. 6), prefetch accuracy
// (Fig. 13), traffic and energy (Fig. 14), and MSHR occupancy (§III).
package stats

import "secpref/internal/mem"

// CacheStats collects per-cache-level counters.
type CacheStats struct {
	// Accesses and Misses are indexed by mem.Kind.
	Accesses [mem.NumKinds]uint64
	Misses   [mem.NumKinds]uint64

	// SpecAccesses / SpecMisses count GhostMinion speculative-bypass
	// lookups, which probe the level without updating state.
	SpecAccesses uint64
	SpecMisses   uint64

	// DemandMissLatSum accumulates load-miss round-trip cycles (issue to
	// data return) over DemandMissLatCnt misses.
	DemandMissLatSum uint64
	DemandMissLatCnt uint64

	// MSHROccupancy integrates MSHR occupancy over cycles;
	// MSHRFullCycles counts cycles with no free MSHR; Cycles is the
	// denominator for both.
	MSHROccupancy  uint64
	MSHRFullCycles uint64
	Cycles         uint64

	// MSHRMerges counts requests merged into an existing entry;
	// PrefetchPromotions counts demand misses that merged into an
	// in-flight prefetch (the classic "late prefetch").
	MSHRMerges         uint64
	PrefetchPromotions uint64

	// Leapfrogs counts GhostMinion MSHR leapfrogging events (younger
	// entry cancelled in favor of an older request).
	Leapfrogs uint64

	// RQFull / WQFull / PQFull count enqueue rejections (back-pressure).
	RQFull, WQFull, PQFull uint64

	// Evictions and WritebacksOut count lines leaving this level;
	// PropagationsOut counts GhostMinion clean-propagation writebacks
	// (the traffic SUF trims).
	Evictions       uint64
	WritebacksOut   uint64
	PropagationsOut uint64

	// Prefetch effectiveness at this level.
	PrefIssued   uint64 // prefetch requests accepted into the PQ
	PrefFilled   uint64 // prefetch fills that installed a line
	PrefUseful   uint64 // prefetched lines later hit by demand
	PrefLate     uint64 // demand merged with in-flight prefetch
	PrefDroppedQ uint64 // dropped: PQ or MSHR full
	PrefHitLocal uint64 // prefetch dropped: line already present
}

// DemandAccesses sums load and RFO accesses.
func (s *CacheStats) DemandAccesses() uint64 {
	return s.Accesses[mem.KindLoad] + s.Accesses[mem.KindRFO]
}

// DemandMisses sums load and RFO misses.
func (s *CacheStats) DemandMisses() uint64 {
	return s.Misses[mem.KindLoad] + s.Misses[mem.KindRFO]
}

// TotalAccesses sums all access kinds plus speculative probes.
func (s *CacheStats) TotalAccesses() uint64 {
	var t uint64
	for _, a := range s.Accesses {
		t += a
	}
	return t + s.SpecAccesses
}

// AvgDemandMissLat returns the mean demand-load miss latency in cycles.
func (s *CacheStats) AvgDemandMissLat() float64 {
	if s.DemandMissLatCnt == 0 {
		return 0
	}
	return float64(s.DemandMissLatSum) / float64(s.DemandMissLatCnt)
}

// AvgMSHROccupancy returns mean occupied MSHR entries per cycle.
func (s *CacheStats) AvgMSHROccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.MSHROccupancy) / float64(s.Cycles)
}

// MSHRFullFrac returns the fraction of cycles the MSHR was full.
func (s *CacheStats) MSHRFullFrac() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.MSHRFullCycles) / float64(s.Cycles)
}

// PrefAccuracy returns useful/filled prefetch ratio in [0,1].
func (s *CacheStats) PrefAccuracy() float64 {
	if s.PrefFilled == 0 {
		return 0
	}
	return float64(s.PrefUseful) / float64(s.PrefFilled)
}

// DRAMStats collects main-memory counters.
type DRAMStats struct {
	Reads, Writes       uint64
	RowHits, RowMisses  uint64
	QueueOccupancy      uint64 // integrated over cycles
	Cycles              uint64
	LatencySum, LatCnt  uint64 // read round-trip
	QueueFullRejections uint64
}

// CoreStats collects per-core counters.
type CoreStats struct {
	Instructions uint64
	Cycles       uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Mispredicts  uint64

	// Commits of loads by the hit level recorded at fill (SUF input).
	CommitHitLevel [int(mem.LvlDRAM) + 1]uint64

	// GhostMinion commit-path outcomes.
	CommitGMHits   uint64 // on-commit write path
	CommitGMMisses uint64 // re-fetch path
	SUFDrops       uint64 // updates filtered by SUF
	SUFDropWrong   uint64 // drops where the line was no longer in L1D

	// LQFullCycles counts dispatch stalls due to a full load queue.
	LQFullCycles uint64
}

// IPC returns retired instructions per cycle.
func (s *CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// MispredictRate returns branch mispredictions per branch.
func (s *CoreStats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// SUFAccuracy returns the fraction of SUF filtering decisions that were
// correct (the line was still present where the hit level said).
func (s *CoreStats) SUFAccuracy() float64 {
	if s.SUFDrops == 0 {
		return 1
	}
	return 1 - float64(s.SUFDropWrong)/float64(s.SUFDrops)
}

// TLBStats counts translation outcomes.
type TLBStats struct {
	Accesses   uint64
	L1Misses   uint64
	STLBMisses uint64 // page-table walks
}

// L1MissRate returns dTLB misses per access.
func (s *TLBStats) L1MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.L1Misses) / float64(s.Accesses)
}

// WalkRate returns page-table walks per access.
func (s *TLBStats) WalkRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.STLBMisses) / float64(s.Accesses)
}

// MissClass is the Fig. 6 demand-miss classification at the prefetcher's
// home level.
type MissClass struct {
	Uncovered   uint64 // no prefetch involvement
	MissedOpp   uint64 // on-access shadow predicted it; on-commit training never would
	Late        uint64 // merged with in-flight prefetch
	CommitLate  uint64 // on-commit prefetcher knew it but had not triggered yet
	TotalMisses uint64
}

// PerKI scales a raw count to per-kilo-instruction.
func PerKI(count, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(count) * 1000 / float64(instructions)
}

package stats

import (
	"testing"

	"secpref/internal/mem"
)

func TestCacheDerivedMetrics(t *testing.T) {
	var s CacheStats
	s.Accesses[mem.KindLoad] = 80
	s.Accesses[mem.KindRFO] = 20
	s.Misses[mem.KindLoad] = 8
	s.Misses[mem.KindRFO] = 2
	if s.DemandAccesses() != 100 || s.DemandMisses() != 10 {
		t.Errorf("demand: %d/%d", s.DemandAccesses(), s.DemandMisses())
	}
	s.SpecAccesses = 50
	if s.TotalAccesses() != 150 {
		t.Errorf("total = %d", s.TotalAccesses())
	}
	s.DemandMissLatSum, s.DemandMissLatCnt = 1000, 10
	if s.AvgDemandMissLat() != 100 {
		t.Errorf("avg lat = %f", s.AvgDemandMissLat())
	}
	s.Cycles = 100
	s.MSHROccupancy = 250
	s.MSHRFullCycles = 25
	if s.AvgMSHROccupancy() != 2.5 || s.MSHRFullFrac() != 0.25 {
		t.Errorf("mshr: %f/%f", s.AvgMSHROccupancy(), s.MSHRFullFrac())
	}
	s.PrefFilled, s.PrefUseful = 10, 9
	if s.PrefAccuracy() != 0.9 {
		t.Errorf("accuracy = %f", s.PrefAccuracy())
	}
}

func TestZeroDivisionSafety(t *testing.T) {
	var s CacheStats
	if s.AvgDemandMissLat() != 0 || s.AvgMSHROccupancy() != 0 || s.MSHRFullFrac() != 0 || s.PrefAccuracy() != 0 {
		t.Error("zero-value stats should yield zero metrics")
	}
	var c CoreStats
	if c.IPC() != 0 || c.MispredictRate() != 0 {
		t.Error("zero-value core stats should yield zero metrics")
	}
	if c.SUFAccuracy() != 1 {
		t.Error("SUF accuracy with no drops should be perfect")
	}
}

func TestCoreMetrics(t *testing.T) {
	c := CoreStats{Instructions: 400, Cycles: 200, Branches: 100, Mispredicts: 5}
	if c.IPC() != 2 {
		t.Errorf("IPC = %f", c.IPC())
	}
	if c.MispredictRate() != 0.05 {
		t.Errorf("mispredict rate = %f", c.MispredictRate())
	}
	c.SUFDrops, c.SUFDropWrong = 100, 3
	if c.SUFAccuracy() != 0.97 {
		t.Errorf("SUF accuracy = %f", c.SUFAccuracy())
	}
}

func TestPerKI(t *testing.T) {
	if PerKI(50, 1000) != 50 {
		t.Errorf("PerKI(50,1000) = %f", PerKI(50, 1000))
	}
	if PerKI(1, 0) != 0 {
		t.Error("PerKI must guard division by zero")
	}
}

// Package bpred implements the hashed perceptron conditional branch
// predictor (Jiménez & Lin, HPCA 2001; the "hashed" organization used
// by ChampSim and the paper's Table II core). Several feature tables of
// signed weights are indexed by hashes of the branch IP with slices of
// the global history register; the prediction is the sign of the
// summed weights, and training adjusts weights when the prediction was
// wrong or the sum's magnitude was below threshold.
package bpred

import "secpref/internal/mem"

const (
	numTables   = 8
	tableBits   = 12
	tableSize   = 1 << tableBits
	histLen     = 64
	weightMax   = 63
	weightMin   = -64
	theta       = 2*numTables + 14 // training threshold
	ghistSlice  = histLen / numTables
	biasTableID = 0
)

// Perceptron is a hashed perceptron predictor.
type Perceptron struct {
	weights [numTables][tableSize]int8
	ghist   uint64
}

// New returns a zero-initialized predictor.
func New() *Perceptron { return &Perceptron{} }

// index computes the table index for feature t.
func (p *Perceptron) index(t int, ip mem.Addr) int {
	h := uint64(ip) >> 2
	if t != biasTableID {
		slice := (p.ghist >> (uint(t-1) * ghistSlice)) & ((1 << ghistSlice) - 1)
		h ^= slice * 0x9e3779b97f4a7c15
		h ^= h >> 29
	}
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return int(h & (tableSize - 1))
}

// Predict returns the predicted direction for a conditional branch.
func (p *Perceptron) Predict(ip mem.Addr) bool {
	return p.sum(ip) >= 0
}

func (p *Perceptron) sum(ip mem.Addr) int {
	s := 0
	for t := 0; t < numTables; t++ {
		s += int(p.weights[t][p.index(t, ip)])
	}
	return s
}

// Train updates the predictor with the actual outcome and returns
// whether the prediction (made against current state) was correct.
// Callers must invoke Train exactly once per conditional branch, in
// program order.
func (p *Perceptron) Train(ip mem.Addr, taken bool) (correct bool) {
	s := p.sum(ip)
	pred := s >= 0
	correct = pred == taken
	if !correct || abs(s) < theta {
		for t := 0; t < numTables; t++ {
			i := p.index(t, ip)
			w := p.weights[t][i]
			if taken && w < weightMax {
				w++
			} else if !taken && w > weightMin {
				w--
			}
			p.weights[t][i] = w
		}
	}
	p.ghist = p.ghist<<1 | b2u(taken)
	return correct
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

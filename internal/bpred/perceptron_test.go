package bpred

import (
	"math/rand"
	"testing"

	"secpref/internal/mem"
)

// accuracy trains the predictor on a generated outcome stream and
// returns the fraction predicted correctly.
func accuracy(n int, outcome func(i int) (ip mem.Addr, taken bool)) float64 {
	p := New()
	correct := 0
	for i := 0; i < n; i++ {
		ip, taken := outcome(i)
		if p.Predict(ip) == taken {
			correct++
		}
		p.Train(ip, taken)
	}
	return float64(correct) / float64(n)
}

func TestLearnsBiasedBranch(t *testing.T) {
	acc := accuracy(10000, func(i int) (mem.Addr, bool) { return 0x400, true })
	if acc < 0.99 {
		t.Errorf("always-taken accuracy %.3f, want >0.99", acc)
	}
}

func TestLearnsAlternatingPattern(t *testing.T) {
	acc := accuracy(10000, func(i int) (mem.Addr, bool) { return 0x404, i%2 == 0 })
	if acc < 0.95 {
		t.Errorf("alternating accuracy %.3f, want >0.95 (history feature)", acc)
	}
}

func TestLearnsLoopExit(t *testing.T) {
	// Taken 15 times, not-taken once — the generators' loop shape.
	acc := accuracy(16000, func(i int) (mem.Addr, bool) { return 0x408, i%16 != 15 })
	if acc < 0.93 {
		t.Errorf("loop accuracy %.3f, want >0.93", acc)
	}
}

func TestRandomBranchNearChance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	acc := accuracy(20000, func(i int) (mem.Addr, bool) { return 0x40c, rng.Intn(2) == 0 })
	if acc < 0.40 || acc > 0.62 {
		t.Errorf("random accuracy %.3f, want near 0.5", acc)
	}
}

func TestMultipleBranchesDoNotDestroyEachOther(t *testing.T) {
	p := New()
	// Interleave two opposite-bias branches at different IPs.
	for i := 0; i < 8000; i++ {
		p.Train(0x500, true)
		p.Train(0x504, false)
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if p.Predict(0x500) == true {
			correct++
		}
		p.Train(0x500, true)
		if p.Predict(0x504) == false {
			correct++
		}
		p.Train(0x504, false)
	}
	if correct < 195 {
		t.Errorf("interleaved accuracy %d/200", correct)
	}
}

func TestTrainReturnsCorrectness(t *testing.T) {
	p := New()
	for i := 0; i < 1000; i++ {
		p.Train(0x600, true)
	}
	if !p.Train(0x600, true) {
		t.Error("well-trained branch reported mispredict")
	}
	if p.Train(0x600, false) {
		t.Error("surprising outcome reported correct")
	}
}

package probe

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"secpref/internal/mem"
)

func TestSamplerDerivesIntervalRates(t *testing.T) {
	s := NewIntervalSampler(4)
	s.Window(Sample{Cycle: 1000, Instructions: 500, DemandMisses: 10, PrefFilled: 4, PrefUseful: 2, MSHROccupancy: 2000, MSHRCycles: 1000})
	s.Window(Sample{Cycle: 3000, Instructions: 1500, DemandMisses: 30, PrefFilled: 8, PrefUseful: 8, MSHROccupancy: 6000, MSHRCycles: 3000})
	rows := s.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows %d, want 2", len(rows))
	}
	if rows[0].IPC != 0.5 || rows[1].IPC != 0.5 {
		t.Errorf("IPC %v %v, want 0.5", rows[0].IPC, rows[1].IPC)
	}
	if rows[0].MPKI != 20 {
		t.Errorf("window 0 MPKI %v, want 20 (10 misses / 500 instrs)", rows[0].MPKI)
	}
	if rows[1].MPKI != 20 {
		t.Errorf("window 1 MPKI %v, want 20 (20 misses / 1000 instrs)", rows[1].MPKI)
	}
	if rows[0].PrefAccuracy != 0.5 || rows[1].PrefAccuracy != 1.5 {
		t.Errorf("accuracy %v %v (deltas, not cumulative)", rows[0].PrefAccuracy, rows[1].PrefAccuracy)
	}
	if rows[0].MSHROcc != 2 || rows[1].MSHROcc != 2 {
		t.Errorf("MSHR occupancy %v %v, want 2", rows[0].MSHROcc, rows[1].MSHROcc)
	}
}

func TestSamplerZeroDenominators(t *testing.T) {
	s := NewIntervalSampler(0)
	s.Window(Sample{}) // empty window: every rate must be 0, not NaN
	r := s.Rows()[0]
	if r.IPC != 0 || r.MPKI != 0 || r.PrefAccuracy != 0 || r.MissLat != 0 || r.CommitGMHitRate != 0 {
		t.Errorf("zero-denominator row not zeroed: %+v", r)
	}
}

func TestSamplerExportsValidJSONAndCSV(t *testing.T) {
	s := NewIntervalSampler(2)
	s.Window(Sample{Cycle: 100, Instructions: 50})
	s.Window(Sample{Cycle: 220, Instructions: 110})

	var jbuf bytes.Buffer
	if err := s.WriteJSON(&jbuf, "berti/TS/secure+SUF", "bfs-3B"); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Label     string   `json:"label"`
		Trace     string   `json:"trace"`
		Intervals []Row    `json:"intervals"`
		Samples   []Sample `json:"cumulative"`
	}
	if err := json.Unmarshal(jbuf.Bytes(), &env); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if env.Label == "" || len(env.Intervals) != 2 || len(env.Samples) != 2 {
		t.Errorf("envelope %+v", env)
	}

	var cbuf bytes.Buffer
	if err := s.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cbuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines %d, want header + 2 rows:\n%s", len(lines), cbuf.String())
	}
	if got := len(strings.Split(lines[0], ",")); got != len(csvHeader) {
		t.Errorf("CSV header has %d columns, want %d", got, len(csvHeader))
	}
	for _, row := range lines[1:] {
		if got := len(strings.Split(row, ",")); got != len(csvHeader) {
			t.Errorf("CSV row has %d columns, want %d: %s", got, len(csvHeader), row)
		}
	}
}

func TestTracerSamplesAndWraps(t *testing.T) {
	tr := NewTracer(2, 64)
	for seq := uint64(0); seq < 10; seq++ {
		tr.Event(Event{Kind: EvIssue, Site: SiteCore, Seq: seq, Cycle: mem.Cycle(seq)})
	}
	// Seqs 2,4,6,8 recorded; 0 (no identity) and odd seqs skipped.
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("recorded %d events, want 4", len(evs))
	}
	for _, ev := range evs {
		if ev.Seq == 0 || ev.Seq%2 != 0 {
			t.Errorf("unsampled seq %d recorded", ev.Seq)
		}
	}

	// Overflow: the ring keeps the newest events and counts drops.
	small := NewTracer(1, 64)
	for seq := uint64(1); seq <= 100; seq++ {
		small.Event(Event{Kind: EvIssue, Site: SiteCore, Seq: seq})
	}
	evs = small.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d, want 64", len(evs))
	}
	if evs[0].Seq != 37 || evs[63].Seq != 100 {
		t.Errorf("ring window [%d,%d], want [37,100]", evs[0].Seq, evs[63].Seq)
	}
	if small.Dropped() != 36 {
		t.Errorf("dropped %d, want 36", small.Dropped())
	}
}

func TestTracerSteadyStateZeroAlloc(t *testing.T) {
	tr := NewTracer(1, 256)
	seq := uint64(1)
	step := func() {
		tr.Event(Event{Kind: EvAccess, Site: SiteL1D, Seq: seq, Line: 0x40, Cycle: mem.Cycle(seq)})
		seq++
	}
	for i := 0; i < 512; i++ {
		step() // fill the ring and enter overwrite mode
	}
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Errorf("Tracer.Event allocates %.1f objects/op in steady state, want 0", avg)
	}
}

func TestTracerChromeExport(t *testing.T) {
	tr := NewTracer(1, 256)
	tr.Event(Event{Kind: EvIssue, Site: SiteCore, Seq: 4, Line: 0x80, Cycle: 10})
	tr.Event(Event{Kind: EvAccess, Site: SiteGM, Seq: 4, Line: 0x80, Cycle: 11, Hit: false})
	tr.Event(Event{Kind: EvAccess, Site: SiteL1D, Seq: 4, Line: 0x80, Cycle: 12, Hit: false})
	tr.Event(Event{Kind: EvAccess, Site: SiteDRAM, Seq: 4, Line: 0x80, Cycle: 60, Hit: true})
	tr.Event(Event{Kind: EvFill, Site: SiteCore, Seq: 4, Line: 0x80, Cycle: 120, Level: mem.LvlDRAM, Aux: 110})
	tr.Event(Event{Kind: EvCommit, Site: SiteGM, Seq: 4, Line: 0x80, Cycle: 130, Aux: CommitGMHit})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "unit"); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TS    uint64 `json:"ts"`
			Dur   uint64 `json:"dur"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var span, meta, instants int
	for _, ev := range out.TraceEvents {
		switch ev.Phase {
		case "X":
			span++
			if ev.TS != 10 || ev.Dur != 110 {
				t.Errorf("span ts=%d dur=%d, want 10/110", ev.TS, ev.Dur)
			}
		case "M":
			meta++
		case "i":
			instants++
		}
	}
	if span != 1 {
		t.Errorf("spans %d, want 1 (issue->fill pair)", span)
	}
	if meta != NumSites+1 {
		t.Errorf("track metadata %d, want %d (process_name + per-site thread_name)", meta, NumSites+1)
	}
	if instants != 4 {
		t.Errorf("instants %d, want 4 (GM/L1D/DRAM accesses + GM commit)", instants)
	}
}

func TestFanout(t *testing.T) {
	if Fanout() != nil || Fanout(nil, nil) != nil {
		t.Error("empty fanout must be nil (disabled path)")
	}
	tr := NewTracer(1, 64)
	if Fanout(nil, tr) != Observer(tr) {
		t.Error("single-observer fanout must avoid the Multi indirection")
	}
	tr2 := NewTracer(1, 64)
	m := Fanout(tr, tr2)
	m.Event(Event{Kind: EvIssue, Site: SiteCore, Seq: 1})
	if len(tr.Events()) != 1 || len(tr2.Events()) != 1 {
		t.Error("Multi must fan events to every observer")
	}
}

func TestCampaignTelemetry(t *testing.T) {
	c := NewCampaign(4)
	c.ExperimentStarted("fig4")
	c.RunStarted()
	c.RunDone(20_000, 100_000)
	c.RunStarted()
	c.RunFailed()
	c.ExperimentDone()

	s := c.Snapshot()
	if s.RunsStarted != 2 || s.RunsDone != 1 || s.RunsFailed != 1 {
		t.Errorf("run counters %+v", s)
	}
	if s.Instructions != 20_000 || s.Cycles != 100_000 {
		t.Errorf("work counters %+v", s)
	}
	if s.CurrentExp != "fig4" || s.ExperimentsDone != 1 || s.ExperimentsPlan != 4 {
		t.Errorf("experiment counters %+v", s)
	}

	var buf bytes.Buffer
	if err := c.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"secpref_runs_completed_total 1",
		"secpref_instructions_total 20000",
		"# TYPE secpref_campaign_uptime_seconds gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestTelemetryHandler(t *testing.T) {
	c := NewCampaign(1)
	c.RunStarted()
	c.RunDone(5, 10)
	h := NewHandler(c)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "secpref_runs_completed_total 1") {
		t.Errorf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	}
	rec := get("/debug/vars")
	if rec.Code != 200 {
		t.Fatalf("/debug/vars: code %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["secpref_campaign"]; !ok {
		t.Error("/debug/vars missing secpref_campaign")
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Errorf("/debug/pprof/: code %d", rec.Code)
	}
}

func TestSiteAndKindStrings(t *testing.T) {
	if SiteOf(mem.LvlL2) != SiteL2 || SiteOf(mem.LvlL1D) != SiteL1D || SiteOf(mem.LvlDRAM) != SiteDRAM {
		t.Error("SiteOf mapping wrong")
	}
	for s := 0; s < NumSites; s++ {
		if strings.HasPrefix(Site(s).String(), "site(") {
			t.Errorf("Site %d has no name", s)
		}
	}
	for k := 0; k < NumEventKinds; k++ {
		if strings.HasPrefix(EventKind(k).String(), "event(") {
			t.Errorf("EventKind %d has no name", k)
		}
	}
}

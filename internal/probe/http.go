package probe

import (
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// PrometheusWriter is anything that can append itself to a Prometheus
// text-format exposition (the campaign, an observatory aggregate, ...).
type PrometheusWriter interface {
	WritePrometheus(w io.Writer) error
}

// NewHandler builds the telemetry HTTP mux for a campaign:
//
//	/metrics       Prometheus text-format counters
//	/debug/vars    expvar JSON (includes the campaign snapshot)
//	/debug/pprof/  live CPU/heap/goroutine profiling
//
// Extra writers are appended to the /metrics exposition after the
// campaign's own counters (e.g. the engine-attribution aggregate). The
// campaign is published to expvar as a side effect.
func NewHandler(c *Campaign, extra ...PrometheusWriter) http.Handler {
	c.Publish()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = c.WritePrometheus(w)
		for _, e := range extra {
			_ = e.WritePrometheus(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves the telemetry handler in the background.
// It returns the bound address (useful with ":0") and the server for
// shutdown; the error covers the bind only — serve-loop errors after a
// successful bind terminate silently with the process.
func Serve(addr string, c *Campaign, extra ...PrometheusWriter) (string, *http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewHandler(c, extra...), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv, nil
}

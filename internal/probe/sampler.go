package probe

import (
	"encoding/json"
	"fmt"
	"io"
)

// IntervalSampler records the cumulative Sample the driver hands it at
// every window boundary and derives a per-interval time series: IPC,
// MPKI, miss latency, MSHR occupancy, prefetch accuracy/lateness, and
// SUF drop rate per window. It implements WindowObserver only — it
// costs the hot paths nothing between boundaries.
//
// The sampler is not safe for concurrent use; attach one per machine.
type IntervalSampler struct {
	samples []Sample
}

// NewIntervalSampler returns a sampler with capacity for the expected
// number of windows preallocated (growth beyond it only amortizes).
func NewIntervalSampler(expectWindows int) *IntervalSampler {
	if expectWindows < 16 {
		expectWindows = 16
	}
	return &IntervalSampler{samples: make([]Sample, 0, expectWindows)}
}

// Window implements WindowObserver.
func (s *IntervalSampler) Window(sm Sample) { s.samples = append(s.samples, sm) }

// Samples returns the recorded cumulative snapshots in boundary order.
func (s *IntervalSampler) Samples() []Sample { return s.samples }

// Len returns the number of recorded windows.
func (s *IntervalSampler) Len() int { return len(s.samples) }

// Row is one derived time-series interval: the deltas between two
// consecutive cumulative samples, expressed as the rates the paper's
// figures are built from.
type Row struct {
	// Cycle and Instructions are the window's end boundary (cumulative).
	Cycle        uint64 `json:"cycle"`
	Instructions uint64 `json:"instructions"`

	IPC  float64 `json:"ipc"`
	MPKI float64 `json:"mpki"`
	// L2MPKI is the next level's demand-miss rate.
	L2MPKI float64 `json:"l2_mpki"`
	// MissLat is the mean load-observed miss latency over the window.
	MissLat float64 `json:"miss_lat"`
	// MSHROcc is mean occupied home-level MSHR entries per cycle;
	// MSHRFullFrac the fraction of window cycles with none free.
	MSHROcc      float64 `json:"mshr_occ"`
	MSHRFullFrac float64 `json:"mshr_full_frac"`
	// PrefAccuracy is useful/filled over the window; PrefLatePKI the
	// late-prefetch rate; PrefIssuedPKI the issue rate.
	PrefAccuracy  float64 `json:"pref_accuracy"`
	PrefLatePKI   float64 `json:"pref_late_pki"`
	PrefIssuedPKI float64 `json:"pref_issued_pki"`
	// SUFDropPKI is the SUF filtering rate; CommitGMHitRate the
	// fraction of commits served by the GM.
	SUFDropPKI      float64 `json:"suf_drop_pki"`
	CommitGMHitRate float64 `json:"commit_gm_hit_rate"`
	DRAMReadPKI     float64 `json:"dram_read_pki"`
}

// ratio returns a/b, or 0 when b is 0 (partial windows, idle phases).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Rows derives the per-interval time series from the recorded samples.
func (s *IntervalSampler) Rows() []Row {
	rows := make([]Row, 0, len(s.samples))
	var prev Sample // zero: the measured phase starts at zero counters
	for _, cur := range s.samples {
		instrs := float64(cur.Instructions - prev.Instructions)
		cycles := float64(cur.Cycle - prev.Cycle)
		mshrCycles := float64(cur.MSHRCycles - prev.MSHRCycles)
		commits := float64((cur.CommitGMHits - prev.CommitGMHits) + (cur.CommitGMMisses - prev.CommitGMMisses))
		rows = append(rows, Row{
			Cycle:           cur.Cycle,
			Instructions:    cur.Instructions,
			IPC:             ratio(instrs, cycles),
			MPKI:            ratio(float64(cur.DemandMisses-prev.DemandMisses)*1000, instrs),
			L2MPKI:          ratio(float64(cur.L2DemandMisses-prev.L2DemandMisses)*1000, instrs),
			MissLat:         ratio(float64(cur.MissLatSum-prev.MissLatSum), float64(cur.MissLatCnt-prev.MissLatCnt)),
			MSHROcc:         ratio(float64(cur.MSHROccupancy-prev.MSHROccupancy), mshrCycles),
			MSHRFullFrac:    ratio(float64(cur.MSHRFullCycles-prev.MSHRFullCycles), mshrCycles),
			PrefAccuracy:    ratio(float64(cur.PrefUseful-prev.PrefUseful), float64(cur.PrefFilled-prev.PrefFilled)),
			PrefLatePKI:     ratio(float64(cur.PrefLate-prev.PrefLate)*1000, instrs),
			PrefIssuedPKI:   ratio(float64(cur.PrefIssued-prev.PrefIssued)*1000, instrs),
			SUFDropPKI:      ratio(float64(cur.SUFDrops-prev.SUFDrops)*1000, instrs),
			CommitGMHitRate: ratio(float64(cur.CommitGMHits-prev.CommitGMHits), commits),
			DRAMReadPKI:     ratio(float64(cur.DRAMReads-prev.DRAMReads)*1000, instrs),
		})
		prev = cur
	}
	return rows
}

// series is the JSON export envelope.
type series struct {
	Label     string   `json:"label,omitempty"`
	Trace     string   `json:"trace,omitempty"`
	Intervals []Row    `json:"intervals"`
	Samples   []Sample `json:"cumulative"`
}

// WriteJSON writes the time series (derived intervals plus the raw
// cumulative snapshots) as indented JSON. Label and trace name the run
// in the envelope; empty strings are omitted.
func (s *IntervalSampler) WriteJSON(w io.Writer, label, trace string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series{Label: label, Trace: trace, Intervals: s.Rows(), Samples: s.samples})
}

// csvHeader lists the WriteCSV columns in order.
var csvHeader = []string{
	"cycle", "instructions", "ipc", "mpki", "l2_mpki", "miss_lat",
	"mshr_occ", "mshr_full_frac", "pref_accuracy", "pref_late_pki",
	"pref_issued_pki", "suf_drop_pki", "commit_gm_hit_rate", "dram_read_pki",
}

// WriteCSV writes the derived per-interval rows as CSV.
func (s *IntervalSampler) WriteCSV(w io.Writer) error {
	for i, h := range csvHeader {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, h); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, r := range s.Rows() {
		_, err := fmt.Fprintf(w, "%d,%d,%.4f,%.3f,%.3f,%.1f,%.3f,%.4f,%.4f,%.3f,%.3f,%.3f,%.4f,%.3f\n",
			r.Cycle, r.Instructions, r.IPC, r.MPKI, r.L2MPKI, r.MissLat,
			r.MSHROcc, r.MSHRFullFrac, r.PrefAccuracy, r.PrefLatePKI,
			r.PrefIssuedPKI, r.SUFDropPKI, r.CommitGMHitRate, r.DRAMReadPKI)
		if err != nil {
			return err
		}
	}
	return nil
}

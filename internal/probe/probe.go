// Package probe is the simulator's observability layer: a nil-checkable
// observer vocabulary the hot paths emit into, plus three production
// consumers — an interval time-series sampler, a sampled
// request-lifecycle tracer, and live campaign telemetry (expvar /
// Prometheus / pprof).
//
// The contract with the hot paths is strict (see docs/observability.md):
//
//   - Every emission site is guarded by a nil check on a concrete
//     Observer field, so the disabled path costs one predictable branch
//     and allocates nothing (internal/cache's alloc tests enforce this).
//   - Events are passed by value; an observer that wants to retain one
//     must copy it into its own storage (the Tracer's fixed ring).
//   - Observers are read-only: they must never mutate simulation state,
//     and the simulator never reads anything back from them, so an
//     attached observer cannot perturb results (sim's equivalence test
//     enforces bit-identical outcomes).
package probe

import (
	"fmt"

	"secpref/internal/mem"
)

// Site identifies the component that emitted an event. Unlike
// mem.Level it includes the core, the GhostMinion speculative cache,
// and DRAM, so a request's lifecycle chain is unambiguous.
type Site uint8

const (
	// SiteCore is the out-of-order core (issue and commit events).
	SiteCore Site = iota
	// SiteGM is the GhostMinion speculative cache.
	SiteGM
	// SiteL1D, SiteL2, SiteLLC are the cache levels.
	SiteL1D
	SiteL2
	SiteLLC
	// SiteDRAM is the memory controller.
	SiteDRAM
	// SitePF is the prefetcher (training events).
	SitePF

	// NumSites is the number of emission sites.
	NumSites = int(SitePF) + 1
)

// String implements fmt.Stringer.
func (s Site) String() string {
	switch s {
	case SiteCore:
		return "core"
	case SiteGM:
		return "GM"
	case SiteL1D:
		return "L1D"
	case SiteL2:
		return "L2"
	case SiteLLC:
		return "LLC"
	case SiteDRAM:
		return "DRAM"
	case SitePF:
		return "PF"
	}
	return fmt.Sprintf("site(%d)", uint8(s))
}

// SiteOf maps a cache level to its probe site.
func SiteOf(l mem.Level) Site {
	switch l {
	case mem.LvlL2:
		return SiteL2
	case mem.LvlLLC:
		return SiteLLC
	case mem.LvlDRAM:
		return SiteDRAM
	}
	return SiteL1D
}

// EventKind classifies an observed event.
type EventKind uint8

const (
	// EvIssue: the core sent a load to the memory system.
	EvIssue EventKind = iota
	// EvAccess: a component looked a request up (Hit reports the
	// outcome; at DRAM it reports a row-buffer hit).
	EvAccess
	// EvMerge: a request joined an in-flight MSHR entry.
	EvMerge
	// EvFill: a request's data became available at the observing site
	// (Aux carries the observed latency in cycles).
	EvFill
	// EvDrop: a request was abandoned (prefetch queue/MSHR overflow, or
	// a GhostMinion MSHR leapfrog — Aux distinguishes, see DropReason).
	EvDrop
	// EvInstall: a line was installed at a cache level (Hit reports a
	// prefetch install).
	EvInstall
	// EvEvict: a valid line left a cache level.
	EvEvict
	// EvCommit: a load retired (at the core: Level carries the recorded
	// hit level; at the GM: Aux carries the CommitOutcome).
	EvCommit
	// EvSUF: the commit filter decided (Hit reports drop, Aux carries
	// the writeback bits).
	EvSUF
	// EvTrain: the prefetcher consumed a training access (Spec reports
	// whether the access had committed when it trained — the security
	// property the on-commit discipline enforces).
	EvTrain
	// EvSquash: speculative work was thrown away; Seq carries the first
	// squashed timestamp (every in-flight request with Timestamp >= Seq
	// is transient and must leave no persistent trace).
	EvSquash

	// NumEventKinds is the number of event kinds.
	NumEventKinds = int(EvSquash) + 1
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvIssue:
		return "issue"
	case EvAccess:
		return "access"
	case EvMerge:
		return "merge"
	case EvFill:
		return "fill"
	case EvDrop:
		return "drop"
	case EvInstall:
		return "install"
	case EvEvict:
		return "evict"
	case EvCommit:
		return "commit"
	case EvSUF:
		return "suf"
	case EvTrain:
		return "train"
	case EvSquash:
		return "squash"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Aux values for EvDrop events.
const (
	// DropQueueFull: a prefetch was lost to queue/MSHR pressure.
	DropQueueFull uint64 = iota
	// DropLeapfrog: a GhostMinion MSHR entry was displaced by an older
	// request.
	DropLeapfrog
)

// Aux values for GM EvCommit events (the commit outcome).
const (
	// CommitGMHit: the committed line was GM-resident (on-commit write).
	CommitGMHit uint64 = iota
	// CommitGMMiss: the line left the GM before commit (re-fetch).
	CommitGMMiss
	// CommitSUFDrop: the SUF suppressed the hierarchy update.
	CommitSUFDrop
)

// Event is one observed occurrence. It is passed by value so emission
// never allocates; the meaning of Level, Hit, and Aux depends on Kind
// (see the EventKind constants).
type Event struct {
	Kind  EventKind
	Site  Site
	Cycle mem.Cycle
	// Core is the index of the core that originated the triggering
	// request (mem.Request.Core). Single-core runs and traffic with no
	// originating request carry 0. For EvEvict it identifies the
	// aggressor whose fill forced the eviction, not the victim line's
	// owner — interference attribution pairs it with its own line-owner
	// bookkeeping.
	Core int
	// Seq is the program-order timestamp of the triggering instruction
	// (mem.Request.Timestamp); it is the identity that chains one
	// request's events across sites. Maintenance traffic carries 0.
	Seq  uint64
	Line mem.Line
	IP   mem.Addr
	Req  mem.Kind
	// Level is kind-specific: the served-by / recorded hit level.
	Level mem.Level
	// Hit is kind-specific: lookup outcome, prefetch install, SUF drop.
	Hit bool
	// Aux is kind-specific: latency (EvFill), drop reason (EvDrop),
	// commit outcome (EvCommit at the GM), writeback bits (EvSUF).
	Aux uint64
	// Spec is the event's speculative provenance: the emitting site
	// handled this as not-yet-committed work (a GhostMinion invisible
	// probe, a SpecBypass fill, a pre-commit prefetcher training). The
	// leakage auditor treats a Spec mutation of persistent state as an
	// immediate invariant violation.
	Spec bool
}

// Observer receives fine-grained events from the hot paths. A nil
// Observer field means disabled; every emission site branches on that
// before constructing the Event.
type Observer interface {
	Event(ev Event)
}

// WindowObserver receives cumulative counter snapshots at cycle-window
// boundaries (every N retired instructions). The driver (internal/sim)
// assembles the Sample; consumers derive per-interval rates from
// consecutive snapshots.
type WindowObserver interface {
	Window(s Sample)
}

// Sample is a cumulative counter snapshot taken at a window boundary.
// All fields count from the start of the measured phase, so consecutive
// samples difference into per-interval rates.
type Sample struct {
	// Core identifies the emitting core in multicore runs (0 in
	// single-core runs, where there is only one series).
	Core int `json:"core"`
	// Cycle and Instructions locate the boundary.
	Cycle        uint64 `json:"cycle"`
	Instructions uint64 `json:"instructions"`

	Loads uint64 `json:"loads"`
	// DemandMisses counts misses at the level the core observes (the GM
	// on a secure system, L1D otherwise); L2DemandMisses counts the
	// next level's.
	DemandMisses   uint64 `json:"demand_misses"`
	L2DemandMisses uint64 `json:"l2_demand_misses"`
	// MissLatSum/MissLatCnt accumulate the load-observed miss latency.
	MissLatSum uint64 `json:"miss_lat_sum"`
	MissLatCnt uint64 `json:"miss_lat_cnt"`

	// MSHROccupancy is the home level's occupancy integrated over
	// MSHRCycles cycles; MSHRFullCycles counts saturated cycles.
	MSHROccupancy  uint64 `json:"mshr_occupancy"`
	MSHRFullCycles uint64 `json:"mshr_full_cycles"`
	MSHRCycles     uint64 `json:"mshr_cycles"`

	// Prefetch effectiveness, aggregated from the prefetcher's home
	// level down (matching Result.PrefAccuracy).
	PrefIssued uint64 `json:"pref_issued"`
	PrefFilled uint64 `json:"pref_filled"`
	PrefUseful uint64 `json:"pref_useful"`
	PrefLate   uint64 `json:"pref_late"`

	// Secure-system commit path.
	CommitGMHits   uint64 `json:"commit_gm_hits"`
	CommitGMMisses uint64 `json:"commit_gm_misses"`
	SUFDrops       uint64 `json:"suf_drops"`

	DRAMReads uint64 `json:"dram_reads"`
}

// Multi fans events out to several observers (nil entries are skipped).
type Multi []Observer

// Event implements Observer.
func (m Multi) Event(ev Event) {
	for _, o := range m {
		if o != nil {
			o.Event(ev)
		}
	}
}

// Fanout returns the cheapest observer equivalent to attaching all of
// obs: nil for none, the observer itself for one, a Multi otherwise.
func Fanout(obs ...Observer) Observer {
	var live Multi
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Tracer records sampled request-lifecycle event chains — issue → GM
// probe → cache levels → DRAM → fill → commit — into a fixed-size ring.
// Sampling is by program-order sequence number (every Nth load), so a
// sampled request's whole chain is captured across every site it
// touches. Steady state allocates nothing: the ring is preallocated and
// old events are overwritten.
type Tracer struct {
	every uint64
	ring  []Event
	head  int // next write position
	count int
	// dropped counts events overwritten after the ring filled (the
	// export notes truncation instead of silently presenting a full
	// history).
	dropped uint64
}

// NewTracer builds a tracer sampling one in every loads (every < 1 is
// treated as 1: trace everything) with a ring of capacity events.
func NewTracer(every uint64, capacity int) *Tracer {
	if every < 1 {
		every = 1
	}
	if capacity < 64 {
		capacity = 64
	}
	return &Tracer{every: every, ring: make([]Event, capacity)}
}

// Event implements Observer: sampled events enter the ring. Events
// without a program-order identity (Seq 0: prefetches, writebacks,
// maintenance traffic) are not part of any load's chain and are
// skipped.
func (t *Tracer) Event(ev Event) {
	if ev.Seq == 0 || ev.Seq%t.every != 0 {
		return
	}
	if t.count == len(t.ring) {
		t.dropped++
	} else {
		t.count++
	}
	t.ring[t.head] = ev
	t.head++
	if t.head == len(t.ring) {
		t.head = 0
	}
}

// Events returns the recorded events oldest-first.
func (t *Tracer) Events() []Event {
	out := make([]Event, 0, t.count)
	start := t.head - t.count
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.count; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped returns how many events were overwritten after the ring
// filled.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// chromeEvent is one entry of the Chrome trace-event JSON format, which
// Perfetto and chrome://tracing both load. Timestamps are in
// "microseconds"; the tracer maps one core cycle to one microsecond.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the ring as Chrome trace-event JSON: one
// process (pid) per core, one lane (tid) per site within it, an
// instant event per recorded occurrence, and a duration span per
// sampled load from its core issue to its core fill, so the timeline
// shows each load's walk down the hierarchy. Single-core runs collapse
// to one process (core 0); multicore exports get one named process row
// per core instead of interleaving every core into the same track.
func (t *Tracer) WriteChromeTrace(w io.Writer, label string) error {
	evs := t.Events()
	out := chromeTrace{
		DisplayTimeUnit: "ns",
		OtherData:       map[string]any{"label": label, "time_unit": "1 core cycle = 1us", "dropped_events": t.dropped},
		TraceEvents:     make([]chromeEvent, 0, len(evs)+NumSites),
	}
	seen := map[int]bool{}
	var cores []int
	for _, ev := range evs {
		if !seen[ev.Core] {
			seen[ev.Core] = true
			cores = append(cores, ev.Core)
		}
	}
	if len(cores) == 0 {
		cores = append(cores, 0)
	}
	sort.Ints(cores)
	for _, c := range cores {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: c,
			Args: map[string]any{"name": fmt.Sprintf("core%d", c)},
		})
		for s := 0; s < NumSites; s++ {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: c, TID: s,
				Args: map[string]any{"name": Site(s).String()},
			})
		}
	}
	issued := make(map[uint64]Event, 64) // seq -> core issue event
	for _, ev := range evs {
		if ev.Kind == EvIssue && ev.Site == SiteCore {
			// Represented by the X span emitted when the fill pairs up
			// (an unfilled load at ring cutoff leaves no span).
			issued[ev.Seq] = ev
			continue
		}
		if ev.Kind == EvFill && ev.Site == SiteCore {
			if is, ok := issued[ev.Seq]; ok {
				dur := uint64(ev.Cycle - is.Cycle)
				if dur == 0 {
					dur = 1
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: fmt.Sprintf("load seq=%d", ev.Seq), Phase: "X",
					TS: uint64(is.Cycle), Dur: dur, PID: ev.Core, TID: int(SiteCore),
					Args: map[string]any{"line": fmt.Sprintf("%#x", uint64(ev.Line)), "served_by": ev.Level.String()},
				})
				delete(issued, ev.Seq)
				continue
			}
		}
		ce := chromeEvent{
			Name:  fmt.Sprintf("%s %s", ev.Site, ev.Kind),
			Phase: "i", Scope: "t",
			TS: uint64(ev.Cycle), PID: ev.Core, TID: int(ev.Site),
			Args: map[string]any{
				"seq":  ev.Seq,
				"line": fmt.Sprintf("%#x", uint64(ev.Line)),
				"kind": ev.Req.String(),
			},
		}
		if ev.Spec {
			ce.Args["spec"] = true
		}
		switch ev.Kind {
		case EvAccess:
			ce.Args["hit"] = ev.Hit
		case EvFill:
			ce.Args["latency"] = ev.Aux
		case EvCommit:
			ce.Args["hit_level"] = ev.Level.String()
			if ev.Site == SiteGM {
				ce.Args["outcome"] = commitOutcomeName(ev.Aux)
			}
		case EvDrop:
			ce.Args["reason"] = dropReasonName(ev.Aux)
		case EvSUF:
			ce.Args["drop"] = ev.Hit
			ce.Args["wb_bits"] = ev.Aux
		case EvTrain:
			ce.Args["hit"] = ev.Hit
		case EvSquash:
			ce.Args["from_seq"] = ev.Seq
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

func commitOutcomeName(a uint64) string {
	switch a {
	case CommitGMHit:
		return "gm-hit"
	case CommitGMMiss:
		return "gm-miss"
	case CommitSUFDrop:
		return "suf-drop"
	}
	return fmt.Sprintf("outcome(%d)", a)
}

func dropReasonName(a uint64) string {
	switch a {
	case DropQueueFull:
		return "queue-full"
	case DropLeapfrog:
		return "leapfrog"
	}
	return fmt.Sprintf("reason(%d)", a)
}

package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// extraWriter is a stand-in for the observatory aggregate riding the
// /metrics endpoint.
type extraWriter struct{ body string }

func (e extraWriter) WritePrometheus(w io.Writer) error {
	_, err := io.WriteString(w, e.body)
	return err
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, path, nil))
	return rr
}

func TestHandlerMetrics(t *testing.T) {
	c := NewCampaign(3)
	c.SetEngineVersion("ev-test")
	c.RunStarted()
	c.RunDone(1000, 5000)
	c.RunFailed()
	h := NewHandler(c, extraWriter{"extra_metric_total 42\n"})

	rr := get(t, h, "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body := rr.Body.String()
	for _, want := range []string{
		"secpref_runs_started_total 1",
		"secpref_runs_completed_total 1",
		"secpref_runs_failed_total 1",
		"secpref_instructions_total 1000",
		`secpref_engine_info{version="ev-test"} 1`,
		"extra_metric_total 42", // the extra writer's exposition rides along
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestHandlerExpvarAndPprof(t *testing.T) {
	c := NewCampaign(1)
	c.SetEngineVersion("ev-test")
	c.ExperimentStarted("exp-1")
	h := NewHandler(c)

	rr := get(t, h, "/debug/vars")
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", rr.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	raw, ok := vars["secpref_campaign"]
	if !ok {
		t.Fatal("/debug/vars missing secpref_campaign")
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("campaign snapshot not a Snapshot: %v", err)
	}
	if snap.CurrentExp != "exp-1" || snap.EngineVersion != "ev-test" {
		t.Errorf("snapshot = %+v", snap)
	}

	if rr := get(t, h, "/debug/pprof/cmdline"); rr.Code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status = %d", rr.Code)
	}
}

func TestServeBindsAndServes(t *testing.T) {
	c := NewCampaign(1)
	addr, srv, err := Serve("127.0.0.1:0", c, extraWriter{"served_extra 1\n"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "served_extra 1") {
		t.Errorf("served /metrics missing extra writer output:\n%s", body)
	}
}

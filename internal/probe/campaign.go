package probe

import (
	"expvar"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Campaign aggregates live telemetry for a long experiment campaign:
// run and instruction counters bumped by the experiment runner, an
// expvar publication, and a Prometheus text-format export. All methods
// are safe for concurrent use (the runner fans simulations out across
// cores).
type Campaign struct {
	start time.Time

	runsStarted atomic.Uint64
	runsDone    atomic.Uint64
	runsFailed  atomic.Uint64
	instrs      atomic.Uint64
	cycles      atomic.Uint64
	experiments atomic.Uint64
	currentExp  atomic.Value // string: the experiment id in flight
	engineVer   atomic.Value // string: simulation-engine version
	plannedExps int
}

// NewCampaign starts a campaign clock over planned experiment ids.
func NewCampaign(plannedExperiments int) *Campaign {
	c := &Campaign{start: time.Now(), plannedExps: plannedExperiments}
	c.currentExp.Store("")
	c.engineVer.Store("")
	return c
}

// SetEngineVersion records the simulation-engine version the campaign
// runs under; it appears in the snapshot and as the
// secpref_engine_info metric.
func (c *Campaign) SetEngineVersion(v string) { c.engineVer.Store(v) }

// RunStarted records one simulation starting.
func (c *Campaign) RunStarted() { c.runsStarted.Add(1) }

// RunDone records one simulation finishing with its retired instruction
// and simulated cycle counts.
func (c *Campaign) RunDone(instrs, cycles uint64) {
	c.runsDone.Add(1)
	c.instrs.Add(instrs)
	c.cycles.Add(cycles)
}

// RunFailed records one simulation erroring out.
func (c *Campaign) RunFailed() { c.runsFailed.Add(1) }

// ExperimentStarted records the experiment id now in flight.
func (c *Campaign) ExperimentStarted(id string) { c.currentExp.Store(id) }

// ExperimentDone records one experiment id completing.
func (c *Campaign) ExperimentDone() { c.experiments.Add(1) }

// Runs returns (completed, started) simulation counts.
func (c *Campaign) Runs() (done, started uint64) {
	return c.runsDone.Load(), c.runsStarted.Load()
}

// Elapsed returns time since the campaign started.
func (c *Campaign) Elapsed() time.Duration { return time.Since(c.start) }

// ETA estimates remaining campaign time from per-experiment progress:
// elapsed scaled by the unfinished fraction. Zero until the first
// experiment completes.
func (c *Campaign) ETA() time.Duration {
	done := c.experiments.Load()
	if done == 0 || c.plannedExps <= int(done) {
		return 0
	}
	per := c.Elapsed() / time.Duration(done)
	return per * time.Duration(c.plannedExps-int(done))
}

// Snapshot is a consistent-enough view of the counters for export.
type Snapshot struct {
	RunsStarted     uint64  `json:"runs_started"`
	RunsDone        uint64  `json:"runs_done"`
	RunsFailed      uint64  `json:"runs_failed"`
	Instructions    uint64  `json:"instructions"`
	Cycles          uint64  `json:"cycles"`
	ExperimentsDone uint64  `json:"experiments_done"`
	ExperimentsPlan int     `json:"experiments_planned"`
	CurrentExp      string  `json:"current_experiment"`
	EngineVersion   string  `json:"engine_version,omitempty"`
	UptimeSeconds   float64 `json:"uptime_seconds"`
	InstrsPerSec    float64 `json:"instrs_per_sec"`
}

// Snapshot captures the current counters.
func (c *Campaign) Snapshot() Snapshot {
	up := c.Elapsed().Seconds()
	s := Snapshot{
		RunsStarted:     c.runsStarted.Load(),
		RunsDone:        c.runsDone.Load(),
		RunsFailed:      c.runsFailed.Load(),
		Instructions:    c.instrs.Load(),
		Cycles:          c.cycles.Load(),
		ExperimentsDone: c.experiments.Load(),
		ExperimentsPlan: c.plannedExps,
		CurrentExp:      c.currentExp.Load().(string),
		EngineVersion:   c.engineVer.Load().(string),
		UptimeSeconds:   up,
	}
	if up > 0 {
		s.InstrsPerSec = float64(s.Instructions) / up
	}
	return s
}

// WritePrometheus writes the counters in Prometheus text exposition
// format (counters as *_total, gauges bare).
func (c *Campaign) WritePrometheus(w io.Writer) error {
	s := c.Snapshot()
	write := func(name, typ, help string, v float64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		return err
	}
	for _, m := range []struct {
		name, typ, help string
		v               float64
	}{
		{"secpref_runs_started_total", "counter", "Simulations started.", float64(s.RunsStarted)},
		{"secpref_runs_completed_total", "counter", "Simulations completed.", float64(s.RunsDone)},
		{"secpref_runs_failed_total", "counter", "Simulations failed.", float64(s.RunsFailed)},
		{"secpref_instructions_total", "counter", "Instructions retired across completed runs.", float64(s.Instructions)},
		{"secpref_cycles_total", "counter", "Cycles simulated across completed runs.", float64(s.Cycles)},
		{"secpref_experiments_completed_total", "counter", "Experiment ids completed.", float64(s.ExperimentsDone)},
		{"secpref_campaign_uptime_seconds", "gauge", "Seconds since the campaign started.", s.UptimeSeconds},
		{"secpref_instructions_per_second", "gauge", "Campaign-average simulated instruction throughput.", s.InstrsPerSec},
	} {
		if err := write(m.name, m.typ, m.help, m.v); err != nil {
			return err
		}
	}
	if s.EngineVersion != "" {
		if _, err := fmt.Fprintf(w, "# HELP secpref_engine_info Simulation-engine version in use.\n# TYPE secpref_engine_info gauge\nsecpref_engine_info{version=%q} 1\n", s.EngineVersion); err != nil {
			return err
		}
	}
	return nil
}

// expvar publication is process-global and append-only, so the package
// registers one Func reading whichever campaign published last.
var expvarOnce sync.Once
var expvarCurrent atomic.Pointer[Campaign]

// Publish exposes the campaign under the expvar key "secpref_campaign"
// (served by /debug/vars). Safe to call more than once and across
// campaigns; the latest publisher wins.
func (c *Campaign) Publish() {
	expvarCurrent.Store(c)
	expvarOnce.Do(func() {
		expvar.Publish("secpref_campaign", expvar.Func(func() any {
			if cur := expvarCurrent.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
}

// Package leakage implements the taint-and-audit observability
// subsystem: an Auditor that consumes probe events, tracks mutations of
// persistent microarchitectural structures (cache lines, replacement
// metadata, prefetcher training tables), and charges every mutation
// made by later-squashed work to the site and structure that retained
// it. On a secure configuration (GhostMinion + on-commit prefetch) the
// resulting scoreboard must be provably zero; when it is not, the
// scoreboard says exactly which site/structure broke the invariant.
//
// The auditor is a plain probe.Observer: it never mutates simulation
// state, so it can ride along any run (sim's equivalence test holds
// with the auditor attached).
package leakage

import (
	"fmt"
	"strings"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

// Structure classifies the persistent state a mutation touched.
type Structure uint8

const (
	// StructLines: a cache line was installed (data presence is
	// attacker-observable through probe latency).
	StructLines Structure = iota
	// StructReplMeta: replacement metadata was updated by a demand hit
	// (recency/RRPV state is observable through eviction patterns).
	StructReplMeta
	// StructTrainTable: the prefetcher's training state absorbed an
	// access (observable through the prefetches it later issues).
	StructTrainTable

	// NumStructures is the number of audited structure classes.
	NumStructures = int(StructTrainTable) + 1
)

// String implements fmt.Stringer.
func (s Structure) String() string {
	switch s {
	case StructLines:
		return "lines"
	case StructReplMeta:
		return "repl-meta"
	case StructTrainTable:
		return "train-table"
	}
	return fmt.Sprintf("structure(%d)", uint8(s))
}

// ViolationKind classifies how a violation was detected.
type ViolationKind uint8

const (
	// TaintedSurvivor: a persistent structure was mutated by work that a
	// later squash proved transient, and the mutation survived.
	TaintedSurvivor ViolationKind = iota
	// SpeculativeInstall: a line install was tagged speculative at the
	// emitting site (the hierarchy installed not-yet-committed data).
	SpeculativeInstall
	// SpeculativeTrain: the prefetcher trained on an access that had not
	// committed (the channel the on-commit discipline closes).
	SpeculativeTrain
)

// String implements fmt.Stringer.
func (k ViolationKind) String() string {
	switch k {
	case TaintedSurvivor:
		return "tainted-survivor"
	case SpeculativeInstall:
		return "speculative-install"
	case SpeculativeTrain:
		return "speculative-train"
	}
	return fmt.Sprintf("violation(%d)", uint8(k))
}

// Violation is one detected invariant break, with enough context to
// name the offender.
type Violation struct {
	Kind      ViolationKind
	Site      probe.Site
	Structure Structure
	Line      mem.Line
	Seq       uint64
	Cycle     mem.Cycle
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s at %s/%s line=%#x seq=%d cycle=%d",
		v.Kind, v.Site, v.Structure, uint64(v.Line), v.Seq, v.Cycle)
}

// maxViolations caps the detailed violation list; the counters keep
// counting past it.
const maxViolations = 32

// Scoreboard is the audit result. Clean() is the paper's security
// invariant; the per-site/structure matrix and the violation list are
// the diagnosis when it fails.
type Scoreboard struct {
	// TaintedSurvivors counts persistent-structure mutations charged to
	// later-squashed work.
	TaintedSurvivors uint64 `json:"tainted_survivors"`
	// SpecTrains counts prefetcher trainings on not-yet-committed
	// accesses.
	SpecTrains uint64 `json:"spec_trains"`
	// SpecInstalls counts line installs tagged speculative at emission
	// (should be structurally impossible: the hierarchy completes
	// speculative probes without installing).
	SpecInstalls uint64 `json:"spec_installs"`

	// Audit-coverage evidence: a clean scoreboard is only meaningful if
	// the auditor actually witnessed speculation and commits.
	Squashes     uint64 `json:"squashes"`
	Commits      uint64 `json:"commits"`
	SpecAccesses uint64 `json:"spec_accesses"`
	// Mutations counts the persistent-structure mutations tracked for
	// taint resolution (committed ones retire silently).
	Mutations uint64 `json:"mutations"`

	// Tainted breaks TaintedSurvivors down by [site][structure].
	Tainted [probe.NumSites][NumStructures]uint64 `json:"tainted"`

	// Violations holds the first maxViolations detected breaks in
	// detection order.
	Violations []Violation `json:"-"`
}

// Clean reports the security invariant: no speculative work left a
// persistent trace.
func (s *Scoreboard) Clean() bool {
	return s.TaintedSurvivors == 0 && s.SpecTrains == 0 && s.SpecInstalls == 0
}

// Merge folds another scoreboard into s (multi-trial aggregation).
func (s *Scoreboard) Merge(o *Scoreboard) {
	s.TaintedSurvivors += o.TaintedSurvivors
	s.SpecTrains += o.SpecTrains
	s.SpecInstalls += o.SpecInstalls
	s.Squashes += o.Squashes
	s.Commits += o.Commits
	s.SpecAccesses += o.SpecAccesses
	s.Mutations += o.Mutations
	for i := range s.Tainted {
		for j := range s.Tainted[i] {
			s.Tainted[i][j] += o.Tainted[i][j]
		}
	}
	for _, v := range o.Violations {
		if len(s.Violations) >= maxViolations {
			break
		}
		s.Violations = append(s.Violations, v)
	}
}

// String renders the scoreboard for humans: one line when clean, the
// per-site/structure breakdown plus the recorded violations otherwise.
func (s *Scoreboard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tainted-survivors=%d spec-trains=%d spec-installs=%d (squashes=%d commits=%d spec-accesses=%d mutations=%d)",
		s.TaintedSurvivors, s.SpecTrains, s.SpecInstalls,
		s.Squashes, s.Commits, s.SpecAccesses, s.Mutations)
	if s.Clean() {
		return "clean: " + b.String()
	}
	for site := 0; site < probe.NumSites; site++ {
		for st := 0; st < NumStructures; st++ {
			if n := s.Tainted[site][st]; n > 0 {
				fmt.Fprintf(&b, "\n  %s/%s: %d tainted", probe.Site(site), Structure(st), n)
			}
		}
	}
	for _, v := range s.Violations {
		fmt.Fprintf(&b, "\n  %s", v)
	}
	return b.String()
}

// mutation is one tracked persistent-structure update whose triggering
// instruction has not committed yet.
type mutation struct {
	seq       uint64
	line      mem.Line
	cycle     mem.Cycle
	site      probe.Site
	structure Structure
}

// compactAt bounds the pending list: when it grows past this, entries
// whose instruction has since committed are retired.
const compactAt = 4096

// Auditor consumes probe events and maintains the scoreboard. The
// taint rule: a mutation with program-order timestamp seq is charged
// when an EvSquash(ts) arrives with seq >= ts before any commit
// advanced the watermark past seq — commits are program-ordered, so
// watermark < seq means the instruction had not committed when it
// mutated the structure. Seq 0 identifies maintenance traffic
// (prefetch fills, writebacks, commit writes), which carries committed
// or architectural provenance and is exempt.
type Auditor struct {
	sb        Scoreboard
	watermark uint64 // highest committed program-order timestamp
	pending   []mutation
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor { return &Auditor{} }

// Event implements probe.Observer.
func (a *Auditor) Event(ev probe.Event) {
	switch ev.Kind {
	case probe.EvCommit:
		if ev.Site == probe.SiteCore {
			a.sb.Commits++
		}
		if (ev.Site == probe.SiteCore || ev.Site == probe.SiteGM) && ev.Seq > a.watermark {
			a.watermark = ev.Seq
		}
	case probe.EvSquash:
		a.sb.Squashes++
		a.resolve(ev.Seq)
	case probe.EvAccess:
		if ev.Spec {
			a.sb.SpecAccesses++
			return
		}
		// A committed-provenance demand hit touches replacement state.
		if cacheSite(ev.Site) && ev.Hit && ev.Seq > a.watermark {
			a.record(mutation{seq: ev.Seq, line: ev.Line, cycle: ev.Cycle, site: ev.Site, structure: StructReplMeta})
		}
	case probe.EvInstall:
		if !cacheSite(ev.Site) {
			return
		}
		if ev.Spec {
			a.sb.SpecInstalls++
			a.violate(Violation{Kind: SpeculativeInstall, Site: ev.Site, Structure: StructLines, Line: ev.Line, Seq: ev.Seq, Cycle: ev.Cycle})
			return
		}
		if ev.Seq > a.watermark {
			a.record(mutation{seq: ev.Seq, line: ev.Line, cycle: ev.Cycle, site: ev.Site, structure: StructLines})
		}
	case probe.EvTrain:
		if ev.Spec {
			a.sb.SpecTrains++
			a.violate(Violation{Kind: SpeculativeTrain, Site: ev.Site, Structure: StructTrainTable, Line: ev.Line, Seq: ev.Seq, Cycle: ev.Cycle})
		}
		if ev.Seq > a.watermark {
			a.record(mutation{seq: ev.Seq, line: ev.Line, cycle: ev.Cycle, site: ev.Site, structure: StructTrainTable})
		}
	}
}

// cacheSite reports whether the site holds audited persistent cache
// state (the GM is speculative by design; DRAM has no attacker-visible
// per-line state in this model).
func cacheSite(s probe.Site) bool {
	return s == probe.SiteL1D || s == probe.SiteL2 || s == probe.SiteLLC
}

func (a *Auditor) record(m mutation) {
	a.sb.Mutations++
	if len(a.pending) >= compactAt {
		a.compact()
	}
	a.pending = append(a.pending, m)
}

// compact retires pending mutations whose instruction has committed.
func (a *Auditor) compact() {
	w := 0
	for _, m := range a.pending {
		if m.seq > a.watermark {
			a.pending[w] = m
			w++
		}
	}
	a.pending = a.pending[:w]
}

// resolve charges every pending mutation from the squashed range: its
// instruction never committed, yet the structure kept the update.
// Mutations at or below the commit watermark are exempt even if still
// pending (compaction is lazy): their instruction did commit.
func (a *Auditor) resolve(ts uint64) {
	w := 0
	for _, m := range a.pending {
		if m.seq >= ts && m.seq > a.watermark {
			a.sb.TaintedSurvivors++
			a.sb.Tainted[m.site][m.structure]++
			a.violate(Violation{Kind: TaintedSurvivor, Site: m.site, Structure: m.structure, Line: m.line, Seq: m.seq, Cycle: m.cycle})
			continue
		}
		a.pending[w] = m
		w++
	}
	a.pending = a.pending[:w]
}

func (a *Auditor) violate(v Violation) {
	if len(a.sb.Violations) < maxViolations {
		a.sb.Violations = append(a.sb.Violations, v)
	}
}

// Scoreboard returns a copy of the current audit state.
func (a *Auditor) Scoreboard() Scoreboard {
	sb := a.sb
	sb.Violations = append([]Violation(nil), a.sb.Violations...)
	return sb
}

package leakage

import (
	"math"
	"testing"
)

func TestConfusionPerfectChannel(t *testing.T) {
	c := NewConfusion()
	for s := 0; s < 16; s++ {
		c.Add(s, s)
	}
	if got := c.BitsPerTrial(); math.Abs(got-4.0) > 1e-9 {
		t.Fatalf("perfect 16-way channel: %.4f bits, want 4", got)
	}
}

func TestConfusionNoChannel(t *testing.T) {
	c := NewConfusion()
	for s := 0; s < 16; s++ {
		c.Add(s, -1) // attacker always learns nothing
	}
	if got := c.BitsPerTrial(); got > 1e-9 {
		t.Fatalf("constant inference leaks %.4f bits, want 0", got)
	}
}

func TestConfusionPartialChannel(t *testing.T) {
	// Half the trials leak perfectly, half read as nothing: strictly
	// between 0 and 4 bits.
	c := NewConfusion()
	for s := 0; s < 16; s++ {
		c.Add(s, s)
		c.Add(s, -1)
	}
	got := c.BitsPerTrial()
	if got <= 0.5 || got >= 4 {
		t.Fatalf("partial channel: %.4f bits, want within (0.5, 4)", got)
	}
}

func TestLatencySplitSeparated(t *testing.T) {
	var l LatencySplit
	for i := 0; i < 16; i++ {
		l.Add(ClassSecret, 5)
	}
	for i := 0; i < 240; i++ {
		l.Add(ClassOther, 200)
	}
	if got := l.Separation(); math.Abs(got-195) > 1e-9 {
		t.Fatalf("separation = %.1f, want 195", got)
	}
	// Fully separable: MI equals the class entropy H(1/16).
	p := 1.0 / 16
	want := -(p*math.Log2(p) + (1-p)*math.Log2(1-p))
	if got := l.MIBits(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MI = %.4f, want H(class) = %.4f", got, want)
	}
}

func TestLatencySplitOverlapping(t *testing.T) {
	var l LatencySplit
	for i := 0; i < 100; i++ {
		l.Add(ClassSecret, uint64(200+i%3))
		l.Add(ClassOther, uint64(200+i%3))
	}
	if got := l.MIBits(); got > 1e-9 {
		t.Fatalf("identical distributions: MI = %.4f, want 0", got)
	}
	if got := l.Separation(); math.Abs(got) > 1e-9 {
		t.Fatalf("identical distributions: separation = %.2f, want 0", got)
	}
}

func TestLatencySplitEmpty(t *testing.T) {
	var l LatencySplit
	if l.MIBits() != 0 || l.Separation() != 0 || l.Count(ClassSecret) != 0 {
		t.Fatal("empty split must report zeros")
	}
}

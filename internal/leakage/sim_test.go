package leakage_test

import (
	"reflect"
	"testing"

	"secpref/internal/leakage"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

func source(t *testing.T, name string, n int) trace.Source {
	t.Helper()
	tr, err := workload.Get(name, workload.Params{Instrs: n, Seed: 1})
	if err != nil {
		t.Fatalf("workload.Get(%s): %v", name, err)
	}
	return trace.NewSource(tr)
}

// TestAuditorEquivalence extends sim's observer guarantee to the
// auditor: attaching it must not change the simulated outcome by a
// single bit.
func TestAuditorEquivalence(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 15_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeTimelySecure

	plain, err := sim.Run(cfg, source(t, "605.mcf-1554B", 17_000))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	aud := leakage.NewAuditor()
	probed, err := sim.RunProbed(cfg, source(t, "605.mcf-1554B", 17_000), sim.Probes{Observer: aud})
	if err != nil {
		t.Fatalf("RunProbed: %v", err)
	}
	if !reflect.DeepEqual(plain, probed) {
		t.Fatalf("auditor perturbed the simulation:\nplain:  %+v\nprobed: %+v", plain, probed)
	}
}

// TestSecureCampaignAuditsClean runs the secure configuration
// (GhostMinion + on-commit prefetch) over real traces: the invariant
// scoreboard must be exactly zero, and the audit must have witnessed
// speculative traffic (otherwise "clean" would be vacuous).
func TestSecureCampaignAuditsClean(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 10_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeOnCommit

	for _, name := range []string{"605.mcf-1554B", "641.leela-1083B"} {
		aud := leakage.NewAuditor()
		if _, err := sim.RunProbed(cfg, source(t, name, 12_000), sim.Probes{Observer: aud}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sb := aud.Scoreboard()
		if !sb.Clean() {
			t.Errorf("%s: secure on-commit config not clean: %s", name, sb.String())
		}
		if sb.SpecAccesses == 0 || sb.Commits == 0 {
			t.Errorf("%s: audit saw no speculation/commits — vacuous: %s", name, sb.String())
		}
	}
}

// TestOnAccessCampaignAuditsSpecTrains runs the insecure discipline:
// on-access training must show up as speculative trains.
func TestOnAccessCampaignAuditsSpecTrains(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 10_000
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeOnAccess

	aud := leakage.NewAuditor()
	if _, err := sim.RunProbed(cfg, source(t, "605.mcf-1554B", 12_000), sim.Probes{Observer: aud}); err != nil {
		t.Fatal(err)
	}
	if sb := aud.Scoreboard(); sb.SpecTrains == 0 {
		t.Errorf("on-access training not audited as speculative: %s", sb.String())
	}
}

package leakage

import (
	"strings"
	"testing"

	"secpref/internal/probe"
)

func TestAuditorCommitThenSquash(t *testing.T) {
	a := NewAuditor()
	// Committed work: install at seq 5, then commit 5 — never tainted.
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL1D, Seq: 5, Line: 0xA})
	a.Event(probe.Event{Kind: probe.EvCommit, Site: probe.SiteCore, Seq: 5})
	// Transient work: install at seq 9, squashed from 7.
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL1D, Seq: 9, Line: 0xB})
	a.Event(probe.Event{Kind: probe.EvSquash, Site: probe.SiteCore, Seq: 7})
	sb := a.Scoreboard()
	if sb.TaintedSurvivors != 1 {
		t.Fatalf("tainted = %d, want 1: %s", sb.TaintedSurvivors, sb.String())
	}
	if sb.Tainted[probe.SiteL1D][StructLines] != 1 {
		t.Errorf("taint not attributed to L1D/lines: %s", sb.String())
	}
	if len(sb.Violations) != 1 || sb.Violations[0].Kind != TaintedSurvivor || sb.Violations[0].Seq != 9 {
		t.Errorf("violation detail wrong: %+v", sb.Violations)
	}
	if sb.Clean() {
		t.Error("scoreboard with a tainted survivor must not be clean")
	}
	if !strings.Contains(sb.String(), "L1D/lines") {
		t.Errorf("String() should name the offending site/structure: %s", sb.String())
	}
}

func TestAuditorSquashBoundary(t *testing.T) {
	a := NewAuditor()
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL2, Seq: 6})
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL2, Seq: 7})
	a.Event(probe.Event{Kind: probe.EvSquash, Seq: 7}) // squash [7, inf)
	sb := a.Scoreboard()
	if sb.TaintedSurvivors != 1 {
		t.Fatalf("squash boundary: tainted = %d, want 1 (only seq 7)", sb.TaintedSurvivors)
	}
	// seq 6 is still pending; a later squash from 3 catches it.
	a.Event(probe.Event{Kind: probe.EvSquash, Seq: 3})
	if got := a.Scoreboard().TaintedSurvivors; got != 2 {
		t.Fatalf("second squash: tainted = %d, want 2", got)
	}
}

func TestAuditorMaintenanceTrafficExempt(t *testing.T) {
	a := NewAuditor()
	// Seq 0 = prefetch fills, writebacks, commit writes: committed or
	// architectural provenance, never tainted.
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL1D, Seq: 0})
	a.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteL1D, Seq: 0, Hit: true})
	a.Event(probe.Event{Kind: probe.EvSquash, Seq: 1})
	if sb := a.Scoreboard(); sb.TaintedSurvivors != 0 || sb.Mutations != 0 {
		t.Fatalf("maintenance traffic audited: %s", sb.String())
	}
}

func TestAuditorReplMetaAndTrains(t *testing.T) {
	a := NewAuditor()
	// A demand hit touches replacement metadata; a train touches the
	// training table. Both from not-yet-committed instructions, then
	// squashed.
	a.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteLLC, Seq: 4, Hit: true})
	a.Event(probe.Event{Kind: probe.EvTrain, Site: probe.SitePF, Seq: 5})
	a.Event(probe.Event{Kind: probe.EvSquash, Seq: 4})
	sb := a.Scoreboard()
	if sb.TaintedSurvivors != 2 {
		t.Fatalf("tainted = %d, want 2: %s", sb.TaintedSurvivors, sb.String())
	}
	if sb.Tainted[probe.SiteLLC][StructReplMeta] != 1 || sb.Tainted[probe.SitePF][StructTrainTable] != 1 {
		t.Errorf("attribution wrong: %s", sb.String())
	}
	// Misses must not count as replacement-metadata touches.
	b := NewAuditor()
	b.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteLLC, Seq: 4, Hit: false})
	b.Event(probe.Event{Kind: probe.EvSquash, Seq: 1})
	if got := b.Scoreboard().TaintedSurvivors; got != 0 {
		t.Errorf("miss access counted as mutation: %d", got)
	}
}

func TestAuditorSpecFlags(t *testing.T) {
	a := NewAuditor()
	a.Event(probe.Event{Kind: probe.EvTrain, Site: probe.SitePF, Seq: 3, Spec: true})
	a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL1D, Seq: 3, Spec: true})
	a.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteGM, Seq: 3, Hit: true, Spec: true})
	sb := a.Scoreboard()
	if sb.SpecTrains != 1 || sb.SpecInstalls != 1 || sb.SpecAccesses != 1 {
		t.Fatalf("spec counters: trains=%d installs=%d accesses=%d", sb.SpecTrains, sb.SpecInstalls, sb.SpecAccesses)
	}
	if sb.Clean() {
		t.Error("spec train/install must fail Clean()")
	}
}

func TestAuditorCompaction(t *testing.T) {
	a := NewAuditor()
	// Far more committed mutations than the compaction threshold: the
	// pending list must stay bounded.
	for seq := uint64(1); seq <= 3*compactAt; seq++ {
		a.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteL1D, Seq: seq})
		a.Event(probe.Event{Kind: probe.EvCommit, Site: probe.SiteCore, Seq: seq})
	}
	if len(a.pending) > compactAt {
		t.Fatalf("pending grew unbounded: %d", len(a.pending))
	}
	a.Event(probe.Event{Kind: probe.EvSquash, Seq: 1})
	if got := a.Scoreboard().TaintedSurvivors; got != 0 {
		t.Fatalf("committed mutations tainted after compaction: %d", got)
	}
}

func TestScoreboardMerge(t *testing.T) {
	var a, b Scoreboard
	a.TaintedSurvivors = 2
	a.Tainted[probe.SiteL1D][StructLines] = 2
	b.SpecTrains = 3
	b.Violations = []Violation{{Kind: SpeculativeTrain}}
	a.Merge(&b)
	if a.TaintedSurvivors != 2 || a.SpecTrains != 3 || len(a.Violations) != 1 {
		t.Fatalf("merge lost counts: %+v", a)
	}
}

// Empirical leakage estimators for the multi-trial attack harness: an
// exact mutual-information estimate over (secret, inferred) trial
// outcomes, and a mutual-information upper bound over attacker
// probe-latency distributions split by secret relevance.
package leakage

import "math"

// Confusion accumulates (secret, inferred) pairs across prime+probe
// trials; BitsPerTrial is the empirical mutual information of the
// resulting channel — the bits an attacker extracts per trial.
type Confusion struct {
	counts map[[2]int]int
	n      int
}

// NewConfusion returns an empty confusion accumulator.
func NewConfusion() *Confusion {
	return &Confusion{counts: make(map[[2]int]int)}
}

// Add records one trial (inferred may be -1: attacker saw nothing).
func (c *Confusion) Add(secret, inferred int) {
	c.counts[[2]int{secret, inferred}]++
	c.n++
}

// Trials returns the number of recorded trials.
func (c *Confusion) Trials() int { return c.n }

// BitsPerTrial returns the empirical mutual information
// I(secret; inferred) in bits. A perfect 16-way channel yields 4 bits;
// an attacker whose inference is independent of the secret gets 0.
func (c *Confusion) BitsPerTrial() float64 {
	if c.n == 0 {
		return 0
	}
	ps := make(map[int]float64)
	pi := make(map[int]float64)
	n := float64(c.n)
	for k, cnt := range c.counts {
		ps[k[0]] += float64(cnt) / n
		pi[k[1]] += float64(cnt) / n
	}
	var mi float64
	for k, cnt := range c.counts {
		pj := float64(cnt) / n
		mi += pj * math.Log2(pj/(ps[k[0]]*pi[k[1]]))
	}
	if mi < 0 {
		mi = 0 // guard float noise
	}
	return mi
}

// Latency classes for LatencySplit: the probe of the secret-selected
// slot vs every other probe.
const (
	ClassSecret = 0
	ClassOther  = 1
)

// LatencySplit accumulates attacker probe latencies as two histograms —
// the secret slot's probes vs all others. Separation is the mean gap
// (hit/miss separability); MIBits is the mutual information between
// class and observed latency, an upper bound on what one probe's
// latency reveals about whether its slot was secret-selected.
type LatencySplit struct {
	hist [2]map[uint64]float64
	n    [2]float64
	sum  [2]float64
}

// Add records one probe latency under the given class.
func (l *LatencySplit) Add(class int, lat uint64) {
	if l.hist[class] == nil {
		l.hist[class] = make(map[uint64]float64)
	}
	l.hist[class][lat]++
	l.n[class]++
	l.sum[class] += float64(lat)
}

// Count returns the number of samples recorded for class.
func (l *LatencySplit) Count(class int) int { return int(l.n[class]) }

// Mean returns the mean latency of class (0 with no samples).
func (l *LatencySplit) Mean(class int) float64 {
	if l.n[class] == 0 {
		return 0
	}
	return l.sum[class] / l.n[class]
}

// Separation returns mean(other) - mean(secret): positive when the
// secret slot's probes are faster (cached) than the rest, ~0 when the
// distributions are indistinguishable.
func (l *LatencySplit) Separation() float64 {
	return l.Mean(ClassOther) - l.Mean(ClassSecret)
}

// MIBits returns I(class; latency) in bits over the recorded samples.
// Fully separated distributions yield the class entropy H(class); fully
// overlapping ones yield 0.
func (l *LatencySplit) MIBits() float64 {
	total := l.n[0] + l.n[1]
	if total == 0 {
		return 0
	}
	var mi float64
	for class := 0; class < 2; class++ {
		pc := l.n[class] / total
		for lat, cnt := range l.hist[class] {
			pj := cnt / total
			pl := (l.hist[0][lat] + l.hist[1][lat]) / total
			mi += pj * math.Log2(pj/(pc*pl))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

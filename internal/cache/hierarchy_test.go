package cache

import (
	"math/rand"
	"testing"

	"secpref/internal/mem"
)

// TestTwoLevelInvariants drives random traffic through an L1-L2 chain
// backed by an auto-responding memory and asserts the accounting
// invariants hold at both levels.
func TestTwoLevelInvariants(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		next := &mockNext{}
		l2cfg := tinyConfig()
		l2cfg.Name, l2cfg.Level = "T2", mem.LvlL2
		l2cfg.SizeKiB, l2cfg.Ways = 2, 2 // 16 sets
		l2 := New(l2cfg, next)
		l1 := New(tinyConfig(), l2)

		rng := rand.New(rand.NewSource(seed))
		now := mem.Cycle(0)
		step := func(n int) {
			for i := 0; i < n; i++ {
				now++
				l1.Tick(now)
				l2.Tick(now)
			}
		}
		for op := 0; op < 4000; op++ {
			l := mem.Line(rng.Intn(64))
			switch rng.Intn(6) {
			case 0:
				l1.Prefetch(l, 0x400, mem.LvlL1D, now)
			case 1:
				l1.Prefetch(l, 0x404, mem.LvlL2, now) // deep fill
			case 2:
				l1.Enqueue(&mem.Request{Line: l, Kind: mem.KindLoad, SpecBypass: true})
			case 3:
				l1.Enqueue(&mem.Request{Line: l, Kind: mem.KindRFO})
			case 4:
				l1.Enqueue(&mem.Request{Line: l, Kind: mem.KindCommitWrite, WBBits: uint8(rng.Intn(4))})
			default:
				l1.Enqueue(&mem.Request{Line: l, Kind: mem.KindLoad})
			}
			step(rng.Intn(3) + 1)
		}
		step(200)
		for _, c := range []*Cache{l1, l2} {
			if c.Stats.PrefUseful > c.Stats.PrefFilled {
				t.Errorf("seed %d %s: PrefUseful %d > PrefFilled %d",
					seed, c.Config().Name, c.Stats.PrefUseful, c.Stats.PrefFilled)
			}
			if c.Stats.DemandMissLatCnt > c.Stats.Misses[mem.KindLoad]+c.Stats.MSHRMerges {
				t.Errorf("seed %d %s: more measured miss latencies than misses", seed, c.Config().Name)
			}
		}
	}
}

// TestNoDuplicateLinesInSet asserts the structural invariant that a
// line is never present in two ways of its set.
func TestNoDuplicateLinesInSet(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	rng := rand.New(rand.NewSource(7))
	now := mem.Cycle(0)
	for op := 0; op < 5000; op++ {
		l := mem.Line(rng.Intn(24))
		switch rng.Intn(3) {
		case 0:
			c.Prefetch(l, 0x400, mem.LvlL1D, now)
		case 1:
			c.Enqueue(&mem.Request{Line: l, Kind: mem.KindCommitWrite, WBBits: 0b11})
		default:
			c.Enqueue(&mem.Request{Line: l, Kind: mem.KindLoad})
		}
		now = runTicks(c, now, rng.Intn(2)+1)
		for s := 0; s <= int(c.setMask); s++ {
			seen := map[mem.Line]bool{}
			for w := s * c.ways; w < (s+1)*c.ways; w++ {
				line := c.tags[w]
				if line == invalidTag {
					continue
				}
				if seen[line] {
					t.Fatalf("op %d: line %#x duplicated in set %d", op, uint64(line), s)
				}
				seen[line] = true
			}
		}
	}
}

package cache

import (
	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/ring"
)

// StateDigest hashes the level's architectural state: line tags and
// replacement metadata, live MSHR entries with their waiters, queue
// and latency-wheel contents, the LRU clock, and a few headline
// counters. Two engines executing the same machine must produce equal
// digests at equal cycles; the observatory's divergence bisector
// depends on it. Engine-side accelerator state that only caches
// derivable facts is deliberately excluded.
func (c *Cache) StateDigest() uint64 {
	d := observatory.NewDigest()
	for i, t := range c.tags {
		if t == invalidTag {
			continue
		}
		m := &c.meta[i]
		d = d.Word(uint64(i)).Word(uint64(t))
		d = d.Word(uint64(m.lru) | uint64(m.flags)<<32 | uint64(m.rrpv)<<40 | uint64(m.wbbRest)<<48)
		d = d.Word(uint64(m.fetchLat))
	}
	d = d.Word(uint64(c.clock)).Word(uint64(c.inUse))
	for i := range c.mshr {
		e := &c.mshr[i]
		if !e.valid {
			continue
		}
		d = d.Word(uint64(i)).Word(uint64(c.mshrLine[i])).Word(uint64(e.kind))
		d = d.Bool(e.forwarded).Bool(e.spec).Word(uint64(e.alloc))
		d = d.Word(uint64(e.fillLevel)).Word(e.timestamp).Word(uint64(len(e.waiters)))
		for _, wr := range e.waiters {
			d = observatory.DigestRequest(d, wr)
		}
		d = observatory.DigestRequest(d, e.child)
	}
	d = digestReqRing(d, &c.rq)
	d = digestReqRing(d, &c.wq)
	d = digestReqRing(d, &c.pq)
	d = digestReqRing(d, &c.fwdq)
	for i := 0; i < c.fills.Len(); i++ {
		fr := c.fills.At(i)
		d = observatory.DigestRequest(d, fr.req)
		d = d.Bool(fr.dirty).Bool(fr.isWrite).Word(uint64(fr.wbb)).Bool(fr.entry != nil)
	}
	d = d.Word(uint64(c.wheelCount))
	for s := 0; s < wheelSize; s++ {
		for _, r := range c.wheel[s] {
			d = d.Word(uint64(s))
			d = observatory.DigestRequest(d, r)
		}
	}
	d = d.Word(c.wake).Word(c.Stats.TotalAccesses()).Word(c.Stats.Cycles)
	return d.Sum()
}

// digestReqRing folds a request ring's contents front to back.
func digestReqRing(d observatory.Digest, b *ring.Buf[*mem.Request]) observatory.Digest {
	d = d.Word(uint64(b.Len()))
	for i := 0; i < b.Len(); i++ {
		d = observatory.DigestRequest(d, b.At(i))
	}
	return d
}

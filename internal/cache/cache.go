// Package cache implements the bandwidth- and MSHR-limited
// set-associative cache model that forms the simulated memory
// hierarchy. The model follows ChampSim's structure: per-cycle bounded
// read/write/prefetch queue pops, miss-status-holding registers with
// merge and prefetch promotion, latency pipelines, a fill path with
// victim writebacks, and a non-inclusive multilevel organization.
//
// Two extensions support the secure cache system built on top:
//
//   - Speculative-bypass lookups (GhostMinion): probe the level without
//     updating replacement state and, on miss, pass through to the next
//     level without allocating an MSHR; the response fills only the GM.
//   - Clean-propagation writebacks carrying GhostMinion/SUF writeback
//     bits, which decide how far up the hierarchy an on-commit write
//     continues when the line is evicted.
package cache

import (
	"fmt"
	"math/bits"

	"secpref/internal/mem"
	"secpref/internal/probe"
	"secpref/internal/ring"
	"secpref/internal/stats"
)

// Port is anything that accepts memory requests: the next cache level
// or DRAM. Enqueue returns false when the target queue is full (the
// caller must retry — this back-pressure is the contention mechanism
// behind the paper's Fig. 4/5).
type Port interface {
	Enqueue(r *mem.Request) bool
}

// AccessInfo describes a demand access observed at a cache level; the
// prefetcher training hooks receive it.
type AccessInfo struct {
	Line mem.Line
	IP   mem.Addr
	Kind mem.Kind
	Hit  bool
	// HitPrefetched reports a demand hit on a prefetched line;
	// PrefFetchLat is that line's recorded fill latency (Berti stores it
	// alongside the line).
	HitPrefetched bool
	PrefFetchLat  mem.Cycle
	// Merged reports a miss that joined an in-flight prefetch (the
	// classic late prefetch).
	Merged bool
	Cycle  mem.Cycle
}

// FillInfo describes a line install; Berti-style self-timing
// prefetchers use the measured fetch latency and the original access
// context.
type FillInfo struct {
	Line     mem.Line
	Latency  mem.Cycle // MSHR allocate -> fill
	Prefetch bool
	Cycle    mem.Cycle
	// IP and ReqIssued describe the first waiter (the access that
	// allocated the MSHR): its instruction pointer and issue cycle.
	IP        mem.Addr
	ReqIssued mem.Cycle
}

// Line metadata is stored struct-of-arrays: the tag array is the only
// thing a lookup scans (one or two cache lines per set instead of a
// stride of full structs), and everything else lives in a parallel
// lineMeta slice touched only on hits, fills, and evictions. A way is
// identified by its flat index set*ways+way; -1 means "not present".
//
// invalidTag marks an empty way. mem.Line is a byte address >> 6 and
// the all-ones value would require an address beyond any the workloads
// generate (address 0 is the only reserved value at the trace level),
// so the sentinel can never collide with a real tag.
const invalidTag = ^mem.Line(0)

// lineMeta flag bits.
const (
	// lineDirty marks a modified line.
	lineDirty = 1 << iota
	// linePrefetched marks a line installed by a prefetch and not yet
	// referenced by demand (accuracy accounting).
	linePrefetched
	// linePropagate is the GhostMinion writeback bit: on eviction the
	// line continues to the next level even if clean.
	linePropagate
)

// The unsigned % (or mask) indexing over this table is a shift-and-
// mask only while the size stays a power of two; this compile-time
// assert (negative array length otherwise) pins that.
type _ [1 - 2*(wheelSize&(wheelSize-1))]byte

type lineMeta struct {
	lru   uint32
	flags uint8
	// rrpv is the SRRIP re-reference prediction (0 = imminent,
	// 3 = distant); unused under LRU.
	rrpv uint8
	// wbbRest carries the remaining writeback bits for levels above.
	wbbRest uint8
	// fetchLat is the fill latency recorded when the line was installed
	// by a prefetch (Berti reads it on a demand hit).
	fetchLat mem.Cycle
}

// mshrEntry holds everything about an in-flight miss except the line
// address, which lives in the parallel mshrLine tag array (invalidTag
// = free slot) so that merge lookups and free-slot allocation scan a
// compact array instead of striding over full entries.
type mshrEntry struct {
	valid     bool
	slot      int      // this entry's index (mshrLine mirror key)
	kind      mem.Kind // strongest kind (demand beats prefetch)
	waiters   []*mem.Request
	child     *mem.Request
	forwarded bool
	alloc     mem.Cycle
	fillLevel mem.Level
	timestamp uint64
	// spec marks an entry whose waiters are all GhostMinion speculative
	// probes: the response completes them but must not install the line
	// (invisible speculation). Any non-speculative joiner clears it.
	spec bool
}

// wheelSize bounds the hit-latency pipeline; must exceed any hit
// latency.
const wheelSize = 128

// fwdCap bounds the pass-through buffer for requests that traverse this
// level without an MSHR (speculative bypasses, deeper-fill prefetches).
const fwdCap = 8

// Cache is one level of the hierarchy.
type Cache struct {
	cfg Config
	// tags/meta are the struct-of-arrays line state (see invalidTag);
	// setMask and ways fold the set-index math into two words.
	tags    []mem.Line
	meta    []lineMeta
	setMask uint64
	ways    int
	clock   uint32
	mshr    []mshrEntry
	// mshrLine mirrors each MSHR entry's line (invalidTag when free);
	// see mshrEntry.
	mshrLine []mem.Line
	inUse    int

	// setSig holds one 64-bit presence signature per set (the
	// GhostMinion fast-miss scheme): bit hash(tag) is set for every
	// resident line, so a lookup whose bit is clear is a certain miss
	// and skips the way scan. Maintained exactly — set on install,
	// recomputed for the set on eviction — so there are no stale
	// positives either. sigShift is log2(sets): the tag starts there.
	setSig   []uint64
	sigShift uint

	// mshrSig is the same scheme over the in-flight MSHR lines; it may
	// go stale (bits of completed entries linger) but never misses a
	// live line, so a clear bit safely skips the merge scan. Rebuilt
	// from mshrLine after mshrRebuildAfter completions. mshrFree is the
	// free-slot bitmask; allocation takes the lowest set bit, which is
	// the same slot the linear first-free scan chose.
	mshrSig   uint64
	mshrStale int
	mshrFree  []uint64

	rq, wq, pq  ring.Buf[*mem.Request]
	fwdq        ring.Buf[*mem.Request]
	fills       ring.Buf[fillRecord]
	wheel       [wheelSize][]*mem.Request
	wheelCount  int
	unforwarded []*mshrEntry

	// wake counts externally delivered work (accepted enqueues and
	// child-request completions); see WakeCount.
	wake uint64

	pool *mem.RequestPool
	next Port
	now  mem.Cycle
	site probe.Site

	// Stats is the level's counter block.
	Stats stats.CacheStats

	// Obs, if set, receives access/merge/fill/drop/install/evict events
	// at this level. Observers are read-only; see internal/probe.
	Obs probe.Observer

	// OnAccess, if set, observes demand accesses at this level
	// (prefetcher training hook).
	OnAccess func(AccessInfo)
	// OnFill, if set, observes line installs at this level.
	OnFill func(FillInfo)
	// OnEvict, if set, observes evictions of valid lines (the Bingo
	// prefetcher and the attack harness use it).
	OnEvict func(line mem.Line)
	// OnSpecAccess, if set, observes GhostMinion speculative-bypass
	// probes (the training stream for on-access prefetching on a secure
	// cache system).
	OnSpecAccess func(AccessInfo)
}

type fillRecord struct {
	req     *mem.Request // the child request that returned
	entry   *mshrEntry   // nil for pass-through fills
	dirty   bool
	isWrite bool // WQ-sourced install (writeback/commit-write)
	wbb     uint8
}

// New builds a cache level connected to next (which may be nil for
// isolated unit tests; misses then complete immediately at a fixed
// penalty — tests only).
func New(cfg Config, next Port) *Cache {
	c := &Cache{cfg: cfg, next: next, pool: &mem.RequestPool{}, site: probe.SiteOf(cfg.Level)}
	nsets := cfg.Sets()
	if nsets == 0 || nsets&(nsets-1) != 0 {
		// Power-of-two set counts keep index math trivial; all Table II
		// configurations satisfy this.
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", cfg.Name, nsets))
	}
	c.tags = make([]mem.Line, nsets*cfg.Ways)
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	c.meta = make([]lineMeta, nsets*cfg.Ways)
	c.setMask = uint64(nsets - 1)
	c.ways = cfg.Ways
	c.mshr = make([]mshrEntry, cfg.MSHRs)
	c.mshrLine = make([]mem.Line, cfg.MSHRs)
	for i := range c.mshrLine {
		c.mshrLine[i] = invalidTag
	}
	sigWords := (cfg.MSHRs + 63) / 64
	sigBuf := make([]uint64, nsets+sigWords)
	c.setSig = sigBuf[:nsets:nsets]
	c.sigShift = uint(bits.TrailingZeros64(uint64(nsets)))
	c.mshrFree = sigBuf[nsets:]
	for i := 0; i < cfg.MSHRs; i++ {
		c.mshrFree[i>>6] |= 1 << uint(i&63)
	}
	// Pre-slice wheel slots and MSHR waiter lists out of single backing
	// arrays: both grow from nil on first use otherwise, which costs
	// hundreds of small allocations per simulation. A slot or list that
	// outgrows its pre-sliced capacity falls back to a normal append
	// grow.
	const slotCap = 4
	wheelBuf := make([]*mem.Request, wheelSize*slotCap)
	for i := range c.wheel {
		c.wheel[i] = wheelBuf[i*slotCap : i*slotCap : (i+1)*slotCap]
	}
	const waiterCap = 4
	waiterBuf := make([]*mem.Request, cfg.MSHRs*waiterCap)
	for i := range c.mshr {
		c.mshr[i].waiters = waiterBuf[i*waiterCap : i*waiterCap : (i+1)*waiterCap]
	}
	return c
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetPool shares a request pool with the level. Requests flow across
// levels (a writeback born in L1D retires in DRAM), so a machine wires
// one pool through its whole hierarchy.
func (c *Cache) SetPool(p *mem.RequestPool) { c.pool = p }

// Pool returns the level's request pool.
func (c *Cache) Pool() *mem.RequestPool { return c.pool }

// Level returns the level's position in the hierarchy.
func (c *Cache) Level() mem.Level { return c.cfg.Level }

// setBase returns the flat index of l's set's first way.
func (c *Cache) setBase(l mem.Line) int {
	return int(uint64(l)&c.setMask) * c.ways
}

// sigBit maps a line's tag portion to its presence-signature bit.
func (c *Cache) sigBit(l mem.Line) uint64 {
	return 1 << ((uint64(l) >> c.sigShift) & 63)
}

// mshrSigBit maps a line to its MSHR-signature bit.
func mshrSigBit(l mem.Line) uint64 { return 1 << (uint64(l) & 63) }

// rebuildSetSig recomputes the exact signature of one set.
func (c *Cache) rebuildSetSig(set uint64) {
	base := int(set) * c.ways
	var sig uint64
	for _, t := range c.tags[base : base+c.ways] {
		if t != invalidTag {
			sig |= c.sigBit(t)
		}
	}
	c.setSig[set] = sig
}

// lookup finds the flat way index holding l, or -1.
func (c *Cache) lookup(l mem.Line) int {
	set := uint64(l) & c.setMask
	if c.setSig[set]&c.sigBit(l) == 0 {
		return -1 // certain miss: no resident tag hashes to this bit
	}
	base := int(set) * c.ways
	tags := c.tags[base : base+c.ways]
	for i := range tags {
		if tags[i] == l {
			return base + i
		}
	}
	return -1
}

// Contains probes for a line without modifying any state. The SUF
// accuracy oracle and the attack harness use it.
func (c *Cache) Contains(l mem.Line) bool { return c.lookup(l) >= 0 }

// touch updates replacement state on a reference.
func (c *Cache) touch(w int) {
	c.clock++
	c.meta[w].lru = c.clock
	c.meta[w].rrpv = 0 // SRRIP: referenced lines become near-imminent
}

// victimIn selects the replacement victim in a full set, as a flat way
// index.
func (c *Cache) victimIn(base int) int {
	meta := c.meta[base : base+c.ways]
	if c.cfg.Policy == PolicySRRIP {
		for {
			for i := range meta {
				if meta[i].rrpv >= 3 {
					return base + i
				}
			}
			for i := range meta {
				meta[i].rrpv++
			}
		}
	}
	v := 0
	for i := range meta {
		if meta[i].lru < meta[v].lru {
			v = i
		}
	}
	return base + v
}

// Enqueue routes a request to the appropriate queue. It returns false
// (and counts the rejection) when that queue is full.
func (c *Cache) Enqueue(r *mem.Request) bool {
	switch r.Kind {
	case mem.KindWriteback, mem.KindCommitWrite:
		if c.wq.Len() >= c.cfg.WQSize {
			c.Stats.WQFull++
			return false
		}
		c.wq.Push(r)
	case mem.KindPrefetch:
		if c.pq.Len() >= c.cfg.PQSize {
			c.Stats.PQFull++
			c.Stats.PrefDroppedQ++
			return false
		}
		c.pq.Push(r)
	default: // loads, RFOs, refetches
		if c.rq.Len() >= c.cfg.RQSize {
			c.Stats.RQFull++
			return false
		}
		c.rq.Push(r)
	}
	c.wake++
	return true
}

// WakeCount is a monotonic counter of peer-delivered work: accepted
// Enqueues and Completes. A scheduler holding the cache asleep past its
// own NextEvent must re-arm it when the counter moves.
func (c *Cache) WakeCount() uint64 { return c.wake }

// Prefetch is the prefetcher-facing entry point: it wraps the target in
// a request and enqueues it, returning false if the PQ is full.
func (c *Cache) Prefetch(line mem.Line, ip mem.Addr, fillLevel mem.Level, now mem.Cycle) bool {
	r := c.pool.Get()
	r.Line, r.IP, r.Kind, r.FillLevel, r.Issued = line, ip, mem.KindPrefetch, fillLevel, now
	if !c.Enqueue(r) {
		c.pool.Put(r)
		return false
	}
	c.Stats.PrefIssued++
	return true
}

// MSHRFree returns the number of free MSHR entries (Berti throttles on
// MSHR occupancy).
func (c *Cache) MSHRFree() int { return c.cfg.MSHRs - c.inUse }

// respond schedules r's completion after the hit latency.
func (c *Cache) respond(r *mem.Request, servedBy mem.Level) {
	r.ServedBy = servedBy
	slot := (uint64(c.now) + uint64(c.cfg.Latency)) & (wheelSize - 1)
	c.wheel[slot] = append(c.wheel[slot], r)
	c.wheelCount++
}

// Tick advances the cache one cycle.
func (c *Cache) Tick(now mem.Cycle) {
	c.now = now

	// 1. Deliver responses whose latency elapsed. Ownerless requests
	// (fire-and-forget traffic) terminate here and are recycled.
	slot := uint64(now) & (wheelSize - 1)
	if rs := c.wheel[slot]; len(rs) > 0 {
		c.wheelCount -= len(rs)
		for i, r := range rs {
			rs[i] = nil
			if r.Owner != nil {
				r.Owner.Complete(r)
			} else {
				c.pool.Put(r)
			}
		}
		c.wheel[slot] = c.wheel[slot][:0]
	}

	// Shared port budget across all operation classes (0 = unlimited).
	ports := c.cfg.TotalPorts
	if ports == 0 {
		ports = 1 << 30
	}

	// 2. Apply fills (bounded), oldest first.
	nf := 0
	for nf < c.cfg.MaxFills && ports > 0 && c.fills.Len() > 0 {
		fr := c.fills.Front()
		if !c.applyFill(&fr) {
			break // victim writeback blocked; retry next cycle
		}
		c.fills.PopFront()
		nf++
		ports--
	}

	// 3. Retry forwarding for MSHR children and pass-through requests.
	w := 0
	for _, e := range c.unforwarded {
		if !e.valid || e.forwarded {
			continue
		}
		if c.next != nil && c.next.Enqueue(e.child) {
			e.forwarded = true
			continue
		}
		c.unforwarded[w] = e
		w++
	}
	c.unforwarded = c.unforwarded[:w]
	for c.fwdq.Len() > 0 {
		if c.next == nil || !c.next.Enqueue(c.fwdq.Front()) {
			break
		}
		c.fwdq.PopFront()
	}

	// 4. Writes.
	for n := 0; n < c.cfg.MaxWrites && ports > 0 && c.wq.Len() > 0; n++ {
		if !c.handleWrite(c.wq.Front()) {
			break
		}
		c.wq.PopFront()
		ports--
	}

	// 5. Reads.
	for n := 0; n < c.cfg.MaxReads && ports > 0 && c.rq.Len() > 0; n++ {
		if !c.handleRead(c.rq.Front()) {
			break
		}
		c.rq.PopFront()
		ports--
	}

	// 6. Prefetches (lowest priority).
	for n := 0; n < c.cfg.MaxPrefetches && ports > 0 && c.pq.Len() > 0; n++ {
		if !c.handlePrefetch(c.pq.Front()) {
			break
		}
		c.pq.PopFront()
		ports--
	}

	// 7. Integrate occupancy statistics.
	c.Stats.Cycles++
	c.Stats.MSHROccupancy += uint64(c.inUse)
	if c.inUse == c.cfg.MSHRs {
		c.Stats.MSHRFullCycles++
	}
}

// NextEvent reports the earliest future cycle at which this level has
// work of its own: pending queue entries next cycle, or the next
// occupied latency-wheel slot. mem.NoEvent means the level is fully
// idle (in-flight MSHR children are the next level's work until they
// return). The idle-skip loop in sim uses this; see docs/performance.md
// for the legality argument.
func (c *Cache) NextEvent(now mem.Cycle) mem.Cycle {
	if c.rq.Len()+c.wq.Len()+c.pq.Len()+c.fwdq.Len()+c.fills.Len()+len(c.unforwarded) > 0 {
		return now + 1
	}
	if c.wheelCount > 0 {
		for d := uint64(1); d <= wheelSize; d++ {
			if len(c.wheel[(uint64(now)+d)&(wheelSize-1)]) > 0 {
				return now + mem.Cycle(d)
			}
		}
	}
	return mem.NoEvent
}

// SkipIdle integrates the per-cycle occupancy statistics for k skipped
// idle cycles. During an idle stretch nothing in the level changes, so
// the integration is exact: identical to calling Tick k times.
func (c *Cache) SkipIdle(k mem.Cycle) {
	c.now += k // an empty Tick would advance the clock too
	c.Stats.Cycles += uint64(k)
	c.Stats.MSHROccupancy += uint64(c.inUse) * uint64(k)
	if c.inUse == c.cfg.MSHRs {
		c.Stats.MSHRFullCycles += uint64(k)
	}
}

// handleRead processes one RQ entry; returns false to retry next cycle
// (statistics count only the successful attempt).
func (c *Cache) handleRead(r *mem.Request) bool {
	if r.SpecBypass {
		return c.handleSpec(r)
	}
	w := c.lookup(r.Line)
	if w < 0 {
		if !c.missTo(r, r.Kind) {
			return false // MSHR full; retry without double-counting
		}
		c.Stats.Accesses[r.Kind]++
		c.Stats.Misses[r.Kind]++
		c.notifyAccess(r, -1) // r.MergedPrefetch set by missTo if merged
		if c.Obs != nil {
			c.Obs.Event(probe.Event{
				Kind: probe.EvAccess, Site: c.site, Cycle: c.now, Core: r.Core,
				Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
			})
		}
		return true
	}
	c.Stats.Accesses[r.Kind]++
	c.notifyAccess(r, w)
	if c.Obs != nil {
		c.Obs.Event(probe.Event{
			Kind: probe.EvAccess, Site: c.site, Cycle: c.now, Core: r.Core,
			Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind, Hit: true,
		})
	}
	c.touch(w)
	m := &c.meta[w]
	if m.flags&linePrefetched != 0 {
		m.flags &^= linePrefetched
		c.Stats.PrefUseful++
		r.HitPrefetched = true
		r.FillLat = m.fetchLat
	}
	if r.Kind == mem.KindRFO {
		m.flags |= lineDirty
	}
	c.respond(r, c.cfg.Level)
	return true
}

// handleSpec processes a GhostMinion speculative probe. Hits are served
// without any replacement-state update; misses allocate (or merge into)
// an MSHR entry — GhostMinion propagates speculative requests through
// the MSHRs of every level, which is exactly the contention §III-A
// analyzes — but the eventual response does not install the line at
// this level (invisible speculation).
func (c *Cache) handleSpec(r *mem.Request) bool {
	w := c.lookup(r.Line)
	if w >= 0 {
		c.Stats.SpecAccesses++
		c.notifySpec(r, w)
		if c.Obs != nil {
			c.Obs.Event(probe.Event{
				Kind: probe.EvAccess, Site: c.site, Cycle: c.now, Core: r.Core,
				Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind, Hit: true,
				Spec: true,
			})
		}
		// The stored prefetch latency travels with the response (the
		// X-LQ Hitp case) and the use is counted for accuracy
		// statistics — measurement, not architectural state.
		m := &c.meta[w]
		if m.flags&linePrefetched != 0 {
			m.flags &^= linePrefetched
			c.Stats.PrefUseful++
			r.HitPrefetched = true
			r.FillLat = m.fetchLat
		}
		c.respond(r, c.cfg.Level)
		return true
	}
	// Merge with an in-flight fetch of the same line (the shared,
	// timestamp-ordered MSHR of GhostMinion). Merging with an in-flight
	// prefetch is the secure system's "late prefetch" event. A clear
	// signature bit (or an empty MSHR) proves no merge candidate.
	if c.inUse > 0 && c.mshrSig&mshrSigBit(r.Line) != 0 {
		for i, l := range c.mshrLine {
			if l != r.Line {
				continue
			}
			e := &c.mshr[i]
			if e.kind == mem.KindPrefetch {
				r.MergedPrefetch = true
				c.Stats.PrefLate++
			}
			e.waiters = append(e.waiters, r)
			c.Stats.SpecAccesses++
			c.Stats.SpecMisses++
			c.Stats.MSHRMerges++
			c.notifySpec(r, -1)
			if c.Obs != nil {
				c.Obs.Event(probe.Event{
					Kind: probe.EvMerge, Site: c.site, Cycle: c.now, Core: r.Core,
					Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
					Hit: r.MergedPrefetch, Spec: true,
				})
			}
			return true
		}
	}
	idx := c.allocMSHR()
	if idx < 0 {
		return false // MSHR full: retry (head-of-line contention)
	}
	c.Stats.SpecAccesses++
	c.Stats.SpecMisses++
	c.notifySpec(r, -1)
	if c.Obs != nil {
		c.Obs.Event(probe.Event{
			Kind: probe.EvAccess, Site: c.site, Cycle: c.now, Core: r.Core,
			Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
			Spec: true,
		})
	}
	c.initMSHR(idx, r, mem.KindLoad, r.FillLevel)
	e := &c.mshr[idx]
	e.spec = true
	e.child.SpecBypass = true
	return true
}

// notifySpec invokes the speculative-access hook; w < 0 means miss.
func (c *Cache) notifySpec(r *mem.Request, w int) {
	if c.OnSpecAccess == nil {
		return
	}
	ai := AccessInfo{Line: r.Line, IP: r.IP, Kind: r.Kind, Hit: w >= 0, Merged: r.MergedPrefetch, Cycle: c.now}
	if w >= 0 && c.meta[w].flags&linePrefetched != 0 {
		ai.HitPrefetched = true
		ai.PrefFetchLat = c.meta[w].fetchLat
	}
	c.OnSpecAccess(ai)
}

// handleWrite processes one WQ entry; returns false to retry.
func (c *Cache) handleWrite(r *mem.Request) bool {
	if w := c.lookup(r.Line); w >= 0 {
		// Write hit. For commit writes and clean propagations this is
		// the "data already found at this level" case: the access costs
		// the port/bandwidth and refreshes LRU, and propagation stops
		// here (the redundant work SUF exists to avoid).
		c.Stats.Accesses[r.Kind]++
		c.touch(w)
		if r.Dirty {
			c.meta[w].flags |= lineDirty
		}
		if r.Owner != nil {
			c.respond(r, c.cfg.Level)
		} else {
			c.pool.Put(r)
		}
		return true
	}
	// Write miss: we carry full-line data (writeback or commit write),
	// so install directly — no fetch — subject to fill bandwidth.
	fr := fillRecord{req: r, isWrite: true, dirty: r.Dirty, wbb: r.WBBits}
	if !c.applyFill(&fr) {
		// Victim writeback blocked; retry the WQ head next cycle.
		return false
	}
	c.Stats.Accesses[r.Kind]++
	c.Stats.Misses[r.Kind]++
	if r.Owner != nil {
		c.respond(r, c.cfg.Level)
	} else {
		c.pool.Put(r)
	}
	return true
}

// handlePrefetch processes one PQ entry; returns false to retry.
func (c *Cache) handlePrefetch(r *mem.Request) bool {
	if r.FillLevel > c.cfg.Level {
		// Destined for a deeper level: pass through (bandwidth only).
		if c.fwdq.Len() >= fwdCap {
			return false
		}
		if c.next == nil {
			// Nowhere to forward: the prefetch terminates here.
			c.pool.Put(r)
		} else if !c.next.Enqueue(r) {
			c.fwdq.Push(r)
		}
		return true
	}
	if w := c.lookup(r.Line); w >= 0 {
		// Already present. A locally-generated prefetch is redundant and
		// dropped; a child of an upper level's MSHR must respond so the
		// parent fill completes.
		c.Stats.Accesses[r.Kind]++
		c.Stats.PrefHitLocal++
		c.touch(w)
		if r.Owner != nil {
			c.respond(r, c.cfg.Level)
		} else {
			c.pool.Put(r)
		}
		return true
	}
	// missToPrefetch consumes (recycles) an ownerless request on its
	// merge path, so snapshot the kind for the stat counters below.
	kind := r.Kind
	if !c.missToPrefetch(r) {
		if r.Owner != nil {
			// An upper level waits on this child: retry rather than
			// orphan the parent MSHR.
			return false
		}
		// MSHR full: demote the prefetch to the next level rather than
		// losing it outright — the line still gets closer to the core.
		if c.next != nil && c.cfg.Level < mem.LvlLLC && c.fwdq.Len() < fwdCap {
			r.FillLevel = c.cfg.Level + 1
			c.Stats.Accesses[kind]++
			c.Stats.Misses[kind]++
			if !c.next.Enqueue(r) {
				c.fwdq.Push(r)
			}
			return true
		}
		c.Stats.PrefDroppedQ++
		if c.Obs != nil {
			c.Obs.Event(probe.Event{
				Kind: probe.EvDrop, Site: c.site, Cycle: c.now, Core: r.Core,
				Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
				Aux: probe.DropQueueFull,
			})
		}
		c.pool.Put(r)
		return true
	}
	c.Stats.Accesses[kind]++
	c.Stats.Misses[kind]++
	return true
}

// missTo allocates an MSHR for a demand-class miss and forwards below.
// Returns false (retry) when the MSHR is full.
func (c *Cache) missTo(r *mem.Request, kind mem.Kind) bool {
	// Merge with an in-flight entry if present; skip the scan when the
	// MSHR is empty or the signature proves the line is not in flight.
	if c.inUse > 0 && c.mshrSig&mshrSigBit(r.Line) != 0 {
		for i, l := range c.mshrLine {
			if l != r.Line {
				continue
			}
			e := &c.mshr[i]
			if e.kind == mem.KindPrefetch && kind.IsDemand() {
				// Late prefetch: demand promotes the in-flight prefetch.
				e.kind = kind
				r.MergedPrefetch = true
				c.Stats.PrefetchPromotions++
				c.Stats.PrefLate++
			}
			// A non-speculative joiner makes the eventual fill install;
			// the install's provenance (timestamp) becomes the joiner's,
			// since the joiner is what architecturally justifies it.
			if e.spec {
				e.spec = false
				e.timestamp = r.Timestamp
			}
			e.waiters = append(e.waiters, r)
			c.Stats.MSHRMerges++
			if c.Obs != nil {
				c.Obs.Event(probe.Event{
					Kind: probe.EvMerge, Site: c.site, Cycle: c.now, Core: r.Core,
					Seq: r.Timestamp, Line: r.Line, IP: r.IP, Req: r.Kind,
					Hit: r.MergedPrefetch,
				})
			}
			return true
		}
	}
	idx := c.allocMSHR()
	if idx < 0 {
		return false
	}
	c.initMSHR(idx, r, kind, r.FillLevel)
	return true
}

// missToPrefetch allocates an MSHR for a prefetch miss; returns false
// if none is free (caller drops the prefetch).
func (c *Cache) missToPrefetch(r *mem.Request) bool {
	if c.inUse > 0 && c.mshrSig&mshrSigBit(r.Line) != 0 {
		for i, l := range c.mshrLine {
			if l != r.Line {
				continue
			}
			e := &c.mshr[i]
			// Already being fetched. A waiting child rides along; a
			// local prefetch needs nothing — unless the entry is a
			// speculative probe, in which case the (non-speculative)
			// prefetch upgrades it to an installing fetch.
			if e.spec {
				e.spec = false
				e.kind = mem.KindPrefetch
				e.timestamp = r.Timestamp
			}
			if r.Owner != nil {
				e.waiters = append(e.waiters, r)
				c.Stats.MSHRMerges++
			} else {
				// A local prefetch needs no completion: consumed here.
				c.pool.Put(r)
			}
			return true
		}
	}
	idx := c.allocMSHR()
	if idx < 0 {
		return false
	}
	c.initMSHR(idx, r, mem.KindPrefetch, r.FillLevel)
	return true
}

// allocMSHR reserves a free MSHR slot, returning its index or -1. The
// lowest set bit of the free mask is the same slot the linear
// first-free scan over mshrLine would choose.
func (c *Cache) allocMSHR() int {
	for wi, word := range c.mshrFree {
		if word != 0 {
			b := bits.TrailingZeros64(word)
			c.mshrFree[wi] = word &^ (1 << uint(b))
			c.inUse++
			return wi<<6 + b
		}
	}
	return -1
}

// mshrRebuildAfter bounds MSHR-signature staleness: after this many
// completions the signature is recomputed from the live lines.
const mshrRebuildAfter = 8

func (c *Cache) initMSHR(idx int, r *mem.Request, kind mem.Kind, fillLevel mem.Level) {
	c.mshrLine[idx] = r.Line
	c.mshrSig |= mshrSigBit(r.Line)
	e := &c.mshr[idx]
	*e = mshrEntry{
		valid:     true,
		slot:      idx,
		kind:      kind,
		waiters:   append(e.waiters[:0], r),
		alloc:     c.now,
		fillLevel: fillLevel,
		timestamp: r.Timestamp,
	}
	child := c.pool.Get()
	child.Line = r.Line
	child.IP = r.IP
	child.Kind = kind
	child.Core = r.Core
	child.Issued = c.now
	child.Timestamp = r.Timestamp
	child.FillLevel = fillLevel
	if kind == mem.KindRFO || kind == mem.KindRefetch {
		// RFOs and refetches look like loads below this level.
		child.Kind = mem.KindLoad
	}
	// The child routes its response back to this level's fill queue via
	// the MSHR index — no captured state.
	child.Owner = c
	child.OwnerTag = uint32(idx)
	e.child = child
	e.forwarded = c.next != nil && c.next.Enqueue(child)
	if c.next != nil && !e.forwarded {
		c.unforwarded = append(c.unforwarded, e)
	}
	if c.next == nil {
		// Isolated level (unit tests): complete after a fixed penalty by
		// scheduling the child itself on the wheel; delivery routes it to
		// the fill queue through the normal Owner path.
		const testPenalty = 50
		slot := (uint64(c.now) + testPenalty) & (wheelSize - 1)
		child.ServedBy = c.cfg.Level + 1
		c.wheel[slot] = append(c.wheel[slot], child)
		c.wheelCount++
		e.forwarded = true
	}
}

// Complete implements mem.Completer: a child request issued by initMSHR
// returned from the next level; route it to the fill queue. The MSHR
// entry index rides in OwnerTag and is stable until the fill completes
// the entry.
func (c *Cache) Complete(r *mem.Request) {
	c.wake++
	c.fills.Push(fillRecord{req: r, entry: &c.mshr[r.OwnerTag]})
}

// applyFill installs a line (from a fill response or a full-line
// write), evicting a victim if needed. Returns false when the victim's
// writeback cannot be enqueued below (retry next cycle).
func (c *Cache) applyFill(fr *fillRecord) bool {
	if fr.entry != nil && fr.entry.spec {
		// Speculative-probe response: complete the waiters, install
		// nothing (invisible speculation — the data lands in the GM).
		c.completeMSHR(fr.entry, fr.req)
		c.pool.Put(fr.req)
		return true
	}
	base := c.setBase(fr.req.Line)
	// Refill of a present line (races are benign); the signature-guided
	// lookup skips the scan when the line cannot be resident.
	way := c.lookup(fr.req.Line)
	tags := c.tags[base : base+c.ways]
	if way < 0 {
		for i := range tags {
			if tags[i] == invalidTag {
				way = base + i
				break
			}
		}
	}
	if way < 0 {
		way = c.victimIn(base)
		if !c.evict(way, fr.req) {
			return false
		}
	}
	isPref := fr.entry != nil && fr.entry.kind == mem.KindPrefetch
	var lat mem.Cycle
	if fr.entry != nil {
		lat = c.now - fr.entry.alloc
	}
	c.tags[way] = fr.req.Line
	c.setSig[uint64(fr.req.Line)&c.setMask] |= c.sigBit(fr.req.Line)
	m := &c.meta[way]
	*m = lineMeta{
		fetchLat: lat,
		rrpv:     2, // SRRIP: long re-reference on insertion
	}
	if fr.dirty {
		m.flags |= lineDirty
	}
	if isPref {
		m.flags |= linePrefetched
		m.rrpv = 3 // prefetches insert with a distant prediction
	}
	if fr.isWrite && !fr.dirty {
		// Clean install via commit write or GhostMinion propagation:
		// bit 0 of the carried writeback bits is this level's
		// propagate-on-eviction flag, the rest belong to levels above.
		if fr.wbb&1 != 0 {
			m.flags |= linePropagate
		}
		m.wbbRest = fr.wbb >> 1
	}
	// Refresh recency without touch(): touch would clear the SRRIP
	// insertion prediction set above.
	c.clock++
	m.lru = c.clock
	if isPref {
		c.Stats.PrefFilled++
	}
	if c.Obs != nil {
		// Provenance: entry-backed installs carry the MSHR entry's
		// timestamp (re-attributed to the oldest non-speculative joiner),
		// not the child request's, so an install justified by committed
		// work is never misattributed to a transient trigger.
		seq := fr.req.Timestamp
		if fr.entry != nil {
			seq = fr.entry.timestamp
		}
		c.Obs.Event(probe.Event{
			Kind: probe.EvInstall, Site: c.site, Cycle: c.now, Core: fr.req.Core,
			Seq: seq, Line: fr.req.Line, IP: fr.req.IP,
			Req: fr.req.Kind, Hit: isPref, Aux: uint64(lat),
		})
	}
	if c.OnFill != nil && fr.entry != nil {
		fi := FillInfo{Line: fr.req.Line, Latency: lat, Prefetch: isPref, Cycle: c.now}
		if len(fr.entry.waiters) > 0 {
			fi.IP = fr.entry.waiters[0].IP
			fi.ReqIssued = fr.entry.waiters[0].Issued
		}
		c.OnFill(fi)
	}
	if fr.entry != nil {
		c.completeMSHR(fr.entry, fr.req)
		c.pool.Put(fr.req)
	}
	return true
}

// evict removes a valid line, emitting a writeback when the line is
// dirty or marked for GhostMinion propagation. `by` is the fill that
// forced the eviction: its Core/Kind stamp the EvEvict event as the
// aggressor's provenance (who caused the eviction, not who owned the
// line), and the victim writeback is charged to the same core —
// cost-causation for the DRAM write bandwidth the eviction induced.
// Returns false when the writeback could not be enqueued.
func (c *Cache) evict(w int, by *mem.Request) bool {
	line := c.tags[w]
	if line == invalidTag {
		return true
	}
	m := &c.meta[w]
	dirty := m.flags&lineDirty != 0
	if (dirty || m.flags&linePropagate != 0) && c.next != nil {
		wb := c.pool.Get()
		wb.Line = line
		wb.Kind = mem.KindWriteback
		wb.Core = by.Core
		wb.Issued = c.now
		wb.Dirty = dirty
		wb.WBBits = m.wbbRest
		if !c.next.Enqueue(wb) {
			c.pool.Put(wb)
			return false
		}
		c.Stats.WritebacksOut++
		if !dirty {
			c.Stats.PropagationsOut++
		}
	}
	c.Stats.Evictions++
	if c.OnEvict != nil {
		c.OnEvict(line)
	}
	if c.Obs != nil {
		c.Obs.Event(probe.Event{
			Kind: probe.EvEvict, Site: c.site, Cycle: c.now, Core: by.Core,
			Line: line, Hit: dirty, Req: by.Kind, Aux: uint64(m.wbbRest),
		})
	}
	c.tags[w] = invalidTag
	c.rebuildSetSig(uint64(line) & c.setMask)
	return true
}

// completeMSHR wakes all waiters of a filled entry; ownerless waiters
// (fire-and-forget prefetches and refetches) are recycled here.
func (c *Cache) completeMSHR(e *mshrEntry, child *mem.Request) {
	served := child.ServedBy
	for i, w := range e.waiters {
		e.waiters[i] = nil
		w.ServedBy = served
		w.FillLat = c.now - w.Issued
		if c.Obs != nil {
			c.Obs.Event(probe.Event{
				Kind: probe.EvFill, Site: c.site, Cycle: c.now, Core: w.Core,
				Seq: w.Timestamp, Line: w.Line, IP: w.IP, Req: w.Kind,
				Level: served, Aux: uint64(w.FillLat), Spec: w.SpecBypass,
			})
		}
		if w.Kind.IsDemand() || w.Kind == mem.KindRefetch {
			if w.Kind == mem.KindLoad && !w.SpecBypass {
				c.Stats.DemandMissLatSum += uint64(c.now - w.Issued)
				c.Stats.DemandMissLatCnt++
			}
			if w.Kind == mem.KindRFO {
				// The freshly installed line is dirty.
				if idx := c.lookup(w.Line); idx >= 0 {
					c.meta[idx].flags |= lineDirty
				}
			}
		}
		if w.Owner != nil {
			w.Owner.Complete(w)
		} else {
			c.pool.Put(w)
		}
	}
	e.valid = false
	c.mshrLine[e.slot] = invalidTag
	c.mshrFree[e.slot>>6] |= 1 << uint(e.slot&63)
	e.child = nil
	e.waiters = e.waiters[:0]
	c.inUse--
	if c.mshrStale++; c.mshrStale >= mshrRebuildAfter {
		c.mshrStale = 0
		var sig uint64
		for _, l := range c.mshrLine {
			if l != invalidTag {
				sig |= mshrSigBit(l)
			}
		}
		c.mshrSig = sig
	}
}

// notifyAccess invokes the training hook for demand accesses; w < 0
// means miss.
func (c *Cache) notifyAccess(r *mem.Request, w int) {
	if c.OnAccess == nil || !r.Kind.IsDemand() && r.Kind != mem.KindRefetch {
		return
	}
	ai := AccessInfo{
		Line:   r.Line,
		IP:     r.IP,
		Kind:   r.Kind,
		Hit:    w >= 0,
		Merged: r.MergedPrefetch,
		Cycle:  c.now,
	}
	if w >= 0 && c.meta[w].flags&linePrefetched != 0 {
		ai.HitPrefetched = true
		ai.PrefFetchLat = c.meta[w].fetchLat
	}
	c.OnAccess(ai)
}

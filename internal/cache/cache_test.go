package cache

import (
	"math/rand"
	"testing"

	"secpref/internal/mem"
)

// mockNext is a stub lower level that responds to every read
// immediately (completion fires synchronously) and accepts all writes.
type mockNext struct {
	reads      []*mem.Request
	writes     []*mem.Request
	rejectAll  bool
	noRespond  bool
	lastServed mem.Level
}

func (m *mockNext) Enqueue(r *mem.Request) bool {
	if m.rejectAll {
		return false
	}
	switch r.Kind {
	case mem.KindWriteback, mem.KindCommitWrite:
		m.writes = append(m.writes, r)
	default:
		m.reads = append(m.reads, r)
		if !m.noRespond {
			r.ServedBy = mem.LvlDRAM
			r.Complete()
		}
	}
	return true
}

// tinyConfig is a small, easily-conflicted cache: 8 sets x 2 ways.
func tinyConfig() Config {
	return Config{
		Name: "T", Level: mem.LvlL1D,
		SizeKiB: 1, Ways: 2, Latency: 2, MSHRs: 4,
		RQSize: 8, WQSize: 8, PQSize: 8,
		MaxReads: 2, MaxWrites: 2, MaxPrefetches: 2, MaxFills: 2,
	}
}

// lineInSet maps an index to the i-th line falling in set s of the
// 8-set tiny cache.
func lineInSet(s, i uint64) mem.Line { return mem.Line(s + 8*i) }

// runTicks advances the cache n cycles starting from cycle start.
func runTicks(c *Cache, start mem.Cycle, n int) mem.Cycle {
	for i := 0; i < n; i++ {
		start++
		c.Tick(start)
	}
	return start
}

func loadReq(l mem.Line, done *bool) *mem.Request {
	r := &mem.Request{Line: l, IP: 0x400, Kind: mem.KindLoad}
	if done != nil {
		r.Owner = mem.CompleterFunc(func(*mem.Request) { *done = true })
	}
	return r
}

func TestMissFillsAndHits(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	done := false
	r := loadReq(lineInSet(0, 0), &done)
	if !c.Enqueue(r) {
		t.Fatal("enqueue rejected")
	}
	now := runTicks(c, 0, 10)
	if !done {
		t.Fatal("miss never completed")
	}
	if r.ServedBy != mem.LvlDRAM {
		t.Errorf("ServedBy = %v, want DRAM", r.ServedBy)
	}
	if !c.Contains(r.Line) {
		t.Fatal("line not installed after fill")
	}
	// Second access must hit locally.
	done2 := false
	r2 := loadReq(r.Line, &done2)
	c.Enqueue(r2)
	runTicks(c, now, 5)
	if !done2 || r2.ServedBy != mem.LvlL1D {
		t.Fatalf("expected local hit, ServedBy=%v done=%v", r2.ServedBy, done2)
	}
	if got := len(next.reads); got != 1 {
		t.Errorf("%d reads reached next level, want 1", got)
	}
	if c.Stats.Misses[mem.KindLoad] != 1 || c.Stats.Accesses[mem.KindLoad] != 2 {
		t.Errorf("stats: %d misses / %d accesses", c.Stats.Misses[mem.KindLoad], c.Stats.Accesses[mem.KindLoad])
	}
}

func TestLRUEviction(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	// Fill both ways of set 0, then a third line: the first-touched must
	// be the victim.
	for i := uint64(0); i < 3; i++ {
		c.Enqueue(loadReq(lineInSet(0, i), nil))
		now = runTicks(c, now, 8)
	}
	if c.Contains(lineInSet(0, 0)) {
		t.Error("LRU line survived eviction")
	}
	if !c.Contains(lineInSet(0, 1)) || !c.Contains(lineInSet(0, 2)) {
		t.Error("wrong victim evicted")
	}
}

func TestMSHRMergeSharesOneFetch(t *testing.T) {
	next := &mockNext{noRespond: true}
	c := New(tinyConfig(), next)
	d1, d2 := false, false
	c.Enqueue(loadReq(lineInSet(1, 0), &d1))
	c.Enqueue(loadReq(lineInSet(1, 0), &d2))
	now := runTicks(c, 0, 4)
	if len(next.reads) != 1 {
		t.Fatalf("%d fetches for one line, want 1 (merge)", len(next.reads))
	}
	if c.Stats.MSHRMerges != 1 {
		t.Errorf("MSHRMerges = %d, want 1", c.Stats.MSHRMerges)
	}
	// Respond manually: both waiters complete.
	child := next.reads[0]
	child.ServedBy = mem.LvlDRAM
	child.Complete()
	runTicks(c, now, 4)
	if !d1 || !d2 {
		t.Fatalf("waiters incomplete: %v %v", d1, d2)
	}
}

func TestLatePrefetchPromotion(t *testing.T) {
	next := &mockNext{noRespond: true}
	c := New(tinyConfig(), next)
	if !c.Prefetch(lineInSet(2, 0), 0x400, mem.LvlL1D, 0) {
		t.Fatal("prefetch rejected")
	}
	now := runTicks(c, 0, 3) // prefetch allocates MSHR, forwards
	done := false
	r := loadReq(lineInSet(2, 0), &done)
	c.Enqueue(r)
	now = runTicks(c, now, 3)
	if !r.MergedPrefetch {
		t.Error("demand did not merge with in-flight prefetch")
	}
	if c.Stats.PrefLate != 1 || c.Stats.PrefetchPromotions != 1 {
		t.Errorf("late=%d promotions=%d, want 1/1", c.Stats.PrefLate, c.Stats.PrefetchPromotions)
	}
	child := next.reads[0]
	child.ServedBy = mem.LvlDRAM
	child.Complete()
	runTicks(c, now, 4)
	if !done {
		t.Fatal("promoted demand never completed")
	}
}

func TestUsefulPrefetchAccounting(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	c.Prefetch(lineInSet(3, 0), 0x400, mem.LvlL1D, 0)
	now := runTicks(c, 0, 8)
	if c.Stats.PrefFilled != 1 {
		t.Fatalf("PrefFilled = %d, want 1", c.Stats.PrefFilled)
	}
	done := false
	r := loadReq(lineInSet(3, 0), &done)
	c.Enqueue(r)
	runTicks(c, now, 5)
	if !done || !r.HitPrefetched {
		t.Fatalf("demand should hit the prefetched line (done=%v hitPref=%v)", done, r.HitPrefetched)
	}
	if c.Stats.PrefUseful != 1 {
		t.Errorf("PrefUseful = %d, want 1", c.Stats.PrefUseful)
	}
}

func TestSpecProbeDoesNotDisturbReplacement(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	// Install A then B in set 0 (A becomes LRU).
	a, b, fresh := lineInSet(0, 0), lineInSet(0, 1), lineInSet(0, 2)
	c.Enqueue(loadReq(a, nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(b, nil))
	now = runTicks(c, now, 8)
	// Speculative probe of A must NOT refresh its recency.
	probe := &mem.Request{Line: a, Kind: mem.KindLoad, SpecBypass: true}
	c.Enqueue(probe)
	now = runTicks(c, now, 5)
	// Install a third line: the victim must still be A.
	c.Enqueue(loadReq(fresh, nil))
	runTicks(c, now, 8)
	if c.Contains(a) {
		t.Error("spec probe refreshed LRU state (A survived)")
	}
	if !c.Contains(b) {
		t.Error("wrong victim: B was evicted")
	}
}

func TestSpecMissDoesNotInstall(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	done := false
	probe := &mem.Request{Line: lineInSet(1, 5), Kind: mem.KindLoad, SpecBypass: true,
		Owner: mem.CompleterFunc(func(*mem.Request) { done = true })}
	c.Enqueue(probe)
	runTicks(c, 0, 8)
	if !done {
		t.Fatal("spec probe never completed")
	}
	if probe.ServedBy != mem.LvlDRAM {
		t.Errorf("ServedBy = %v", probe.ServedBy)
	}
	if c.Contains(probe.Line) {
		t.Fatal("speculative miss installed a line (visible speculation!)")
	}
	if c.Stats.SpecMisses != 1 {
		t.Errorf("SpecMisses = %d", c.Stats.SpecMisses)
	}
}

func TestSpecThenDemandUpgradesToInstall(t *testing.T) {
	next := &mockNext{noRespond: true}
	c := New(tinyConfig(), next)
	specDone, demDone := false, false
	probe := &mem.Request{Line: lineInSet(2, 3), Kind: mem.KindLoad, SpecBypass: true,
		Owner: mem.CompleterFunc(func(*mem.Request) { specDone = true })}
	c.Enqueue(probe)
	now := runTicks(c, 0, 3)
	// A non-speculative refetch for the same line joins the entry.
	dem := &mem.Request{Line: probe.Line, Kind: mem.KindRefetch,
		Owner: mem.CompleterFunc(func(*mem.Request) { demDone = true })}
	c.Enqueue(dem)
	now = runTicks(c, now, 3)
	child := next.reads[0]
	child.ServedBy = mem.LvlDRAM
	child.Complete()
	runTicks(c, now, 5)
	if !specDone || !demDone {
		t.Fatalf("waiters incomplete: spec=%v dem=%v", specDone, demDone)
	}
	if !c.Contains(probe.Line) {
		t.Fatal("joined demand should have installed the line")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	dirty := lineInSet(0, 0)
	rfo := &mem.Request{Line: dirty, Kind: mem.KindRFO}
	c.Enqueue(rfo)
	now = runTicks(c, now, 8)
	// Evict it with two more lines in the set.
	c.Enqueue(loadReq(lineInSet(0, 1), nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(lineInSet(0, 2), nil))
	runTicks(c, now, 8)
	if len(next.writes) != 1 {
		t.Fatalf("%d writebacks, want 1", len(next.writes))
	}
	wb := next.writes[0]
	if wb.Line != dirty || !wb.Dirty {
		t.Errorf("writeback %+v, want dirty line %#x", wb, dirty)
	}
}

func TestCommitWritePropagationChain(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	target := lineInSet(1, 0)
	// Full GhostMinion update: propagate this level and the next.
	cw := &mem.Request{Line: target, Kind: mem.KindCommitWrite, WBBits: 0b11}
	c.Enqueue(cw)
	now = runTicks(c, now, 4)
	if !c.Contains(target) {
		t.Fatal("commit write did not install")
	}
	// Evict: a clean propagation writeback must go down carrying the
	// remaining bit.
	c.Enqueue(loadReq(lineInSet(1, 1), nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(lineInSet(1, 2), nil))
	runTicks(c, now, 8)
	if len(next.writes) != 1 {
		t.Fatalf("%d propagation writebacks, want 1", len(next.writes))
	}
	wb := next.writes[0]
	if wb.Dirty {
		t.Error("propagation writeback marked dirty")
	}
	if wb.WBBits != 0b1 {
		t.Errorf("carried WBBits = %#b, want 0b1", wb.WBBits)
	}
	if c.Stats.PropagationsOut != 1 {
		t.Errorf("PropagationsOut = %d", c.Stats.PropagationsOut)
	}
}

func TestSUFTrimmedCommitWriteStopsHere(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	target := lineInSet(2, 0)
	// SUF hit-level = L2: install at L1D, do not propagate on eviction.
	cw := &mem.Request{Line: target, Kind: mem.KindCommitWrite, WBBits: 0b00}
	c.Enqueue(cw)
	now = runTicks(c, now, 4)
	c.Enqueue(loadReq(lineInSet(2, 1), nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(lineInSet(2, 2), nil))
	runTicks(c, now, 8)
	if len(next.writes) != 0 {
		t.Fatalf("SUF-trimmed line still propagated: %v", next.writes)
	}
}

func TestCommitWriteHitOnlyTouches(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	target := lineInSet(3, 0)
	c.Enqueue(loadReq(target, nil))
	now = runTicks(c, now, 8)
	// Commit write finds the line present: propagation must not re-arm.
	cw := &mem.Request{Line: target, Kind: mem.KindCommitWrite, WBBits: 0b11}
	c.Enqueue(cw)
	now = runTicks(c, now, 4)
	c.Enqueue(loadReq(lineInSet(3, 1), nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(lineInSet(3, 2), nil))
	runTicks(c, now, 8)
	if len(next.writes) != 0 {
		t.Fatalf("commit-write hit re-armed propagation: %v", next.writes)
	}
}

func TestQueueFullRejection(t *testing.T) {
	next := &mockNext{}
	cfg := tinyConfig()
	cfg.RQSize = 2
	c := New(cfg, next)
	if !c.Enqueue(loadReq(1, nil)) || !c.Enqueue(loadReq(2, nil)) {
		t.Fatal("first two enqueues should succeed")
	}
	if c.Enqueue(loadReq(3, nil)) {
		t.Fatal("third enqueue should be rejected")
	}
	if c.Stats.RQFull != 1 {
		t.Errorf("RQFull = %d", c.Stats.RQFull)
	}
}

func TestDeepFillPrefetchPassesThrough(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	// FillLevel deeper than this cache: must not install here.
	r := &mem.Request{Line: lineInSet(0, 7), Kind: mem.KindPrefetch, FillLevel: mem.LvlL2}
	c.Enqueue(r)
	runTicks(c, 0, 4)
	if c.Contains(r.Line) {
		t.Fatal("deep-fill prefetch installed at the wrong level")
	}
	if len(next.reads) != 1 {
		t.Fatalf("pass-through did not reach next level")
	}
}

// TestPrefetchAccountingInvariant drives random traffic and asserts
// PrefUseful can never exceed PrefFilled — every useful-count needs a
// prior installed prefetch.
func TestPrefetchAccountingInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		next := &mockNext{}
		c := New(tinyConfig(), next)
		rng := rand.New(rand.NewSource(seed))
		now := mem.Cycle(0)
		for op := 0; op < 3000; op++ {
			l := mem.Line(rng.Intn(32))
			switch rng.Intn(5) {
			case 0:
				c.Prefetch(l, 0x400, mem.LvlL1D, now)
			case 1:
				c.Enqueue(&mem.Request{Line: l, Kind: mem.KindLoad, SpecBypass: true})
			case 2:
				c.Enqueue(&mem.Request{Line: l, Kind: mem.KindRFO})
			case 3:
				c.Enqueue(&mem.Request{Line: l, Kind: mem.KindCommitWrite, WBBits: uint8(rng.Intn(4))})
			default:
				c.Enqueue(loadReq(l, nil))
			}
			now = runTicks(c, now, rng.Intn(3)+1)
		}
		now = runTicks(c, now, 50)
		if c.Stats.PrefUseful > c.Stats.PrefFilled {
			t.Fatalf("seed %d: PrefUseful %d > PrefFilled %d", seed, c.Stats.PrefUseful, c.Stats.PrefFilled)
		}
	}
}

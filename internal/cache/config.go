package cache

import "secpref/internal/mem"

// Policy selects the replacement policy.
type Policy uint8

const (
	// PolicyLRU is least-recently-used (the paper's Table II baseline).
	PolicyLRU Policy = iota
	// PolicySRRIP is static re-reference interval prediction with 2-bit
	// RRPVs; prefetched lines insert with a distant prediction, which
	// makes the cache more pollution-resistant (ablation option).
	PolicySRRIP
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	if p == PolicySRRIP {
		return "srrip"
	}
	return "lru"
}

// Config describes one cache level. Defaults follow the paper's
// Table II baseline (an Intel Sunny-Cove-like hierarchy).
type Config struct {
	Name    string
	Level   mem.Level
	SizeKiB int
	Ways    int
	// Latency is the hit (tag+data) latency in cycles.
	Latency mem.Cycle
	MSHRs   int

	// Queue capacities.
	RQSize, WQSize, PQSize int

	// Per-cycle bandwidth: tag lookups for reads/writes/prefetches and
	// line installs.
	MaxReads, MaxWrites, MaxPrefetches, MaxFills int

	// TotalPorts, when non-zero, is a shared per-cycle budget across
	// fills, writes, reads, and prefetch pops (on top of the per-class
	// limits). This models the real port sharing that makes
	// GhostMinion's commit traffic contend with demand probes — the
	// effect SUF exists to relieve (§IV: "consume L1D ports to just
	// update the LRU").
	TotalPorts int

	// Policy selects the replacement policy (default LRU).
	Policy Policy
}

// Sets returns the number of sets.
func (c Config) Sets() int {
	lines := c.SizeKiB * 1024 / mem.LineSize
	return lines / c.Ways
}

// Lines returns the total number of cache lines.
func (c Config) Lines() int { return c.SizeKiB * 1024 / mem.LineSize }

// L1DConfig returns the Table II L1D: 48 KB, 12-way, 5 cycles, 16 MSHRs.
func L1DConfig() Config {
	return Config{
		Name: "L1D", Level: mem.LvlL1D,
		SizeKiB: 48, Ways: 12, Latency: 5, MSHRs: 16,
		RQSize: 64, WQSize: 64, PQSize: 32,
		MaxReads: 2, MaxWrites: 2, MaxPrefetches: 1, MaxFills: 2,
		TotalPorts: 3,
	}
}

// L2Config returns the Table II L2: 512 KB, 8-way, 15 cycles, 32 MSHRs,
// non-inclusive.
func L2Config() Config {
	return Config{
		Name: "L2", Level: mem.LvlL2,
		SizeKiB: 512, Ways: 8, Latency: 15, MSHRs: 32,
		RQSize: 48, WQSize: 48, PQSize: 32,
		MaxReads: 1, MaxWrites: 1, MaxPrefetches: 1, MaxFills: 1,
	}
}

// LLCConfig returns one Table II LLC bank: 2 MB, 16-way, 35 cycles,
// 64 MSHRs, non-inclusive. Multi-core systems get one bank per core.
func LLCConfig(cores int) Config {
	return Config{
		Name: "LLC", Level: mem.LvlLLC,
		SizeKiB: 2048 * cores, Ways: 16, Latency: 35, MSHRs: 64 * cores,
		RQSize: 48 * cores, WQSize: 48 * cores, PQSize: 32 * cores,
		MaxReads: cores, MaxWrites: cores, MaxPrefetches: 1, MaxFills: cores,
	}
}

package cache

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

// TestTickZeroAllocSteadyState pins the zero-allocation property of the
// hot path: once the request pool, queue rings, and latency wheel are
// warm, a hit-serving Tick must not allocate at all. A regression here
// (a closure capture, a queue reslice, a fresh Request) shows up as a
// nonzero allocs-per-op.
func TestTickZeroAllocSteadyState(t *testing.T) {
	c := New(tinyConfig(), &mockNext{})
	line := lineInSet(0, 0)

	// Install the line once, then warm every wheel slot and the pool with
	// steady hit traffic.
	c.Enqueue(loadReq(line, nil))
	now := runTicks(c, 0, 10)
	if !c.Contains(line) {
		t.Fatal("warm line not installed")
	}
	step := func() {
		r := c.Pool().Get()
		r.Line, r.IP, r.Kind = line, 0x400, mem.KindLoad
		if !c.Enqueue(r) {
			panic("steady-state enqueue rejected")
		}
		now = runTicks(c, now, 4)
	}
	for i := 0; i < 300; i++ { // > wheelSize iterations: every slot touched
		step()
	}

	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Errorf("steady-state Cache.Tick allocates %.1f objects/op, want 0", avg)
	}
}

// TestTickZeroAllocWithTracer extends the steady-state property to the
// probe-enabled path: event emission is by value into the tracer's
// preallocated ring, so attaching an observer must not reintroduce
// allocations either.
func TestTickZeroAllocWithTracer(t *testing.T) {
	c := New(tinyConfig(), &mockNext{})
	c.Obs = probe.NewTracer(1, 256)
	line := lineInSet(0, 0)

	c.Enqueue(loadReq(line, nil))
	now := runTicks(c, 0, 10)
	if !c.Contains(line) {
		t.Fatal("warm line not installed")
	}
	seq := uint64(1)
	step := func() {
		r := c.Pool().Get()
		r.Line, r.IP, r.Kind = line, 0x400, mem.KindLoad
		r.Timestamp = seq // sampled identity: every event enters the ring
		seq++
		if !c.Enqueue(r) {
			panic("steady-state enqueue rejected")
		}
		now = runTicks(c, now, 4)
	}
	for i := 0; i < 300; i++ {
		step()
	}

	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Errorf("probed Cache.Tick allocates %.1f objects/op, want 0", avg)
	}
}

package cache

import "fmt"

// Debug accessors expose internal occupancy for diagnostics and tests.

// DebugQueues returns the read queue contents (length only matters).
func (c *Cache) DebugQueues() []int { return make([]int, c.rq.Len()) }

// DebugWQ returns the write queue length.
func (c *Cache) DebugWQ() int { return c.wq.Len() }

// DebugPQ returns the prefetch queue length.
func (c *Cache) DebugPQ() int { return c.pq.Len() }

// DebugFills returns the pending fill count.
func (c *Cache) DebugFills() int { return c.fills.Len() }

// DebugFwd returns the pass-through buffer length.
func (c *Cache) DebugFwd() int { return c.fwdq.Len() }

// DebugMSHR describes every valid MSHR entry.
func (c *Cache) DebugMSHR() []string {
	var out []string
	for i := range c.mshr {
		e := &c.mshr[i]
		if e.valid {
			out = append(out, fmt.Sprintf("line=%#x kind=%v waiters=%d fwd=%v alloc=%d fill=%v",
				uint64(c.mshrLine[i]), e.kind, len(e.waiters), e.forwarded, e.alloc, e.fillLevel))
		}
	}
	return out
}

// DebugFillHead describes the blocked fill at the head, if any.
func (c *Cache) DebugFillHead() string {
	if c.fills.Len() == 0 {
		return "none"
	}
	return c.fills.Front().req.String()
}

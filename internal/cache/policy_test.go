package cache

import (
	"testing"

	"secpref/internal/mem"
)

func srripConfig() Config {
	cfg := tinyConfig()
	cfg.Policy = PolicySRRIP
	return cfg
}

func TestSRRIPEvictsDistantLines(t *testing.T) {
	next := &mockNext{}
	c := New(srripConfig(), next)
	now := mem.Cycle(0)
	// Install A, reference it again (rrpv 0); install B (rrpv 2).
	a, b, fresh := lineInSet(0, 0), lineInSet(0, 1), lineInSet(0, 2)
	c.Enqueue(loadReq(a, nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(b, nil))
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(a, nil)) // re-reference A
	now = runTicks(c, now, 8)
	// Insert a third line: B (distant) must be the victim even though A
	// is older.
	c.Enqueue(loadReq(fresh, nil))
	runTicks(c, now, 8)
	if !c.Contains(a) {
		t.Error("SRRIP evicted the re-referenced line")
	}
	if c.Contains(b) {
		t.Error("SRRIP kept the distant line")
	}
}

func TestSRRIPPrefetchInsertsDistant(t *testing.T) {
	next := &mockNext{}
	c := New(srripConfig(), next)
	now := mem.Cycle(0)
	// A demanded line and a prefetched line compete for the set; the
	// unreferenced prefetch must lose.
	dem, pref, fresh := lineInSet(1, 0), lineInSet(1, 1), lineInSet(1, 2)
	c.Enqueue(loadReq(dem, nil))
	now = runTicks(c, now, 8)
	c.Prefetch(pref, 0x400, mem.LvlL1D, now)
	now = runTicks(c, now, 8)
	c.Enqueue(loadReq(fresh, nil))
	runTicks(c, now, 8)
	if !c.Contains(dem) {
		t.Error("demanded line evicted before unused prefetch")
	}
	if c.Contains(pref) {
		t.Error("unused prefetch survived over a demand line")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyLRU.String() != "lru" || PolicySRRIP.String() != "srrip" {
		t.Error("policy strings wrong")
	}
}

func TestSRRIPInvariantsUnderRandomTraffic(t *testing.T) {
	next := &mockNext{}
	c := New(srripConfig(), next)
	now := mem.Cycle(0)
	rng := newTestRNG(11)
	for op := 0; op < 3000; op++ {
		l := mem.Line(rng.Intn(32))
		switch rng.Intn(4) {
		case 0:
			c.Prefetch(l, 0x400, mem.LvlL1D, now)
		case 1:
			c.Enqueue(&mem.Request{Line: l, Kind: mem.KindCommitWrite, WBBits: 0b11})
		default:
			c.Enqueue(loadReq(l, nil))
		}
		now = runTicks(c, now, rng.Intn(2)+1)
	}
	runTicks(c, now, 50)
	if c.Stats.PrefUseful > c.Stats.PrefFilled {
		t.Fatalf("PrefUseful %d > PrefFilled %d under SRRIP", c.Stats.PrefUseful, c.Stats.PrefFilled)
	}
}

// newTestRNG is a tiny deterministic RNG for policy tests.
type testRNG struct{ s uint64 }

func newTestRNG(seed uint64) *testRNG { return &testRNG{s: seed} }

func (r *testRNG) Intn(n int) int {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return int((r.s >> 33) % uint64(n))
}

package cache

import (
	"testing"

	"secpref/internal/mem"
)

func TestHitLatencyExact(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := runTicks(c, 0, 0)
	c.Enqueue(loadReq(lineInSet(0, 0), nil))
	now = runTicks(c, now, 10)
	// Timed hit: enqueue right before a tick; the pop happens on the
	// next tick and the response cfg.Latency cycles later.
	var doneAt mem.Cycle
	r := &mem.Request{Line: lineInSet(0, 0), Kind: mem.KindLoad}
	r.Owner = mem.CompleterFunc(func(*mem.Request) { doneAt = 1 })
	c.Enqueue(r)
	start := now
	for doneAt == 0 {
		now = runTicks(c, now, 1)
		if now > start+20 {
			t.Fatal("hit never completed")
		}
	}
	lat := now - start
	want := tinyConfig().Latency + 1 // +1: the pop tick itself
	if lat != want {
		t.Errorf("hit latency %d, want %d", lat, want)
	}
}

func TestMSHRFullHeadBlocksReads(t *testing.T) {
	next := &mockNext{noRespond: true}
	cfg := tinyConfig()
	cfg.MSHRs = 2
	c := New(cfg, next)
	for i := uint64(0); i < 3; i++ {
		c.Enqueue(loadReq(lineInSet(i, 0), nil))
	}
	runTicks(c, 0, 10)
	// Two MSHRs taken; the third read must still be queued, not lost.
	if got := len(next.reads); got != 2 {
		t.Fatalf("%d fetches with 2 MSHRs", got)
	}
	if c.MSHRFree() != 0 {
		t.Errorf("MSHRFree = %d", c.MSHRFree())
	}
	if c.Stats.MSHRFullCycles == 0 {
		t.Error("MSHR-full cycles not recorded")
	}
	// Complete one; the blocked read must proceed.
	next.reads[0].ServedBy = mem.LvlDRAM
	next.reads[0].Complete()
	runTicks(c, 10, 10)
	if got := len(next.reads); got != 3 {
		t.Errorf("blocked read never issued (%d fetches)", got)
	}
}

func TestRFOFillMarksDirty(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	now := mem.Cycle(0)
	target := lineInSet(4, 0)
	c.Enqueue(&mem.Request{Line: target, Kind: mem.KindRFO})
	now = runTicks(c, now, 10)
	// Evicting the line must produce a dirty writeback.
	c.Enqueue(loadReq(lineInSet(4, 1), nil))
	now = runTicks(c, now, 10)
	c.Enqueue(loadReq(lineInSet(4, 2), nil))
	runTicks(c, now, 10)
	if len(next.writes) != 1 || !next.writes[0].Dirty {
		t.Fatalf("RFO-filled line did not write back dirty: %v", next.writes)
	}
}

func TestOnEvictHook(t *testing.T) {
	next := &mockNext{}
	c := New(tinyConfig(), next)
	var evicted []mem.Line
	c.OnEvict = func(l mem.Line) { evicted = append(evicted, l) }
	now := mem.Cycle(0)
	for i := uint64(0); i < 3; i++ {
		c.Enqueue(loadReq(lineInSet(5, i), nil))
		now = runTicks(c, now, 10)
	}
	if len(evicted) != 1 || evicted[0] != lineInSet(5, 0) {
		t.Errorf("evictions = %v", evicted)
	}
}

func TestPrefetchDemotionOnMSHRFull(t *testing.T) {
	next := &mockNext{noRespond: true}
	cfg := tinyConfig()
	cfg.MSHRs = 1
	c := New(cfg, next)
	c.Enqueue(loadReq(lineInSet(6, 0), nil)) // occupies the only MSHR
	now := runTicks(c, 0, 4)
	c.Prefetch(lineInSet(6, 1), 0x400, mem.LvlL1D, now)
	runTicks(c, now, 4)
	// The prefetch could not get an MSHR: it must have been demoted to
	// the next level (FillLevel raised), not silently dropped.
	foundDemoted := false
	for _, r := range next.reads {
		if r.Kind == mem.KindPrefetch && r.FillLevel == mem.LvlL2 {
			foundDemoted = true
		}
	}
	if !foundDemoted {
		t.Error("prefetch was not demoted to the next level under MSHR pressure")
	}
}

func TestTotalPortsLimitsThroughput(t *testing.T) {
	next := &mockNext{}
	cfg := tinyConfig()
	cfg.TotalPorts = 1
	cfg.MaxReads, cfg.MaxWrites = 4, 4
	c := New(cfg, next)
	now := mem.Cycle(0)
	// Warm two lines.
	for i := uint64(0); i < 2; i++ {
		c.Enqueue(loadReq(lineInSet(0, i), nil))
		now = runTicks(c, now, 10)
	}
	// Enqueue 4 hits in the same cycle: with one port, they finish on
	// four consecutive cycles.
	var doneTimes []mem.Cycle
	for i := 0; i < 4; i++ {
		r := &mem.Request{Line: lineInSet(0, uint64(i%2)), Kind: mem.KindLoad}
		r.Owner = mem.CompleterFunc(func(*mem.Request) { doneTimes = append(doneTimes, c.now) })
		c.Enqueue(r)
	}
	runTicks(c, now, 20)
	if len(doneTimes) != 4 {
		t.Fatalf("%d completions", len(doneTimes))
	}
	for i := 1; i < 4; i++ {
		if doneTimes[i] == doneTimes[i-1] {
			t.Errorf("two hits served in the same cycle with TotalPorts=1: %v", doneTimes)
		}
	}
}

func TestConfigGeometry(t *testing.T) {
	if L1DConfig().Lines() != 768 {
		t.Errorf("L1D lines = %d, want 768 (the SUF writeback-bit count)", L1DConfig().Lines())
	}
	if L1DConfig().Sets() != 64 {
		t.Errorf("L1D sets = %d", L1DConfig().Sets())
	}
	if L2Config().Lines() != 8192 || LLCConfig(1).Lines() != 32768 {
		t.Error("L2/LLC geometry wrong")
	}
	if LLCConfig(4).SizeKiB != 4*2048 {
		t.Error("multi-core LLC should scale per core")
	}
}

package cache

import (
	"testing"

	"secpref/internal/mem"
)

// BenchmarkComponentCacheLookupHit measures the steady-state hit path:
// one pooled load enqueued per op against a resident line, drained over
// four ticks (queue pop, set-signature check, tag match, wheel-delayed
// completion).
func BenchmarkComponentCacheLookupHit(b *testing.B) {
	c := New(tinyConfig(), &mockNext{})
	line := lineInSet(0, 0)
	c.Enqueue(loadReq(line, nil))
	now := runTicks(c, 0, 10)
	if !c.Contains(line) {
		b.Fatal("warm line not installed")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Pool().Get()
		r.Line, r.IP, r.Kind = line, 0x400, mem.KindLoad
		if !c.Enqueue(r) {
			b.Fatal("steady-state enqueue rejected")
		}
		now = runTicks(c, now, 4)
	}
}

// BenchmarkComponentCacheFill measures the miss/fill path: every op
// touches a fresh line (working set far larger than the 1 KiB cache),
// so each load takes the signature fast-miss exit, allocates an MSHR,
// and runs the fill/evict machinery when the stub responds.
func BenchmarkComponentCacheFill(b *testing.B) {
	c := New(tinyConfig(), &mockNext{})
	now := runTicks(c, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := c.Pool().Get()
		r.Line, r.IP, r.Kind = mem.Line(i), 0x400, mem.KindLoad
		if !c.Enqueue(r) {
			b.Fatal("miss enqueue rejected")
		}
		now = runTicks(c, now, 10)
	}
}

package prefetch

import (
	"testing"

	"secpref/internal/mem"
)

func TestClassifierLate(t *testing.T) {
	c := NewClassifier()
	c.OnDemandMiss(100, true, 1000)
	if c.Class.Late != 1 || c.Class.TotalMisses != 1 {
		t.Errorf("late=%d total=%d", c.Class.Late, c.Class.TotalMisses)
	}
}

func TestClassifierCommitLate(t *testing.T) {
	c := NewClassifier()
	// The shadow (on-access) prefetcher would have requested line 200.
	c.ShadowIssue(200, 0x400, mem.LvlL1D)
	// The demand miss arrives before the real (on-commit) prefetcher
	// triggered...
	c.OnDemandMiss(200, false, 1000)
	// ...and the real prefetcher asks for it shortly after: commit-late.
	c.OnRealIssue(200, 1500)
	if c.Class.CommitLate != 1 {
		t.Errorf("commit-late=%d, want 1", c.Class.CommitLate)
	}
	if c.Class.Uncovered != 0 || c.Class.MissedOpp != 0 {
		t.Errorf("misclassified: %+v", c.Class)
	}
}

func TestClassifierMissedOpportunity(t *testing.T) {
	c := NewClassifier()
	c.ShadowIssue(300, 0x400, mem.LvlL1D)
	c.OnDemandMiss(300, false, 1000)
	// The real prefetcher never asks; the window expires.
	c.OnRealIssue(999999, 1000+pendingWindow+10)
	if c.Class.MissedOpp != 1 {
		t.Errorf("missed-opp=%d, want 1 (%+v)", c.Class.MissedOpp, c.Class)
	}
}

func TestClassifierUncovered(t *testing.T) {
	c := NewClassifier()
	c.OnDemandMiss(400, false, 1000)
	if c.Class.Uncovered != 1 {
		t.Errorf("uncovered=%d, want 1", c.Class.Uncovered)
	}
}

func TestClassifierFinalizeResolvesPending(t *testing.T) {
	c := NewClassifier()
	c.ShadowIssue(500, 0x400, mem.LvlL1D)
	c.OnDemandMiss(500, false, 1000)
	c.Finalize()
	if c.Class.MissedOpp != 1 {
		t.Errorf("finalize: missed-opp=%d", c.Class.MissedOpp)
	}
}

func TestClassifierShadowWindowBounded(t *testing.T) {
	c := NewClassifier()
	for i := 0; i < shadowWindow+100; i++ {
		c.ShadowIssue(mem.Line(i), 0x400, mem.LvlL1D)
	}
	if len(c.shadowIssued) > shadowWindow {
		t.Errorf("shadow window grew to %d", len(c.shadowIssued))
	}
	// The oldest entries must have been forgotten.
	c.OnDemandMiss(0, false, 1)
	if c.Class.Uncovered != 1 {
		t.Error("expired shadow entry still classified as covered")
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("no-such-prefetcher", nil); err == nil {
		t.Fatal("expected unknown-prefetcher error")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Skip("no prefetchers linked into this test binary")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("names not sorted")
		}
	}
}

func TestNone(t *testing.T) {
	var n None
	if n.Name() != "none" || n.StorageBytes() != 0 {
		t.Error("None misbehaves")
	}
	n.Train(Event{})
	n.Fill(0, 0, false, 0)
}

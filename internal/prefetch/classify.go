package prefetch

import (
	"secpref/internal/mem"
	"secpref/internal/stats"
)

// Classifier implements the paper's Fig. 6 demand-miss taxonomy for
// on-commit prefetching. It runs a *shadow* instance of the same
// prefetcher trained on the access stream (as an on-access prefetcher
// would be), recording — without issuing — the lines it would have
// requested and when. Demand misses at the prefetcher's home level are
// then classified:
//
//   - Late: the miss merged with an in-flight prefetch (from the real,
//     on-commit prefetcher) — the traditional late prefetch.
//   - Commit-late: the on-access shadow had already requested the line,
//     and the real on-commit prefetcher requests it shortly *after* the
//     miss — i.e. the prefetch had not been triggered yet only because
//     triggering waits for commit (the paper's new class).
//   - Missed opportunity: the shadow had requested it, but the real
//     prefetcher (trained in commit order) never does — commit-order
//     training lost the pattern.
//   - Uncovered: everything else.
//
// Because commit-late vs. missed-opportunity depends on what the real
// prefetcher does *after* the miss, misses with a shadow hit are parked
// in a pending window and resolved either by a matching real prefetch
// issue (commit-late) or by timeout (missed opportunity).
type Classifier struct {
	shadow Prefetcher
	// shadowIssued remembers the shadow's recent would-be prefetches.
	shadowIssued map[mem.Line]mem.Cycle
	shadowOrder  []mem.Line

	// realIssued remembers the real prefetcher's recent issues: a miss
	// on a recently-issued line is a late prefetch (triggered before
	// the miss, data not back yet — possibly in flight at a deeper
	// level, where the MSHR merge is invisible to this observer).
	realIssued map[mem.Line]mem.Cycle
	realOrder  []mem.Line

	pending map[mem.Line]mem.Cycle
	order   []pendingMiss

	// Class accumulates the Fig. 6 counters.
	Class stats.MissClass
}

type pendingMiss struct {
	line mem.Line
	at   mem.Cycle
}

const (
	shadowWindow  = 8192 // lines remembered from the shadow
	pendingWindow = 4096 // cycles before commit-late resolves to missed-opportunity
)

// NewClassifier builds a classifier around a shadow instance of the
// prefetcher under study. The shadow must have been constructed with an
// Issuer that calls ShadowIssue (see NewShadow).
func NewClassifier() *Classifier {
	return &Classifier{
		shadowIssued: make(map[mem.Line]mem.Cycle, shadowWindow),
		realIssued:   make(map[mem.Line]mem.Cycle, shadowWindow),
		pending:      make(map[mem.Line]mem.Cycle, 1024),
	}
}

// AttachShadow registers the shadow prefetcher instance (trained by the
// caller on the access stream).
func (c *Classifier) AttachShadow(p Prefetcher) { c.shadow = p }

// Shadow returns the attached shadow prefetcher.
func (c *Classifier) Shadow() Prefetcher { return c.shadow }

// ShadowIssue is the Issuer for the shadow instance: it records the
// would-be prefetch instead of sending it.
func (c *Classifier) ShadowIssue(line mem.Line, _ mem.Addr, _ mem.Level) bool {
	if _, ok := c.shadowIssued[line]; !ok {
		c.shadowOrder = append(c.shadowOrder, line)
		if len(c.shadowOrder) > shadowWindow {
			old := c.shadowOrder[0]
			c.shadowOrder = c.shadowOrder[1:]
			delete(c.shadowIssued, old)
		}
	}
	c.shadowIssued[line] = 0 // value unused; presence is the record
	return true
}

// OnDemandMiss classifies a demand miss at the home level. merged
// reports an MSHR merge with an in-flight prefetch.
func (c *Classifier) OnDemandMiss(line mem.Line, merged bool, now mem.Cycle) {
	c.Class.TotalMisses++
	c.expire(now)
	if merged {
		c.Class.Late++
		return
	}
	if at, issued := c.realIssued[line]; issued && at+pendingWindow > now {
		// The real prefetcher triggered this line before the miss and
		// the data has not arrived: a late prefetch.
		c.Class.Late++
		return
	}
	if _, shadowHad := c.shadowIssued[line]; shadowHad {
		// Shadow (on-access) would have covered it; park until we learn
		// whether the on-commit prefetcher eventually asks for it.
		if _, dup := c.pending[line]; !dup {
			c.pending[line] = now
			c.order = append(c.order, pendingMiss{line, now})
		}
		return
	}
	c.Class.Uncovered++
}

// OnRealIssue observes the real (on-commit) prefetcher's issues: a
// pending miss it covers is a commit-late prefetch.
func (c *Classifier) OnRealIssue(line mem.Line, now mem.Cycle) {
	if _, ok := c.pending[line]; ok {
		delete(c.pending, line)
		c.Class.CommitLate++
	}
	if _, ok := c.realIssued[line]; !ok {
		c.realOrder = append(c.realOrder, line)
		if len(c.realOrder) > shadowWindow {
			old := c.realOrder[0]
			c.realOrder = c.realOrder[1:]
			delete(c.realIssued, old)
		}
	}
	c.realIssued[line] = now
	c.expire(now)
}

// expire resolves pending misses older than the window to
// missed-opportunity.
func (c *Classifier) expire(now mem.Cycle) {
	for len(c.order) > 0 {
		pm := c.order[0]
		if pm.at+pendingWindow > now {
			return
		}
		c.order = c.order[1:]
		if _, ok := c.pending[pm.line]; ok {
			delete(c.pending, pm.line)
			c.Class.MissedOpp++
		}
	}
}

// Finalize resolves all still-pending misses (end of simulation) as
// missed opportunities.
func (c *Classifier) Finalize() {
	for range c.pending {
		c.Class.MissedOpp++
	}
	c.pending = map[mem.Line]mem.Cycle{}
	c.order = nil
}

package prefetch

import (
	"testing"

	"secpref/internal/mem"
)

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	Register("dup-test", func(Issuer) Prefetcher { return None{} })
	Register("dup-test", func(Issuer) Prefetcher { return None{} })
}

func TestNewBindsIssuer(t *testing.T) {
	called := 0
	Register("issuer-test", func(issue Issuer) Prefetcher {
		issue(1, 2, mem.LvlL1D)
		called++
		return None{}
	})
	if _, err := New("issuer-test", func(mem.Line, mem.Addr, mem.Level) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if called != 1 {
		t.Error("factory not invoked")
	}
}

package spp

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func TestPPFScoreSymmetry(t *testing.T) {
	var p ppf
	ev := prefetch.Event{Line: 1000, IP: 0x400}
	v := p.vector(ev, 0x123, 2, 10, 80, 1)
	if p.score(v) != 0 {
		t.Fatal("zero-weight perceptron must score 0")
	}
	p.train(v, true)
	up := p.score(v)
	p.train(v, false)
	p.train(v, false)
	down := p.score(v)
	if up <= 0 || down >= up {
		t.Errorf("training direction wrong: up=%d down=%d", up, down)
	}
}

func TestPPFWeightsSaturate(t *testing.T) {
	var p ppf
	ev := prefetch.Event{Line: 2000, IP: 0x404}
	v := p.vector(ev, 0x55, 1, 5, 50, 2)
	for i := 0; i < 1000; i++ {
		p.train(v, true)
	}
	highScore := p.score(v)
	p.train(v, true)
	if p.score(v) != highScore {
		t.Error("weights did not saturate")
	}
	for i := 0; i < 2000; i++ {
		p.train(v, false)
	}
	lowScore := p.score(v)
	p.train(v, false)
	if p.score(v) != lowScore {
		t.Error("weights did not saturate downward")
	}
}

func TestFIFOSetBoundedAndExact(t *testing.T) {
	var f fifoSet
	for i := 0; i < feedbackCap+50; i++ {
		f.add(mem.Line(i))
	}
	if len(f.order) > feedbackCap || len(f.set) > feedbackCap {
		t.Fatalf("fifoSet grew to %d/%d", len(f.order), len(f.set))
	}
	// Oldest entries evicted; newest present.
	if f.remove(mem.Line(0)) {
		t.Error("evicted entry still removable")
	}
	if !f.remove(mem.Line(feedbackCap + 49)) {
		t.Error("fresh entry missing")
	}
	// Duplicate adds are idempotent.
	var g fifoSet
	g.add(7)
	g.add(7)
	if len(g.order) != 1 {
		t.Error("duplicate add not deduplicated")
	}
}

func TestPTDecayKeepsAdapting(t *testing.T) {
	p := New(func(mem.Line, mem.Addr, mem.Level) bool { return true })
	// Saturate signature 5 with delta +1, then retrain with +3: the
	// decay must let the new delta take over.
	for i := 0; i < 200; i++ {
		p.ptUpdate(5, 1)
	}
	for i := 0; i < 200; i++ {
		p.ptUpdate(5, 3)
	}
	d, cnt, total := p.ptBest(5)
	if d != 3 {
		t.Errorf("best delta %d after retraining, want 3 (count %d/%d)", d, cnt, total)
	}
}

func TestSigUpdateMixes(t *testing.T) {
	a := sigUpdate(0, 1)
	b := sigUpdate(0, 2)
	if a == b {
		t.Error("different deltas must produce different signatures")
	}
	if sigUpdate(a, 1) == a {
		t.Error("signature must evolve")
	}
}

package spp

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

// ppf is the perceptron-based prefetch filter. Candidate prefetches are
// scored by summing signed weights from feature tables; candidates
// scoring below perceptronTau are rejected. Issued and rejected
// candidates are remembered (prefetch table / reject table, 1024
// entries each per Table III) so later demand behaviour can train the
// weights: a demand hit on an issued prefetch is a positive example, an
// issued prefetch aged out unused is negative, and a demand miss on a
// rejected line is a false reject (positive).
type ppf struct {
	wSig   [4096]int8 // signature
	wSigIP [4096]int8 // signature ^ IP
	wOffD  [2048]int8 // offset + delta
	wConf  [2048]int8 // quantized path confidence
	wIP    [1024]int8 // IP
	wPage  [1024]int8 // page low bits
	wDepth [128]int8  // lookahead depth

	issuedQ  fifoSet
	rejectQ  fifoSet
	features map[mem.Line]featVec
}

type featVec struct {
	iSig, iSigIP, iOffD, iConf, iIP, iPage, iDepth int
}

// fifoSet is a bounded FIFO of lines with O(1) membership.
type fifoSet struct {
	order []mem.Line
	set   map[mem.Line]struct{}
}

func (f *fifoSet) add(l mem.Line) (evicted mem.Line, hasEvict bool) {
	if f.set == nil {
		f.set = make(map[mem.Line]struct{}, feedbackCap)
	}
	if _, ok := f.set[l]; ok {
		return 0, false
	}
	f.order = append(f.order, l)
	f.set[l] = struct{}{}
	if len(f.order) > feedbackCap {
		old := f.order[0]
		f.order = f.order[1:]
		delete(f.set, old)
		return old, true
	}
	return 0, false
}

func (f *fifoSet) remove(l mem.Line) bool {
	if _, ok := f.set[l]; !ok {
		return false
	}
	delete(f.set, l)
	for i, x := range f.order {
		if x == l {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	return true
}

func (p *ppf) vector(ev prefetch.Event, sig uint16, delta, off int8, conf, depth int) featVec {
	ip := uint64(ev.IP) >> 2
	page := pageOf(ev.Line)
	return featVec{
		iSig:   int(sig) & 4095,
		iSigIP: int(uint64(sig)^ip) & 4095,
		iOffD:  (int(off)<<6 ^ int(uint8(delta))) & 2047,
		iConf:  (conf/4<<5 ^ int(uint8(delta))) & 2047,
		iIP:    int(ip*0x9e3779b9>>16) & 1023,
		iPage:  int(page*0x85ebca6b>>16) & 1023,
		iDepth: depth & 127,
	}
}

func (p *ppf) score(v featVec) int {
	return int(p.wSig[v.iSig]) + int(p.wSigIP[v.iSigIP]) + int(p.wOffD[v.iOffD]) +
		int(p.wConf[v.iConf]) + int(p.wIP[v.iIP]) + int(p.wPage[v.iPage]) + int(p.wDepth[v.iDepth])
}

func (p *ppf) train(v featVec, up bool) {
	adj := func(w *int8) {
		if up && *w < 31 {
			*w++
		} else if !up && *w > -32 {
			*w--
		}
	}
	adj(&p.wSig[v.iSig])
	adj(&p.wSigIP[v.iSigIP])
	adj(&p.wOffD[v.iOffD])
	adj(&p.wConf[v.iConf])
	adj(&p.wIP[v.iIP])
	adj(&p.wPage[v.iPage])
	adj(&p.wDepth[v.iDepth])
}

// accept scores a candidate and records the decision for feedback.
func (p *ppf) accept(ev prefetch.Event, sig uint16, delta, off int8, conf, depth int) bool {
	if p.features == nil {
		p.features = make(map[mem.Line]featVec, 2*feedbackCap)
	}
	page := pageOf(ev.Line)
	line := mem.Line(page*pageLines + uint64(off))
	v := p.vector(ev, sig, delta, off, conf, depth)
	if p.score(v) < perceptronTau {
		if _, evict := p.rejectQ.add(line); evict {
			// fall through; stale feature entries are overwritten lazily
		}
		p.features[line] = v
		return false
	}
	p.features[line] = v
	return true
}

// recordIssued notes that line was actually sent to the hierarchy.
func (p *ppf) recordIssued(line mem.Line) {
	if old, evict := p.issuedQ.add(line); evict {
		// Aged out unused: negative example.
		if v, ok := p.features[old]; ok {
			p.train(v, false)
			delete(p.features, old)
		}
	}
}

// feedback consumes a demand training event: positive for used
// prefetches, false-reject recovery for rejected-then-missed lines.
func (p *ppf) feedback(ev prefetch.Event, _ *[ptSets]ptEntry) {
	if ev.HitPrefetched {
		if p.issuedQ.remove(ev.Line) {
			if v, ok := p.features[ev.Line]; ok {
				p.train(v, true)
				delete(p.features, ev.Line)
			}
		}
		return
	}
	if !ev.Hit {
		if p.rejectQ.remove(ev.Line) {
			if v, ok := p.features[ev.Line]; ok {
				p.train(v, true) // should have prefetched it
				delete(p.features, ev.Line)
			}
		}
	}
}

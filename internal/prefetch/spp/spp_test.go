package spp

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func capture() (*[]mem.Line, prefetch.Issuer) {
	var out []mem.Line
	return &out, func(l mem.Line, _ mem.Addr, _ mem.Level) bool {
		out = append(out, l)
		return true
	}
}

func TestSignaturePathLookahead(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// Steady +2 deltas within pages: the signature path should predict
	// and run ahead.
	line := mem.Line(0)
	for i := 0; i < 400; i++ {
		p.Train(prefetch.Event{Line: line, IP: 0x400})
		line += 2
	}
	if len(*got) == 0 {
		t.Fatal("no prefetches for a steady delta pattern")
	}
	ahead := 0
	for _, l := range *got {
		if uint64(l)%2 == uint64(line)%2 { // on the delta lattice
			ahead++
		}
	}
	if ahead < len(*got)/2 {
		t.Errorf("most prefetches off-pattern: %d/%d", ahead, len(*got))
	}
}

func TestCrossPageGHRBootstrap(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// A +1 stream crossing page boundaries: after the GHR records the
	// cross-page path, the first access of a new page should already
	// trigger lookahead.
	line := mem.Line(0)
	for i := 0; i < 3*pageLines; i++ {
		p.Train(prefetch.Event{Line: line, IP: 0x404})
		line++
	}
	n := len(*got)
	if n == 0 {
		t.Fatal("no prefetches on cross-page stream")
	}
}

func TestTSSkipsFirstKDeltas(t *testing.T) {
	mk := func(k int) map[mem.Line]bool {
		got, issue := capture()
		p := New(issue)
		p.SetDistance(k)
		line := mem.Line(0)
		for i := 0; i < 200; i++ {
			p.Train(prefetch.Event{Line: line, IP: 0x408})
			line++
		}
		set := map[mem.Line]bool{}
		for _, l := range *got {
			set[l] = true
		}
		return set
	}
	base := mk(0)
	skipped := mk(3)
	if len(base) == 0 || len(skipped) == 0 {
		t.Fatal("no prefetches")
	}
	// With k=3 the near-in-path candidates must disappear.
	nearBase, nearSkipped := 0, 0
	for l := range base {
		if l < 50 {
			nearBase++
		}
	}
	for l := range skipped {
		if l < 50 {
			nearSkipped++
		}
	}
	if nearSkipped >= nearBase {
		t.Errorf("delta skipping did not trim near prefetches: %d vs %d", nearSkipped, nearBase)
	}
}

func TestPPFLearnsToRejectUseless(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// Phase 1: a predictable stream issues prefetches that never get
	// used (no HitPrefetched feedback) — negative training via aging.
	line := mem.Line(0)
	for i := 0; i < 3000; i++ {
		p.Train(prefetch.Event{Line: line, IP: 0x40c, Hit: true})
		line++
	}
	early := len(*got)
	if early == 0 {
		t.Skip("pattern did not trigger (nothing to reject)")
	}
	*got = (*got)[:0]
	for i := 0; i < 3000; i++ {
		p.Train(prefetch.Event{Line: line, IP: 0x40c, Hit: true})
		line++
	}
	lateCount := len(*got)
	if lateCount > early {
		t.Errorf("PPF did not throttle useless prefetches: %d then %d", early, lateCount)
	}
}

func TestRegistered(t *testing.T) {
	pf, err := prefetch.New("spp-ppf", func(mem.Line, mem.Addr, mem.Level) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if pf.Home() != mem.LvlL2 {
		t.Errorf("SPP home = %v, want L2", pf.Home())
	}
	if kb := float64(pf.StorageBytes()) / 1024; kb < 38 || kb > 41 {
		t.Errorf("storage %.1f KB, want ~39.2 KB (Table III)", kb)
	}
}

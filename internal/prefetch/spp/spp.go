// Package spp implements SPP+PPF: the Signature Path Prefetcher with
// the Perceptron-based Prefetch Filter (Bhatia et al., ISCA 2019),
// configured per the paper's Table III: 256-entry signature table,
// 512-entry 4-way pattern table, 8-entry global history register, and
// perceptron weight tables of 4096x4, 2048x2, 1024x2 and 128x1 entries
// (~39.2 KB). SPP+PPF is an L2 prefetcher.
//
// SPP compresses the per-page delta history into a 12-bit signature
// that indexes a pattern table of delta candidates with confidence
// counters; prefetching walks the signature path recursively,
// multiplying path confidence, until it falls below a threshold. PPF
// vets every candidate with a hashed perceptron over features of the
// path; its weights train on demand hits to prefetched lines
// (positive), unused aging (negative), and demand misses to rejected
// lines (false-reject recovery).
//
// The timely-secure variant (TS-SPP+PPF, §V-D) keeps learning on
// committed requests but skips the first k deltas of the signature
// path before issuing, with k in [2,5] driven by measured prefetch
// lateness; SetDistance supplies k.
package spp

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

const (
	pageLines = 64 // 4 KB pages

	stSize   = 256
	ptSets   = 512
	ptWays   = 4
	ghrSize  = 8
	sigBits  = 12
	sigMask  = (1 << sigBits) - 1
	countMax = 15

	// Lookahead control.
	confThreshold = 25  // percent; stop the path below this
	fillThreshold = 60  // percent; above this fill L2, else LLC
	maxLookahead  = 8   // candidates per trigger
	perceptronTau = -12 // PPF accept threshold

	baseDistance = 0 // deltas skipped before issuing (TS knob)
	maxDistance  = 5

	feedbackCap = 1024
)

// The unsigned % (or mask) indexing over this table is a shift-and-
// mask only while the size stays a power of two; this compile-time
// assert (negative array length otherwise) pins that.
type _ [1 - 2*(stSize&(stSize-1))]byte

type stEntry struct {
	valid   bool
	tag     uint16
	sig     uint16
	lastOff int8
	lru     uint32
}

type ptLine struct {
	delta int8
	count uint8
}

type ptEntry struct {
	total uint8
	ways  [ptWays]ptLine
}

type ghrEntry struct {
	valid   bool
	sig     uint16
	conf    int
	lastOff int8
	delta   int8
}

// Prefetcher is the SPP+PPF engine.
type Prefetcher struct {
	st    [stSize]stEntry
	pt    [ptSets]ptEntry
	ghr   [ghrSize]ghrEntry
	clock uint32

	filter   ppf
	issue    prefetch.Issuer
	distance int
}

func init() {
	prefetch.Register("spp-ppf", func(issue prefetch.Issuer) prefetch.Prefetcher {
		return New(issue)
	})
}

// New builds an SPP+PPF prefetcher.
func New(issue prefetch.Issuer) *Prefetcher {
	return &Prefetcher{issue: issue, distance: baseDistance}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "spp-ppf" }

// Home implements prefetch.Prefetcher: SPP+PPF is an L2 prefetcher.
func (p *Prefetcher) Home() mem.Level { return mem.LvlL2 }

// StorageBytes implements prefetch.Prefetcher (Table III: 39.2 KB).
func (p *Prefetcher) StorageBytes() int { return 40140 }

// Distance implements prefetch.DistanceTunable; for SPP the "distance"
// is the number of path deltas skipped before issuing (k in §V-D).
func (p *Prefetcher) Distance() int { return p.distance }

// SetDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) SetDistance(d int) {
	if d < baseDistance {
		d = baseDistance
	}
	if d > maxDistance {
		d = maxDistance
	}
	p.distance = d
}

// BaseDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) BaseDistance() int { return baseDistance }

// MaxDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) MaxDistance() int { return maxDistance }

func pageOf(l mem.Line) uint64 { return uint64(l) / pageLines }
func offOf(l mem.Line) int8    { return int8(uint64(l) % pageLines) }

func sigUpdate(sig uint16, delta int8) uint16 {
	return (sig<<3 ^ uint16(uint8(delta))) & sigMask
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) {
	p.clock++
	page := pageOf(ev.Line)
	off := offOf(ev.Line)

	p.filter.feedback(ev, &p.pt)

	e := p.findST(page)
	if e == nil {
		e = p.allocST(page)
		// Bootstrap from the GHR if a cross-page path predicted this
		// page's first access.
		if g := p.ghrMatch(off); g != nil {
			e.sig = sigUpdate(g.sig, g.delta)
			e.lastOff = off
			e.lru = p.clock
			p.lookahead(ev, page, off, e.sig, 100)
			return
		}
		e.sig = 0
		e.lastOff = off
		e.lru = p.clock
		return
	}
	delta := off - e.lastOff
	e.lru = p.clock
	if delta == 0 {
		return
	}
	p.ptUpdate(e.sig, delta)
	e.sig = sigUpdate(e.sig, delta)
	e.lastOff = off
	p.lookahead(ev, page, off, e.sig, 100)
}

// lookahead walks the signature path issuing vetted candidates.
func (p *Prefetcher) lookahead(ev prefetch.Event, page uint64, off int8, sig uint16, conf int) {
	curOff := int(off)
	depth := 0
	issued := 0
	for issued < maxLookahead {
		d, c, total := p.ptBest(sig)
		if total == 0 || c == 0 {
			return
		}
		conf = conf * int(c) / int(total)
		if conf < confThreshold {
			return
		}
		curOff += int(d)
		depth++
		if curOff < 0 || curOff >= pageLines {
			// Page boundary: record in the GHR so the next page can
			// continue the path (SPP's cross-page mechanism).
			p.ghrInsert(ghrEntry{valid: true, sig: sig, conf: conf, lastOff: off, delta: d})
			return
		}
		sig = sigUpdate(sig, d)
		if depth <= p.distance {
			continue // TS-SPP: skip the first k path steps
		}
		line := mem.Line(page*pageLines + uint64(curOff))
		if !p.filter.accept(ev, sig, d, int8(curOff), conf, depth) {
			continue
		}
		fill := mem.LvlL2
		if conf < fillThreshold {
			fill = mem.LvlLLC
		}
		p.issue(line, ev.IP, fill)
		p.filter.recordIssued(line)
		issued++
	}
}

func (p *Prefetcher) ptUpdate(sig uint16, delta int8) {
	e := &p.pt[sig%ptSets]
	if e.total >= countMax*ptWays {
		// Periodic decay keeps confidences adaptive.
		for i := range e.ways {
			e.ways[i].count /= 2
		}
		e.total /= 2
	}
	e.total++
	for i := range e.ways {
		if e.ways[i].count > 0 && e.ways[i].delta == delta {
			if e.ways[i].count < countMax {
				e.ways[i].count++
			}
			return
		}
	}
	// Replace the smallest way.
	mi := 0
	for i := range e.ways {
		if e.ways[i].count < e.ways[mi].count {
			mi = i
		}
	}
	e.ways[mi] = ptLine{delta: delta, count: 1}
}

// ptBest returns the strongest delta for sig with its count and total.
func (p *Prefetcher) ptBest(sig uint16) (delta int8, count, total uint8) {
	e := &p.pt[sig%ptSets]
	bi := -1
	for i := range e.ways {
		if e.ways[i].count > 0 && (bi < 0 || e.ways[i].count > e.ways[bi].count) {
			bi = i
		}
	}
	if bi < 0 {
		return 0, 0, 0
	}
	return e.ways[bi].delta, e.ways[bi].count, e.total
}

func (p *Prefetcher) findST(page uint64) *stEntry {
	idx := int(page % stSize)
	tag := uint16(page >> 8)
	e := &p.st[idx]
	if e.valid && e.tag == tag {
		return e
	}
	return nil
}

func (p *Prefetcher) allocST(page uint64) *stEntry {
	idx := int(page % stSize)
	e := &p.st[idx]
	*e = stEntry{valid: true, tag: uint16(page >> 8)}
	return e
}

func (p *Prefetcher) ghrInsert(g ghrEntry) {
	// Replace the lowest-confidence slot.
	mi := 0
	for i := range p.ghr {
		if !p.ghr[i].valid {
			mi = i
			break
		}
		if p.ghr[i].conf < p.ghr[mi].conf {
			mi = i
		}
	}
	p.ghr[mi] = g
}

// ghrMatch finds a GHR entry whose cross-page path lands on off.
func (p *Prefetcher) ghrMatch(off int8) *ghrEntry {
	for i := range p.ghr {
		g := &p.ghr[i]
		if !g.valid {
			continue
		}
		landing := (int(g.lastOff) + int(g.delta)) & (pageLines - 1)
		if int8(landing) == off {
			return g
		}
	}
	return nil
}

// Fill implements prefetch.Prefetcher (SPP is not self-timing).
func (p *Prefetcher) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

package bingo

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func capture() (*[]mem.Line, prefetch.Issuer) {
	var out []mem.Line
	return &out, func(l mem.Line, _ mem.Addr, _ mem.Level) bool {
		out = append(out, l)
		return true
	}
}

// visitRegion touches the given offsets of region reg with trigger IP.
func visitRegion(p *Prefetcher, reg uint64, ip mem.Addr, offsets []uint8) {
	for _, o := range offsets {
		p.Train(prefetch.Event{Line: mem.Line(reg*regionLines + uint64(o)), IP: ip})
	}
}

func TestFootprintReplay(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	footprint := []uint8{0, 3, 7, 12, 19}
	// Teach the pattern in enough regions to evict them into the PHT.
	for reg := uint64(0); reg < atSize+4; reg++ {
		visitRegion(p, reg, 0x400, footprint)
	}
	// Trigger a brand-new region with the same PC+offset event.
	*got = (*got)[:0]
	newReg := uint64(50_000)
	p.Train(prefetch.Event{Line: mem.Line(newReg*regionLines + 0), IP: 0x400})
	if len(*got) == 0 {
		t.Fatal("trigger access replayed nothing from the PHT")
	}
	want := map[mem.Line]bool{}
	for _, o := range footprint[1:] { // trigger offset itself is skipped
		want[mem.Line(newReg*regionLines+uint64(o))] = true
	}
	for _, l := range *got {
		if !want[l] {
			t.Errorf("unexpected prefetch %d (offset %d)", l, uint64(l)%regionLines)
		}
		delete(want, l)
	}
	if len(want) != 0 {
		t.Errorf("footprint lines not prefetched: %v", want)
	}
}

func TestNoPredictionWithoutHistory(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	p.Train(prefetch.Event{Line: 12345, IP: 0x404})
	if len(*got) != 0 {
		t.Errorf("cold trigger issued %d prefetches", len(*got))
	}
}

func TestPCOffsetFallback(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	footprint := []uint8{2, 5, 9}
	for reg := uint64(0); reg < atSize+4; reg++ {
		visitRegion(p, reg, 0x408, footprint)
	}
	*got = (*got)[:0]
	// A new region: PC+Address cannot match (different region), so the
	// PC+Offset event must supply the footprint.
	p.Train(prefetch.Event{Line: mem.Line(77_000*regionLines + 2), IP: 0x408})
	if len(*got) == 0 {
		t.Fatal("PC+Offset fallback failed")
	}
}

func TestDistanceRotatesIssueOrder(t *testing.T) {
	mk := func(dist int) []mem.Line {
		got, issue := capture()
		p := New(issue)
		p.SetDistance(dist)
		footprint := []uint8{1, 4, 8, 15, 23}
		for reg := uint64(0); reg < atSize+4; reg++ {
			visitRegion(p, reg, 0x40c, footprint)
		}
		*got = (*got)[:0]
		p.Train(prefetch.Event{Line: mem.Line(88_000*regionLines + 1), IP: 0x40c})
		return *got
	}
	d1 := mk(1)
	d3 := mk(3)
	if len(d1) == 0 || len(d3) == 0 {
		t.Fatal("no prefetches issued")
	}
	if d1[0] == d3[0] {
		t.Error("TS-Bingo distance did not rotate the temporal issue order")
	}
}

func TestRegistered(t *testing.T) {
	pf, err := prefetch.New("bingo", func(mem.Line, mem.Addr, mem.Level) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if pf.Home() != mem.LvlL2 {
		t.Errorf("Bingo home = %v, want L2", pf.Home())
	}
	if kb := pf.StorageBytes() / 1024; kb != 124 {
		t.Errorf("storage %d KB, want 124 KB (Table III)", kb)
	}
}

// Package bingo implements the Bingo spatial data prefetcher
// (Bakhshalipour et al., HPCA 2019), configured per the paper's
// Table III: 2 KB regions, a 64-entry filter table, a 128-entry
// accumulation table, and a 16K-entry pattern history table (~124 KB).
// Bingo is an L2 prefetcher.
//
// Bingo's key idea is association of spatial footprints with "long"
// events looked up hierarchically: the PHT is probed first with
// PC+Address of the region trigger access and, failing that, with
// PC+Offset. Footprints are recorded in first-touch (temporal) order,
// which also supports the paper's TS-Bingo variant: Tempo-style
// temporal ordering lets the distance knob rotate issue order so
// further-in-the-future lines are fetched first when prefetches run
// late (§V-D).
package bingo

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

const (
	regionLines = 32 // 2 KB regions
	ftSize      = 64
	atSize      = 128
	phtSize     = 16384

	baseDistance = 1
	maxDistance  = 8
)

// The unsigned % (or mask) indexing over this table is a shift-and-
// mask only while the size stays a power of two; this compile-time
// assert (negative array length otherwise) pins that.
type _ [1 - 2*(phtSize&(phtSize-1))]byte

// regionOf maps a line to its region id; offsetOf to the line's slot.
func regionOf(l mem.Line) uint64 { return uint64(l) / regionLines }
func offsetOf(l mem.Line) uint8  { return uint8(uint64(l) % regionLines) }

type ftEntry struct {
	valid   bool
	region  uint64
	trigIP  mem.Addr
	trigOff uint8
	lru     uint32
}

type atEntry struct {
	valid   bool
	region  uint64
	trigIP  mem.Addr
	trigOff uint8
	// order lists offsets in first-touch order (the footprint).
	order []uint8
	seen  uint32 // bitmap to dedupe
	lru   uint32
}

type phtEntry struct {
	valid bool
	tag   uint32
	order []uint8
}

// Prefetcher is the Bingo engine.
type Prefetcher struct {
	ft       [ftSize]ftEntry
	at       [atSize]atEntry
	pht      [phtSize]phtEntry
	clock    uint32
	issue    prefetch.Issuer
	distance int
}

func init() {
	prefetch.Register("bingo", func(issue prefetch.Issuer) prefetch.Prefetcher {
		return New(issue)
	})
}

// New builds a Bingo prefetcher.
func New(issue prefetch.Issuer) *Prefetcher {
	return &Prefetcher{issue: issue, distance: baseDistance}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "bingo" }

// Home implements prefetch.Prefetcher: Bingo is an L2 prefetcher.
func (p *Prefetcher) Home() mem.Level { return mem.LvlL2 }

// StorageBytes implements prefetch.Prefetcher (Table III: 124 KB).
func (p *Prefetcher) StorageBytes() int { return 124 * 1024 }

// Distance implements prefetch.DistanceTunable.
func (p *Prefetcher) Distance() int { return p.distance }

// SetDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) SetDistance(d int) {
	if d < baseDistance {
		d = baseDistance
	}
	if d > maxDistance {
		d = maxDistance
	}
	p.distance = d
}

// BaseDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) BaseDistance() int { return baseDistance }

// MaxDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) MaxDistance() int { return maxDistance }

// hashPCAddr builds the "PC+Address" long-event PHT index/tag.
func hashPCAddr(ip mem.Addr, region uint64, off uint8) (int, uint32) {
	h := (uint64(ip)>>2)*0x9e3779b97f4a7c15 ^ region*0xc2b2ae3d27d4eb4f ^ uint64(off)<<56
	h ^= h >> 31
	return int(h % phtSize), uint32(h>>33) | 1
}

// hashPCOff builds the "PC+Offset" short-event index/tag.
func hashPCOff(ip mem.Addr, off uint8) (int, uint32) {
	h := (uint64(ip)>>2)*0xff51afd7ed558ccd ^ uint64(off)*0x9e3779b97f4a7c15
	h ^= h >> 29
	return int(h % phtSize), uint32(h>>33) | 1
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) {
	p.clock++
	region := regionOf(ev.Line)
	off := offsetOf(ev.Line)

	// Already accumulating?
	if e := p.findAT(region); e != nil {
		if e.seen&(1<<off) == 0 {
			e.seen |= 1 << off
			e.order = append(e.order, off)
			// Write the growing footprint through to the PHT so
			// same-pattern regions triggered before this one is evicted
			// still benefit (region lifetimes routinely exceed the AT
			// residency the eviction-only policy assumes).
			p.store(e)
		}
		e.lru = p.clock
		return
	}
	// Second access to a filtered region promotes it to the AT.
	if f := p.findFT(region); f != nil {
		if f.trigOff != off {
			a := p.allocAT()
			*a = atEntry{
				valid: true, region: region,
				trigIP: f.trigIP, trigOff: f.trigOff,
				order: []uint8{f.trigOff, off},
				seen:  1<<f.trigOff | 1<<off,
				lru:   p.clock,
			}
			f.valid = false
		}
		return
	}
	// Trigger access: record in FT and predict from the PHT.
	f := p.allocFT()
	*f = ftEntry{valid: true, region: region, trigIP: ev.IP, trigOff: off, lru: p.clock}
	p.predict(ev.IP, region, off)
}

// predict looks up the PHT (PC+Address first, then PC+Offset) and
// issues the stored footprint, rotated by the distance knob so the
// temporally-later lines go out first when running late.
func (p *Prefetcher) predict(ip mem.Addr, region uint64, off uint8) {
	var order []uint8
	if i, tag := hashPCAddr(ip, region, off); p.pht[i].valid && p.pht[i].tag == tag {
		order = p.pht[i].order
	} else if i, tag := hashPCOff(ip, off); p.pht[i].valid && p.pht[i].tag == tag {
		order = p.pht[i].order
	}
	if len(order) == 0 {
		return
	}
	base := region * regionLines
	start := p.distance - 1
	if start >= len(order) {
		start = 0
	}
	for k := 0; k < len(order); k++ {
		o := order[(start+k)%len(order)]
		if o == off {
			continue
		}
		p.issue(mem.Line(base+uint64(o)), ip, mem.LvlL2)
	}
}

// store records a region's footprint under both event keys.
func (p *Prefetcher) store(e *atEntry) {
	if len(e.order) < 2 {
		return
	}
	order := append([]uint8(nil), e.order...)
	i, tag := hashPCAddr(e.trigIP, e.region, e.trigOff)
	p.pht[i] = phtEntry{valid: true, tag: tag, order: order}
	i, tag = hashPCOff(e.trigIP, e.trigOff)
	p.pht[i] = phtEntry{valid: true, tag: tag, order: order}
}

// evictAT stores a finished region's footprint and frees the entry.
func (p *Prefetcher) evictAT(e *atEntry) {
	p.store(e)
	e.valid = false
}

func (p *Prefetcher) findAT(region uint64) *atEntry {
	for i := range p.at {
		if p.at[i].valid && p.at[i].region == region {
			return &p.at[i]
		}
	}
	return nil
}

func (p *Prefetcher) findFT(region uint64) *ftEntry {
	for i := range p.ft {
		if p.ft[i].valid && p.ft[i].region == region {
			return &p.ft[i]
		}
	}
	return nil
}

func (p *Prefetcher) allocFT() *ftEntry {
	v := &p.ft[0]
	for i := range p.ft {
		if !p.ft[i].valid {
			return &p.ft[i]
		}
		if p.ft[i].lru < v.lru {
			v = &p.ft[i]
		}
	}
	return v
}

func (p *Prefetcher) allocAT() *atEntry {
	v := &p.at[0]
	for i := range p.at {
		if !p.at[i].valid {
			return &p.at[i]
		}
		if p.at[i].lru < v.lru {
			v = &p.at[i]
		}
	}
	p.evictAT(v)
	return v
}

// Fill implements prefetch.Prefetcher (Bingo is not self-timing).
func (p *Prefetcher) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

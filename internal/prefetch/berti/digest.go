package berti

import "secpref/internal/observatory"

// StateDigest hashes the prefetcher's architectural state: the access
// history columns, every valid delta-table entry with its learned
// deltas, and the engine activity counters.
func (p *Prefetcher) StateDigest() uint64 {
	d := observatory.NewDigest()
	d = d.Word(uint64(p.histPos)).Word(uint64(p.clock))
	for i := 0; i < historySize; i++ {
		if p.hist.tag[i] == 0 {
			continue
		}
		d = d.Word(uint64(i)).Word(p.hist.tag[i])
		d = d.Word(uint64(p.hist.line[i])).Word(uint64(p.hist.ts[i]))
	}
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			continue
		}
		d = d.Word(uint64(i)).Word(uint64(e.ipHash)).Word(uint64(e.searches)).Word(uint64(e.lru))
		for j := range e.deltas {
			de := &e.deltas[j]
			if de.count == 0 && de.delta == 0 {
				continue
			}
			d = d.Word(uint64(j)).Word(uint64(uint32(de.delta)) | uint64(de.count)<<32)
		}
	}
	d = d.Word(p.TrainCalls).Word(p.ObserveCalls).Word(p.IssueAttempts)
	return d.Sum()
}

// Package berti implements the Berti local-delta data prefetcher
// (Navarro-Torres et al., MICRO 2022), configured per the paper's
// Table III: a 128-entry history table and a 16-entry delta table with
// 16 deltas per entry (~2.55 KB). Berti is an L1D prefetcher and is
// self-timing: it learns, per IP, the deltas that would have produced
// *timely* prefetches given the measured fetch latency, and issues the
// highest-coverage deltas, orchestrating the fill level (L1D vs L2) by
// coverage and L1D MSHR occupancy.
//
// The same engine implements all three operating points of the paper:
//
//   - On-access Berti: history records access times; Observe is called
//     at fill time with the true fetch latency.
//   - On-commit Berti (secure, naive): history records commit times;
//     Observe is called at commit with the GM-to-L1D on-commit write
//     latency — the misleading signal §V-B describes, which learns
//     deltas that are timely at commit but late at access.
//   - TSB (Timely Secure Berti, the paper's contribution): history
//     records commit times, but Observe is called at commit with the
//     X-LQ's *access* timestamp and the true fetch latency to the GM,
//     so the learned deltas are timely at access despite commit-time
//     triggering (§V-C).
//
// The caller (the simulator's prefetcher harness) decides which times
// and latencies to supply; the search logic here is shared.
package berti

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

const (
	historySize = 128
	deltaIPs    = 16
	deltasPerIP = 16

	// Coverage thresholds (fraction of searches a delta was timely in).
	covL1 = 0.60 // fill to L1D
	covL2 = 0.30 // fill to L2

	// roundSize searches per normalization round; counters halve so
	// coverage tracks recent behaviour.
	roundSize = 64

	// mshrReserve: with fewer free L1D MSHRs than this, L1D-destined
	// prefetches are demoted to L2 (Berti's occupancy orchestration).
	// Half the Table II L1D MSHR count: demand misses — which in the
	// secure system include every speculative probe — keep priority.
	mshrReserve = 8

	// maxIssuePerTrigger bounds the deltas issued per training event.
	maxIssuePerTrigger = 4

	// histBuckets is the IP-index fan-out for the history chains. One
	// bucket per slot keeps expected chain length at the per-IP entry
	// count even under full occupancy.
	histBuckets = historySize
)

// The ring mask and bucket mask require power-of-two sizes; these
// compile-time asserts fail (negative array length) if a constant edit
// breaks that.
type (
	_ [1 - 2*(historySize&(historySize-1))]byte
	_ [1 - 2*(histBuckets&(histBuckets-1))]byte
)

// The access history is struct-of-arrays: Observe's timely-delta
// search filters almost every entry out by IP hash alone, so the tag
// column is scanned on its own (1 KiB for the whole history instead of
// a stride over ~4 KB of full records) and the line/timestamp columns
// are read only on tag matches. A tag is the 32-bit IP hash with
// histLive ORed in; never-written slots hold zero, which no live tag
// can equal, so validity costs no separate column or branch.
type history struct {
	tag  [historySize]uint64
	line [historySize]mem.Line
	ts   [historySize]mem.Cycle
}

// histLive marks an occupied history slot; see history.
const histLive = uint64(1) << 32

type deltaEntry struct {
	delta int32
	count uint16
}

type ipDeltas struct {
	valid    bool
	ipHash   uint32
	searches uint16
	deltas   [deltasPerIP]deltaEntry
	lru      uint32
}

// Prefetcher is the Berti/TSB engine.
type Prefetcher struct {
	hist    history
	histPos int
	table   [deltaIPs]ipDeltas
	clock   uint32
	issue   prefetch.Issuer

	// The history index: per-tag bucket chains over the history
	// columns, so Observe's timely-delta search walks only the slots
	// whose tag hashes into the triggering IP's bucket instead of all
	// 128. Doubly linked for O(1) unlink when the ring overwrites a
	// slot. Derived from the columns above — excluded from StateDigest
	// like the other engine memo fields.
	histHead [histBuckets]int16
	histNext [historySize]int16
	histPrev [historySize]int16

	// lastSlot memoizes the delta-table slot of the most recent IP;
	// self-validating against the table entry, so it is also derived
	// state.
	lastSlot int8

	// MSHRFree, if set, reports free L1D MSHR entries for fill-level
	// orchestration.
	MSHRFree func() int

	// TrainCalls, ObserveCalls, and IssueAttempts count engine activity
	// (diagnostics).
	TrainCalls, ObserveCalls, IssueAttempts uint64
}

func init() {
	prefetch.Register("berti", func(issue prefetch.Issuer) prefetch.Prefetcher {
		return New(issue)
	})
}

// New builds a Berti prefetcher.
func New(issue prefetch.Issuer) *Prefetcher {
	p := &Prefetcher{issue: issue}
	for i := range p.histHead {
		p.histHead[i] = -1
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "berti" }

// Home implements prefetch.Prefetcher: Berti is an L1D prefetcher.
func (p *Prefetcher) Home() mem.Level { return mem.LvlL1D }

// StorageBytes implements prefetch.Prefetcher (Table III: 2.55 KB).
func (p *Prefetcher) StorageBytes() int { return 2611 }

func ipHash(ip mem.Addr) uint32 {
	h := uint64(ip) >> 2
	h *= 0x9e3779b97f4a7c15
	return uint32(h >> 32)
}

// Train implements prefetch.Prefetcher: record the access in the
// history and issue the learned deltas for this IP. ev.Cycle is the
// training time (access time on-access; commit time on-commit/TSB).
func (p *Prefetcher) Train(ev prefetch.Event) {
	p.TrainCalls++
	h := ipHash(ev.IP)
	// Only misses and first-touch prefetch hits train Berti (regular
	// hits neither insert history nor trigger — per the Berti design,
	// they would pollute delta timing).
	if !ev.Hit || ev.HitPrefetched {
		pos := p.histPos
		if p.hist.tag[pos] != 0 {
			p.histUnlink(pos)
		}
		tag := uint64(h) | histLive
		p.hist.tag[pos] = tag
		p.hist.line[pos] = ev.Line
		p.hist.ts[pos] = ev.Cycle
		p.histLink(pos, tag)
		p.histPos = (pos + 1) & (historySize - 1)
	}
	p.issueDeltas(h, ev.Line, ev.IP)
}

func histBucket(tag uint64) int { return int(tag & (histBuckets - 1)) }

func (p *Prefetcher) histLink(i int, tag uint64) {
	b := histBucket(tag)
	head := p.histHead[b]
	p.histNext[i] = head
	p.histPrev[i] = -1
	if head >= 0 {
		p.histPrev[head] = int16(i)
	}
	p.histHead[b] = int16(i)
}

func (p *Prefetcher) histUnlink(i int) {
	prev, next := p.histPrev[i], p.histNext[i]
	if prev >= 0 {
		p.histNext[prev] = next
	} else {
		p.histHead[histBucket(p.hist.tag[i])] = next
	}
	if next >= 0 {
		p.histPrev[next] = prev
	}
}

// Observe performs the timely-delta search: given the current access's
// line, a reference time, and the fetch latency, it finds the *nearest*
// history entry of the same IP old enough that a prefetch triggered
// there would have completed by refTime (ts + latency <= refTime), and
// that entry's delta gets a coverage vote. Taking only the nearest
// timely access — rather than every timely one — is what keeps the
// learned delta minimal and the issue rate at one line per trigger, per
// the Berti design ("searches for the nearest instruction capable of
// triggering a timely prefetch").
func (p *Prefetcher) Observe(ip mem.Addr, line mem.Line, refTime mem.Cycle, latency mem.Cycle) {
	p.ObserveCalls++
	h := ipHash(ip)
	e := p.tableFor(h)
	e.searches++
	tag := uint64(h) | histLive
	best, second := p.searchTimely(tag, line, refTime, latency)
	// The two nearest timely candidates vote: the minimal timely delta
	// plus the next one back, giving the issuer a second step of
	// lookahead depth (Berti's delta table holds several live deltas
	// per IP; nearest-only voting would collapse it to one).
	for _, he := range [...]int{best, second} {
		if he < 0 {
			continue
		}
		if d := int32(int64(line) - int64(p.hist.line[he])); d != 0 {
			p.bump(e, d)
		}
	}
	if e.searches >= roundSize {
		e.searches /= 2
		for i := range e.deltas {
			e.deltas[i].count /= 2
		}
	}
}

// searchTimely finds the two best timely history candidates for the
// search keyed by (ts descending, slot index ascending) — exactly the
// order the straight-line scan's strict comparisons select, so the
// chain walk is bit-identical to it regardless of chain order. Slots
// whose tag merely collides into the same bucket are filtered by the
// full-tag compare, same as the linear scan.
func (p *Prefetcher) searchTimely(tag uint64, line mem.Line, refTime, latency mem.Cycle) (best, second int) {
	best, second = -1, -1
	for n := p.histHead[histBucket(tag)]; n >= 0; n = p.histNext[n] {
		i := int(n)
		if p.hist.tag[i] != tag || p.hist.line[i] == line {
			continue
		}
		if p.hist.ts[i]+latency > refTime {
			continue
		}
		// Chains are newest-first and every insertion carries the machine
		// clock, so timestamps weakly decrease along the walk: once an
		// eligible entry falls strictly below second's timestamp, nothing
		// further can displace best or second (ties are never strict), and
		// the walk can stop. This is what makes a degenerate single-IP
		// history O(ties) instead of O(historySize) per search.
		if second >= 0 && p.hist.ts[i] < p.hist.ts[second] {
			break
		}
		switch {
		case best < 0 || p.hist.ts[i] > p.hist.ts[best] ||
			(p.hist.ts[i] == p.hist.ts[best] && i < best):
			second = best
			best = i
		case second < 0 || p.hist.ts[i] > p.hist.ts[second] ||
			(p.hist.ts[i] == p.hist.ts[second] && i < second):
			second = i
		}
	}
	return best, second
}

// searchTimelyLinear is the retained straight-line reference for the
// history search: the pre-index implementation, kept as the oracle the
// randomized equivalence tests compare searchTimely against.
func (p *Prefetcher) searchTimelyLinear(tag uint64, line mem.Line, refTime, latency mem.Cycle) (best, second int) {
	best, second = -1, -1
	for i := range p.hist.tag {
		if p.hist.tag[i] != tag || p.hist.line[i] == line {
			continue
		}
		if p.hist.ts[i]+latency > refTime {
			continue
		}
		switch {
		case best < 0 || p.hist.ts[i] > p.hist.ts[best]:
			second = best
			best = i
		case second < 0 || p.hist.ts[i] > p.hist.ts[second]:
			second = i
		}
	}
	return best, second
}

func (p *Prefetcher) tableFor(h uint32) *ipDeltas {
	p.clock++
	if e := &p.table[p.lastSlot]; e.valid && e.ipHash == h {
		e.lru = p.clock
		return e
	}
	for i := range p.table {
		e := &p.table[i]
		if e.valid && e.ipHash == h {
			e.lru = p.clock
			p.lastSlot = int8(i)
			return e
		}
	}
	victim := 0
	for i := range p.table {
		e := &p.table[i]
		if !e.valid {
			victim = i
			break
		}
		if e.lru < p.table[victim].lru {
			victim = i
		}
	}
	p.table[victim] = ipDeltas{valid: true, ipHash: h, lru: p.clock}
	p.lastSlot = int8(victim)
	return &p.table[victim]
}

func (p *Prefetcher) bump(e *ipDeltas, d int32) {
	var free *deltaEntry
	var min *deltaEntry
	for i := range e.deltas {
		de := &e.deltas[i]
		if de.count > 0 && de.delta == d {
			de.count++
			return
		}
		if de.count == 0 && free == nil {
			free = de
		}
		if min == nil || de.count < min.count {
			min = de
		}
	}
	if free != nil {
		*free = deltaEntry{delta: d, count: 1}
		return
	}
	// Replace the weakest delta.
	*min = deltaEntry{delta: d, count: 1}
}

// issueDeltas sends prefetches for the high-coverage deltas of IP.
func (p *Prefetcher) issueDeltas(h uint32, line mem.Line, ip mem.Addr) {
	var e *ipDeltas
	if m := &p.table[p.lastSlot]; m.valid && m.ipHash == h {
		e = m
	} else {
		for i := range p.table {
			if p.table[i].valid && p.table[i].ipHash == h {
				e = &p.table[i]
				p.lastSlot = int8(i)
				break
			}
		}
	}
	if e == nil || e.searches == 0 {
		return
	}
	denom := float64(e.searches)
	demote := p.MSHRFree != nil && p.MSHRFree() < mshrReserve
	issued := 0
	for i := range e.deltas {
		de := e.deltas[i]
		if de.count == 0 {
			continue
		}
		cov := float64(de.count) / denom
		if cov < covL2 {
			continue
		}
		fill := mem.LvlL2
		if cov >= covL1 && !demote {
			fill = mem.LvlL1D
		}
		p.IssueAttempts++
		p.issue(mem.Line(int64(line)+int64(de.delta)), ip, fill)
		if issued++; issued >= maxIssuePerTrigger {
			return
		}
	}
}

// Fill implements prefetch.Prefetcher. The harness calls Observe with
// mode-appropriate times instead; Fill is unused for Berti.
func (p *Prefetcher) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

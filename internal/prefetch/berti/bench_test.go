package berti

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

// benchIPs is sized to exercise the per-IP bucket chains with realistic
// collision pressure: more IPs than buckets would see from a single
// loop nest, fewer than the history can hold.
const benchIPs = 16

// warmPrefetcher drives a multi-IP strided stream long enough to fill
// the history ring and the delta tables, so the benchmarks measure the
// steady state rather than cold-table behavior.
func warmPrefetcher() (*Prefetcher, *int) {
	issued := 0
	p := New(func(mem.Line, mem.Addr, mem.Level) bool { issued++; return true })
	for i := 0; i < 4*historySize; i++ {
		ip := mem.Addr(0x400 + 8*(i%benchIPs))
		line := mem.Line(1000 + 64*(i%benchIPs) + 3*(i/benchIPs))
		now := mem.Cycle(10 * i)
		p.Train(prefetch.Event{Line: line, IP: ip, Cycle: now, AccessCycle: now})
		p.Observe(ip, line, now, 35)
	}
	return p, &issued
}

// BenchmarkComponentBertiObserve measures the latency-learning path:
// the history search (indexed bucket-chain walk) plus delta-table
// bookkeeping, on a warm multi-IP stream.
func BenchmarkComponentBertiObserve(b *testing.B) {
	p, _ := warmPrefetcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := mem.Addr(0x400 + 8*(i%benchIPs))
		line := mem.Line(1000 + 64*(i%benchIPs) + 3*(i/benchIPs))
		p.Observe(ip, line, mem.Cycle(10*i), 35)
	}
}

// BenchmarkComponentBertiTrain measures the demand-access path: the
// history-ring insert (chain unlink/relink) plus the prefetch trigger
// walk that issues timely deltas.
func BenchmarkComponentBertiTrain(b *testing.B) {
	p, _ := warmPrefetcher()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := mem.Addr(0x400 + 8*(i%benchIPs))
		line := mem.Line(1000 + 64*(i%benchIPs) + 3*(i/benchIPs))
		now := mem.Cycle(10 * i)
		p.Train(prefetch.Event{Line: line, IP: ip, Cycle: now, AccessCycle: now})
	}
}

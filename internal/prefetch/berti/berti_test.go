package berti

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

// drive simulates a strided access stream and returns the prefetched
// lines: IP ip touches lines base, base+stride, ... spaced period
// cycles apart, with Observe called after each access with the given
// fetch latency.
func drive(t *testing.T, stride int64, period, latency mem.Cycle, n int) map[mem.Line]int {
	t.Helper()
	issued := map[mem.Line]int{}
	p := New(func(line mem.Line, _ mem.Addr, _ mem.Level) bool {
		issued[line]++
		return true
	})
	ip := mem.Addr(0x400)
	base := mem.Line(1000)
	for i := 0; i < n; i++ {
		line := mem.Line(int64(base) + stride*int64(i))
		now := mem.Cycle(i) * period
		p.Train(prefetch.Event{Line: line, IP: ip, Hit: false, Cycle: now, AccessCycle: now})
		p.Observe(ip, line, now, latency)
	}
	return issued
}

func TestLearnsTimelyStrideDeltas(t *testing.T) {
	issued := drive(t, 3, 10, 35, 200)
	if len(issued) == 0 {
		t.Fatalf("no prefetches issued for a perfectly strided stream")
	}
	// With latency 35 and period 10, deltas of at least 4 accesses (=12
	// lines) are timely; expect far-ahead lines to be requested.
	far := 0
	for line := range issued {
		if line >= 1000+12 {
			far++
		}
	}
	if far == 0 {
		t.Errorf("no timely (>=12-line) deltas prefetched; issued=%v", issued)
	}
}

func TestRandomStreamStaysQuiet(t *testing.T) {
	issued := map[mem.Line]int{}
	p := New(func(line mem.Line, _ mem.Addr, _ mem.Level) bool {
		issued[line]++
		return true
	})
	ip := mem.Addr(0x400)
	rng := uint64(12345)
	for i := 0; i < 500; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		line := mem.Line(rng % 1_000_000)
		now := mem.Cycle(i) * 10
		p.Train(prefetch.Event{Line: line, IP: ip, Hit: false, Cycle: now, AccessCycle: now})
		p.Observe(ip, line, now, 35)
	}
	// A random stream has no repeatable delta; the issue volume must be
	// a small fraction of the accesses.
	total := 0
	for _, n := range issued {
		total += n
	}
	if total > 250 {
		t.Errorf("berti issued %d prefetches on a random stream (expected near zero)", total)
	}
}

package berti

import (
	"math/rand"
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

// observeLinearRef is Observe with the search swapped for the retained
// linear reference: the oracle the indexed engine is compared against.
func (p *Prefetcher) observeLinearRef(ip mem.Addr, line mem.Line, refTime, latency mem.Cycle) {
	p.ObserveCalls++
	h := ipHash(ip)
	e := p.tableFor(h)
	e.searches++
	tag := uint64(h) | histLive
	best, second := p.searchTimelyLinear(tag, line, refTime, latency)
	for _, he := range [...]int{best, second} {
		if he < 0 {
			continue
		}
		if d := int32(int64(line) - int64(p.hist.line[he])); d != 0 {
			p.bump(e, d)
		}
	}
	if e.searches >= roundSize {
		e.searches /= 2
		for i := range e.deltas {
			e.deltas[i].count /= 2
		}
	}
}

// adversarialIPs builds an IP pool deliberately heavy in history-bucket
// collisions: for each of a handful of buckets it gathers several IPs
// whose hashes land there, so chains carry multiple distinct tags and
// the full-tag filter in the chain walk is actually exercised.
func adversarialIPs(rng *rand.Rand, perBucket, buckets int) []mem.Addr {
	byBucket := map[int][]mem.Addr{}
	var pool []mem.Addr
	for len(pool) < perBucket*buckets {
		ip := mem.Addr(rng.Uint64() &^ 3)
		b := histBucket(uint64(ipHash(ip)) | histLive)
		if len(byBucket) < buckets && len(byBucket[b]) == 0 {
			byBucket[b] = append(byBucket[b], ip)
			pool = append(pool, ip)
			continue
		}
		if got, ok := byBucket[b]; ok && len(got) < perBucket {
			byBucket[b] = append(got, ip)
			pool = append(pool, ip)
		}
	}
	return pool
}

func nopIssue(mem.Line, mem.Addr, mem.Level) bool { return true }

// TestIndexedSearchEquivalence drives one prefetcher through a
// randomized adversarial stream and, after every insertion, checks the
// chain-walk search against the linear reference across random queries
// (including duplicate timestamps, which stress the (ts, slot)
// tie-break).
func TestIndexedSearchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		pool := adversarialIPs(rng, 6, 8)
		p := New(prefetch.Issuer(nopIssue))
		cycle := mem.Cycle(0)
		for step := 0; step < 4000; step++ {
			ip := pool[rng.Intn(len(pool))]
			line := mem.Line(rng.Intn(64))
			// Bursts of equal timestamps mimic multiple retires per
			// cycle of the same IP.
			if rng.Intn(3) != 0 {
				cycle += mem.Cycle(rng.Intn(4))
			}
			p.Train(prefetch.Event{IP: ip, Line: line, Cycle: cycle, Hit: rng.Intn(4) == 0})
			for q := 0; q < 4; q++ {
				qip := pool[rng.Intn(len(pool))]
				tag := uint64(ipHash(qip)) | histLive
				qline := mem.Line(rng.Intn(64))
				ref := cycle + mem.Cycle(rng.Intn(32))
				lat := mem.Cycle(rng.Intn(48))
				ib, is := p.searchTimely(tag, qline, ref, lat)
				lb, ls := p.searchTimelyLinear(tag, qline, ref, lat)
				if ib != lb || is != ls {
					t.Fatalf("seed %d step %d: indexed (%d,%d) != linear (%d,%d) for tag %#x line %d ref %d lat %d",
						seed, step, ib, is, lb, ls, tag, qline, ref, lat)
				}
			}
		}
	}
}

// TestIndexedObserveDigestEquivalence trains two prefetchers on the
// same adversarial stream — one observing through the indexed search,
// one through the linear reference — and requires identical state and
// identical digests: digest.go must fold the same value from either
// search path since the index is derived state.
func TestIndexedObserveDigestEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		pool := adversarialIPs(rng, 5, 10)
		indexed := New(prefetch.Issuer(nopIssue))
		linear := New(prefetch.Issuer(nopIssue))
		cycle := mem.Cycle(0)
		for step := 0; step < 3000; step++ {
			ip := pool[rng.Intn(len(pool))]
			line := mem.Line(rng.Intn(96))
			if rng.Intn(3) != 0 {
				cycle += mem.Cycle(rng.Intn(5))
			}
			ev := prefetch.Event{IP: ip, Line: line, Cycle: cycle, Hit: rng.Intn(5) == 0}
			indexed.Train(ev)
			linear.Train(ev)
			if rng.Intn(2) == 0 {
				oip := pool[rng.Intn(len(pool))]
				oline := mem.Line(rng.Intn(96))
				ref := cycle + mem.Cycle(rng.Intn(24))
				lat := mem.Cycle(rng.Intn(40))
				indexed.Observe(oip, oline, ref, lat)
				linear.observeLinearRef(oip, oline, ref, lat)
			}
		}
		if indexed.hist != linear.hist {
			t.Fatalf("seed %d: history columns diverged between indexed and linear paths", seed)
		}
		if indexed.table != linear.table {
			t.Fatalf("seed %d: delta tables diverged between indexed and linear paths", seed)
		}
		di, dl := indexed.StateDigest(), linear.StateDigest()
		if di != dl {
			t.Fatalf("seed %d: digest mismatch: indexed %#x linear %#x", seed, di, dl)
		}
	}
}

// TestHistChainsConsistent verifies the chain invariants after a long
// run: every live slot is on exactly the chain of its bucket, dead
// slots on none, and prev/next agree.
func TestHistChainsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := adversarialIPs(rng, 4, 12)
	p := New(prefetch.Issuer(nopIssue))
	for step := 0; step < 2000; step++ {
		p.Train(prefetch.Event{
			IP:    pool[rng.Intn(len(pool))],
			Line:  mem.Line(rng.Intn(64)),
			Cycle: mem.Cycle(step),
		})
	}
	seen := make(map[int]bool)
	for b := range p.histHead {
		prev := int16(-1)
		for n := p.histHead[b]; n >= 0; n = p.histNext[n] {
			i := int(n)
			if seen[i] {
				t.Fatalf("slot %d linked twice", i)
			}
			seen[i] = true
			if p.hist.tag[i] == 0 {
				t.Fatalf("dead slot %d on chain %d", i, b)
			}
			if histBucket(p.hist.tag[i]) != b {
				t.Fatalf("slot %d on wrong chain %d", i, b)
			}
			if p.histPrev[i] != prev {
				t.Fatalf("slot %d prev %d want %d", i, p.histPrev[i], prev)
			}
			prev = n
		}
	}
	for i := 0; i < historySize; i++ {
		if p.hist.tag[i] != 0 && !seen[i] {
			t.Fatalf("live slot %d not on any chain", i)
		}
	}
}

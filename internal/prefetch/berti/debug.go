package berti

import "fmt"

// DebugTable dumps the per-IP delta tables (diagnostics).
func (p *Prefetcher) DebugTable() []string {
	var out []string
	for i := range p.table {
		e := &p.table[i]
		if !e.valid || e.searches == 0 {
			continue
		}
		s := fmt.Sprintf("ip=%08x searches=%d:", e.ipHash, e.searches)
		for _, d := range e.deltas {
			if d.count > 0 {
				s += fmt.Sprintf(" %+d(%d,cov=%.2f)", d.delta, d.count, float64(d.count)/float64(e.searches))
			}
		}
		out = append(out, s)
	}
	return out
}

package ipstride

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func capture() (*[]mem.Line, prefetch.Issuer) {
	var out []mem.Line
	return &out, func(l mem.Line, _ mem.Addr, _ mem.Level) bool {
		out = append(out, l)
		return true
	}
}

func train(p *Prefetcher, ip mem.Addr, lines ...mem.Line) {
	for i, l := range lines {
		p.Train(prefetch.Event{Line: l, IP: ip, Cycle: mem.Cycle(i * 10)})
	}
}

func TestDetectsConstantStride(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	train(p, 0x400, 100, 103, 106, 109, 112)
	if len(*got) == 0 {
		t.Fatal("no prefetches for a constant stride")
	}
	// All targets lie on the stride lattice and the furthest reaches
	// beyond the trained stream.
	maxTarget := mem.Line(0)
	for _, l := range *got {
		if (uint64(l)-100)%3 != 0 {
			t.Errorf("off-stride prefetch target %d", l)
		}
		if l > maxTarget {
			maxTarget = l
		}
	}
	if maxTarget <= 112 {
		t.Errorf("no prefetch ahead of the stream (max target %d)", maxTarget)
	}
}

func TestIgnoresRandomPattern(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	train(p, 0x404, 500, 17, 923, 44, 8100, 3, 999, 123456, 42)
	if len(*got) != 0 {
		t.Errorf("issued %d prefetches on random addresses", len(*got))
	}
}

func TestNegativeStride(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	train(p, 0x408, 1000, 998, 996, 994, 992)
	if len(*got) == 0 {
		t.Fatal("no prefetches for a negative stride")
	}
	minTarget := mem.Line(1 << 62)
	for _, l := range *got {
		if l < minTarget {
			minTarget = l
		}
	}
	if minTarget >= 992 {
		t.Errorf("descending stream never prefetched below it (min target %d)", minTarget)
	}
}

func TestPerIPIsolation(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// Interleave two IPs with different strides; both must be learned.
	for i := 0; i < 8; i++ {
		p.Train(prefetch.Event{Line: mem.Line(100 + 2*i), IP: 0x500})
		p.Train(prefetch.Event{Line: mem.Line(9000 + 7*i), IP: 0x504})
	}
	var near, far int
	for _, l := range *got {
		if l < 5000 {
			near++
		} else {
			far++
		}
	}
	if near == 0 || far == 0 {
		t.Errorf("per-IP learning failed: near=%d far=%d", near, far)
	}
}

func TestDistanceClamping(t *testing.T) {
	p := New(func(mem.Line, mem.Addr, mem.Level) bool { return true })
	p.SetDistance(-3)
	if p.Distance() != p.BaseDistance() {
		t.Errorf("distance %d after clamping below base", p.Distance())
	}
	p.SetDistance(1000)
	if p.Distance() != p.MaxDistance() {
		t.Errorf("distance %d after clamping above max", p.Distance())
	}
}

func TestDistanceShiftsTargets(t *testing.T) {
	got1, issue1 := capture()
	p1 := New(issue1)
	train(p1, 0x600, 100, 101, 102, 103, 104)

	got2, issue2 := capture()
	p2 := New(issue2)
	p2.SetDistance(4)
	train(p2, 0x600, 100, 101, 102, 103, 104)

	max1, max2 := mem.Line(0), mem.Line(0)
	for _, l := range *got1 {
		if l > max1 {
			max1 = l
		}
	}
	for _, l := range *got2 {
		if l > max2 {
			max2 = l
		}
	}
	if max2 <= max1 {
		t.Errorf("larger distance should reach further: %d vs %d", max2, max1)
	}
}

func TestRegistered(t *testing.T) {
	pf, err := prefetch.New("ip-stride", func(mem.Line, mem.Addr, mem.Level) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if pf.Name() != "ip-stride" || pf.Home() != mem.LvlL1D {
		t.Errorf("registration wrong: %s at %v", pf.Name(), pf.Home())
	}
	if pf.StorageBytes() != 8*1024 {
		t.Errorf("storage = %d, want 8 KB (Table III)", pf.StorageBytes())
	}
}

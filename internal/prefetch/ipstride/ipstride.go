// Package ipstride implements the classic IP-stride data prefetcher
// used by Intel and AMD L1D caches (Table III: 1024 entries, 8 KB): a
// per-IP table tracking the last accessed line and the observed stride
// with a saturating confidence counter. Once the stride is confirmed,
// it prefetches degree lines ahead, starting distance strides beyond
// the current access — the distance is the knob the paper's
// timely-secure variant (TS-stride) adapts to prefetch lateness.
package ipstride

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

const (
	tableSize = 1024
	degree    = 3
	confMax   = 3
	confThres = 2

	baseDistance = 1
	maxDistance  = 8
)

// The unsigned % (or mask) indexing over this table is a shift-and-
// mask only while the size stays a power of two; this compile-time
// assert (negative array length otherwise) pins that.
type _ [1 - 2*(tableSize&(tableSize-1))]byte

type entry struct {
	tag    uint32
	last   mem.Line
	stride int64
	conf   int8
	valid  bool
}

// Prefetcher is the IP-stride engine.
type Prefetcher struct {
	table    [tableSize]entry
	issue    prefetch.Issuer
	distance int
}

func init() {
	prefetch.Register("ip-stride", func(issue prefetch.Issuer) prefetch.Prefetcher {
		return New(issue)
	})
}

// New builds an IP-stride prefetcher.
func New(issue prefetch.Issuer) *Prefetcher {
	return &Prefetcher{issue: issue, distance: baseDistance}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ip-stride" }

// Home implements prefetch.Prefetcher: IP-stride is an L1D prefetcher.
func (p *Prefetcher) Home() mem.Level { return mem.LvlL1D }

// StorageBytes implements prefetch.Prefetcher (Table III: 8 KB).
func (p *Prefetcher) StorageBytes() int { return 8 * 1024 }

// Distance implements prefetch.DistanceTunable.
func (p *Prefetcher) Distance() int { return p.distance }

// SetDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) SetDistance(d int) {
	if d < baseDistance {
		d = baseDistance
	}
	if d > maxDistance {
		d = maxDistance
	}
	p.distance = d
}

// BaseDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) BaseDistance() int { return baseDistance }

// MaxDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) MaxDistance() int { return maxDistance }

func slotOf(ip mem.Addr) (int, uint32) {
	h := uint64(ip) >> 2
	h *= 0x9e3779b97f4a7c15
	return int(h % tableSize), uint32(h >> 40)
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) {
	idx, tag := slotOf(ev.IP)
	e := &p.table[idx]
	if !e.valid || e.tag != tag {
		*e = entry{tag: tag, last: ev.Line, valid: true}
		return
	}
	delta := int64(ev.Line) - int64(e.last)
	if delta == 0 {
		return
	}
	if delta == e.stride {
		if e.conf < confMax {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = delta
		}
	}
	e.last = ev.Line
	if e.conf >= confThres && e.stride != 0 {
		for d := 0; d < degree; d++ {
			target := mem.Line(int64(ev.Line) + e.stride*int64(p.distance+d))
			p.issue(target, ev.IP, mem.LvlL1D)
		}
	}
}

// Fill implements prefetch.Prefetcher (IP-stride is not self-timing).
func (p *Prefetcher) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

package ipcp

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func capture() (*[]mem.Line, prefetch.Issuer) {
	var out []mem.Line
	return &out, func(l mem.Line, _ mem.Addr, _ mem.Level) bool {
		out = append(out, l)
		return true
	}
}

func TestConstantStrideClass(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	for i := 0; i < 10; i++ {
		p.Train(prefetch.Event{Line: mem.Line(1000 + 5*i), IP: 0x400})
	}
	if len(*got) == 0 {
		t.Fatal("CS class issued nothing")
	}
	for _, l := range *got {
		if (uint64(l)-1000)%5 != 0 {
			t.Errorf("off-stride CS target %d", l)
		}
	}
}

func TestComplexStridePattern(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// Repeating stride pattern +1,+2,+3 — not constant, but signature-
	// predictable (the CPLX class).
	line := mem.Line(5000)
	deltas := []int64{1, 2, 3}
	for i := 0; i < 40; i++ {
		p.Train(prefetch.Event{Line: line, IP: 0x404})
		line = mem.Line(int64(line) + deltas[i%3])
	}
	if len(*got) == 0 {
		t.Fatal("CPLX class issued nothing for a repeating delta pattern")
	}
}

func TestGlobalStreamDenseRegion(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	// Touch 28 of 32 lines in one region (from distinct IPs so CS/CPLX
	// do not dominate): the region becomes dense and GS engages.
	base := mem.Line(32 * 100)
	for i := 0; i < 28; i++ {
		p.Train(prefetch.Event{Line: base + mem.Line(i), IP: mem.Addr(0x500 + 8*i)})
	}
	// One more access from a now-classified-GS IP.
	before := len(*got)
	p.Train(prefetch.Event{Line: base + mem.Line(28), IP: 0x500})
	p.Train(prefetch.Event{Line: base + mem.Line(29), IP: 0x500})
	if len(*got) <= before {
		t.Error("dense region did not trigger GS prefetching")
	}
}

func TestRandomQuiet(t *testing.T) {
	got, issue := capture()
	p := New(issue)
	rng := uint64(99)
	for i := 0; i < 300; i++ {
		rng = rng*6364136223846793005 + 1
		p.Train(prefetch.Event{Line: mem.Line(rng % (1 << 30)), IP: 0x600})
	}
	if len(*got) > 150 {
		t.Errorf("%d prefetches on random stream", len(*got))
	}
}

func TestDistanceTunable(t *testing.T) {
	p := New(func(mem.Line, mem.Addr, mem.Level) bool { return true })
	var dt prefetch.DistanceTunable = p
	dt.SetDistance(100)
	if dt.Distance() != dt.MaxDistance() {
		t.Errorf("distance clamp failed: %d", dt.Distance())
	}
}

func TestRegistered(t *testing.T) {
	pf, err := prefetch.New("ipcp", func(mem.Line, mem.Addr, mem.Level) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if pf.Home() != mem.LvlL1D {
		t.Errorf("IPCP home = %v, want L1D", pf.Home())
	}
	if kb := float64(pf.StorageBytes()) / 1024; kb < 0.8 || kb > 1.0 {
		t.Errorf("storage %.2f KB, want ~0.87 KB (Table III)", kb)
	}
}

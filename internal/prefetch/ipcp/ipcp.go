// Package ipcp implements IPCP — the "Bouquet of Instruction Pointers"
// classifier-based spatial prefetcher (Pakalapati & Panda, ISCA 2020;
// winner of DPC-3), configured per the paper's Table III: a 128-entry
// IP table, an 8-entry region stream table (RST), and a 128-entry
// complex-stride pattern table (CSPT), ~0.87 KB total.
//
// Each load IP is classified into one of three classes and prefetched
// with a class-specific engine:
//
//   - CS (constant stride): saturating per-IP stride confidence.
//   - CPLX (complex stride): a signature of recent strides indexes the
//     CSPT, which predicts the next stride; issuing walks the
//     signature chain.
//   - GS (global stream): dense regions detected by the RST trigger
//     aggressive sequential prefetching in the stream direction.
package ipcp

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

const (
	ipTableSize = 128
	csptSize    = 128
	rstSize     = 8

	regionLines = 32 // 2 KB regions

	csDegree   = 4
	cplxDegree = 3
	gsDegree   = 6

	confMax = 3

	baseDistance = 1
	maxDistance  = 6
)

// The unsigned % (or mask) indexing over this table is a shift-and-
// mask only while the size stays a power of two; this compile-time
// assert (negative array length otherwise) pins that.
type _ [1 - 2*(ipTableSize&(ipTableSize-1))]byte

type class uint8

const (
	classNone class = iota
	classCS
	classCPLX
	classGS
)

type ipEntry struct {
	valid  bool
	tag    uint16
	last   mem.Line
	stride int32
	conf   int8
	sig    uint8 // compressed recent-stride signature (CPLX)
	cls    class
}

type csptEntry struct {
	stride int32
	conf   int8
}

type rstEntry struct {
	valid  bool
	region mem.Line // region id (line >> 5)
	bitmap uint32
	dir    int8 // +1 ascending, -1 descending
	last   mem.Line
	dense  bool
	lru    uint32
}

// Prefetcher is the IPCP engine.
type Prefetcher struct {
	ips      [ipTableSize]ipEntry
	cspt     [csptSize]csptEntry
	rst      [rstSize]rstEntry
	rstClock uint32
	issue    prefetch.Issuer
	distance int
}

func init() {
	prefetch.Register("ipcp", func(issue prefetch.Issuer) prefetch.Prefetcher {
		return New(issue)
	})
}

// New builds an IPCP prefetcher.
func New(issue prefetch.Issuer) *Prefetcher {
	return &Prefetcher{issue: issue, distance: baseDistance}
}

// Name implements prefetch.Prefetcher.
func (p *Prefetcher) Name() string { return "ipcp" }

// Home implements prefetch.Prefetcher: IPCP is an L1D prefetcher.
func (p *Prefetcher) Home() mem.Level { return mem.LvlL1D }

// StorageBytes implements prefetch.Prefetcher (Table III: 0.87 KB).
func (p *Prefetcher) StorageBytes() int { return 891 }

// Distance implements prefetch.DistanceTunable.
func (p *Prefetcher) Distance() int { return p.distance }

// SetDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) SetDistance(d int) {
	if d < baseDistance {
		d = baseDistance
	}
	if d > maxDistance {
		d = maxDistance
	}
	p.distance = d
}

// BaseDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) BaseDistance() int { return baseDistance }

// MaxDistance implements prefetch.DistanceTunable.
func (p *Prefetcher) MaxDistance() int { return maxDistance }

func ipSlot(ip mem.Addr) (int, uint16) {
	h := uint64(ip) >> 2
	h *= 0xff51afd7ed558ccd
	return int(h % ipTableSize), uint16(h >> 48)
}

func sigUpdate(sig uint8, stride int32) uint8 {
	return (sig<<2 ^ uint8(stride)) & (csptSize - 1)
}

// Train implements prefetch.Prefetcher.
func (p *Prefetcher) Train(ev prefetch.Event) {
	p.trainRST(ev.Line)

	idx, tag := ipSlot(ev.IP)
	e := &p.ips[idx]
	if !e.valid || e.tag != tag {
		*e = ipEntry{valid: true, tag: tag, last: ev.Line}
		return
	}
	delta := int32(int64(ev.Line) - int64(e.last))
	if delta == 0 {
		return
	}

	// CS learning.
	if delta == e.stride {
		if e.conf < confMax {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		} else {
			e.stride = delta
		}
	}

	// CPLX learning: the previous signature predicted this delta.
	ce := &p.cspt[e.sig]
	if ce.stride == delta {
		if ce.conf < confMax {
			ce.conf++
		}
	} else {
		if ce.conf > 0 {
			ce.conf--
		} else {
			ce.stride = delta
		}
	}
	prevSig := e.sig
	e.sig = sigUpdate(e.sig, delta)
	e.last = ev.Line

	// Classification priority (per IPCP): GS > CS > CPLX.
	switch {
	case p.inDenseRegion(ev.Line):
		e.cls = classGS
	case e.conf >= 2:
		e.cls = classCS
	case p.cspt[prevSig].conf >= 2:
		e.cls = classCPLX
	default:
		e.cls = classNone
	}

	p.issueFor(e, ev)
}

func (p *Prefetcher) issueFor(e *ipEntry, ev prefetch.Event) {
	switch e.cls {
	case classCS:
		fill := mem.LvlL1D
		if e.conf < confMax {
			fill = mem.LvlL2
		}
		for d := 0; d < csDegree; d++ {
			t := mem.Line(int64(ev.Line) + int64(e.stride)*int64(p.distance+d))
			p.issue(t, ev.IP, fill)
		}
	case classCPLX:
		sig := e.sig
		cur := int64(ev.Line)
		for d := 0; d < cplxDegree*p.distance; d++ {
			ce := p.cspt[sig]
			if ce.conf < 2 || ce.stride == 0 {
				break
			}
			cur += int64(ce.stride)
			p.issue(mem.Line(cur), ev.IP, mem.LvlL2)
			sig = sigUpdate(sig, ce.stride)
		}
	case classGS:
		dir := p.streamDir(ev.Line)
		for d := 1; d <= gsDegree; d++ {
			t := mem.Line(int64(ev.Line) + int64(dir)*int64(p.distance-1+d))
			p.issue(t, ev.IP, mem.LvlL1D)
		}
	}
}

// trainRST updates region density tracking.
func (p *Prefetcher) trainRST(line mem.Line) {
	region := line >> 5
	bit := uint32(1) << (uint64(line) & (regionLines - 1))
	p.rstClock++
	var slot *rstEntry
	for i := range p.rst {
		if p.rst[i].valid && p.rst[i].region == region {
			slot = &p.rst[i]
			break
		}
	}
	if slot == nil {
		// Allocate LRU.
		slot = &p.rst[0]
		for i := range p.rst {
			if !p.rst[i].valid {
				slot = &p.rst[i]
				break
			}
			if p.rst[i].lru < slot.lru {
				slot = &p.rst[i]
			}
		}
		*slot = rstEntry{valid: true, region: region, last: line}
	}
	if line > slot.last {
		slot.dir = 1
	} else if line < slot.last {
		slot.dir = -1
	}
	slot.last = line
	slot.bitmap |= bit
	slot.lru = p.rstClock
	// Dense when 3/4 of the region has been touched.
	if popcount(slot.bitmap) >= regionLines*3/4 {
		slot.dense = true
	}
}

func (p *Prefetcher) inDenseRegion(line mem.Line) bool {
	region := line >> 5
	for i := range p.rst {
		if p.rst[i].valid && p.rst[i].region == region {
			return p.rst[i].dense
		}
	}
	return false
}

func (p *Prefetcher) streamDir(line mem.Line) int8 {
	region := line >> 5
	for i := range p.rst {
		if p.rst[i].valid && p.rst[i].region == region && p.rst[i].dir != 0 {
			return p.rst[i].dir
		}
	}
	return 1
}

func popcount(x uint32) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Fill implements prefetch.Prefetcher (IPCP is not self-timing).
func (p *Prefetcher) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

// Package prefetch defines the hardware-prefetcher framework: the
// training-event model, the issue interface, and registration of the
// five prefetchers evaluated by the paper (IP-stride, IPCP, Bingo,
// SPP+PPF, Berti) plus their timely-secure variants.
//
// A prefetcher does not know whether it is being trained on-access or
// on-commit: the simulator decides which event stream (speculative
// accesses vs. committed loads) feeds Train. This mirrors the paper's
// framing, where the same predictor is moved between pipeline stages.
package prefetch

import (
	"fmt"
	"sort"

	"secpref/internal/mem"
)

// Event is one training observation at the prefetcher's home level.
type Event struct {
	Line mem.Line
	IP   mem.Addr
	// Hit reports whether the access hit at the home level.
	Hit bool
	// HitPrefetched marks a demand hit on a prefetched line;
	// PrefFetchLat is the recorded fill latency of that line (stored
	// alongside the L1D line, as Berti requires).
	HitPrefetched bool
	PrefFetchLat  mem.Cycle
	// Cycle is the training time. For on-commit training of TSB this is
	// the commit cycle, while AccessCycle preserves the original access
	// time and FetchLat the measured fetch latency to the GM (the X-LQ
	// contents). For plain on-access training AccessCycle == Cycle.
	Cycle       mem.Cycle
	AccessCycle mem.Cycle
	FetchLat    mem.Cycle
}

// Issuer sends a prefetch request for line into the hierarchy, filling
// at fill (home level or deeper). It returns false when the prefetch
// was rejected (queue full) — prefetchers may retry or drop.
type Issuer func(line mem.Line, ip mem.Addr, fill mem.Level) bool

// Prefetcher is the common interface of all modeled prefetchers.
type Prefetcher interface {
	// Name identifies the prefetcher ("berti", "ipcp", ...).
	Name() string
	// Home is the cache level the prefetcher trains at and issues from:
	// L1D for IP-stride, IPCP, and Berti; L2 for Bingo and SPP+PPF.
	Home() mem.Level
	// Train observes one demand access (or committed load).
	Train(ev Event)
	// Fill observes a line install at the home level; self-timing
	// prefetchers measure fetch latency from it.
	Fill(line mem.Line, lat mem.Cycle, wasPrefetch bool, now mem.Cycle)
	// StorageBytes reports the hardware budget (Table III).
	StorageBytes() int
}

// DistanceTunable is implemented by prefetchers whose lookahead
// distance the timely-secure machinery can adjust (IP-stride, IPCP,
// Bingo, SPP+PPF — §V-D).
type DistanceTunable interface {
	Prefetcher
	// Distance returns the current prefetch distance.
	Distance() int
	// SetDistance sets it, clamped to [base, max].
	SetDistance(d int)
	// BaseDistance and MaxDistance bound the adaptation.
	BaseDistance() int
	MaxDistance() int
}

// Factory builds a prefetcher bound to an issuer.
type Factory func(issue Issuer) Prefetcher

var factories = map[string]Factory{}

// Register installs a prefetcher factory under name. Prefetcher
// packages call it from init.
func Register(name string, f Factory) {
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("prefetch: duplicate registration of %q", name))
	}
	factories[name] = f
}

// New builds the named prefetcher, or an error listing known names.
func New(name string, issue Issuer) (Prefetcher, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("prefetch: unknown prefetcher %q (known: %v)", name, Names())
	}
	return f(issue), nil
}

// Names returns the registered prefetcher names, sorted.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// None is the no-prefetching placeholder.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// Home implements Prefetcher.
func (None) Home() mem.Level { return mem.LvlL1D }

// Train implements Prefetcher.
func (None) Train(Event) {}

// Fill implements Prefetcher.
func (None) Fill(mem.Line, mem.Cycle, bool, mem.Cycle) {}

// StorageBytes implements Prefetcher.
func (None) StorageBytes() int { return 0 }

package multicore_test

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"secpref/internal/interference"
	"secpref/internal/mem"
	"secpref/internal/multicore"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/sim"
)

// obsProbes arms the full observer complement: the interference
// observatory, per-core window samplers, and a shared-domain tracer.
func obsProbes(cores int) (multicore.Probes, []*probe.IntervalSampler) {
	samplers := make([]*probe.IntervalSampler, cores)
	windows := make([]probe.WindowObserver, cores)
	for i := range samplers {
		samplers[i] = probe.NewIntervalSampler(16)
		windows[i] = samplers[i]
	}
	return multicore.Probes{
		Interference:       true,
		InterferenceWindow: 4096,
		Windows:            windows,
		WindowInstrs:       500,
		SharedObserver:     probe.NewTracer(4, 1024),
	}, samplers
}

// contendedConfig is detConfig with the LLC shrunk far enough that the
// short determinism run actually generates cross-core evictions — the
// stock 2 MB LLC never evicts in 2k instructions, leaving the matrix
// empty and the gate vacuous.
func contendedConfig() multicore.Config {
	cfg := detConfig()
	cfg.Single.LLC.SizeKiB = 8
	return cfg
}

// matrixWitness reduces a snapshot to the deterministic part: the
// attribution matrix and per-core aggregates. The windowed timeline is
// deliberately excluded — it is barrier-quantized, so different
// intervals legitimately sample different cycles.
type matrixWitness struct {
	Cells   []interference.CellRow
	PerCore []interference.CoreRow
}

func witness(s *interference.Snapshot) matrixWitness {
	return matrixWitness{Cells: s.Cells, PerCore: s.PerCore}
}

// TestObserversPreserveBitIdentity is the satellite equivalence gate:
// attaching the interference observatory, per-core samplers, and a
// shared tracer must leave the digest stream and every per-core result
// bit-identical to the observers-off run and to the lockstep reference
// with the same observers.
func TestObserversPreserveBitIdentity(t *testing.T) {
	cfg := detConfig()

	recPlain := observatory.NewRecorder()
	plain, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{
		Digest: recPlain, DigestEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}

	pObs, parSamplers := obsProbes(cfg.Cores)
	pObs.Digest, pObs.DigestEvery = observatory.NewRecorder(), 512
	recObs := pObs.Digest.(*observatory.Recorder)
	obs, err := multicore.RunProbed(cfg, detMix(t), pObs)
	if err != nil {
		t.Fatal(err)
	}

	rObs, refSamplers := obsProbes(cfg.Cores)
	rObs.ReferenceEngine = true
	rObs.Digest, rObs.DigestEvery = observatory.NewRecorder(), 512
	recRef := rObs.Digest.(*observatory.Recorder)
	ref, err := multicore.RunProbed(cfg, detMix(t), rObs)
	if err != nil {
		t.Fatal(err)
	}

	if d, bad := observatory.FirstDivergence(recPlain, recObs); bad {
		t.Fatalf("observers changed the digest stream: %s", d)
	}
	if d, bad := observatory.FirstDivergence(recObs, recRef); bad {
		t.Fatalf("observed parallel vs observed reference diverge: %s", d)
	}
	if !reflect.DeepEqual(fp(plain), fp(obs)) {
		t.Fatalf("observers changed results:\nplain %+v\nobs   %+v", fp(plain), fp(obs))
	}
	if !reflect.DeepEqual(fp(obs), fp(ref)) {
		t.Fatalf("engines diverge with observers attached")
	}

	if plain.Interference != nil {
		t.Fatal("observers-off run grew an interference snapshot")
	}
	if obs.Interference == nil || ref.Interference == nil {
		t.Fatal("observed runs missing interference snapshots")
	}
	if !reflect.DeepEqual(witness(obs.Interference), witness(ref.Interference)) {
		t.Fatal("interference matrix differs between engines")
	}

	// Per-core window series must be engine-invariant too: the crossing
	// cycle of every instruction-count boundary is identical.
	for i := range parSamplers {
		ps, rs := parSamplers[i].Samples(), refSamplers[i].Samples()
		if !reflect.DeepEqual(ps, rs) {
			t.Fatalf("core %d window series differ between engines", i)
		}
		if len(ps) == 0 {
			t.Fatalf("core %d produced no window samples", i)
		}
		for _, sm := range ps {
			if sm.Core != i {
				t.Fatalf("core %d sample stamped core %d", i, sm.Core)
			}
		}
	}
}

// TestInterferenceMatrixDeterminism asserts the acceptance criterion:
// the matrix (and per-core aggregates) are bit-identical across
// GOMAXPROCS {1,2,8} × workers {1,2,8} × barrier intervals, with the
// observatory attached.
func TestInterferenceMatrixDeterminism(t *testing.T) {
	cfg := contendedConfig()
	base, _ := obsProbes(cfg.Cores)
	base.Workers = 1
	baseline, err := multicore.RunProbed(cfg, detMix(t), base)
	if err != nil {
		t.Fatal(err)
	}
	want := witness(baseline.Interference)
	wantFP := fp(baseline)
	if total := func() uint64 {
		var n uint64
		for _, c := range want.Cells {
			n += c.Total()
		}
		return n
	}(); total == 0 {
		t.Fatal("matrix empty — run too short to exercise the gate")
	}

	bound := sim.DefaultLinkLatency
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 8} {
			for _, interval := range []mem.Cycle{1, bound} {
				p, _ := obsProbes(cfg.Cores)
				p.Workers, p.Interval = workers, interval
				got, err := multicore.RunProbed(cfg, detMix(t), p)
				if err != nil {
					t.Fatalf("procs=%d workers=%d interval=%d: %v", procs, workers, interval, err)
				}
				if !reflect.DeepEqual(want, witness(got.Interference)) {
					t.Fatalf("procs=%d workers=%d interval=%d: matrix diverged", procs, workers, interval)
				}
				if !reflect.DeepEqual(wantFP, fp(got)) {
					t.Fatalf("procs=%d workers=%d interval=%d: results diverged", procs, workers, interval)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestCampaignMetricsExposeInterference runs a multicore mix under a
// campaign, hangs the observatory off the campaign's /metrics handler,
// and asserts the exposition carries the full per-core label
// cardinality plus the engine-version stamp — the satellite gate for
// probe.PrometheusWriter composition.
func TestCampaignMetricsExposeInterference(t *testing.T) {
	cfg := contendedConfig()
	// No warmup: the per-core label assertions below need every core to
	// show link traffic, and a warmed-up L2 can absorb a core's whole
	// (short) measured phase.
	cfg.Single.WarmupInstrs = 0
	p, _ := obsProbes(cfg.Cores)
	eng, err := multicore.NewEngine(cfg, detMix(t), p)
	if err != nil {
		t.Fatal(err)
	}

	c := probe.NewCampaign(1)
	c.ExperimentStarted("consolidation-interference")
	c.RunStarted()
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	c.RunDone(res.PerCore[0].Instructions, res.Cycles)
	c.ExperimentDone()

	h := probe.NewHandler(c, eng.Interference())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics: code %d", rec.Code)
	}
	body := rec.Body.String()

	// Campaign counters and observatory series share one exposition.
	if !strings.Contains(body, "secpref_runs_completed_total 1") {
		t.Error("campaign counters missing from /metrics")
	}
	if want := fmt.Sprintf("secpref_interference_engine_info{version=%q} 1", sim.EngineVersion); !strings.Contains(body, want) {
		t.Errorf("/metrics missing engine stamp %q", want)
	}
	for core := 0; core < cfg.Cores; core++ {
		for _, metric := range []string{
			"secpref_interference_occupancy_lines",
			"secpref_interference_dram_reads_total",
		} {
			if want := fmt.Sprintf("%s{core=\"%d\"}", metric, core); !strings.Contains(body, want) {
				t.Errorf("/metrics missing %s", want)
			}
		}
		// Class labels are emitted only when non-zero (a secure core's
		// LLC traffic may be all SUF-class), so require any class here.
		if want := fmt.Sprintf("secpref_interference_link_requests_total{core=\"%d\",class=", core); !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s...}", want)
		}
	}
	if !strings.Contains(body, "secpref_interference_evictions_total{aggressor=") {
		t.Error("/metrics missing the eviction matrix")
	}
}

// TestInterferenceAccounting sanity-checks the snapshot against the
// simulation's own counters: occupancy never exceeds capacity, and the
// matrix total matches the shared LLC's eviction count (tracker
// attached from cycle zero sees every install, so no eviction is
// unattributable; the measured-phase reset makes the comparison
// approximate, so run without warmup).
func TestInterferenceAccounting(t *testing.T) {
	cfg := detConfig()
	cfg.Single.WarmupInstrs = 0
	p, _ := obsProbes(cfg.Cores)
	res, err := multicore.RunProbed(cfg, detMix(t), p)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Interference
	capacity := uint64(s.Sets * s.Ways)
	var occ uint64
	for _, c := range s.PerCore {
		occ += c.OccLines
		if c.OccShare < 0 || c.OccShare > 1 {
			t.Fatalf("core %d occupancy share %f out of range", c.Core, c.OccShare)
		}
	}
	if occ > capacity {
		t.Fatalf("total occupancy %d exceeds LLC capacity %d", occ, capacity)
	}
	var link uint64
	for _, c := range s.PerCore {
		for _, v := range c.Link {
			link += v
		}
	}
	if link == 0 {
		t.Fatal("no link traffic recorded")
	}
	var dram uint64
	for _, c := range s.PerCore {
		dram += c.DRAMReads + c.DRAMWrites
	}
	if dram == 0 {
		t.Fatal("no per-core DRAM activity recorded")
	}
}

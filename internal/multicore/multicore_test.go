package multicore_test

import (
	"testing"

	"secpref/internal/multicore"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

func mixSources(t *testing.T, names []string, n int) []trace.Source {
	t.Helper()
	out := make([]trace.Source, len(names))
	for i, name := range names {
		tr, err := workload.Get(name, workload.Params{Instrs: n, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = trace.NewSource(tr)
	}
	return out
}

func TestFourCoreMixRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := multicore.DefaultConfig()
	cfg.Single.WarmupInstrs = 1000
	cfg.Single.MaxInstrs = 10_000
	cfg.Single.Secure = true
	cfg.Single.SUF = true
	cfg.Single.Prefetcher = "berti"
	cfg.Single.Mode = sim.ModeTimelySecure
	names := []string{"605.mcf-1554B", "603.bwa-2931B", "619.lbm-2676B", "602.gcc-1850B"}
	res, err := multicore.Run(cfg, mixSources(t, names, 12_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 4 {
		t.Fatalf("got %d per-core results", len(res.PerCore))
	}
	for i, rc := range res.PerCore {
		if rc.Instructions < 10_000 {
			t.Errorf("core %d retired only %d instructions", i, rc.Instructions)
		}
		if rc.IPC <= 0 {
			t.Errorf("core %d IPC %f", i, rc.IPC)
		}
		t.Logf("core %d (%s): IPC=%.3f", i, names[i], rc.IPC)
	}
}

func TestMixSizeMismatch(t *testing.T) {
	cfg := multicore.DefaultConfig()
	_, err := multicore.Run(cfg, nil)
	if err == nil {
		t.Fatal("expected mix-size error")
	}
}

func TestWeightedSpeedup(t *testing.T) {
	r := &multicore.Result{PerCore: []*sim.Result{{IPC: 1}, {IPC: 2}}}
	ws, err := r.WeightedSpeedup([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if ws != 1.5 {
		t.Errorf("weighted speedup = %v, want 1.5", ws)
	}
	if _, err := r.WeightedSpeedup([]float64{1}); err == nil {
		t.Error("expected size-mismatch error")
	}
	if _, err := r.WeightedSpeedup([]float64{0, 1}); err == nil {
		t.Error("expected non-positive baseline error")
	}
}

package multicore_test

import (
	"errors"
	"reflect"
	"runtime"
	"testing"

	"secpref/internal/mem"
	"secpref/internal/multicore"
	"secpref/internal/observatory"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// detTraces is the quick-campaign 4-core mix; mcf (core 0) is the
// LLC-heavy one the wedge test black-holes.
var detTraces = []string{"605.mcf-1554B", "603.bwa-2931B", "619.lbm-2676B", "602.gcc-1850B"}

func detConfig() multicore.Config {
	cfg := multicore.DefaultConfig()
	cfg.Single.WarmupInstrs = 400
	cfg.Single.MaxInstrs = 2000
	cfg.Single.Secure = true
	cfg.Single.SUF = true
	cfg.Single.Prefetcher = "berti"
	cfg.Single.Mode = sim.ModeTimelySecure
	cfg.Seed = 7
	return cfg
}

func detMix(t *testing.T) []trace.Source {
	t.Helper()
	mix := make([]trace.Source, len(detTraces))
	for i, n := range detTraces {
		tr, err := workload.Get(n, workload.Params{Instrs: 3000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		mix[i] = trace.NewSource(tr)
	}
	return mix
}

// fingerprint reduces a Result to the comparable determinism witness.
type fingerprint struct {
	Cycles  uint64
	Digests []uint64
	Instrs  []uint64
	IPC     []float64
}

func fp(r *multicore.Result) fingerprint {
	f := fingerprint{Cycles: r.Cycles, Digests: r.FinalDigests}
	for _, rc := range r.PerCore {
		f.Instrs = append(f.Instrs, rc.Instructions)
		f.IPC = append(f.IPC, rc.IPC)
	}
	return f
}

// TestParallelMatchesReference is the bit-identity gate: the parallel
// engine and the serial lockstep reference must agree on the full
// digest stream, the final state digests, and every per-core result.
func TestParallelMatchesReference(t *testing.T) {
	cfg := detConfig()
	recRef, recPar := observatory.NewRecorder(), observatory.NewRecorder()
	ref, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{
		ReferenceEngine: true, Digest: recRef, DigestEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{
		Digest: recPar, DigestEvery: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, bad := observatory.FirstDivergence(recRef, recPar); bad {
		t.Fatalf("digest streams diverge: %s", d)
	}
	if recRef.Len() == 0 {
		t.Fatal("digest stream empty — run too short to exercise the gate")
	}
	if !reflect.DeepEqual(fp(ref), fp(par)) {
		t.Fatalf("results diverge:\nref %+v\npar %+v", fp(ref), fp(par))
	}
}

// TestDeterminismAcrossSchedules asserts bit-identical results across
// worker counts, GOMAXPROCS values, barrier intervals within the
// safety bound, and repeated runs.
func TestDeterminismAcrossSchedules(t *testing.T) {
	cfg := detConfig()
	base, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := fp(base)
	bound := sim.DefaultLinkLatency

	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 8} {
			for _, interval := range []mem.Cycle{1, bound} {
				got, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{
					Workers: workers, Interval: interval,
				})
				if err != nil {
					t.Fatalf("procs=%d workers=%d interval=%d: %v", procs, workers, interval, err)
				}
				if !reflect.DeepEqual(want, fp(got)) {
					t.Fatalf("procs=%d workers=%d interval=%d diverged from baseline", procs, workers, interval)
				}
			}
		}
		runtime.GOMAXPROCS(prev)
	}

	// Repetition with identical parameters.
	again, err := multicore.RunProbed(cfg, detMix(t), multicore.Probes{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, fp(again)) {
		t.Fatal("repeated run diverged")
	}
}

// TestIntervalAboveBoundRejected: the safety bound is enforced, not
// advisory.
func TestIntervalAboveBoundRejected(t *testing.T) {
	cfg := detConfig()
	_, err := multicore.NewEngine(cfg, detMix(t), multicore.Probes{
		Interval: sim.DefaultLinkLatency + 1,
	})
	if err == nil {
		t.Fatal("interval above the safety bound was accepted")
	}
}

// TestBisectAcrossEngines drives observatory.Bisect over a
// (parallel, reference) engine pair. Equivalent engines must scan to
// completion with no divergence; a pair that genuinely differs (here:
// different link latencies) must bisect to a concrete coordinate.
func TestBisectAcrossEngines(t *testing.T) {
	cfg := detConfig()
	fresh := func() (observatory.DigestEngine, observatory.DigestEngine, error) {
		par, err := multicore.NewEngine(cfg, detMix(t), multicore.Probes{})
		if err != nil {
			return nil, nil, err
		}
		ref, err := multicore.NewEngine(cfg, detMix(t), multicore.Probes{ReferenceEngine: true})
		if err != nil {
			return nil, nil, err
		}
		return par, ref, nil
	}
	div, err := observatory.Bisect(fresh, observatory.BisectOptions{Step: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("equivalent engines reported divergent: %s", div)
	}

	slow := cfg
	slow.LinkLatency = sim.DefaultLinkLatency / 2
	mismatched := func() (observatory.DigestEngine, observatory.DigestEngine, error) {
		a, err := multicore.NewEngine(cfg, detMix(t), multicore.Probes{})
		if err != nil {
			return nil, nil, err
		}
		b, err := multicore.NewEngine(slow, detMix(t), multicore.Probes{})
		if err != nil {
			return nil, nil, err
		}
		return a, b, nil
	}
	div, err = observatory.Bisect(mismatched, observatory.BisectOptions{Step: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("mismatched link latencies were not detected")
	}
}

// TestBlackHoledCoreWedges: dropping one core's LLC traffic must yield
// a deterministic ErrNoProgress on both engines and at both interval
// extremes — the per-core wedge detector cannot be masked by the other
// cores' continued progress.
func TestBlackHoledCoreWedges(t *testing.T) {
	cfg := detConfig()
	for _, tc := range []struct {
		name   string
		probes multicore.Probes
	}{
		{"parallel-bound", multicore.Probes{}},
		{"parallel-interval1", multicore.Probes{Interval: 1}},
		{"reference", multicore.Probes{ReferenceEngine: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := multicore.NewEngine(cfg, detMix(t), tc.probes)
			if err != nil {
				t.Fatal(err)
			}
			e.BlackHoleCore(0)
			if _, err := e.Run(); !errors.Is(err, sim.ErrNoProgress) {
				t.Fatalf("want ErrNoProgress, got %v", err)
			}
		})
	}
}

package multicore_test

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// TestDebugMulticoreWedge reproduces a wedged 4-core run with state
// dumps (diagnostic harness). It drives the sharded system's lockstep
// reference path by hand so every private queue is inspectable at the
// wedge cycle.
func TestDebugMulticoreWedge(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 10_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeTimelySecure
	names := []string{"605.mcf-1554B", "603.bwa-2931B", "619.lbm-2676B", "602.gcc-1850B"}
	mix := make([]trace.Source, 4)
	for i, n := range names {
		tr, err := workload.Get(n, workload.Params{Instrs: 12_000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		mix[i] = trace.NewSource(tr)
	}
	sys, err := sim.BuildSharded(cfg, 4, mix, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	llc := sys.Shared.LLC()
	var now mem.Cycle
	var lastSum uint64
	lastProgress := now
	for {
		now++
		for _, m := range sys.Cores {
			m.StepCore(now)
		}
		sys.Shared.LockstepCycle(now)
		var sum uint64
		allDone := true
		for _, m := range sys.Cores {
			sum += m.Instructions()
			if m.Instructions() < 11_000 {
				allDone = false
			}
		}
		if allDone {
			t.Logf("completed at cycle %d", now)
			return
		}
		if sum != lastSum {
			lastSum = sum
			lastProgress = now
		} else if now-lastProgress > 200_000 {
			t.Logf("WEDGED at cycle %d", now)
			for i, m := range sys.Cores {
				t.Logf("core %d: instrs=%d %s", i, m.Instructions(), m.CoreDebug())
				t.Logf("  L1D wq=%d pq=%d fills=%d mshrFree=%d fwd=%d | L2 wq=%d fills=%d mshrFree=%d",
					m.L1DDebug().DebugWQ(), m.L1DDebug().DebugPQ(), m.L1DDebug().DebugFills(), m.L1DDebug().MSHRFree(), m.L1DDebug().DebugFwd(),
					m.L2Debug().DebugWQ(), m.L2Debug().DebugFills(), m.L2Debug().MSHRFree())
				for _, s := range m.L1DDebug().DebugMSHR() {
					t.Logf("  L1D mshr %s", s)
				}
			}
			t.Logf("LLC wq=%d fills=%d mshrFree=%d fwd=%d rq=%d", llc.DebugWQ(), llc.DebugFills(), llc.MSHRFree(), llc.DebugFwd(), len(llc.DebugQueues()))
			t.FailNow()
		}
	}
}

// Package multicore assembles the paper's 4-core evaluation system:
// per-core private GM/L1D/L2 (and prefetcher), a shared banked LLC, and
// one DRAM channel per four cores (Table II). Each core runs its own
// trace; results are reported as weighted speedup against single-core
// baseline IPCs, as in §VII-B.
//
// The engine is a conservative barrier-synchronized parallel simulator:
// every core's private domain (core, GM, L1D, L2, prefetcher, link)
// advances independently — optionally on its own goroutine — through
// one epoch at a time, using the calendar-queue event machinery from
// the single-core engine. The shared LLC/DRAM domain then drains the
// cores' buffered requests in a seeded deterministic merge order and
// catches up to the barrier. Because the L2-to-LLC link delays
// responses by LinkLatency cycles, any epoch no longer than that bound
// cannot leak same-epoch shared-domain state into a core, so results
// are bit-identical regardless of GOMAXPROCS, goroutine scheduling, or
// barrier interval. A true lockstep loop (every component ticked every
// cycle, one goroutine) is kept as the reference engine; the digest
// gate and observatory.Bisect compare the two. See
// docs/performance.md.
package multicore

import (
	"errors"
	"fmt"
	"runtime"

	"secpref/internal/interference"
	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/sim"
	"secpref/internal/trace"
)

// Config describes the multi-core run: the per-core configuration is
// cloned from Single (with the LLC replaced by the shared one).
type Config struct {
	// Single holds the per-core system configuration (prefetcher, mode,
	// secure, SUF, instruction counts).
	Single sim.Config
	// Cores is the core count (the paper evaluates 4).
	Cores int
	// LinkLatency is the private-L2 to shared-LLC interconnect latency;
	// zero selects sim.DefaultLinkLatency. It is also the epoch-safety
	// bound: barrier intervals above it are rejected.
	LinkLatency mem.Cycle
	// Seed parameterizes the shared domain's deterministic drain
	// rotation (same-cycle cross-core tie-breaking).
	Seed uint64
}

// DefaultConfig returns the paper's 4-core setup.
func DefaultConfig() Config {
	return Config{Single: sim.DefaultConfig(), Cores: 4}
}

// Probes configures observability and engine selection for one run.
// The zero value runs the parallel engine unobserved at the safety
// bound.
type Probes struct {
	// Digest, when non-nil, receives the system digest vector (per-core
	// private blocks then shared LLC/DRAM; sim.MulticoreComponentNames)
	// at every DigestEvery barrier cycle.
	Digest observatory.DigestSink
	// DigestEvery is the digest interval; zero means
	// sim.DefaultDigestEvery. Barriers are clamped to digest boundaries
	// so both engines sample identical cycles.
	DigestEvery mem.Cycle
	// Profile, when non-nil, accumulates engine-attribution counters
	// from every core's private advance loop and the shared domain
	// (sim.ShardProfileRanks vocabulary).
	Profile *observatory.Profile
	// ReferenceEngine selects the serial lockstep loop instead of the
	// barrier-parallel engine.
	ReferenceEngine bool
	// Interval is the barrier interval in cycles; zero means the
	// safety bound (LinkLatency). Values above the bound are rejected.
	Interval mem.Cycle
	// Workers caps the goroutines advancing core domains: 0 means
	// min(GOMAXPROCS, Cores), 1 runs cores inline on the calling
	// goroutine (identical results either way — that is the point).
	Workers int
	// Interference attaches the cross-core interference observatory to
	// the shared LLC/DRAM. The engine constructs the tracker (it knows
	// the LLC geometry); read it back via Engine.Interference or the
	// Result snapshot.
	Interference bool
	// InterferenceWindow is the observatory's timeline interval in
	// cycles; zero means interference.DefaultWindowCycles.
	InterferenceWindow mem.Cycle
	// SharedObserver receives the shared domain's LLC and DRAM events
	// (Core-stamped). It runs on the serial shared-domain goroutine, so
	// a single observer (e.g. a probe.Tracer) is safe without locking —
	// unlike per-core observers, which would race across workers.
	SharedObserver probe.Observer
	// Windows holds per-core window observers (index = core; nil
	// entries sample nothing). Each core samples its private domain
	// only — shared-domain attribution is the interference
	// observatory's job — at WindowInstrs boundaries of the measured
	// phase.
	Windows []probe.WindowObserver
	// WindowInstrs is the per-core sampling interval in retired
	// instructions; zero means sim.DefaultWindowInstrs.
	WindowInstrs uint64
}

// Result aggregates the per-core results of one mix.
type Result struct {
	PerCore []*sim.Result
	// Cycles is the wall-clock cycles until every core finished its
	// measured instruction budget.
	Cycles uint64
	// FinalDigests is the system state-digest vector at the stop cycle
	// (sim.MulticoreComponentNames order) — the bit-identity witness
	// the determinism suite and the cross-engine gate compare.
	FinalDigests []uint64
	// Interference is the observatory snapshot at run end (nil unless
	// Probes.Interference was set).
	Interference *interference.Snapshot
}

// WeightedSpeedup computes sum_i(IPC_i / IPCalone_i) given the
// same-trace single-core baseline IPCs.
func (r *Result) WeightedSpeedup(alone []float64) (float64, error) {
	if len(alone) != len(r.PerCore) {
		return 0, fmt.Errorf("multicore: %d baseline IPCs for %d cores", len(alone), len(r.PerCore))
	}
	ws := 0.0
	for i, rc := range r.PerCore {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("multicore: non-positive baseline IPC for core %d", i)
		}
		ws += rc.IPC / alone[i]
	}
	return ws, nil
}

// ErrMixSize reports a trace/core count mismatch.
var ErrMixSize = errors.New("multicore: mix size must equal core count")

// Engine drives one multi-core run. It implements
// observatory.DigestEngine, so serial-vs-parallel divergences can be
// bisected to the exact cycle with observatory.Bisect.
type Engine struct {
	cfg    Config
	mix    []trace.Source
	sys    *sim.ShardedSystem
	noSkip bool

	interval  mem.Cycle
	workers   int
	maxCycles mem.Cycle

	now          mem.Cycle
	phase        int // 0 = warmup, 1 = measured
	target       uint64
	measureStart mem.Cycle
	// reached[i] is the first cycle core i's retired count hit the
	// current phase target, or mem.NoEvent while it has not.
	reached []mem.Cycle
	// Per-core wedge detection, advanced at barriers.
	lastInstr  []uint64
	lastProgAt []mem.Cycle

	digSink  observatory.DigestSink
	digEvery mem.Cycle
	digNext  mem.Cycle
	digBuf   []uint64

	// Persistent worker state: workers live for the duration of one
	// RunToCycle call and execute stages described by the fields below
	// (stage selector plus its parameters), so an epoch costs two
	// channel round-trips instead of goroutine and closure allocations.
	// workCh[w] carries true (run the current stage) or false (exit);
	// doneCh collects completions. Stage fields are written only while
	// the workers are quiescent; the channel operations order them.
	workCh []chan bool
	doneCh chan struct{}
	stage  int // 1 = advance-to-target, 2 = catch-up-to-barrier
	stageB mem.Cycle

	// profiles holds one attribution profile per core plus one for the
	// shared domain; they merge into finalProfile when the run ends.
	profiles     []*observatory.Profile
	finalProfile *observatory.Profile

	// tracker is the interference observatory (nil when not requested);
	// windows/winEvery hold the per-core window sampling arrangement,
	// armed at the warmup boundary.
	tracker  *interference.Tracker
	windows  []probe.WindowObserver
	winEvery uint64

	done   bool
	err    error
	cycles mem.Cycle // measured-window length, valid once done
}

// NewEngine builds the sharded system and prepares a run. The workload
// starts at cycle zero; drive it with Run (to completion) or RunToCycle
// (bisection).
func NewEngine(cfg Config, mix []trace.Source, p Probes) (*Engine, error) {
	if len(mix) != cfg.Cores {
		return nil, ErrMixSize
	}
	sys, err := sim.BuildSharded(cfg.Single, cfg.Cores, mix, cfg.LinkLatency, cfg.Seed)
	if err != nil {
		return nil, err
	}
	interval := p.Interval
	if interval == 0 {
		interval = sys.LinkLatency
	}
	if interval > sys.LinkLatency {
		return nil, fmt.Errorf("multicore: barrier interval %d exceeds the safety bound %d (LinkLatency)",
			interval, sys.LinkLatency)
	}
	workers := p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Cores {
		workers = cfg.Cores
	}
	maxCycles := cfg.Single.MaxCycles
	if maxCycles == 0 {
		maxCycles = mem.Cycle(2000 * (cfg.Single.WarmupInstrs + cfg.Single.MaxInstrs))
	}
	e := &Engine{
		cfg:        cfg,
		mix:        mix,
		sys:        sys,
		noSkip:     p.ReferenceEngine,
		interval:   interval,
		workers:    workers,
		maxCycles:  maxCycles,
		reached:    make([]mem.Cycle, cfg.Cores),
		lastInstr:  make([]uint64, cfg.Cores),
		lastProgAt: make([]mem.Cycle, cfg.Cores),
	}
	for i := range e.reached {
		e.reached[i] = mem.NoEvent
	}
	if e.noSkip {
		for _, m := range sys.Cores {
			m.UseReferenceEngine(true)
		}
	}
	e.target = uint64(cfg.Single.WarmupInstrs)
	if e.target == 0 {
		e.phase, e.target = 1, uint64(cfg.Single.MaxInstrs)
	}
	if p.Digest != nil {
		e.digSink = p.Digest
		e.digEvery = p.DigestEvery
		if e.digEvery == 0 {
			e.digEvery = sim.DefaultDigestEvery
		}
		e.digNext = e.digEvery
		if rec, ok := p.Digest.(*observatory.Recorder); ok {
			rec.EngineVersion = sim.EngineVersion
			rec.Interval = e.digEvery
			rec.Components = sim.MulticoreComponentNames(cfg.Cores)
		}
	}
	if p.Profile != nil {
		p.Profile.EnsureRanks(sim.ShardProfileRanks[:])
		for _, m := range sys.Cores {
			prof := observatory.NewProfile(sim.ShardProfileRanks[:]...)
			m.AttachShardProfile(prof)
			e.profiles = append(e.profiles, prof)
		}
		shProf := observatory.NewProfile(sim.ShardProfileRanks[:]...)
		sys.Shared.AttachProfile(shProf)
		e.profiles = append(e.profiles, shProf)
		e.finalProfile = p.Profile
	}
	if p.Interference {
		geo := sys.Shared.LLC().Config()
		tr := interference.New(cfg.Cores, geo.Sets(), geo.Ways)
		tr.EngineVersion = sim.EngineVersion
		tr.ArmWindows(0, p.InterferenceWindow)
		e.tracker = tr
	}
	if e.tracker != nil || p.SharedObserver != nil {
		// Shared-domain observers only: the LLC and DRAM advance serially
		// on the engine goroutine, so no locking is needed and the seeded
		// drain order makes the event stream — hence the matrix —
		// deterministic.
		var trObs probe.Observer
		if e.tracker != nil {
			trObs = e.tracker
		}
		obs := probe.Fanout(trObs, p.SharedObserver)
		sys.Shared.LLC().Obs = obs
		sys.Shared.DRAM().Obs = obs
	}
	if len(p.Windows) > 0 {
		e.windows = p.Windows
		e.winEvery = p.WindowInstrs
		if cfg.Single.WarmupInstrs == 0 {
			e.armWindows()
		}
	}
	return e, nil
}

// Interference returns the engine's observatory tracker (nil unless
// requested). Its published snapshot is safe to read — or hang off a
// live /metrics handler — while the run is in flight.
func (e *Engine) Interference() *interference.Tracker { return e.tracker }

// armWindows starts per-core interval sampling; called at the warmup
// boundary (or construction when there is no warmup) so windows cover
// the measured phase.
func (e *Engine) armWindows() {
	for i, m := range e.sys.Cores {
		if i < len(e.windows) && e.windows[i] != nil {
			m.ArmCoreWindows(i, e.windows[i], e.winEvery)
		}
	}
}

// mergeLink folds every core's cumulative link-traffic counters into
// the tracker. Only called at barriers, after the worker join: the
// join's happens-before edge makes the core goroutines' counter writes
// visible, and the fixed core order keeps the merge deterministic.
func (e *Engine) mergeLink() {
	for i, l := range e.sys.Links {
		e.tracker.MergeLink(i, l.KindCounts())
	}
}

// BlackHoleCore makes the shared domain silently drop core i's
// outbound requests — a deterministic wedge injector for the
// no-progress detector (tests only).
func (e *Engine) BlackHoleCore(i int) { e.sys.Shared.BlackHole = i }

// StateDigests appends the full system digest vector: each core's
// private block (sim.PrivateComponentNames) then the shared LLC and
// DRAM. Implements observatory.DigestEngine.
func (e *Engine) StateDigests(dst []uint64) []uint64 {
	for _, m := range e.sys.Cores {
		dst = m.PrivateDigests(dst)
	}
	return e.sys.Shared.StateDigests(dst)
}

// Now returns the barrier cycle the whole system has completed.
func (e *Engine) Now() mem.Cycle { return e.now }

// RunToCycle advances the system to exactly cycle t (or the stop cycle
// if the workload finishes first) and reports the cycle reached and
// whether the run is complete. Implements observatory.DigestEngine;
// repeated calls with increasing targets continue the same run.
func (e *Engine) RunToCycle(t mem.Cycle) (mem.Cycle, bool, error) {
	if e.err != nil {
		return e.now, e.done, e.err
	}
	if !e.noSkip && e.workers > 1 && e.now < t && !e.done {
		e.startWorkers()
		defer e.stopWorkers()
	}
	for e.now < t && !e.done {
		var err error
		if e.noSkip {
			err = e.stepLockstep()
		} else {
			err = e.stepEpoch(t)
		}
		if err != nil {
			e.err = err
			return e.now, false, err
		}
	}
	return e.now, e.done, nil
}

// Run drives the simulation to completion: all cores retire their
// measured budget; cores that finish early keep consuming shared
// resources replaying their trace, as ChampSim does.
func (e *Engine) Run() (*Result, error) {
	if _, _, err := e.RunToCycle(mem.NoEvent); err != nil {
		return nil, err
	}
	return e.result(), nil
}

// startWorkers launches the stage workers for one RunToCycle call.
// Cores are statically partitioned (worker w owns cores w, w+workers,
// ...), so each stage touches only private domains and the join is the
// only synchronization. The channels are created once and reused by
// later calls.
func (e *Engine) startWorkers() {
	if e.workCh == nil {
		e.workCh = make([]chan bool, e.workers)
		for w := range e.workCh {
			e.workCh[w] = make(chan bool, 1)
		}
		e.doneCh = make(chan struct{}, e.workers)
	}
	for w := range e.workCh {
		go e.workerLoop(w)
	}
}

// stopWorkers tells every stage worker to exit; paired with
// startWorkers so no goroutine outlives the RunToCycle that needed it.
func (e *Engine) stopWorkers() {
	for _, ch := range e.workCh {
		ch <- false
	}
}

func (e *Engine) workerLoop(w int) {
	for <-e.workCh[w] {
		for i := w; i < len(e.sys.Cores); i += e.workers {
			e.runStage(i, e.sys.Cores[i])
		}
		e.doneCh <- struct{}{}
	}
}

// runStage executes the current stage on core i. Stage parameters live
// in Engine fields (not closures) so the parallel hot path allocates
// nothing per epoch.
func (e *Engine) runStage(i int, m *sim.CoreSystem) {
	switch e.stage {
	case 1:
		if e.reached[i] != mem.NoEvent {
			return
		}
		if c, hit := m.AdvanceCore(e.stageB, e.target); hit {
			e.reached[i] = c
		}
	case 2:
		if m.Now() < e.stageB {
			m.AdvanceCore(e.stageB, 0)
		}
	}
}

// runStageAll runs one stage across every core, on the persistent
// workers when the engine is parallel.
func (e *Engine) runStageAll(stage int, b mem.Cycle) {
	e.stage, e.stageB = stage, b
	if e.workers <= 1 {
		for i, m := range e.sys.Cores {
			e.runStage(i, m)
		}
		return
	}
	for _, ch := range e.workCh {
		ch <- true
	}
	for range e.workCh {
		<-e.doneCh
	}
}

// stepEpoch runs one barrier epoch of the parallel engine: cores first
// (independently, possibly concurrently), then the shared domain, then
// the barrier bookkeeping. Epochs are clamped to digest boundaries and
// the caller's limit. The phase target is resolved with two-stage
// staging: stage one pauses each unfinished core at the exact cycle it
// reaches the target; if every core has now reached it, the global
// stop cycle S is the max of those pause cycles and stage two brings
// every core (including ones that finished in earlier epochs) to
// exactly S.
func (e *Engine) stepEpoch(limit mem.Cycle) error {
	b := e.now + e.interval
	if b > limit {
		b = limit
	}
	if e.digSink != nil && b > e.digNext {
		b = e.digNext
	}

	// Stage 1: unfinished cores run toward the barrier, pausing where
	// they reach the target.
	e.runStageAll(1, b)

	stop := mem.NoEvent
	if e.allReached() {
		// Global stop cycle: the slowest core's reach cycle (never
		// before the last completed barrier).
		s := e.now
		for _, c := range e.reached {
			if c > s {
				s = c
			}
		}
		stop = s
		b = s
	}

	// Stage 2: bring every core that is short of the (possibly
	// tightened) barrier to exactly it.
	e.runStageAll(2, b)

	// Shared domain catches up serially, draining the cores' buffered
	// requests in the deterministic merge order.
	e.sys.Shared.Advance(b)
	e.now = b

	if e.tracker != nil {
		e.mergeLink()
		e.tracker.Tick(b)
	}
	if e.digSink != nil && e.now == e.digNext {
		e.emitDigests()
	}
	if stop != mem.NoEvent {
		e.finishPhase()
		return nil
	}
	return e.checkHealth()
}

// stepLockstep is the reference engine: one cycle, every component,
// reference order (each core's private stack, then the shared drain,
// LLC, and DRAM), with the same phase staging evaluated per cycle.
func (e *Engine) stepLockstep() error {
	u := e.now + 1
	for _, m := range e.sys.Cores {
		m.StepCore(u)
	}
	e.sys.Shared.LockstepCycle(u)
	e.now = u

	if e.tracker != nil {
		e.mergeLink()
		e.tracker.Tick(u)
	}
	for i, m := range e.sys.Cores {
		if e.reached[i] == mem.NoEvent && m.Instructions() >= e.target {
			e.reached[i] = u
		}
	}
	if e.digSink != nil && e.now == e.digNext {
		e.emitDigests()
	}
	if e.allReached() {
		e.finishPhase()
		return nil
	}
	return e.checkHealth()
}

func (e *Engine) allReached() bool {
	for _, c := range e.reached {
		if c == mem.NoEvent {
			return false
		}
	}
	return true
}

// checkHealth is the barrier-granularity progress audit: a per-core
// wedge detector (any unfinished core that has not retired an
// instruction for a full wedge window fails the run — a single
// black-holed core cannot hide behind its peers' progress) and the
// cycle budget.
func (e *Engine) checkHealth() error {
	for i, m := range e.sys.Cores {
		if e.reached[i] != mem.NoEvent {
			continue
		}
		if n := m.Instructions(); n != e.lastInstr[i] {
			e.lastInstr[i] = n
			e.lastProgAt[i] = e.now
		} else if e.now-e.lastProgAt[i] > sim.WedgeWindow {
			return sim.ErrNoProgress
		}
	}
	if e.now > e.maxCycles {
		return fmt.Errorf("multicore: cycle budget exhausted at %d", e.now)
	}
	return nil
}

// finishPhase handles the warmup-to-measured transition and run
// completion at the stop cycle the staging resolved.
func (e *Engine) finishPhase() {
	if e.phase == 0 {
		// Stats (including retired-instruction counters) reset to zero,
		// so the measured target below is relative to the reset.
		for _, m := range e.sys.Cores {
			m.ResetStats()
		}
		if e.tracker != nil {
			e.mergeLink()
			e.tracker.ResetCounters(e.now)
		}
		e.armWindows()
		e.phase = 1
		e.target = uint64(e.cfg.Single.MaxInstrs)
		e.measureStart = e.now
		for i := range e.reached {
			e.reached[i] = mem.NoEvent
			e.lastInstr[i] = 0
			e.lastProgAt[i] = e.now
		}
		return
	}
	e.done = true
	e.cycles = e.now - e.measureStart
}

// emitDigests samples the system digest vector at the current barrier.
func (e *Engine) emitDigests() {
	e.digBuf = e.StateDigests(e.digBuf[:0])
	e.digSink.Digest(e.now, e.digBuf)
	for e.digNext <= e.now {
		e.digNext += e.digEvery
	}
}

// result assembles the per-core snapshots and the final digest vector.
func (e *Engine) result() *Result {
	res := &Result{Cycles: uint64(e.cycles)}
	for i, m := range e.sys.Cores {
		m.FlushCoreWindows()
		res.PerCore = append(res.PerCore, m.Snapshot(e.mix[i].Name(), e.cycles))
	}
	res.FinalDigests = e.StateDigests(nil)
	if e.tracker != nil {
		e.mergeLink()
		e.tracker.Finish(e.now)
		res.Interference = e.tracker.Snapshot()
	}
	if e.finalProfile != nil {
		for _, p := range e.profiles {
			e.finalProfile.Merge(p)
		}
	}
	return res
}

// Run simulates the mix (one trace per core) on the parallel engine
// with default probes.
func Run(cfg Config, mix []trace.Source) (*Result, error) {
	return RunProbed(cfg, mix, Probes{})
}

// RunProbed simulates the mix with the given probes and engine
// selection.
func RunProbed(cfg Config, mix []trace.Source, p Probes) (*Result, error) {
	e, err := NewEngine(cfg, mix, p)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

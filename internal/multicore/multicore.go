// Package multicore assembles the paper's 4-core evaluation system:
// per-core private GM/L1D/L2 (and prefetcher), a shared banked LLC, and
// one DRAM channel per four cores (Table II). Each core runs its own
// trace; results are reported as weighted speedup against single-core
// baseline IPCs, as in §VII-B.
package multicore

import (
	"errors"
	"fmt"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/sim"
	"secpref/internal/trace"
)

// Config describes the multi-core run: the per-core configuration is
// cloned from Single (with the LLC replaced by the shared one).
type Config struct {
	// Single holds the per-core system configuration (prefetcher, mode,
	// secure, SUF, instruction counts).
	Single sim.Config
	// Cores is the core count (the paper evaluates 4).
	Cores int
}

// DefaultConfig returns the paper's 4-core setup.
func DefaultConfig() Config {
	return Config{Single: sim.DefaultConfig(), Cores: 4}
}

// Result aggregates the per-core results of one mix.
type Result struct {
	PerCore []*sim.Result
	// Cycles is the wall-clock cycles until every core finished its
	// measured instruction budget.
	Cycles uint64
}

// WeightedSpeedup computes sum_i(IPC_i / IPCalone_i) given the
// same-trace single-core baseline IPCs.
func (r *Result) WeightedSpeedup(alone []float64) (float64, error) {
	if len(alone) != len(r.PerCore) {
		return 0, fmt.Errorf("multicore: %d baseline IPCs for %d cores", len(alone), len(r.PerCore))
	}
	ws := 0.0
	for i, rc := range r.PerCore {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("multicore: non-positive baseline IPC for core %d", i)
		}
		ws += rc.IPC / alone[i]
	}
	return ws, nil
}

// ErrMixSize reports a trace/core count mismatch.
var ErrMixSize = errors.New("multicore: mix size must equal core count")

// Run simulates the mix (one trace per core) to completion: all cores
// retire their measured budget; cores that finish early keep consuming
// shared resources replaying their trace, as ChampSim does.
func Run(cfg Config, mix []trace.Source) (*Result, error) {
	if len(mix) != cfg.Cores {
		return nil, ErrMixSize
	}
	machines, llc, dramTick, err := build(cfg, mix)
	if err != nil {
		return nil, err
	}
	_ = llc

	warmup := uint64(cfg.Single.WarmupInstrs)
	measured := uint64(cfg.Single.MaxInstrs)
	maxCycles := cfg.Single.MaxCycles
	if maxCycles == 0 {
		maxCycles = mem.Cycle(2000 * (cfg.Single.WarmupInstrs + cfg.Single.MaxInstrs))
	}

	var now mem.Cycle
	stepAll := func() {
		now++
		for _, m := range machines {
			m.TickCore(now)
		}
		llc.Tick(now)
		dramTick(now)
	}
	reached := func(n uint64) bool {
		for _, m := range machines {
			if m.Instructions() < n {
				return false
			}
		}
		return true
	}
	lastProgress := now
	var lastSum uint64
	runTo := func(n uint64) error {
		for !reached(n) {
			stepAll()
			var sum uint64
			for _, m := range machines {
				sum += m.Instructions()
			}
			if sum != lastSum {
				lastSum = sum
				lastProgress = now
			} else if now-lastProgress > 500_000 {
				return sim.ErrNoProgress
			}
			if now > maxCycles {
				return fmt.Errorf("multicore: cycle budget exhausted at %d", now)
			}
		}
		return nil
	}

	if warmup > 0 {
		if err := runTo(warmup); err != nil {
			return nil, err
		}
		// Stats (including retired-instruction counters) reset to zero,
		// so the measured target below is relative to the reset.
		for _, m := range machines {
			m.ResetStats()
		}
	}
	start := now
	if err := runTo(measured); err != nil {
		return nil, err
	}
	res := &Result{Cycles: uint64(now - start)}
	for i, m := range machines {
		res.PerCore = append(res.PerCore, m.Snapshot(mix[i].Name(), now-start))
	}
	return res, nil
}

// build assembles per-core machines around a shared LLC and DRAM.
func build(cfg Config, mix []trace.Source) ([]*sim.CoreSystem, *cache.Cache, func(mem.Cycle), error) {
	return sim.BuildShared(cfg.Single, cfg.Cores, mix)
}

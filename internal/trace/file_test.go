package trace

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"secpref/internal/mem"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.trace")
	orig := &Trace{Name: "file-roundtrip", Instrs: genInstrs(rand.New(rand.NewSource(9)), 5000)}

	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, orig); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := Read(g)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || !reflect.DeepEqual(got.Instrs, orig.Instrs) {
		t.Fatal("file round trip mismatch")
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// Non-memory instructions should cost ~2 bytes (flags + ip delta).
	tr := &Trace{Name: "compact"}
	for i := 0; i < 10_000; i++ {
		tr.Instrs = append(tr.Instrs, Instr{IP: mem.Addr(0x400000 + mem4(i))})
	}
	var n countingWriter
	if err := Write(&n, tr); err != nil {
		t.Fatal(err)
	}
	perInstr := float64(n) / 10_000
	if perInstr > 3 {
		t.Errorf("encoding costs %.1f bytes per ALU instruction", perInstr)
	}
}

func mem4(i int) uint64 { return uint64(i%64) * 4 }

type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"secpref/internal/mem"
)

// Binary trace encoding
//
// A trace file is:
//
//	magic   [8]byte  "SECPREF1"
//	nameLen uint16   little-endian
//	name    [nameLen]byte
//	count   uint64   number of instruction records
//	records ...
//
// Each record is a flags byte followed by varint-encoded fields, so
// non-memory instructions cost 1 byte plus the IP delta:
//
//	flags: bit0 hasLoad, bit1 hasStore, bit2 branch, bit3 taken, bit4 dep
//	ipDelta  varint (zig-zag, relative to previous IP)
//	load     uvarint (absolute, if hasLoad)
//	store    uvarint (absolute, if hasStore)

var magic = [8]byte{'S', 'E', 'C', 'P', 'R', 'E', 'F', '1'}

const (
	flagLoad   = 1 << 0
	flagStore  = 1 << 1
	flagBranch = 1 << 2
	flagTaken  = 1 << 3
	flagDep    = 1 << 4
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed trace stream")

// Write encodes t to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if len(t.Name) > 0xffff {
		return fmt.Errorf("trace: name too long (%d bytes)", len(t.Name))
	}
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], uint16(len(t.Name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(t.Instrs)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	prevIP := uint64(0)
	for _, in := range t.Instrs {
		var flags byte
		if in.Load != 0 {
			flags |= flagLoad
		}
		if in.Store != 0 {
			flags |= flagStore
		}
		if in.Branch {
			flags |= flagBranch
		}
		if in.Taken {
			flags |= flagTaken
		}
		if in.Dep {
			flags |= flagDep
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		n := binary.PutVarint(buf[:], int64(uint64(in.IP)-prevIP))
		prevIP = uint64(in.IP)
		if in.Load != 0 {
			n += binary.PutUvarint(buf[n:], uint64(in.Load))
		}
		if in.Store != 0 {
			n += binary.PutUvarint(buf[n:], uint64(in.Store))
		}
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a full trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, m[:])
	}
	var hdr [2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	nameLen := binary.LittleEndian.Uint16(hdr[:])
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(cnt[:])
	const maxReasonable = 1 << 32
	if count > maxReasonable {
		return nil, fmt.Errorf("%w: implausible instruction count %d", ErrBadTrace, count)
	}
	t := &Trace{Name: string(name), Instrs: make([]Instr, 0, count)}
	prevIP := uint64(0)
	for i := uint64(0); i < count; i++ {
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		d, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d ip: %w", i, err)
		}
		prevIP += uint64(d)
		in := Instr{
			IP:     mem.Addr(prevIP),
			Branch: flags&flagBranch != 0,
			Taken:  flags&flagTaken != 0,
			Dep:    flags&flagDep != 0,
		}
		if flags&flagLoad != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d load: %w", i, err)
			}
			in.Load = mem.Addr(v)
		}
		if flags&flagStore != 0 {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("trace: record %d store: %w", i, err)
			}
			in.Store = mem.Addr(v)
		}
		t.Instrs = append(t.Instrs, in)
	}
	return t, nil
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"secpref/internal/mem"
)

// genInstrs builds a random but valid instruction slice.
func genInstrs(rng *rand.Rand, n int) []Instr {
	out := make([]Instr, n)
	ip := mem.Addr(0x400000)
	for i := range out {
		in := Instr{IP: ip}
		ip += mem.Addr(rng.Intn(16) * 4)
		switch rng.Intn(4) {
		case 0:
			in.Load = mem.Addr(rng.Uint64()>>8 & ^uint64(0) | 1)
		case 1:
			in.Store = mem.Addr(rng.Uint64()>>8 | 1)
		case 2:
			in.Branch = true
			in.Taken = rng.Intn(2) == 0
		}
		if in.Load != 0 && rng.Intn(3) == 0 {
			in.Dep = true
		}
		out[i] = in
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw % 500)
		orig := &Trace{Name: "t", Instrs: genInstrs(rng, n)}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		return got.Name == orig.Name && reflect.DeepEqual(got.Instrs, orig.Instrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRACE-------"))); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	orig := &Trace{Name: "x", Instrs: genInstrs(rand.New(rand.NewSource(1)), 100)}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{5, 9, 12, len(raw) / 2, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("expected error for truncation at %d", cut)
		}
	}
}

func TestSourceIteration(t *testing.T) {
	tr := &Trace{Name: "s", Instrs: genInstrs(rand.New(rand.NewSource(2)), 10)}
	src := NewSource(tr)
	if src.Name() != "s" {
		t.Errorf("name %q", src.Name())
	}
	var got []Instr
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, in)
	}
	if !reflect.DeepEqual(got, tr.Instrs) {
		t.Fatal("iteration mismatch")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("Next after end should fail")
	}
	src.Reset()
	if in, ok := src.Next(); !ok || in != tr.Instrs[0] {
		t.Fatal("Reset did not rewind")
	}
}

func TestRepeatWrapsAndBounds(t *testing.T) {
	tr := &Trace{Name: "r", Instrs: genInstrs(rand.New(rand.NewSource(3)), 7)}
	src := Repeat(NewSource(tr), 20)
	count := 0
	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		if in != tr.Instrs[count%7] {
			t.Fatalf("instruction %d mismatch", count)
		}
		count++
	}
	if count != 20 {
		t.Fatalf("Repeat yielded %d instructions, want 20", count)
	}
	src.Reset()
	if _, ok := src.Next(); !ok {
		t.Fatal("Reset should restart the repeat budget")
	}
}

func TestRepeatEmptyUnderlying(t *testing.T) {
	src := Repeat(NewSource(&Trace{Name: "e"}), 5)
	if _, ok := src.Next(); ok {
		t.Fatal("empty trace should yield nothing")
	}
}

func TestOffsetRelocatesDataOnly(t *testing.T) {
	tr := &Trace{Name: "o", Instrs: []Instr{
		{IP: 0x400, Load: 0x1000},
		{IP: 0x404, Store: 0x2000},
		{IP: 0x408, Branch: true, Taken: true},
	}}
	src := Offset(NewSource(tr), 0x10_0000)
	in, _ := src.Next()
	if in.Load != 0x101000 || in.IP != 0x400 {
		t.Errorf("load offset wrong: %+v", in)
	}
	in, _ = src.Next()
	if in.Store != 0x102000 {
		t.Errorf("store offset wrong: %+v", in)
	}
	in, _ = src.Next()
	if in.Load != 0 || in.Store != 0 {
		t.Errorf("branch gained data address: %+v", in)
	}
}

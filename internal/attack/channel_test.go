package attack

import (
	"testing"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

// TestObserverSeesAttackTraffic is the wiring test: with Config.Obs
// set, the probe layer must see the harness's traffic at both the core
// and the hierarchy sites.
func TestObserverSeesAttackTraffic(t *testing.T) {
	for _, secure := range []bool{false, true} {
		rec := &recordingObs{}
		s, err := NewSystem(Config{Secure: secure, Obs: rec})
		if err != nil {
			t.Fatal(err)
		}
		s.CommittedLoad(0x100, 0xA0)
		s.TransientLoads([]mem.Line{0x200}, 0xB0)
		counts := map[probe.Site]int{}
		kinds := map[probe.EventKind]int{}
		for _, ev := range rec.evs {
			counts[ev.Site]++
			kinds[ev.Kind]++
		}
		if counts[probe.SiteCore] == 0 || counts[probe.SiteL1D] == 0 {
			t.Errorf("secure=%v: probes missed attack traffic: sites=%v", secure, counts)
		}
		if kinds[probe.EvIssue] == 0 || kinds[probe.EvFill] == 0 || kinds[probe.EvCommit] == 0 {
			t.Errorf("secure=%v: core lifecycle not observed: kinds=%v", secure, kinds)
		}
		if kinds[probe.EvSquash] != 1 {
			t.Errorf("secure=%v: squash events = %d, want 1", secure, kinds[probe.EvSquash])
		}
		if secure && counts[probe.SiteGM] == 0 {
			t.Errorf("GM traffic not observed: sites=%v", counts)
		}
	}
}

type recordingObs struct{ evs []probe.Event }

func (r *recordingObs) Event(ev probe.Event) { r.evs = append(r.evs, ev) }

func TestDirectChannelNonSecure(t *testing.T) {
	m, err := MeasureChannel(Config{}, ChannelCache, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The acceptance bar is >= 0.9 bits/trial; an unprotected hierarchy
	// actually gives the attacker the full 4-bit secret every trial.
	if m.BitsPerTrial < 0.9 {
		t.Errorf("non-secure direct channel: %.2f bits/trial, want >= 0.9", m.BitsPerTrial)
	}
	if m.Separation < float64(CachedThreshold) {
		t.Errorf("non-secure direct channel: separation %.1f cycles, want clear hit/miss split", m.Separation)
	}
	if m.LatencyMI <= 0 {
		t.Errorf("non-secure direct channel: latency MI = %.3f, want > 0", m.LatencyMI)
	}
	if m.Audit.TaintedSurvivors == 0 {
		t.Errorf("non-secure transient fills must audit as tainted survivors: %s", m.Audit.String())
	}
}

func TestDirectChannelSecureClean(t *testing.T) {
	m, err := MeasureChannel(Config{Secure: true}, ChannelCache, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.BitsPerTrial > 0.1 {
		t.Errorf("secure direct channel: %.2f bits/trial, want ~0", m.BitsPerTrial)
	}
	if !m.Audit.Clean() {
		t.Errorf("secure direct channel must audit clean: %s", m.Audit.String())
	}
	// The clean verdict must come from a real audit: speculation and
	// squashes were witnessed.
	if m.Audit.SpecAccesses == 0 || m.Audit.Squashes == 0 {
		t.Errorf("audit coverage missing: %s", m.Audit.String())
	}
}

func TestPrefetchChannelOnAccess(t *testing.T) {
	// The paper's motivating attack: GhostMinion alone does not stop a
	// speculatively-trained prefetcher from leaking.
	m, err := MeasureChannel(Config{Secure: true, Prefetcher: "ip-stride"}, ChannelPrefetch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.BitsPerTrial < 0.9 {
		t.Errorf("on-access prefetch channel: %.2f bits/trial, want >= 0.9", m.BitsPerTrial)
	}
	if m.Audit.SpecTrains == 0 {
		t.Errorf("on-access training must audit as speculative trains: %s", m.Audit.String())
	}
	if m.Audit.TaintedSurvivors == 0 {
		t.Errorf("squashed training state must audit as tainted: %s", m.Audit.String())
	}
}

func TestPrefetchChannelOnCommitClean(t *testing.T) {
	m, err := MeasureChannel(Config{Secure: true, Prefetcher: "ip-stride", OnCommitPrefetch: true}, ChannelPrefetch, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.BitsPerTrial > 0.1 {
		t.Errorf("on-commit prefetch channel: %.2f bits/trial, want ~0", m.BitsPerTrial)
	}
	if !m.Audit.Clean() {
		t.Errorf("on-commit discipline must audit clean: %s", m.Audit.String())
	}
}

// TestProbeLatenciesThroughProbeLayer checks that the recorder's view
// (probe events) agrees exactly with the harness-returned latencies —
// the histograms really are measured through the probe layer.
func TestProbeLatenciesThroughProbeLayer(t *testing.T) {
	rec := &probeRecorder{}
	out, err := SpectreCacheLeak(Config{Obs: rec}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.fills) < len(out.Latencies) {
		t.Fatalf("recorder saw %d fills, want >= %d", len(rec.fills), len(out.Latencies))
	}
	fills := rec.fills[len(rec.fills)-len(out.Latencies):]
	for i, f := range fills {
		if f.Aux != uint64(out.Latencies[i]) {
			t.Errorf("probe %d: event latency %d != outcome latency %d", i, f.Aux, out.Latencies[i])
		}
	}
}

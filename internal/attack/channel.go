package attack

import (
	"fmt"

	"secpref/internal/leakage"
	"secpref/internal/probe"
)

// Channel selects which side channel MeasureChannel drives.
type Channel int

const (
	// ChannelCache is the direct transient-fill channel (SpectreCacheLeak).
	ChannelCache Channel = iota
	// ChannelPrefetch is the prefetcher-training channel (SpectrePrefetchLeak).
	ChannelPrefetch
)

// String implements fmt.Stringer.
func (c Channel) String() string {
	if c == ChannelPrefetch {
		return "prefetch"
	}
	return "cache"
}

// ChannelMeasurement aggregates a multi-trial prime+probe campaign: the
// attacker-side channel estimate and the defender-side leakage audit of
// the very same runs.
type ChannelMeasurement struct {
	Channel Channel `json:"channel"`
	Trials  int     `json:"trials"`
	// Correct counts trials whose inference matched the secret.
	Correct int `json:"correct"`
	// BitsPerTrial is the empirical mutual information of the
	// (secret, inferred) channel — bits extracted per trial. A perfect
	// 16-way channel yields 4.0.
	BitsPerTrial float64 `json:"bits_per_trial"`
	// LatencyMI is the mutual-information upper bound over the
	// secret-slot vs other-slot probe-latency distributions.
	LatencyMI float64 `json:"latency_mi"`
	// Separation is mean(other-slot latency) - mean(secret-slot
	// latency) in cycles: the hit/miss separability of the channel.
	Separation float64 `json:"separation_cycles"`
	// Audit is the merged leakage scoreboard across all trials.
	Audit leakage.Scoreboard `json:"audit"`
}

// probeRecorder captures the attacker's committed probe fills as they
// pass through the probe layer (the same events any observer sees), so
// the latency histograms are measured from observability data rather
// than harness return values.
type probeRecorder struct {
	fills []probe.Event
}

// Event implements probe.Observer.
func (p *probeRecorder) Event(ev probe.Event) {
	if ev.Kind == probe.EvFill && ev.Site == probe.SiteCore && !ev.Spec {
		p.fills = append(p.fills, ev)
	}
}

// MeasureChannel runs trials prime+probe attempts of the selected
// channel under cfg, cycling through all candidate secrets, and returns
// the aggregate channel estimate plus the merged leakage audit.
// trials <= 0 measures one trial per candidate secret.
func MeasureChannel(cfg Config, ch Channel, trials int) (*ChannelMeasurement, error) {
	if trials <= 0 {
		trials = candidates
	}
	conf := leakage.NewConfusion()
	var split leakage.LatencySplit
	var audit leakage.Scoreboard
	correct := 0
	for t := 0; t < trials; t++ {
		secret := t % candidates
		aud := leakage.NewAuditor()
		rec := &probeRecorder{}
		runCfg := cfg
		runCfg.Obs = probe.Fanout(cfg.Obs, aud, rec)
		var (
			out Outcome
			err error
		)
		if ch == ChannelPrefetch {
			out, err = SpectrePrefetchLeak(runCfg, secret)
		} else {
			out, err = SpectreCacheLeak(runCfg, secret)
		}
		if err != nil {
			return nil, err
		}
		conf.Add(out.Secret, out.Inferred)
		if out.Leaked {
			correct++
		}
		// The trailing committed core fills are exactly the probe phase,
		// one per candidate in candidate order.
		n := len(out.Latencies)
		if len(rec.fills) < n {
			return nil, fmt.Errorf("attack: probe layer saw %d committed fills, want >= %d", len(rec.fills), n)
		}
		for i, f := range rec.fills[len(rec.fills)-n:] {
			class := leakage.ClassOther
			if i == out.Secret {
				class = leakage.ClassSecret
			}
			split.Add(class, f.Aux)
		}
		sb := aud.Scoreboard()
		audit.Merge(&sb)
	}
	return &ChannelMeasurement{
		Channel:      ch,
		Trials:       trials,
		Correct:      correct,
		BitsPerTrial: conf.BitsPerTrial(),
		LatencyMI:    split.MIBits(),
		Separation:   split.Separation(),
		Audit:        audit,
	}, nil
}

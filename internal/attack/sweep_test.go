package attack

import "testing"

// TestFullSecretSweep verifies every encodable secret leaks on the
// undefended system and none leak on the defended one — no
// secret-dependent blind spots in the harness.
func TestFullSecretSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2x16 attack instances")
	}
	for secret := 0; secret < candidates; secret++ {
		o, err := SpectreCacheLeak(Config{}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Leaked {
			t.Errorf("secret %d did not leak on the non-secure system", secret)
		}
		o, err = SpectreCacheLeak(Config{Secure: true}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if o.Leaked {
			t.Errorf("secret %d leaked through GhostMinion", secret)
		}
	}
}

func TestPrefetchSweepOnAccess(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 16 attack instances")
	}
	for secret := range CandidateStrides {
		o, err := SpectrePrefetchLeak(Config{Secure: true, Prefetcher: "ip-stride"}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Leaked {
			t.Errorf("stride secret %d (=%d lines) did not leak via the on-access prefetcher",
				secret, CandidateStrides[secret])
		}
	}
}

func TestAttackErrors(t *testing.T) {
	if _, err := SpectreCacheLeak(Config{}, -1); err == nil {
		t.Error("out-of-range secret accepted")
	}
	if _, err := SpectrePrefetchLeak(Config{}, 3); err == nil {
		t.Error("prefetch leak without a prefetcher accepted")
	}
	if _, err := SpectrePrefetchLeak(Config{Prefetcher: "ip-stride"}, 99); err == nil {
		t.Error("out-of-range stride secret accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	leaked := Outcome{Secret: 3, Inferred: 3, Leaked: true}
	if s := leaked.String(); s == "" {
		t.Error("empty outcome string")
	}
	clean := Outcome{Secret: 3, Inferred: -1}
	if s := clean.String(); s == "" {
		t.Error("empty outcome string")
	}
}

func TestAttackDeterminism(t *testing.T) {
	a, err := SpectreCacheLeak(Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SpectreCacheLeak(Config{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Latencies {
		if a.Latencies[i] != b.Latencies[i] {
			t.Fatalf("attack latencies not deterministic at slot %d", i)
		}
	}
}

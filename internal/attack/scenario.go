package attack

import (
	"fmt"

	"secpref/internal/mem"
)

// Outcome reports one attack attempt.
type Outcome struct {
	Secret   int
	Inferred int
	// Leaked is true when the attacker's inference matched the secret.
	Leaked bool
	// Latencies holds the probe latency per candidate (diagnostics).
	Latencies []mem.Cycle
}

// String implements fmt.Stringer.
func (o Outcome) String() string {
	if o.Leaked {
		return fmt.Sprintf("LEAKED secret %d (inferred %d)", o.Secret, o.Inferred)
	}
	return fmt.Sprintf("no leak (secret %d, inferred %d)", o.Secret, o.Inferred)
}

// Address layout: victim data, the attacker-visible probe array, and
// the prefetcher-attack stride base live in disjoint regions far from
// each other.
const (
	probeBase  = mem.Line(0x10_0000)
	strideBase = mem.Line(0x30_0000)
	candidates = 16 // secret index ∈ [0, candidates)

	attackerIP = mem.Addr(0xA000)
	victimIP   = mem.Addr(0xB000)
)

// CandidateStrides are the secret values the stride attack can encode.
// They are primes greater than the prefetch window so that the probed
// continuation line 7*s of one candidate can never alias a line k*s'
// (k <= 8) touched or prefetched under a different candidate secret —
// 7*s = k*s' with s, s' prime and k <= 8 forces k = 7 and s' = s.
var CandidateStrides = []int{11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}

// SpectreCacheLeak runs the classic flush+reload-style transient leak:
// the victim's squashed load touches probe[secret]; the attacker times
// every probe slot. Probe slots are spaced 64 lines apart so the
// prefetcher cannot mask the signal.
func SpectreCacheLeak(cfg Config, secret int) (Outcome, error) {
	if secret < 0 || secret >= candidates {
		return Outcome{}, fmt.Errorf("attack: secret %d out of range [0,%d)", secret, candidates)
	}
	s, err := NewSystem(cfg)
	if err != nil {
		return Outcome{}, err
	}
	// Victim transiently loads the secret-dependent probe slot.
	s.TransientLoads([]mem.Line{probeBase + mem.Line((secret+1)*64)}, victimIP)

	return s.probeSlots(secret), nil
}

// SpectrePrefetchLeak runs the paper's prefetcher-channel attack
// (§II-A, after MuonTrap): the victim's transient loads form a
// secret-dependent stride; a speculatively-trained prefetcher then
// fetches the next elements of that stride into the cache, where the
// attacker finds them — even if the transient fills themselves were
// invisible. On-commit prefetching closes the channel because the
// prefetcher is never trained on transient loads.
func SpectrePrefetchLeak(cfg Config, secret int) (Outcome, error) {
	if secret < 0 || secret >= len(CandidateStrides) {
		return Outcome{}, fmt.Errorf("attack: secret %d out of range [0,%d)", secret, len(CandidateStrides))
	}
	if cfg.Prefetcher == "" {
		return Outcome{}, fmt.Errorf("attack: prefetch leak needs a prefetcher")
	}
	s, err := NewSystem(cfg)
	if err != nil {
		return Outcome{}, err
	}
	// The victim's transient loads stride by CandidateStrides[secret]
	// lines. An on-access stride prefetcher learns the stride and
	// prefetches ahead of the last transient access.
	stride := CandidateStrides[secret]
	var seq []mem.Line
	for i := 0; i < 6; i++ {
		seq = append(seq, strideBase+mem.Line(i*stride))
	}
	s.TransientLoads(seq, victimIP)
	s.drain(2000)

	// The attacker probes the *continuation* of each candidate stride
	// (line 7*s): only the true stride's continuation was prefetched,
	// and the prime candidate set makes the probes alias-free.
	best, bestLat := -1, mem.Cycle(1<<60)
	lats := make([]mem.Cycle, len(CandidateStrides))
	for i, cand := range CandidateStrides {
		probe := strideBase + mem.Line(7*cand)
		lat := s.ProbeLatency(probe, attackerIP+mem.Addr(i))
		lats[i] = lat
		if lat < bestLat {
			best, bestLat = i, lat
		}
	}
	if bestLat >= CachedThreshold {
		best = -1 // nothing was cached: the attacker learned nothing
	}
	leaked := best == secret
	return Outcome{Secret: secret, Inferred: best, Leaked: leaked, Latencies: lats}, nil
}

// probeSlots times each probe-array slot and infers the secret.
func (s *System) probeSlots(secret int) Outcome {
	best, bestLat := -1, mem.Cycle(1<<60)
	lats := make([]mem.Cycle, candidates)
	for cand := 0; cand < candidates; cand++ {
		lat := s.ProbeLatency(probeBase+mem.Line((cand+1)*64), attackerIP+mem.Addr(cand))
		lats[cand] = lat
		if lat < bestLat {
			best, bestLat = cand, lat
		}
	}
	if bestLat >= CachedThreshold {
		best = -1 // nothing was cached: the attacker learned nothing
	}
	leaked := best == secret
	return Outcome{Secret: secret, Inferred: best, Leaked: leaked, Latencies: lats}
}

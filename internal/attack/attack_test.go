package attack

import "testing"

// The four security claims of the paper's threat model, as executable
// assertions.

func TestCacheLeakOnNonSecure(t *testing.T) {
	for _, secret := range []int{0, 5, 11, 15} {
		o, err := SpectreCacheLeak(Config{Secure: false}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Leaked {
			t.Errorf("non-secure cache should leak: %v (lats=%v)", o, o.Latencies)
		}
	}
}

func TestCacheLeakBlockedByGhostMinion(t *testing.T) {
	for _, secret := range []int{0, 5, 11, 15} {
		o, err := SpectreCacheLeak(Config{Secure: true}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if o.Leaked {
			t.Errorf("GhostMinion must hide transient fills: %v (lats=%v)", o, o.Latencies)
		}
	}
}

func TestPrefetchLeakOnSecureSystemWithOnAccessPrefetch(t *testing.T) {
	// The paper's motivation: even with GhostMinion, an on-access
	// prefetcher trained by transient loads leaks.
	for _, secret := range []int{1, 7, 12} {
		o, err := SpectrePrefetchLeak(Config{Secure: true, Prefetcher: "ip-stride"}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Leaked {
			t.Errorf("on-access prefetcher on a secure cache should still leak: %v (lats=%v)", o, o.Latencies)
		}
	}
}

func TestPrefetchLeakBlockedByOnCommitPrefetch(t *testing.T) {
	for _, secret := range []int{1, 7, 12} {
		o, err := SpectrePrefetchLeak(Config{Secure: true, Prefetcher: "ip-stride", OnCommitPrefetch: true}, secret)
		if err != nil {
			t.Fatal(err)
		}
		if o.Leaked {
			t.Errorf("on-commit prefetching must not be trained by transient loads: %v (lats=%v)", o, o.Latencies)
		}
	}
}

// Package attack demonstrates the threat model of the paper (§II-A): a
// Spectre-style transient-execution attacker leaking a secret through
// the cache state — directly, or via a speculatively-trained hardware
// prefetcher (the MuonTrap/GhostMinion prefetch attack the paper's
// on-commit prefetching defeats).
//
// The harness drives the memory hierarchy without a core: the attacker
// primes and probes with committed accesses and measures load latency
// (an architectural capability); the victim executes transient loads
// that are subsequently squashed. On a non-secure hierarchy the
// transient fills (and any speculative prefetcher activity) survive the
// squash and the probe recovers the secret; on GhostMinion the
// speculative state lives only in the GM and dies with the squash, and
// an on-commit prefetcher is never trained on transient loads at all.
package attack

import (
	"secpref/internal/cache"
	"secpref/internal/dram"
	"secpref/internal/ghostminion"
	"secpref/internal/mem"
	"secpref/internal/prefetch"
	"secpref/internal/probe"
	"secpref/internal/stats"

	// Prefetcher registration.
	_ "secpref/internal/prefetch/ipstride"
)

// Config selects the defended or undefended system and the prefetcher
// discipline.
type Config struct {
	// Secure selects the GhostMinion hierarchy.
	Secure bool
	// Prefetcher optionally attaches an L1D prefetcher ("" = none;
	// "ip-stride" is the canonical attack vector).
	Prefetcher string
	// OnCommitPrefetch trains/triggers the prefetcher only at commit
	// (the secure discipline); otherwise it trains on every access,
	// including transient ones.
	OnCommitPrefetch bool
	// Obs, if non-nil, observes the run: it is attached to every
	// hierarchy component, and the harness itself emits the core-side
	// lifecycle (EvIssue/EvFill/EvCommit), prefetcher training
	// (EvTrain), and — on the non-secure system, which has no GM to
	// announce it — the squash (EvSquash).
	Obs probe.Observer
}

// System is a memory hierarchy under attack-harness control.
type System struct {
	cfg Config
	l1d *cache.Cache
	l2  *cache.Cache
	llc *cache.Cache
	mem *dram.DRAM
	gm  *ghostminion.GM
	pf  prefetch.Prefetcher
	obs probe.Observer
	now mem.Cycle
	seq uint64
	cs  stats.CoreStats
}

// NewSystem builds the hierarchy per cfg.
func NewSystem(cfg Config) (*System, error) {
	s := &System{cfg: cfg, obs: cfg.Obs}
	s.mem = dram.New(dram.DefaultConfig())
	s.llc = cache.New(cache.LLCConfig(1), s.mem)
	s.l2 = cache.New(cache.L2Config(), s.llc)
	s.l1d = cache.New(cache.L1DConfig(), s.l2)
	if s.obs != nil {
		s.mem.Obs = s.obs
		s.llc.Obs = s.obs
		s.l2.Obs = s.obs
		s.l1d.Obs = s.obs
	}
	if cfg.Secure {
		s.gm = ghostminion.New(ghostminion.DefaultConfig(), s.l1d, nil)
		s.gm.Obs = s.obs
	}
	if cfg.Prefetcher != "" {
		pf, err := prefetch.New(cfg.Prefetcher, func(line mem.Line, ip mem.Addr, fill mem.Level) bool {
			return s.l1d.Prefetch(line, ip, fill, s.now)
		})
		if err != nil {
			return nil, err
		}
		s.pf = pf
	}
	return s, nil
}

// tick advances the whole hierarchy one cycle.
func (s *System) tick() {
	s.now++
	if s.gm != nil {
		s.gm.Tick(s.now)
	}
	s.l1d.Tick(s.now)
	s.l2.Tick(s.now)
	s.llc.Tick(s.now)
	s.mem.Tick(s.now)
}

// run advances until fn reports completion (or a cycle budget expires).
func (s *System) run(fn func() bool) bool {
	for budget := 0; budget < 1_000_000; budget++ {
		if fn() {
			return true
		}
		s.tick()
	}
	return false
}

// load issues one load (speculative path in the secure system) and
// waits for data, returning the observed latency. spec marks the load
// as wrong-path work that will later be squashed (victim transient
// loads); committed attacker loads pass false.
func (s *System) load(line mem.Line, ip mem.Addr, spec bool) mem.Cycle {
	start := s.now
	s.seq++
	if s.obs != nil {
		s.obs.Event(probe.Event{
			Kind: probe.EvIssue, Site: probe.SiteCore, Cycle: s.now,
			Seq: s.seq, Line: line, IP: ip, Req: mem.KindLoad, Spec: spec,
		})
	}
	done := false
	r := &mem.Request{
		Line:      line,
		IP:        ip,
		Kind:      mem.KindLoad,
		Issued:    s.now,
		Timestamp: s.seq,
		Owner:     mem.CompleterFunc(func(*mem.Request) { done = true }),
	}
	issued := false
	s.run(func() bool {
		if !issued {
			if s.gm != nil {
				issued = s.gm.IssueLoad(r)
			} else {
				issued = s.l1d.Enqueue(r)
			}
		}
		return issued && done
	})
	lat := s.now - start
	if s.obs != nil {
		s.obs.Event(probe.Event{
			Kind: probe.EvFill, Site: probe.SiteCore, Cycle: s.now,
			Seq: r.Timestamp, Line: line, IP: ip, Req: mem.KindLoad,
			Level: r.ServedBy, Aux: uint64(lat), Spec: spec,
		})
	}
	return lat
}

// CommittedLoad performs an architectural load: access, then commit
// (training an on-commit prefetcher and, in the secure system, running
// the GhostMinion commit engine).
func (s *System) CommittedLoad(line mem.Line, ip mem.Addr) mem.Cycle {
	lat := s.load(line, ip, false)
	if s.obs != nil {
		s.obs.Event(probe.Event{
			Kind: probe.EvCommit, Site: probe.SiteCore, Cycle: s.now,
			Seq: s.seq, Line: line, IP: ip, Req: mem.KindLoad,
		})
	}
	if s.gm != nil {
		hl := mem.LvlDRAM // conservative full update (no SUF in the harness)
		s.gm.Commit(line, s.seq, hl, &s.cs)
	}
	if s.pf != nil {
		// Both disciplines train on committed loads.
		if s.obs != nil {
			s.obs.Event(probe.Event{
				Kind: probe.EvTrain, Site: probe.SitePF, Cycle: s.now,
				Seq: s.seq, Line: line, IP: ip, Req: mem.KindLoad,
			})
		}
		s.pf.Train(prefetch.Event{Line: line, IP: ip, Cycle: s.now, AccessCycle: s.now})
	}
	s.drain(64)
	return lat
}

// TransientLoads executes the victim's speculative loads and then
// squashes them, as a mispredicted branch would. On the non-secure
// system the fills land in the hierarchy; on GhostMinion they land in
// the GM and are invalidated by the squash. An on-access prefetcher is
// trained by these loads; an on-commit prefetcher is not.
func (s *System) TransientLoads(lines []mem.Line, ip mem.Addr) {
	startSeq := s.seq + 1
	for _, l := range lines {
		s.load(l, ip, true)
		if s.pf != nil && !s.cfg.OnCommitPrefetch {
			// On-access (insecure) prefetching: speculative training.
			if s.obs != nil {
				s.obs.Event(probe.Event{
					Kind: probe.EvTrain, Site: probe.SitePF, Cycle: s.now,
					Seq: s.seq, Line: l, IP: ip, Req: mem.KindLoad, Spec: true,
				})
			}
			s.pf.Train(prefetch.Event{Line: l, IP: ip, Cycle: s.now, AccessCycle: s.now})
		}
	}
	// Squash: transient instructions never commit. The GM announces its
	// own squash; the non-secure hierarchy has no squash mechanism, so
	// the harness reports the architectural event itself.
	if s.gm != nil {
		s.gm.Squash(startSeq)
	} else if s.obs != nil {
		s.obs.Event(probe.Event{
			Kind: probe.EvSquash, Site: probe.SiteCore, Cycle: s.now,
			Seq: startSeq, Spec: true,
		})
	}
	s.drain(512)
}

// drain runs the hierarchy for n cycles so in-flight traffic settles.
func (s *System) drain(n int) {
	for i := 0; i < n; i++ {
		s.tick()
	}
}

// ProbeLatency measures the access latency of a line the attacker
// architecturally loads (prime+probe timing measurement).
func (s *System) ProbeLatency(line mem.Line, ip mem.Addr) mem.Cycle {
	return s.CommittedLoad(line, ip)
}

// CachedThreshold is the latency below which a probe is considered a
// cache hit (L1D/L2 service vs. LLC/DRAM).
const CachedThreshold = 30

package interference

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

func install(t *Tracker, core int, line mem.Line, kind mem.Kind) {
	t.Event(probe.Event{Kind: probe.EvInstall, Site: probe.SiteLLC, Core: core, Line: line, Req: kind})
}

func evict(t *Tracker, core int, line mem.Line, kind mem.Kind) {
	t.Event(probe.Event{Kind: probe.EvEvict, Site: probe.SiteLLC, Core: core, Line: line, Req: kind})
}

func miss(t *Tracker, core int, line mem.Line) {
	t.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteLLC, Core: core, Line: line, Req: mem.KindLoad})
}

func TestClassify(t *testing.T) {
	cases := map[mem.Kind]Class{
		mem.KindLoad:        ClassDemand,
		mem.KindRFO:         ClassDemand,
		mem.KindPrefetch:    ClassPrefetch,
		mem.KindCommitWrite: ClassSUF,
		mem.KindRefetch:     ClassSUF,
		mem.KindWriteback:   ClassMaintenance,
	}
	for k, want := range cases {
		if got := Classify(k); got != want {
			t.Errorf("Classify(%s) = %s, want %s", k, got, want)
		}
	}
}

// TestMatrixAttribution walks the core scenario: core 1's prefetch
// evicts core 0's line, core 0 then misses on it — one eviction in the
// (1,0,prefetch) cell, one inflicted miss, one pollution miss.
func TestMatrixAttribution(t *testing.T) {
	tr := New(2, 64, 8)

	install(tr, 0, 0x100, mem.KindLoad)
	if got := tr.occTot[0]; got != 1 {
		t.Fatalf("occupancy after install = %d, want 1", got)
	}

	evict(tr, 1, 0x100, mem.KindPrefetch)
	if got := tr.occTot[0]; got != 0 {
		t.Fatalf("occupancy after evict = %d, want 0", got)
	}
	c := tr.cells[1*2+0]
	if c.evictions[ClassPrefetch] != 1 {
		t.Fatalf("evictions[prefetch] = %d, want 1", c.evictions[ClassPrefetch])
	}

	miss(tr, 0, 0x100)
	c = tr.cells[1*2+0]
	if c.inflicted != 1 || c.pollution != 1 {
		t.Fatalf("inflicted=%d pollution=%d, want 1/1", c.inflicted, c.pollution)
	}

	// A second miss on the same line is not re-attributed: one eviction
	// inflates at most one miss.
	miss(tr, 0, 0x100)
	if c := tr.cells[1*2+0]; c.inflicted != 1 {
		t.Fatalf("double-counted inflicted miss: %d", c.inflicted)
	}
}

// TestDemandEvictionNotPollution: a demand-caused eviction counts as
// inflicted but never as pollution.
func TestDemandEvictionNotPollution(t *testing.T) {
	tr := New(2, 64, 8)
	install(tr, 0, 0x200, mem.KindLoad)
	evict(tr, 1, 0x200, mem.KindLoad)
	miss(tr, 0, 0x200)
	c := tr.cells[1*2+0]
	if c.evictions[ClassDemand] != 1 || c.inflicted != 1 || c.pollution != 0 {
		t.Fatalf("demand eviction: ev=%d inflicted=%d pollution=%d", c.evictions[ClassDemand], c.inflicted, c.pollution)
	}
}

// TestOwnershipTransfer: re-installing a present line moves occupancy
// to the new owner; the subsequent eviction charges the new owner as
// victim.
func TestOwnershipTransfer(t *testing.T) {
	tr := New(2, 64, 8)
	install(tr, 0, 0x300, mem.KindLoad)
	install(tr, 1, 0x300, mem.KindLoad)
	if tr.occTot[0] != 0 || tr.occTot[1] != 1 {
		t.Fatalf("occupancy after transfer: %d/%d, want 0/1", tr.occTot[0], tr.occTot[1])
	}
	evict(tr, 0, 0x300, mem.KindWriteback)
	if c := tr.cells[0*2+1]; c.evictions[ClassMaintenance] != 1 {
		t.Fatalf("maintenance eviction not charged to (0,1): %+v", c)
	}
}

// TestUnknownLineIgnored: evicting a line the tracker never saw
// installed leaves all state untouched (pre-attachment lines).
func TestUnknownLineIgnored(t *testing.T) {
	tr := New(2, 64, 8)
	evict(tr, 1, 0x400, mem.KindLoad)
	for i, c := range tr.cells {
		if c != (cell{}) {
			t.Fatalf("cell %d touched by unknown-line eviction", i)
		}
	}
}

func TestDRAMAttribution(t *testing.T) {
	tr := New(2, 64, 8)
	tr.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteDRAM, Core: 0, Req: mem.KindLoad, Hit: true})
	tr.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteDRAM, Core: 1, Req: mem.KindWriteback, Hit: false})
	if tr.dram[0].reads != 1 || tr.dram[0].rowHits != 1 {
		t.Fatalf("core0 dram %+v", tr.dram[0])
	}
	if tr.dram[1].writes != 1 || tr.dram[1].rowMisses != 1 {
		t.Fatalf("core1 dram %+v", tr.dram[1])
	}
}

// TestResetKeepsOccupancy: the warmup-boundary reset zeroes the matrix
// and DRAM counters but keeps the architectural occupancy mirror.
func TestResetKeepsOccupancy(t *testing.T) {
	tr := New(2, 64, 8)
	install(tr, 0, 0x500, mem.KindLoad)
	install(tr, 0, 0x501, mem.KindLoad)
	evict(tr, 1, 0x500, mem.KindPrefetch)
	tr.MergeLink(1, [mem.NumKinds]uint64{42})
	tr.ResetCounters(1000)
	if tr.occTot[0] != 1 {
		t.Fatalf("occupancy lost across reset: %d", tr.occTot[0])
	}
	if tr.cells[1*2+0] != (cell{}) {
		t.Fatal("matrix survived reset")
	}
	if d := tr.linkDelta(1); d[ClassDemand] != 0 {
		t.Fatalf("link baseline not rebased: %v", d)
	}
	tr.MergeLink(1, [mem.NumKinds]uint64{44})
	if d := tr.linkDelta(1); d[ClassDemand] != 2 {
		t.Fatalf("post-reset link delta = %d, want 2", d[ClassDemand])
	}
}

func TestWindowsAndSnapshot(t *testing.T) {
	tr := New(2, 64, 8)
	tr.EngineVersion = "test-engine"
	tr.ArmWindows(0, 100)
	install(tr, 0, 0x600, mem.KindLoad)
	evict(tr, 1, 0x600, mem.KindPrefetch)
	miss(tr, 0, 0x600)
	tr.Tick(50) // before the boundary: nothing published
	if tr.Snapshot() != nil {
		t.Fatal("snapshot published before first window boundary")
	}
	tr.Tick(105) // first barrier past the boundary
	s := tr.Snapshot()
	if s == nil {
		t.Fatal("no snapshot after window boundary")
	}
	if len(s.Windows) != 2 {
		t.Fatalf("window rows = %d, want 2 (one per core)", len(s.Windows))
	}
	if s.Windows[1].Core != 1 || s.Windows[1].EvCaused != 1 {
		t.Fatalf("core1 window %+v", s.Windows[1])
	}
	tr.Finish(200)
	s = tr.Snapshot()
	if len(s.Windows) != 4 {
		t.Fatalf("final window rows = %d, want 4", len(s.Windows))
	}
	if s.EngineVersion != "test-engine" || s.Cores != 2 {
		t.Fatalf("snapshot header %+v", s)
	}
}

func TestExports(t *testing.T) {
	tr := New(2, 64, 8)
	tr.EngineVersion = "test-engine"
	tr.ArmWindows(0, 100)
	install(tr, 0, 0x700, mem.KindLoad)
	evict(tr, 1, 0x700, mem.KindPrefetch)
	miss(tr, 0, 0x700)
	tr.Event(probe.Event{Kind: probe.EvAccess, Site: probe.SiteDRAM, Core: 1, Req: mem.KindLoad, Hit: true})
	tr.MergeLink(0, [mem.NumKinds]uint64{3, 0, 2, 1, 0, 0})
	tr.Finish(500)
	s := tr.Snapshot()

	var jb bytes.Buffer
	if err := s.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(jb.Bytes(), &back); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(back.Cells) != 4 || back.Cells[2].Evictions[ClassPrefetch] != 1 {
		t.Fatalf("JSON cells %+v", back.Cells)
	}

	var cb bytes.Buffer
	if err := s.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if len(lines) != 5 { // header + 4 cells
		t.Fatalf("CSV lines = %d, want 5:\n%s", len(lines), cb.String())
	}
	if !strings.HasPrefix(lines[0], "aggressor,victim,demand,prefetch,suf,maintenance") {
		t.Fatalf("CSV header %q", lines[0])
	}

	var pb bytes.Buffer
	if err := tr.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	prom := pb.String()
	for _, want := range []string{
		`secpref_interference_evictions_total{aggressor="1",victim="0",class="prefetch"} 1`,
		`secpref_interference_inflicted_total{aggressor="1",victim="0"} 1`,
		`secpref_interference_pollution_total{aggressor="1",victim="0"} 1`,
		`secpref_interference_occupancy_lines{core="0"}`,
		`secpref_interference_dram_reads_total{core="1"} 1`,
		`secpref_interference_link_requests_total{core="0",class="demand"} 3`,
		`secpref_interference_engine_info{version="test-engine"} 1`,
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}

	var tb bytes.Buffer
	if err := s.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tb.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	var procs int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs++
		}
		if ev.Ph == "C" {
			pids[ev.Pid] = true
		}
	}
	if procs != 2 {
		t.Errorf("process_name metadata = %d, want one per core", procs)
	}
	if len(pids) != 2 {
		t.Errorf("counter tracks span %d pids, want 2 (per-core tracks)", len(pids))
	}
}

// TestEmptyTrackerPrometheus: a tracker that never published writes
// nothing (live /metrics before the first window).
func TestEmptyTrackerPrometheus(t *testing.T) {
	tr := New(2, 64, 8)
	var b bytes.Buffer
	if err := tr.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("unpublished tracker wrote %q", b.String())
	}
}

// Package interference is the cross-core interference observatory: an
// attribution layer over the shared LLC/DRAM domain that answers "who
// hurt whom, with what kind of traffic, at what cost" for sharded
// multicore runs.
//
// The Tracker rides the standard branch-on-nil probe contract: it is a
// probe.Observer attached to the shared domain's LLC and DRAM observer
// fields, plus a barrier hook the multicore engine calls after each
// shared-domain advance. It is strictly read-only with respect to the
// simulation — attaching it cannot change results or digests (the
// multicore equivalence gate enforces bit-identity with observers on).
//
// Determinism: every event the Tracker consumes is emitted by the
// shared domain, which advances serially on one goroutine in the seeded
// deterministic drain order, and the per-core link counters it merges
// at barriers are fixed functions of each core's deterministic private
// execution. The cumulative matrices are therefore bit-identical across
// GOMAXPROCS, worker counts, barrier intervals, and engines (asserted
// in internal/multicore's determinism suite). Only the windowed
// timeline is barrier-quantized: a window boundary is sampled at the
// first barrier at or after it, so timelines from different barrier
// intervals may sample slightly different cycles (the cumulative values
// at any common cycle still agree).
package interference

import (
	"math/bits"
	"sync"

	"secpref/internal/mem"
	"secpref/internal/probe"
)

// Class is the provenance of a shared-domain request, the axis the
// eviction matrix splits on.
type Class uint8

const (
	// ClassDemand: committed-path loads and RFOs (including GhostMinion
	// speculative probes, which carry demand kinds).
	ClassDemand Class = iota
	// ClassPrefetch: hardware prefetches.
	ClassPrefetch
	// ClassSUF: the secure commit path — on-commit writes and re-fetches
	// the store-update filter did not suppress.
	ClassSUF
	// ClassMaintenance: victim writebacks and clean propagations.
	ClassMaintenance

	// NumClasses is the number of provenance classes.
	NumClasses = int(ClassMaintenance) + 1
)

// ClassNames names the classes in Class order (export labels).
var ClassNames = [NumClasses]string{"demand", "prefetch", "suf", "maintenance"}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < NumClasses {
		return ClassNames[c]
	}
	return "unknown"
}

// Classify maps a request kind to its provenance class.
func Classify(k mem.Kind) Class {
	switch k {
	case mem.KindPrefetch:
		return ClassPrefetch
	case mem.KindCommitWrite, mem.KindRefetch:
		return ClassSUF
	case mem.KindWriteback:
		return ClassMaintenance
	}
	return ClassDemand
}

// DefaultWindowCycles is the timeline sampling interval when ArmWindows
// is called with zero.
const DefaultWindowCycles mem.Cycle = 16384

// cell is one (aggressor, victim) entry of the attribution matrix.
type cell struct {
	// evictions counts victim lines the aggressor displaced, by the
	// aggressor's provenance class.
	evictions [NumClasses]uint64
	// inflicted counts victim demand misses on lines this aggressor had
	// evicted (victim-miss inflation); pollution is the subset where the
	// evicting fill was a prefetch.
	inflicted uint64
	pollution uint64
}

// Ownership and last-evictor tables pack one record per uint64 so a
// lookup costs one cache access: the line in the high bits, the core
// biased by one in the low byte (0 = empty slot). The evictor word
// additionally keeps the aggressor's class below the line.
const (
	ownBits = 8  // own: line<<8 | core+1
	evBits  = 16 // ev: line<<16 | (agg+1)<<8 | class
)

// dramCounters is one core's shared-DRAM activity.
type dramCounters struct {
	reads, writes, rowHits, rowMisses uint64
}

// Tracker is the interference observatory for one sharded run. The hot
// half (Event) runs on the engine goroutine that advances the shared
// domain; the exported snapshot is double-buffered and published under
// a mutex only at window boundaries, so a live /metrics scrape never
// races the simulation.
type Tracker struct {
	cores, sets, ways int

	// Live attribution state — engine goroutine only. The ownership
	// mirror is a per-set open-addressed table of packed words instead
	// of a map: the tracker sits on the LLC's hottest events inside the
	// engine's serial shared-domain phase, where every avoided cache
	// miss and hash comes straight off the barrier critical path. setOf
	// matches the cache's own set indexing and the cache evicts before
	// it installs, so a set never holds more than `ways` resident lines
	// and the table is exact.
	own         []uint64 // [set*ways + slot] packed line/core; 0 = empty
	occTot      []uint64 // per-core resident lines
	cells       []cell   // [aggressor*cores + victim]
	causedTot   []uint64 // per-aggressor eviction total
	sufferedTot []uint64 // per-victim eviction total
	inflVicTot  []uint64 // per-victim inflicted-miss total
	pollVicTot  []uint64 // per-victim pollution-miss total

	// Last-evictor memory: a direct-mapped mirror sized to the LLC
	// (multiplicative hash of the line). A colliding newer eviction
	// deterministically replaces an older record, so attribution of
	// victim misses is a bounded-memory approximation; each surviving
	// record still inflates at most one miss.
	ev          []uint64 // packed line/aggressor/class; 0 = empty
	evHashShift uint

	dram []dramCounters

	// Per-core link traffic, merged (cumulatively) at barriers; base is
	// the warmup baseline subtracted from exports.
	linkNow  [][mem.NumKinds]uint64
	linkBase [][mem.NumKinds]uint64

	winEvery mem.Cycle
	winNext  mem.Cycle
	winStart mem.Cycle
	windows  []WindowRow

	// EngineVersion stamps exports (set by the multicore engine).
	EngineVersion string

	mu  sync.Mutex
	pub *Snapshot
}

// New builds a tracker for a shared LLC of the given geometry. sets
// must be a power of two (it is: cache sizes are).
func New(cores, sets, ways int) *Tracker {
	evSize := 1
	for evSize < sets*ways {
		evSize <<= 1
	}
	return &Tracker{
		cores:       cores,
		sets:        sets,
		ways:        ways,
		own:         make([]uint64, sets*ways),
		occTot:      make([]uint64, cores),
		cells:       make([]cell, cores*cores),
		causedTot:   make([]uint64, cores),
		sufferedTot: make([]uint64, cores),
		inflVicTot:  make([]uint64, cores),
		pollVicTot:  make([]uint64, cores),
		ev:          make([]uint64, evSize),
		evHashShift: 64 - uint(bits.TrailingZeros(uint(evSize))),
		dram:        make([]dramCounters, cores),
		linkNow:     make([][mem.NumKinds]uint64, cores),
		linkBase:    make([][mem.NumKinds]uint64, cores),
	}
}

// evIdx is the last-evictor table's multiplicative hash (Fibonacci
// constant; the shift keeps the high bits, which mix set and tag).
func (t *Tracker) evIdx(l mem.Line) int {
	return int((uint64(l) * 0x9E3779B97F4A7C15) >> t.evHashShift)
}

// Cores returns the tracked core count.
func (t *Tracker) Cores() int { return t.cores }

func (t *Tracker) setOf(l mem.Line) int { return int(uint64(l) & uint64(t.sets-1)) }

// Event implements probe.Observer for the shared domain's LLC and DRAM
// sites. Events from private sites are ignored (the tracker is only
// attached to shared components, but a fanout may deliver more).
func (t *Tracker) Event(ev probe.Event) {
	switch ev.Site {
	case probe.SiteLLC:
		switch ev.Kind {
		case probe.EvInstall:
			t.install(ev)
		case probe.EvEvict:
			t.evictEv(ev)
		case probe.EvAccess:
			if !ev.Hit && ev.Req.IsDemand() {
				t.demandMiss(ev)
			}
		case probe.EvMerge:
			// Joining an in-flight fetch is still a miss for this core's
			// latency; attribute it the same way.
			if ev.Req.IsDemand() {
				t.demandMiss(ev)
			}
		}
	case probe.SiteDRAM:
		if ev.Kind == probe.EvAccess {
			t.dramAccess(ev)
		}
	}
}

// install tracks line ownership: the installing core becomes the line's
// owner (a refill of a present line transfers ownership first).
func (t *Tracker) install(ev probe.Event) {
	c := ev.Core
	if c >= t.cores || c < 0 {
		return
	}
	word := uint64(ev.Line)<<ownBits | uint64(c+1)
	base := t.setOf(ev.Line) * t.ways
	free := -1
	for i := base; i < base+t.ways; i++ {
		w := t.own[i]
		if w == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if w>>ownBits == uint64(ev.Line) {
			t.occTot[w&(1<<ownBits-1)-1]--
			t.own[i] = word
			t.occTot[c]++
			return
		}
	}
	if free < 0 {
		// Full set with the line absent cannot happen while setOf matches
		// the cache's indexing (the cache evicts before installing); if a
		// future geometry breaks that, drop rather than corrupt occupancy.
		return
	}
	t.own[free] = word
	t.occTot[c]++
}

// evictEv charges the eviction to the (aggressor, victim, class) cell
// and remembers the evictor so the victim's next miss on the line can
// be attributed.
func (t *Tracker) evictEv(ev probe.Event) {
	agg := ev.Core
	if agg < 0 || agg >= t.cores {
		return
	}
	base := t.setOf(ev.Line) * t.ways
	victim := -1
	for i := base; i < base+t.ways; i++ {
		if w := t.own[i]; w != 0 && w>>ownBits == uint64(ev.Line) {
			victim = int(w&(1<<ownBits-1)) - 1
			t.own[i] = 0
			break
		}
	}
	if victim < 0 {
		// A line installed before the tracker attached; ownership
		// unknown, occupancy untouched.
		return
	}
	t.occTot[victim]--

	class := Classify(ev.Req)
	t.cells[agg*t.cores+victim].evictions[class]++
	t.causedTot[agg]++
	t.sufferedTot[victim]++
	t.ev[t.evIdx(ev.Line)] = uint64(ev.Line)<<evBits | uint64(agg+1)<<8 | uint64(class)
}

// demandMiss attributes a victim's LLC demand miss to the core that
// last evicted the line (victim-miss inflation; the prefetch-caused
// subset is pollution). Each eviction inflates at most one miss.
func (t *Tracker) demandMiss(ev probe.Event) {
	ei := t.evIdx(ev.Line)
	w := t.ev[ei]
	if w == 0 || w>>evBits != uint64(ev.Line) {
		return
	}
	t.ev[ei] = 0
	agg := int(w>>8&0xff) - 1
	victim := ev.Core
	if victim < 0 || victim >= t.cores {
		return
	}
	c := &t.cells[agg*t.cores+victim]
	c.inflicted++
	t.inflVicTot[victim]++
	if Class(w&0xff) == ClassPrefetch {
		c.pollution++
		t.pollVicTot[victim]++
	}
}

// dramAccess tallies per-core DRAM bandwidth and row-buffer behaviour.
func (t *Tracker) dramAccess(ev probe.Event) {
	c := ev.Core
	if c < 0 || c >= t.cores {
		return
	}
	d := &t.dram[c]
	if ev.Req == mem.KindWriteback || ev.Req == mem.KindCommitWrite {
		d.writes++
	} else {
		d.reads++
	}
	if ev.Hit {
		d.rowHits++
	} else {
		d.rowMisses++
	}
}

// MergeLink overwrites one core's cumulative link-traffic counters.
// The multicore engine calls it at barrier boundaries, in core order,
// after the worker join (the happens-before edge that makes the core
// goroutine's writes visible) — the deterministic merge point the
// observatory contract requires.
func (t *Tracker) MergeLink(core int, counts [mem.NumKinds]uint64) {
	t.linkNow[core] = counts
}

// ArmWindows starts the barrier-quantized timeline: a cumulative
// per-core sample is recorded (and the export snapshot republished) at
// the first Tick at or after each boundary. every == 0 selects
// DefaultWindowCycles.
func (t *Tracker) ArmWindows(now mem.Cycle, every mem.Cycle) {
	if every == 0 {
		every = DefaultWindowCycles
	}
	t.winEvery = every
	t.winStart = now
	t.winNext = now + every
}

// ResetCounters zeroes the attribution counters at the warmup boundary
// while keeping the architectural mirrors (line ownership, occupancy):
// resident lines persist across the boundary, but the matrix should
// count only measured-phase interference. Link counters keep
// accumulating in the links; the current values become the subtracted
// baseline. The timeline restarts relative to now.
func (t *Tracker) ResetCounters(now mem.Cycle) {
	for i := range t.cells {
		t.cells[i] = cell{}
	}
	for i := 0; i < t.cores; i++ {
		t.causedTot[i] = 0
		t.sufferedTot[i] = 0
		t.inflVicTot[i] = 0
		t.pollVicTot[i] = 0
		t.dram[i] = dramCounters{}
		t.linkBase[i] = t.linkNow[i]
	}
	t.windows = t.windows[:0]
	if t.winEvery != 0 {
		t.winStart = now
		t.winNext = now + t.winEvery
	}
}

// Tick is the barrier hook: the engine calls it after every shared-
// domain advance (every cycle on the lockstep reference engine). It
// records due timeline windows and republishes the export snapshot.
func (t *Tracker) Tick(now mem.Cycle) {
	if t.winEvery == 0 || now < t.winNext {
		return
	}
	t.record(now)
	for now >= t.winNext {
		t.winNext += t.winEvery
	}
	t.publish(now)
}

// Finish records the final partial window and publishes the snapshot.
func (t *Tracker) Finish(now mem.Cycle) {
	if t.winEvery != 0 && (len(t.windows) == 0 || t.windows[len(t.windows)-1].Cycle != uint64(now-t.winStart)) {
		t.record(now)
	}
	t.publish(now)
}

// record appends one cumulative per-core timeline row per core.
func (t *Tracker) record(now mem.Cycle) {
	for c := 0; c < t.cores; c++ {
		link := t.linkDelta(c)
		t.windows = append(t.windows, WindowRow{
			Cycle:        uint64(now - t.winStart),
			Core:         c,
			OccLines:     t.occTot[c],
			EvCaused:     t.causedTot[c],
			EvSuffered:   t.sufferedTot[c],
			Inflicted:    t.inflVicTot[c],
			Pollution:    t.pollVicTot[c],
			DRAMReads:    t.dram[c].reads,
			DRAMWrites:   t.dram[c].writes,
			RowHits:      t.dram[c].rowHits,
			RowMisses:    t.dram[c].rowMisses,
			LinkDemand:   link[ClassDemand],
			LinkPrefetch: link[ClassPrefetch],
			LinkSUF:      link[ClassSUF],
			LinkMaint:    link[ClassMaintenance],
		})
	}
}

// linkDelta folds one core's baseline-adjusted link counters by class.
func (t *Tracker) linkDelta(c int) [NumClasses]uint64 {
	var out [NumClasses]uint64
	for k := 0; k < mem.NumKinds; k++ {
		d := t.linkNow[c][k] - t.linkBase[c][k]
		out[Classify(mem.Kind(k))] += d
	}
	return out
}

// Snapshot assembly and the export quartet: JSON, CSV, Prometheus
// text format (probe.PrometheusWriter), and Chrome/Perfetto counter
// tracks. The Tracker double-buffers: the engine goroutine publishes a
// complete copy at window boundaries, exports read the last published
// copy under the mutex — a live /metrics scrape never touches live
// attribution state.
package interference

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"secpref/internal/mem"
)

// CellRow is one exported (aggressor, victim) matrix entry. Evictions
// is indexed by Class (ClassNames order).
type CellRow struct {
	Aggressor int                `json:"aggressor"`
	Victim    int                `json:"victim"`
	Evictions [NumClasses]uint64 `json:"evictions"`
	Inflicted uint64             `json:"inflicted"`
	Pollution uint64             `json:"pollution"`
}

// Total sums the eviction classes.
func (c CellRow) Total() uint64 {
	var n uint64
	for _, v := range c.Evictions {
		n += v
	}
	return n
}

// CoreRow is one core's aggregate shared-domain footprint.
type CoreRow struct {
	Core int `json:"core"`
	// OccLines is the core's resident LLC lines at snapshot time;
	// OccShare normalizes by total LLC capacity.
	OccLines uint64  `json:"occ_lines"`
	OccShare float64 `json:"occ_share"`
	// Evictions caused (as aggressor) and suffered (as victim), and the
	// inflicted/pollution misses suffered as victim.
	EvCaused   uint64 `json:"ev_caused"`
	EvSuffered uint64 `json:"ev_suffered"`
	Inflicted  uint64 `json:"inflicted"`
	Pollution  uint64 `json:"pollution"`
	// Shared-DRAM activity attributed to the core.
	DRAMReads  uint64 `json:"dram_reads"`
	DRAMWrites uint64 `json:"dram_writes"`
	RowHits    uint64 `json:"row_hits"`
	RowMisses  uint64 `json:"row_misses"`
	// Link traffic by provenance class (requests entering the shared
	// domain over this core's link, measured-phase baseline-adjusted).
	Link [NumClasses]uint64 `json:"link"`
}

// WindowRow is one core's cumulative timeline sample at a (barrier-
// quantized) window boundary. Cycle is relative to the measured-phase
// start; consecutive rows of one core difference into rates.
type WindowRow struct {
	Cycle        uint64 `json:"cycle"`
	Core         int    `json:"core"`
	OccLines     uint64 `json:"occ_lines"`
	EvCaused     uint64 `json:"ev_caused"`
	EvSuffered   uint64 `json:"ev_suffered"`
	Inflicted    uint64 `json:"inflicted"`
	Pollution    uint64 `json:"pollution"`
	DRAMReads    uint64 `json:"dram_reads"`
	DRAMWrites   uint64 `json:"dram_writes"`
	RowHits      uint64 `json:"row_hits"`
	RowMisses    uint64 `json:"row_misses"`
	LinkDemand   uint64 `json:"link_demand"`
	LinkPrefetch uint64 `json:"link_prefetch"`
	LinkSUF      uint64 `json:"link_suf"`
	LinkMaint    uint64 `json:"link_maintenance"`
}

// Snapshot is a self-contained copy of the observatory's state, safe to
// export after (or during, via the published buffer) a run.
type Snapshot struct {
	EngineVersion string      `json:"engine_version"`
	Cores         int         `json:"cores"`
	Sets          int         `json:"sets"`
	Ways          int         `json:"ways"`
	Cycle         uint64      `json:"cycle"`
	Cells         []CellRow   `json:"cells"`
	PerCore       []CoreRow   `json:"per_core"`
	Windows       []WindowRow `json:"windows"`
}

// snapshotLocked assembles a Snapshot from live state. Engine goroutine
// only.
func (t *Tracker) snapshot(now mem.Cycle) *Snapshot {
	s := &Snapshot{
		EngineVersion: t.EngineVersion,
		Cores:         t.cores,
		Sets:          t.sets,
		Ways:          t.ways,
		Cycle:         uint64(now),
		Cells:         make([]CellRow, 0, t.cores*t.cores),
		PerCore:       make([]CoreRow, t.cores),
		Windows:       append([]WindowRow(nil), t.windows...),
	}
	for a := 0; a < t.cores; a++ {
		for v := 0; v < t.cores; v++ {
			c := t.cells[a*t.cores+v]
			s.Cells = append(s.Cells, CellRow{
				Aggressor: a, Victim: v,
				Evictions: c.evictions,
				Inflicted: c.inflicted,
				Pollution: c.pollution,
			})
		}
	}
	capacity := float64(t.sets * t.ways)
	for c := 0; c < t.cores; c++ {
		s.PerCore[c] = CoreRow{
			Core:       c,
			OccLines:   t.occTot[c],
			OccShare:   float64(t.occTot[c]) / capacity,
			EvCaused:   t.causedTot[c],
			EvSuffered: t.sufferedTot[c],
			Inflicted:  t.inflVicTot[c],
			Pollution:  t.pollVicTot[c],
			DRAMReads:  t.dram[c].reads,
			DRAMWrites: t.dram[c].writes,
			RowHits:    t.dram[c].rowHits,
			RowMisses:  t.dram[c].rowMisses,
			Link:       t.linkDelta(c),
		}
	}
	return s
}

// publish copies the live state into the mutex-guarded export buffer.
// Engine goroutine only; called at window boundaries and run end.
func (t *Tracker) publish(now mem.Cycle) {
	s := t.snapshot(now)
	t.mu.Lock()
	t.pub = s
	t.mu.Unlock()
}

// Snapshot returns the last published snapshot (nil before the first
// window boundary or Finish). Safe from any goroutine.
func (t *Tracker) Snapshot() *Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pub
}

// WriteJSON writes the snapshot as one indented JSON document.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV writes the attribution matrix, one row per (aggressor,
// victim) cell.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"aggressor", "victim"}
	header = append(header, ClassNames[:]...)
	header = append(header, "total", "inflicted", "pollution")
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, len(header))
	for _, c := range s.Cells {
		row = row[:0]
		row = append(row, strconv.Itoa(c.Aggressor), strconv.Itoa(c.Victim))
		for _, v := range c.Evictions {
			row = append(row, strconv.FormatUint(v, 10))
		}
		row = append(row,
			strconv.FormatUint(c.Total(), 10),
			strconv.FormatUint(c.Inflicted, 10),
			strconv.FormatUint(c.Pollution, 10))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePrometheus implements probe.PrometheusWriter: the matrix as
// labeled counters, per-core footprint as gauges. Label cardinality is
// cores² for the matrix series — fine at the 4–64 cores this simulator
// runs.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_evictions_total Cross-core LLC evictions by aggressor provenance.\n# TYPE secpref_interference_evictions_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		for cl, v := range c.Evictions {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w,
				"secpref_interference_evictions_total{aggressor=\"%d\",victim=\"%d\",class=%q} %d\n",
				c.Aggressor, c.Victim, ClassNames[cl], v); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_inflicted_total Victim demand misses on lines the aggressor evicted.\n# TYPE secpref_interference_inflicted_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		if c.Inflicted == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w,
			"secpref_interference_inflicted_total{aggressor=\"%d\",victim=\"%d\"} %d\n",
			c.Aggressor, c.Victim, c.Inflicted); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_pollution_total Inflicted misses whose evicting fill was a prefetch.\n# TYPE secpref_interference_pollution_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.Cells {
		if c.Pollution == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w,
			"secpref_interference_pollution_total{aggressor=\"%d\",victim=\"%d\"} %d\n",
			c.Aggressor, c.Victim, c.Pollution); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_occupancy_lines Per-core resident shared-LLC lines.\n# TYPE secpref_interference_occupancy_lines gauge\n"); err != nil {
		return err
	}
	for _, c := range s.PerCore {
		if _, err := fmt.Fprintf(w, "secpref_interference_occupancy_lines{core=\"%d\"} %d\n", c.Core, c.OccLines); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_dram_reads_total Per-core shared-DRAM reads.\n# TYPE secpref_interference_dram_reads_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.PerCore {
		if _, err := fmt.Fprintf(w, "secpref_interference_dram_reads_total{core=\"%d\"} %d\n", c.Core, c.DRAMReads); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_dram_writes_total Per-core shared-DRAM writes (charged to the causing core).\n# TYPE secpref_interference_dram_writes_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.PerCore {
		if _, err := fmt.Fprintf(w, "secpref_interference_dram_writes_total{core=\"%d\"} %d\n", c.Core, c.DRAMWrites); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# HELP secpref_interference_link_requests_total Per-core shared-link requests by provenance class.\n# TYPE secpref_interference_link_requests_total counter\n"); err != nil {
		return err
	}
	for _, c := range s.PerCore {
		for cl, v := range c.Link {
			if v == 0 {
				continue
			}
			if _, err := fmt.Fprintf(w,
				"secpref_interference_link_requests_total{core=\"%d\",class=%q} %d\n",
				c.Core, ClassNames[cl], v); err != nil {
				return err
			}
		}
	}
	if s.EngineVersion != "" {
		if _, err := fmt.Fprintf(w, "# HELP secpref_interference_engine_info Engine generation the snapshot was recorded under.\n# TYPE secpref_interference_engine_info gauge\nsecpref_interference_engine_info{version=%q} 1\n", s.EngineVersion); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus implements probe.PrometheusWriter on the Tracker by
// exporting the last published snapshot (nothing before the first
// publish). Safe to hang off a live /metrics handler while a run is in
// flight.
func (t *Tracker) WritePrometheus(w io.Writer) error {
	s := t.Snapshot()
	if s == nil {
		return nil
	}
	return s.WritePrometheus(w)
}

// chromeEvent is one Chrome trace-event entry; per-core counter tracks
// use one process per core ("C" events group by pid) so multicore
// exports don't collapse into a single track.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   uint64            `json:"ts,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]uint64 `json:"args,omitempty"`
}

type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Pid  int               `json:"pid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace exports the windowed timeline as per-core Perfetto
// counter tracks (load with ui.perfetto.dev). One process per core,
// named; 1 simulated cycle = 1µs, matching the observatory convention.
func (s *Snapshot) WriteChromeTrace(w io.Writer) error {
	events := make([]interface{}, 0, len(s.Windows)*2+s.Cores)
	for c := 0; c < s.Cores; c++ {
		events = append(events, chromeMeta{
			Name: "process_name", Ph: "M", Pid: c + 1,
			Args: map[string]string{"name": fmt.Sprintf("core%d interference", c)},
		})
	}
	for _, row := range s.Windows {
		pid := row.Core + 1
		events = append(events,
			chromeEvent{Name: "llc_occupancy", Ph: "C", Ts: row.Cycle, Pid: pid, Tid: 1,
				Args: map[string]uint64{"lines": row.OccLines}},
			chromeEvent{Name: "evictions", Ph: "C", Ts: row.Cycle, Pid: pid, Tid: 1,
				Args: map[string]uint64{"caused": row.EvCaused, "suffered": row.EvSuffered}},
			chromeEvent{Name: "inflation", Ph: "C", Ts: row.Cycle, Pid: pid, Tid: 1,
				Args: map[string]uint64{"inflicted": row.Inflicted, "pollution": row.Pollution}},
			chromeEvent{Name: "dram", Ph: "C", Ts: row.Cycle, Pid: pid, Tid: 1,
				Args: map[string]uint64{"reads": row.DRAMReads, "writes": row.DRAMWrites}},
			chromeEvent{Name: "link", Ph: "C", Ts: row.Cycle, Pid: pid, Tid: 1,
				Args: map[string]uint64{
					"demand": row.LinkDemand, "prefetch": row.LinkPrefetch,
					"suf": row.LinkSUF, "maintenance": row.LinkMaint,
				}},
		)
	}
	doc := struct {
		TraceEvents []interface{} `json:"traceEvents"`
	}{TraceEvents: events}
	return json.NewEncoder(w).Encode(doc)
}

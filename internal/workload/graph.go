package workload

import (
	"math/rand"
	"sort"
	"sync"
)

// Graph is a directed graph in CSR (compressed sparse row) form, the
// representation the GAP benchmark suite uses. Offsets has n+1 entries;
// the neighbors of vertex u are Neighbors[Offsets[u]:Offsets[u+1]].
type Graph struct {
	N         int
	Offsets   []int32
	Neighbors []int32
}

// Degree returns the out-degree of u.
func (g *Graph) Degree(u int32) int {
	return int(g.Offsets[u+1] - g.Offsets[u])
}

// Neigh returns the neighbor slice of u (shared storage; do not mutate).
func (g *Graph) Neigh(u int32) []int32 {
	return g.Neighbors[g.Offsets[u]:g.Offsets[u+1]]
}

// graphCfg identifies a synthetic graph.
type graphCfg struct {
	n    int
	deg  int
	seed int64
}

// NewSkewedGraph builds a graph with n vertices and ~n*deg edges whose
// degree distribution is power-law-skewed (Kronecker/RMAT-like), the
// character of the GAP input graphs. Endpoint choice squares a uniform
// variate so low-numbered vertices act as hubs. Neighbor lists are
// sorted and deduplicated, as GAP's builder produces.
func NewSkewedGraph(n, deg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	edges := n * deg
	for i := 0; i < edges; i++ {
		u := int32(rng.Intn(n))
		// Skewed target: squaring biases toward 0, creating hubs.
		f := rng.Float64()
		v := int32(f * f * float64(n))
		if v >= int32(n) {
			v = int32(n - 1)
		}
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
	}
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	total := 0
	for u := range adj {
		ns := adj[u]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		// Deduplicate in place.
		w := 0
		for i, v := range ns {
			if i == 0 || v != ns[i-1] {
				ns[w] = v
				w++
			}
		}
		adj[u] = ns[:w]
		total += w
	}
	g.Neighbors = make([]int32, 0, total)
	for u := range adj {
		g.Offsets[u] = int32(len(g.Neighbors))
		g.Neighbors = append(g.Neighbors, adj[u]...)
	}
	g.Offsets[n] = int32(len(g.Neighbors))
	return g
}

// Graph construction is the most expensive part of GAP trace
// generation, and the experiment harness generates each trace under
// many configurations, so graphs are memoized.
var (
	graphMu    sync.Mutex
	graphCache = map[graphCfg]*Graph{}
)

func getGraph(cfg graphCfg) *Graph {
	graphMu.Lock()
	defer graphMu.Unlock()
	if g, ok := graphCache[cfg]; ok {
		return g
	}
	g := NewSkewedGraph(cfg.n, cfg.deg, cfg.seed)
	graphCache[cfg] = g
	return g
}

package workload

import (
	"secpref/internal/mem"
	"secpref/internal/trace"
)

// GAP kernel trace generators. Unlike the SPEC-like generators, these
// run the actual graph algorithms (BFS, SSSP, CC, PageRank, BC) over a
// synthetic skewed graph and emit the address stream the algorithm's
// data structures produce: sequential offset/neighbor-array streaming
// interleaved with data-dependent vertex-property accesses. This
// reproduces GAP's signature behaviour — a prefetchable edge stream
// feeding an unprefetchable gather — including the long fetch latencies
// behind TSB's average 10.8% win on bfs.

// gapEmitter wraps emitter with the CSR address layout.
type gapEmitter struct {
	*emitter
	g *Graph

	// Static call-site IPs, allocated once per kernel.
	ipOff, ipNeigh, ipData, ipData2, ipStoreData, ipStoreQ mem.Addr
	ipLoadQ, ipExec, ipBrVisit, ipBrEdge, ipBrVert         mem.Addr
}

// Address layout (one region per array, as GAP allocates):
//
//	region 0: Offsets   (4 B / vertex)
//	region 1: Neighbors (4 B / edge)
//	region 2: primary vertex property (dist / comp / rank) (8 B / vertex)
//	region 3: secondary vertex property (parent / next rank / sigma)
//	region 4: worklist / frontier queue (4 B / slot)
func newGapEmitter(name string, p Params, g *Graph) *gapEmitter {
	ge := &gapEmitter{emitter: newEmitter(name, p), g: g}
	ge.ipOff = ge.ip()
	ge.ipNeigh = ge.ip()
	ge.ipData = ge.ip()
	ge.ipData2 = ge.ip()
	ge.ipStoreData = ge.ip()
	ge.ipStoreQ = ge.ip()
	ge.ipLoadQ = ge.ip()
	ge.ipExec = ge.ip()
	ge.ipBrVisit = ge.ip()
	ge.ipBrEdge = ge.ip()
	ge.ipBrVert = ge.ip()
	return ge
}

func (ge *gapEmitter) offAddr(u int32) mem.Addr   { return region(0) + mem.Addr(u)*4 }
func (ge *gapEmitter) neighAddr(i int32) mem.Addr { return region(1) + mem.Addr(i)*4 }
func (ge *gapEmitter) dataAddr(v int32) mem.Addr  { return region(2) + mem.Addr(v)*8 }
func (ge *gapEmitter) data2Addr(v int32) mem.Addr { return region(3) + mem.Addr(v)*8 }
func (ge *gapEmitter) queueAddr(i int) mem.Addr   { return region(4) + mem.Addr(i)*4 }

// visitEdges emits the canonical GAP inner loop for vertex u: load the
// offset pair, stream the neighbor list, and for each neighbor load its
// property (data-dependent). visit is called per neighbor and may emit
// additional instructions; it returns whether a branch-taken event
// (e.g. relaxation) occurred.
func (ge *gapEmitter) visitEdges(u int32, visit func(v int32) bool) {
	ge.load(ge.ipOff, ge.offAddr(u))
	lo, hi := ge.g.Offsets[u], ge.g.Offsets[u+1]
	for i := lo; i < hi && !ge.full(); i++ {
		if i == lo {
			// First neighbor load depends on the offset load.
			ge.depLoad(ge.ipNeigh, ge.neighAddr(i))
		} else {
			ge.load(ge.ipNeigh, ge.neighAddr(i))
		}
		v := ge.g.Neighbors[i]
		// The property load's address comes from the neighbor value.
		ge.depLoad(ge.ipData, ge.dataAddr(v))
		taken := visit(v)
		ge.branch(ge.ipBrVisit, taken)
		ge.exec(ge.ipExec, 1)
		ge.branch(ge.ipBrEdge, i+1 < hi)
	}
}

func gapGraphFor(variant int64, scale float64) graphCfg {
	// ~one million vertices scaled; vertex-property arrays exceed the
	// 2 MiB LLC so the gather misses all levels, as in GAP.
	n := int(600_000 * scale)
	return graphCfg{n: n, deg: 12, seed: 42 + variant}
}

// genBFS emits top-down breadth-first search from rotating sources.
func genBFS(name string, variant int64) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		g := getGraph(gapGraphFor(variant, 1))
		ge := newGapEmitter(name, p, g)
		parent := make([]int32, g.N)
		src := int32(variant * 17 % int64(g.N))
		for !ge.full() {
			for i := range parent {
				parent[i] = -1
			}
			parent[src] = src
			queue := []int32{src}
			for len(queue) > 0 && !ge.full() {
				u := queue[0]
				queue = queue[1:]
				ge.load(ge.ipLoadQ, ge.queueAddr(len(queue)))
				ge.visitEdges(u, func(v int32) bool {
					if parent[v] < 0 {
						parent[v] = u
						queue = append(queue, v)
						ge.store(ge.ipStoreData, ge.dataAddr(v))
						ge.store(ge.ipStoreQ, ge.queueAddr(len(queue)))
						return true
					}
					return false
				})
			}
			src = (src + 7919) % int32(g.N)
		}
		return ge.done()
	}
}

// genSSSP emits Bellman-Ford-style single-source shortest paths
// (GAP's delta-stepping has the same per-edge access skeleton).
func genSSSP(name string, variant int64) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		g := getGraph(gapGraphFor(variant, 1))
		ge := newGapEmitter(name, p, g)
		const inf = int32(1 << 30)
		dist := make([]int32, g.N)
		src := int32(variant * 131 % int64(g.N))
		for !ge.full() {
			for i := range dist {
				dist[i] = inf
			}
			dist[src] = 0
			frontier := []int32{src}
			for len(frontier) > 0 && !ge.full() {
				var next []int32
				for _, u := range frontier {
					if ge.full() {
						break
					}
					ge.load(ge.ipLoadQ, ge.queueAddr(len(next)))
					du := dist[u]
					ge.visitEdges(u, func(v int32) bool {
						// Weight derived from ids keeps generation
						// deterministic without a weight array load.
						w := (u^v)%16 + 1
						if du+w < dist[v] {
							dist[v] = du + w
							next = append(next, v)
							ge.store(ge.ipStoreData, ge.dataAddr(v))
							ge.store(ge.ipStoreQ, ge.queueAddr(len(next)))
							return true
						}
						return false
					})
				}
				frontier = next
			}
			src = (src + 104729) % int32(g.N)
		}
		return ge.done()
	}
}

// genCC emits label-propagation connected components: full-graph sweeps
// (sequential offset stream) with random comp[] gathers and stores.
func genCC(name string, variant int64) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		g := getGraph(gapGraphFor(variant, 1))
		ge := newGapEmitter(name, p, g)
		comp := make([]int32, g.N)
		for i := range comp {
			comp[i] = int32(i)
		}
		for !ge.full() {
			changed := false
			for u := int32(0); int(u) < g.N && !ge.full(); u++ {
				// comp[u] is a sequential read.
				ge.load(ge.ipData2, ge.data2Addr(u))
				cu := comp[u]
				ge.visitEdges(u, func(v int32) bool {
					if comp[v] < cu {
						cu = comp[v]
						return true
					}
					return false
				})
				if cu != comp[u] {
					comp[u] = cu
					changed = true
					ge.store(ge.ipStoreData, ge.data2Addr(u))
				}
				ge.branch(ge.ipBrVert, int(u+1) < g.N)
			}
			if !changed {
				break
			}
		}
		return ge.done()
	}
}

// genPR emits PageRank power iterations: the pull direction — for each
// vertex, gather ranks of in-neighbors (approximated by out-neighbors
// on our symmetric-ish graph), store the new rank sequentially.
func genPR(name string, variant int64) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		g := getGraph(gapGraphFor(variant, 1))
		ge := newGapEmitter(name, p, g)
		for !ge.full() {
			for u := int32(0); int(u) < g.N && !ge.full(); u++ {
				ge.visitEdges(u, func(v int32) bool { return false })
				// New rank store is sequential (prefetch-friendly).
				ge.store(ge.ipStoreData, ge.data2Addr(u))
				ge.exec(ge.ipExec, 2)
				ge.branch(ge.ipBrVert, int(u+1) < g.N)
			}
		}
		return ge.done()
	}
}

// genBC emits Brandes betweenness centrality: a BFS forward pass that
// also writes sigma counts, then a dependency-accumulation backward
// pass over the visit order.
func genBC(name string, variant int64) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		g := getGraph(gapGraphFor(variant, 1))
		ge := newGapEmitter(name, p, g)
		depth := make([]int32, g.N)
		src := int32(variant * 911 % int64(g.N))
		for !ge.full() {
			for i := range depth {
				depth[i] = -1
			}
			depth[src] = 0
			queue := []int32{src}
			order := []int32{src}
			for len(queue) > 0 && !ge.full() {
				u := queue[0]
				queue = queue[1:]
				ge.load(ge.ipLoadQ, ge.queueAddr(len(queue)))
				ge.visitEdges(u, func(v int32) bool {
					if depth[v] < 0 {
						depth[v] = depth[u] + 1
						queue = append(queue, v)
						order = append(order, v)
						ge.store(ge.ipStoreData, ge.data2Addr(v)) // sigma
						ge.store(ge.ipStoreQ, ge.queueAddr(len(queue)))
						return true
					}
					return false
				})
			}
			// Backward pass: reverse visit order, gather successors.
			for i := len(order) - 1; i >= 0 && !ge.full(); i-- {
				u := order[i]
				ge.load(ge.ipData2, ge.data2Addr(u))
				ge.visitEdges(u, func(v int32) bool { return depth[v] == depth[u]+1 })
				ge.store(ge.ipStoreData, ge.data2Addr(u))
			}
			src = (src + 6151) % int32(g.N)
		}
		return ge.done()
	}
}

// The 20 GAP traces of the paper's evaluation (4 inputs per kernel,
// matching the published ChampSim GAP trace set).
func init() {
	regGap := func(name string, gen func(Params) *trace.Trace) {
		register(Generator{Name: name, Suite: "gap", Gen: gen})
	}
	regGap("bfs-3B", genBFS("bfs-3B", 3))
	regGap("bfs-8B", genBFS("bfs-8B", 8))
	regGap("bfs-10B", genBFS("bfs-10B", 10))
	regGap("bfs-14B", genBFS("bfs-14B", 14))
	regGap("sssp-3B", genSSSP("sssp-3B", 3))
	regGap("sssp-5B", genSSSP("sssp-5B", 5))
	regGap("sssp-10B", genSSSP("sssp-10B", 10))
	regGap("sssp-14B", genSSSP("sssp-14B", 14))
	regGap("cc-5B", genCC("cc-5B", 5))
	regGap("cc-6B", genCC("cc-6B", 6))
	regGap("cc-13B", genCC("cc-13B", 13))
	regGap("cc-14B", genCC("cc-14B", 14))
	regGap("pr-3B", genPR("pr-3B", 3))
	regGap("pr-5B", genPR("pr-5B", 5))
	regGap("pr-10B", genPR("pr-10B", 10))
	regGap("pr-14B", genPR("pr-14B", 14))
	regGap("bc-0B", genBC("bc-0B", 0))
	regGap("bc-3B", genBC("bc-3B", 3))
	regGap("bc-5B", genBC("bc-5B", 5))
	regGap("bc-12B", genBC("bc-12B", 12))
}

package workload

import (
	"sync"

	"secpref/internal/trace"
)

// The experiment harness simulates every trace under many
// configurations (secure/non-secure × prefetcher × mode), so generated
// traces are memoized by (name, params).

type cacheKey struct {
	name string
	p    Params
}

var (
	traceMu    sync.Mutex
	traceCache = map[cacheKey]*trace.Trace{}
)

// Get returns the (memoized) trace for a registered generator name.
func Get(name string, p Params) (*trace.Trace, error) {
	key := cacheKey{name, p}
	traceMu.Lock()
	if t, ok := traceCache[key]; ok {
		traceMu.Unlock()
		return t, nil
	}
	traceMu.Unlock()
	g, err := ByName(name)
	if err != nil {
		return nil, err
	}
	// Generate outside the lock: generation can take a while and
	// callers ask for distinct traces concurrently.
	t := g.Gen(p)
	traceMu.Lock()
	traceCache[key] = t
	traceMu.Unlock()
	return t, nil
}

// Evict clears the trace cache (tests use it to bound memory).
func Evict() {
	traceMu.Lock()
	traceCache = map[cacheKey]*trace.Trace{}
	traceMu.Unlock()
}

package workload

import (
	"testing"

	"secpref/internal/mem"
)

// regionOf classifies a data address by generator region.
func regionOfAddr(a mem.Addr) int {
	if a < dataBase {
		return -1
	}
	return int((a - dataBase) / regionSize)
}

func TestGAPAddressStreamStructure(t *testing.T) {
	g, err := ByName("bfs-3B")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Gen(Params{Instrs: 8000, Seed: 1})
	counts := map[int]int{}
	for _, in := range tr.Instrs {
		if in.Load != 0 {
			counts[regionOfAddr(in.Load)]++
		}
	}
	// BFS must touch offsets (0), neighbors (1), vertex data (2), and
	// the worklist (4).
	for _, region := range []int{0, 1, 2, 4} {
		if counts[region] == 0 {
			t.Errorf("bfs trace never loads from region %d (counts=%v)", region, counts)
		}
	}
	// The neighbor stream dominates the offsets stream (degree > 1).
	if counts[1] <= counts[0] {
		t.Errorf("neighbor loads (%d) should outnumber offset loads (%d)", counts[1], counts[0])
	}
}

func TestGAPPropertyLoadsAreDependent(t *testing.T) {
	// The vertex-property gather (region 2/3) must carry the Dep flag —
	// its address comes from the neighbor value.
	g, err := ByName("sssp-5B")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Gen(Params{Instrs: 8000, Seed: 1})
	dep, total := 0, 0
	for _, in := range tr.Instrs {
		if in.Load != 0 && regionOfAddr(in.Load) == 2 {
			total++
			if in.Dep {
				dep++
			}
		}
	}
	if total == 0 {
		t.Fatal("no property gathers in sssp trace")
	}
	if dep*2 < total {
		t.Errorf("only %d/%d property gathers are dependent", dep, total)
	}
}

func TestGAPNeighborStreamIsSequential(t *testing.T) {
	g, err := ByName("pr-3B")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Gen(Params{Instrs: 8000, Seed: 1})
	var last mem.Addr
	seq, runs := 0, 0
	for _, in := range tr.Instrs {
		if in.Load == 0 || regionOfAddr(in.Load) != 1 {
			continue
		}
		if last != 0 {
			runs++
			if in.Load == last+4 {
				seq++
			}
		}
		last = in.Load
	}
	if runs == 0 {
		t.Fatal("no neighbor loads")
	}
	// PageRank streams whole neighbor lists: most consecutive neighbor
	// loads advance by one int32.
	if float64(seq)/float64(runs) < 0.5 {
		t.Errorf("neighbor stream not sequential: %d/%d", seq, runs)
	}
}

func TestGraphMemoization(t *testing.T) {
	a := getGraph(graphCfg{n: 1000, deg: 4, seed: 7})
	b := getGraph(graphCfg{n: 1000, deg: 4, seed: 7})
	if a != b {
		t.Error("graphs with identical configs should be shared")
	}
	c := getGraph(graphCfg{n: 1000, deg: 4, seed: 8})
	if a == c {
		t.Error("different seeds must produce different graphs")
	}
}

func TestSkewedGraphHasHubs(t *testing.T) {
	g := NewSkewedGraph(10_000, 8, 3)
	// Count in-degree skew: low-id vertices should be hubs.
	indeg := make([]int, g.N)
	for _, v := range g.Neighbors {
		indeg[v]++
	}
	lowSum, highSum := 0, 0
	for i := 0; i < g.N/10; i++ {
		lowSum += indeg[i]
	}
	for i := g.N - g.N/10; i < g.N; i++ {
		highSum += indeg[i]
	}
	if lowSum <= 2*highSum {
		t.Errorf("no hub skew: low-decile in-degree %d vs high-decile %d", lowSum, highSum)
	}
}

package workload

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"secpref/internal/mem"
	"secpref/internal/trace"
)

func TestRegistryComplete(t *testing.T) {
	spec := Suite("spec")
	gap := Suite("gap")
	if len(spec) != 45 {
		t.Errorf("%d SPEC traces registered, want 45 (paper's memory-intensive set)", len(spec))
	}
	if len(gap) != 20 {
		t.Errorf("%d GAP traces registered, want 20", len(gap))
	}
	if len(All()) != 65 {
		t.Errorf("%d total traces, want 65", len(All()))
	}
}

func TestByNameAndUnknown(t *testing.T) {
	if _, err := ByName("605.mcf-1554B"); err != nil {
		t.Errorf("known trace: %v", err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("expected error for unknown trace")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, name := range []string{"605.mcf-1554B", "603.bwa-2931B", "bfs-3B", "602.gcc-1850B"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p := Params{Instrs: 5000, Seed: 42}
		a := g.Gen(p)
		b := g.Gen(p)
		if !reflect.DeepEqual(a.Instrs, b.Instrs) {
			t.Errorf("%s: generation is not deterministic", name)
		}
		c := g.Gen(Params{Instrs: 5000, Seed: 43})
		if name != "bfs-3B" && reflect.DeepEqual(a.Instrs, c.Instrs) {
			// (graph kernels keyed by variant may legitimately coincide
			// for short prefixes; SPEC-like generators must not)
			t.Errorf("%s: different seeds produced identical traces", name)
		}
	}
}

func TestEveryGeneratorProduces(t *testing.T) {
	if testing.Short() {
		t.Skip("generates all 65 traces")
	}
	for _, g := range All() {
		tr := g.Gen(Params{Instrs: 2000, Seed: 1})
		if tr.Name != g.Name {
			t.Errorf("%s: trace named %q", g.Name, tr.Name)
		}
		if len(tr.Instrs) < 2000 {
			t.Errorf("%s: only %d instructions", g.Name, len(tr.Instrs))
			continue
		}
		loads, stores, branches, deps := 0, 0, 0, 0
		for _, in := range tr.Instrs {
			if in.IP == 0 {
				t.Errorf("%s: zero IP", g.Name)
				break
			}
			if in.Load != 0 {
				loads++
			}
			if in.Store != 0 {
				stores++
			}
			if in.Branch {
				branches++
			}
			if in.Dep {
				deps++
			}
		}
		if loads == 0 {
			t.Errorf("%s: no loads", g.Name)
		}
		if branches == 0 {
			t.Errorf("%s: no branches", g.Name)
		}
		if g.Suite == "gap" && deps == 0 {
			t.Errorf("%s: GAP kernel without dependent loads", g.Name)
		}
	}
}

func TestChaseTracesHaveDependentLoads(t *testing.T) {
	g, err := ByName("605.mcf-1554B")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Gen(Params{Instrs: 3000, Seed: 1})
	deps := 0
	for _, in := range tr.Instrs {
		if in.Dep {
			deps++
		}
	}
	if deps == 0 {
		t.Fatal("mcf trace has no dependent (pointer-chase) loads")
	}
}

func TestGetMemoizes(t *testing.T) {
	Evict()
	p := Params{Instrs: 1000, Seed: 9}
	a, err := Get("641.leela-1083B", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get("641.leela-1083B", p)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Get should memoize identical requests")
	}
	Evict()
	c, err := Get("641.leela-1083B", p)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("Evict should clear the cache")
	}
}

func TestGraphCSRInvariants(t *testing.T) {
	f := func(seedRaw int64, nRaw, dRaw uint8) bool {
		n := 100 + int(nRaw)%400
		deg := 1 + int(dRaw)%8
		g := NewSkewedGraph(n, deg, seedRaw)
		if g.N != n || len(g.Offsets) != n+1 {
			return false
		}
		if g.Offsets[0] != 0 || int(g.Offsets[n]) != len(g.Neighbors) {
			return false
		}
		for u := 0; u < n; u++ {
			if g.Offsets[u] > g.Offsets[u+1] {
				return false // offsets must be monotonic
			}
			ns := g.Neigh(int32(u))
			for i, v := range ns {
				if v < 0 || int(v) >= n || v == int32(u) {
					return false // in-range, no self-loops
				}
				if i > 0 && ns[i-1] >= v {
					return false // sorted, deduplicated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDataAddressesStayInRegions(t *testing.T) {
	// Generators promise disjoint per-array regions starting at
	// dataBase; code addresses stay far below.
	g, err := ByName("654.roms-1007B")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Gen(Params{Instrs: 2000, Seed: 1})
	for _, in := range tr.Instrs {
		if in.Load != 0 && in.Load < dataBase {
			t.Fatalf("load address %#x below data base", in.Load)
		}
		if in.IP >= dataBase {
			t.Fatalf("IP %#x inside data region", in.IP)
		}
	}
	_ = mem.Addr(0)
}

func TestAllTracesBinaryRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("encodes all 65 traces")
	}
	for _, g := range All() {
		tr := g.Gen(Params{Instrs: 1500, Seed: 2})
		var buf bytes.Buffer
		if err := trace.Write(&buf, tr); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		got, err := trace.Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name, err)
		}
		if !reflect.DeepEqual(got.Instrs, tr.Instrs) {
			t.Errorf("%s: binary round trip mismatch", g.Name)
		}
	}
}

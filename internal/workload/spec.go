package workload

import (
	"math/rand"

	"secpref/internal/mem"
	"secpref/internal/trace"
)

// SPEC CPU2017-like generators. Each named trace below maps to one of
// four pattern families with per-trace parameters chosen to reproduce
// the qualitative behaviour the paper reports for that trace:
//
//   - stream:  sub-line-stride multi-array streaming (bwaves, lbm):
//     several accesses share each line, so the line-miss stream is a
//     fraction of the access stream, as element-wise FP loops produce.
//     Highly prefetchable; bwaves variants use very large working sets
//     so fetch latency is DRAM-dominated (the property behind TSB's
//     24.9% win on 603.bwaves-2931B) without saturating the channel.
//   - stencil: multi-array constant-stride loops with element-level
//     spatial locality (cactuBSSN, roms, wrf, pop2, fotonik3d).
//   - chase:   dependent pointer chasing over large node pools with
//     side loads (mcf, omnetpp, xalancbmk). High MPKI, serialized
//     misses; mcf-1554B is the paper's pathological contention case.
//   - mixed:   hot-set dominated integer code with moderate misses and
//     data-dependent branches (gcc, perlbench, leela, xz).
//
// Working sets are deliberately diverse: roughly a third of the traces
// are L2/LLC-resident (their speculative loads are served by the cache
// hierarchy, giving SUF hit levels below DRAM to act on), the rest are
// DRAM-bound — the footprint mix real SPEC exhibits.

// depLoad emits a load whose address depends on the preceding load.
func (e *emitter) depLoad(ip, addr mem.Addr) {
	e.t.Instrs = append(e.t.Instrs, trace.Instr{IP: ip, Load: addr, Dep: true})
}

// streamCfg parameterizes the stream family.
type streamCfg struct {
	arrays  int // parallel streams
	strideB int // bytes between consecutive accesses of one stream
	wsMiB   int // working set per stream, MiB
	compute int // ALU instrs between memory accesses
	storeEv int // emit a store every storeEv iterations (0 = never)
	inner   int // inner-loop trip count (branch predictability)
}

func genStream(name string, cfg streamCfg) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		e := newEmitter(name, p)
		bases := make([]mem.Addr, cfg.arrays)
		offs := make([]mem.Addr, cfg.arrays)
		for i := range bases {
			bases[i] = region(i)
			// Start streams at distinct offsets so they do not march in
			// lockstep through the same sets.
			offs[i] = mem.Addr(e.rng.Intn(4096)) * mem.Addr(cfg.strideB)
		}
		ws := mem.Addr(cfg.wsMiB) << 20
		loadIPs := make([]mem.Addr, cfg.arrays)
		for i := range loadIPs {
			loadIPs[i] = e.ip()
		}
		storeIP := e.ip()
		execIP := e.ip()
		brInner := e.ip()
		brOuter := e.ip()
		iter := 0
		for !e.full() {
			for i := 0; i < cfg.arrays && !e.full(); i++ {
				e.load(loadIPs[i], bases[i]+offs[i]%ws)
				offs[i] += mem.Addr(cfg.strideB)
				e.exec(execIP, cfg.compute)
			}
			if cfg.storeEv > 0 && iter%cfg.storeEv == 0 {
				e.store(storeIP, bases[0]+offs[0]%ws)
			}
			iter++
			// Inner-loop back edge: taken except at iteration boundary.
			e.branch(brInner, iter%cfg.inner != 0)
			if iter%cfg.inner == 0 {
				e.branch(brOuter, true)
			}
		}
		return e.done()
	}
}

// stencilCfg parameterizes the stencil family.
type stencilCfg struct {
	arrays  int // read arrays
	elemB   int // element size in bytes (spatial locality within line)
	wsMiB   int
	compute int
	inner   int
	skew    int // extra element offset between arrays (stencil halo)
}

func genStencil(name string, cfg stencilCfg) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		e := newEmitter(name, p)
		ws := mem.Addr(cfg.wsMiB) << 20
		loadIPs := make([]mem.Addr, cfg.arrays)
		for i := range loadIPs {
			loadIPs[i] = e.ip()
		}
		storeIP := e.ip()
		execIP := e.ip()
		brIP := e.ip()
		idx := mem.Addr(0)
		iter := 0
		for !e.full() {
			for a := 0; a < cfg.arrays && !e.full(); a++ {
				addr := region(a) + (idx+mem.Addr(a*cfg.skew*cfg.elemB))%ws
				e.load(loadIPs[a], addr)
				e.exec(execIP, cfg.compute)
			}
			e.store(storeIP, region(cfg.arrays)+idx%ws)
			idx += mem.Addr(cfg.elemB)
			iter++
			e.branch(brIP, iter%cfg.inner != 0)
		}
		return e.done()
	}
}

// chaseCfg parameterizes the pointer-chase family.
type chaseCfg struct {
	wsMiB    int // node pool size
	chains   int // independent chase chains (memory-level parallelism)
	sideLds  int // dependent field loads per node
	strided  int // prefetchable strided loads interleaved per node (allocator locality)
	compute  int
	condRate float64 // probability of a data-dependent (random) branch outcome
	inner    int
}

func genChase(name string, cfg chaseCfg) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		e := newEmitter(name, p)
		const nodeB = 64 // one node per line: worst case for spatial locality
		nodes := (cfg.wsMiB << 20) / nodeB
		// Per-chain independent random walks. We synthesize the walk with
		// the RNG directly rather than materializing a permutation so
		// multi-hundred-MiB pools cost no host memory.
		walk := make([]*rand.Rand, cfg.chains)
		cur := make([]int, cfg.chains)
		for c := range walk {
			walk[c] = rand.New(rand.NewSource(p.Seed + int64(c)*7919))
			cur[c] = walk[c].Intn(nodes)
		}
		chaseIPs := make([]mem.Addr, cfg.chains)
		for i := range chaseIPs {
			chaseIPs[i] = e.ip()
		}
		fieldIP := e.ip()
		strideIP := e.ip()
		execIP := e.ip()
		brData := e.ip()
		brLoop := e.ip()
		strideOff := mem.Addr(0)
		iter := 0
		for !e.full() {
			for c := 0; c < cfg.chains && !e.full(); c++ {
				nodeAddr := region(1) + mem.Addr(cur[c]*nodeB)
				e.depLoad(chaseIPs[c], nodeAddr)
				for f := 0; f < cfg.sideLds; f++ {
					e.depLoad(fieldIP+mem.Addr(f*4), nodeAddr+mem.Addr(8+8*f))
				}
				cur[c] = walk[c].Intn(nodes)
				e.exec(execIP, cfg.compute)
			}
			for s := 0; s < cfg.strided; s++ {
				e.load(strideIP+mem.Addr(s*4), region(0)+strideOff%(8<<20))
				strideOff += 8
			}
			if cfg.condRate > 0 {
				e.branch(brData, e.rng.Float64() < cfg.condRate)
			}
			iter++
			e.branch(brLoop, iter%cfg.inner != 0)
		}
		return e.done()
	}
}

// mixedCfg parameterizes the mixed integer family.
type mixedCfg struct {
	hotKiB   int     // hot working set (mostly cache resident)
	coldMiB  int     // cold region for occasional far misses
	coldFrac float64 // fraction of loads to the cold region
	strideFr float64 // fraction of loads that are strided
	compute  int
	condRate float64
	inner    int
}

func genMixed(name string, cfg mixedCfg) func(Params) *trace.Trace {
	return func(p Params) *trace.Trace {
		e := newEmitter(name, p)
		hot := mem.Addr(cfg.hotKiB) << 10
		cold := mem.Addr(cfg.coldMiB) << 20
		ldHot := e.ip()
		ldCold := e.ip()
		ldStride := e.ip()
		stIP := e.ip()
		execIP := e.ip()
		brData := e.ip()
		brLoop := e.ip()
		strideOff := mem.Addr(0)
		iter := 0
		for !e.full() {
			r := e.rng.Float64()
			switch {
			case r < cfg.coldFrac:
				e.load(ldCold, region(2)+mem.Addr(e.rng.Int63n(int64(cold))))
			case r < cfg.coldFrac+cfg.strideFr:
				e.load(ldStride, region(1)+strideOff%(4<<20))
				strideOff += 8
			default:
				e.load(ldHot, region(0)+mem.Addr(e.rng.Int63n(int64(hot))))
			}
			e.exec(execIP, cfg.compute)
			if iter%8 == 0 {
				e.store(stIP, region(0)+mem.Addr(e.rng.Int63n(int64(hot))))
			}
			e.branch(brData, e.rng.Float64() < cfg.condRate)
			iter++
			e.branch(brLoop, iter%cfg.inner != 0)
		}
		return e.done()
	}
}

// specTraces lists the 45 memory-intensive SPEC CPU2017 traces from the
// paper's Fig. 12(a) with family parameters tuned to each benchmark's
// published character.
func init() {
	reg := func(name string, gen func(Params) *trace.Trace) {
		register(Generator{Name: name, Suite: "spec", Gen: gen})
	}

	// perlbench / gcc / leela / xz: mixed integer.
	reg("600.perlb-570B", genMixed("600.perlb-570B", mixedCfg{hotKiB: 256, coldMiB: 16, coldFrac: 0.02, strideFr: 0.3, compute: 4, condRate: 0.12, inner: 24}))
	reg("602.gcc-1850B", genMixed("602.gcc-1850B", mixedCfg{hotKiB: 512, coldMiB: 48, coldFrac: 0.06, strideFr: 0.35, compute: 3, condRate: 0.15, inner: 16}))
	reg("602.gcc-2226B", genMixed("602.gcc-2226B", mixedCfg{hotKiB: 384, coldMiB: 64, coldFrac: 0.08, strideFr: 0.3, compute: 3, condRate: 0.18, inner: 12}))
	reg("602.gcc-734B", genMixed("602.gcc-734B", mixedCfg{hotKiB: 768, coldMiB: 32, coldFrac: 0.05, strideFr: 0.4, compute: 3, condRate: 0.1, inner: 20}))
	reg("641.leela-1083B", genMixed("641.leela-1083B", mixedCfg{hotKiB: 192, coldMiB: 8, coldFrac: 0.015, strideFr: 0.2, compute: 6, condRate: 0.2, inner: 10}))
	reg("657.xz-2302B", genMixed("657.xz-2302B", mixedCfg{hotKiB: 1024, coldMiB: 64, coldFrac: 0.07, strideFr: 0.45, compute: 3, condRate: 0.08, inner: 32}))
	reg("628.pop2-17B", genMixed("628.pop2-17B", mixedCfg{hotKiB: 512, coldMiB: 40, coldFrac: 0.05, strideFr: 0.5, compute: 4, condRate: 0.05, inner: 40}))

	// bwaves: large-stride streams over huge working sets (DRAM-bound
	// fetch latency — the TSB showcase).
	reg("603.bwa-1740B", genStream("603.bwa-1740B", streamCfg{arrays: 5, strideB: 24, wsMiB: 96, compute: 3, storeEv: 4, inner: 64}))
	reg("603.bwa-2609B", genStream("603.bwa-2609B", streamCfg{arrays: 6, strideB: 32, wsMiB: 128, compute: 3, storeEv: 4, inner: 64}))
	reg("603.bwa-2931B", genStream("603.bwa-2931B", streamCfg{arrays: 8, strideB: 40, wsMiB: 192, compute: 2, storeEv: 3, inner: 48}))
	reg("603.bwa-891B", genStream("603.bwa-891B", streamCfg{arrays: 4, strideB: 16, wsMiB: 7, compute: 4, storeEv: 5, inner: 80}))

	// lbm: streaming with heavy stores.
	reg("619.lbm-2676B", genStream("619.lbm-2676B", streamCfg{arrays: 6, strideB: 24, wsMiB: 56, compute: 2, storeEv: 1, inner: 100}))
	reg("619.lbm-2677B", genStream("619.lbm-2677B", streamCfg{arrays: 6, strideB: 24, wsMiB: 64, compute: 2, storeEv: 1, inner: 100}))
	reg("619.lbm-3766B", genStream("619.lbm-3766B", streamCfg{arrays: 7, strideB: 32, wsMiB: 72, compute: 2, storeEv: 1, inner: 100}))
	reg("619.lbm-4268B", genStream("619.lbm-4268B", streamCfg{arrays: 5, strideB: 24, wsMiB: 5, compute: 2, storeEv: 1, inner: 100}))

	// cactuBSSN / wrf / fotonik3d / roms: stencils.
	reg("607.cactu-2421B", genStencil("607.cactu-2421B", stencilCfg{arrays: 6, elemB: 8, wsMiB: 48, compute: 4, inner: 50, skew: 17}))
	reg("607.cactu-3477B", genStencil("607.cactu-3477B", stencilCfg{arrays: 7, elemB: 8, wsMiB: 64, compute: 4, inner: 50, skew: 23}))
	reg("607.cactu-4004B", genStencil("607.cactu-4004B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 5, compute: 5, inner: 50, skew: 11}))
	reg("621.wrf-6673B", genStencil("621.wrf-6673B", stencilCfg{arrays: 4, elemB: 4, wsMiB: 3, compute: 5, inner: 60, skew: 9}))
	reg("621.wrf-8065B", genStencil("621.wrf-8065B", stencilCfg{arrays: 5, elemB: 4, wsMiB: 6, compute: 5, inner: 60, skew: 13}))
	reg("649.foton-10881B", genStencil("649.foton-10881B", stencilCfg{arrays: 4, elemB: 8, wsMiB: 56, compute: 3, inner: 72, skew: 33}))
	reg("649.foton-1176B", genStencil("649.foton-1176B", stencilCfg{arrays: 4, elemB: 8, wsMiB: 4, compute: 3, inner: 72, skew: 29}))
	reg("649.foton-7084B", genStencil("649.foton-7084B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 8, compute: 3, inner: 72, skew: 41}))
	reg("649.foton-8225B", genStencil("649.foton-8225B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 56, compute: 3, inner: 72, skew: 37}))
	reg("654.roms-1007B", genStencil("654.roms-1007B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 48, compute: 4, inner: 64, skew: 15}))
	reg("654.roms-1070B", genStencil("654.roms-1070B", stencilCfg{arrays: 6, elemB: 8, wsMiB: 56, compute: 4, inner: 64, skew: 19}))
	reg("654.roms-1390B", genStencil("654.roms-1390B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 40, compute: 4, inner: 64, skew: 21}))
	reg("654.roms-1613B", genStencil("654.roms-1613B", stencilCfg{arrays: 4, elemB: 8, wsMiB: 2, compute: 5, inner: 64, skew: 25}))
	reg("654.roms-293B", genStencil("654.roms-293B", stencilCfg{arrays: 6, elemB: 8, wsMiB: 64, compute: 3, inner: 64, skew: 27}))
	reg("654.roms-294B", genStencil("654.roms-294B", stencilCfg{arrays: 6, elemB: 8, wsMiB: 64, compute: 3, inner: 64, skew: 31}))
	reg("654.roms-523B", genStencil("654.roms-523B", stencilCfg{arrays: 5, elemB: 8, wsMiB: 6, compute: 4, inner: 64, skew: 35}))

	// mcf: pointer chasing, the contention-pathology family. 1554B is
	// the paper's Fig. 5 case study: deepest pool, most side loads.
	reg("605.mcf-1152B", genChase("605.mcf-1152B", chaseCfg{wsMiB: 96, chains: 2, sideLds: 2, strided: 2, compute: 3, condRate: 0.25, inner: 12}))
	reg("605.mcf-1536B", genChase("605.mcf-1536B", chaseCfg{wsMiB: 128, chains: 2, sideLds: 2, strided: 2, compute: 3, condRate: 0.25, inner: 12}))
	reg("605.mcf-1554B", genChase("605.mcf-1554B", chaseCfg{wsMiB: 160, chains: 3, sideLds: 3, strided: 4, compute: 2, condRate: 0.3, inner: 10}))
	reg("605.mcf-1644B", genChase("605.mcf-1644B", chaseCfg{wsMiB: 112, chains: 2, sideLds: 2, strided: 3, compute: 3, condRate: 0.25, inner: 12}))
	reg("605.mcf-472B", genChase("605.mcf-472B", chaseCfg{wsMiB: 80, chains: 2, sideLds: 1, strided: 2, compute: 3, condRate: 0.2, inner: 14}))
	reg("605.mcf-484B", genChase("605.mcf-484B", chaseCfg{wsMiB: 88, chains: 2, sideLds: 1, strided: 2, compute: 3, condRate: 0.2, inner: 14}))
	reg("605.mcf-665B", genChase("605.mcf-665B", chaseCfg{wsMiB: 96, chains: 2, sideLds: 2, strided: 3, compute: 3, condRate: 0.22, inner: 12}))
	reg("605.mcf-782B", genChase("605.mcf-782B", chaseCfg{wsMiB: 104, chains: 2, sideLds: 2, strided: 3, compute: 3, condRate: 0.22, inner: 12}))
	reg("605.mcf-994B", genChase("605.mcf-994B", chaseCfg{wsMiB: 120, chains: 2, sideLds: 2, strided: 2, compute: 3, condRate: 0.25, inner: 12}))

	// omnetpp / xalancbmk: irregular pointer code, smaller pools, more
	// allocator (strided) locality than mcf.
	reg("620.omnet-141B", genChase("620.omnet-141B", chaseCfg{wsMiB: 6, chains: 1, sideLds: 2, strided: 5, compute: 4, condRate: 0.15, inner: 16}))
	reg("620.omnet-874B", genChase("620.omnet-874B", chaseCfg{wsMiB: 56, chains: 1, sideLds: 2, strided: 5, compute: 4, condRate: 0.15, inner: 16}))
	reg("623.xalan-10B", genChase("623.xalan-10B", chaseCfg{wsMiB: 2, chains: 1, sideLds: 1, strided: 7, compute: 4, condRate: 0.1, inner: 20}))
	reg("623.xalan-165B", genChase("623.xalan-165B", chaseCfg{wsMiB: 4, chains: 1, sideLds: 1, strided: 7, compute: 4, condRate: 0.1, inner: 20}))
	reg("623.xalan-202B", genChase("623.xalan-202B", chaseCfg{wsMiB: 36, chains: 1, sideLds: 1, strided: 6, compute: 4, condRate: 0.12, inner: 20}))
}

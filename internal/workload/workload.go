// Package workload generates deterministic synthetic instruction traces
// that stand in for the SPEC CPU2017 and GAP ChampSim traces used by
// the paper (which are multi-gigabyte and not redistributable). Each
// generator reproduces the access-pattern *class* of its namesake —
// stride regularity, working-set size, pointer-chasing depth, branch
// behaviour — because those are the properties that drive the
// prefetcher / secure-cache interactions under study.
//
// Generators are deterministic functions of (name, seed, length): the
// same inputs always produce byte-identical traces, which the tests
// rely on.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"secpref/internal/mem"
	"secpref/internal/trace"
)

// Params control trace generation.
type Params struct {
	// Instrs is the number of instructions to generate (approximate:
	// generators finish the loop iteration in progress).
	Instrs int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultParams returns the parameters used by the experiment harness
// when none are specified.
func DefaultParams() Params { return Params{Instrs: 200_000, Seed: 1} }

// Generator produces a synthetic trace.
type Generator struct {
	// Name of the trace this generator mimics (e.g. "605.mcf-1554B").
	Name string
	// Suite is "spec" or "gap".
	Suite string
	// Gen builds the trace.
	Gen func(p Params) *trace.Trace
}

var registry []Generator

func register(g Generator) {
	registry = append(registry, g)
}

// All returns every registered generator, SPEC first then GAP, each
// suite in name order. The slice is a copy.
func All() []Generator {
	out := make([]Generator, len(registry))
	copy(out, registry)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite > out[j].Suite // "spec" > "gap"
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the generators of one suite ("spec" or "gap").
func Suite(name string) []Generator {
	var out []Generator
	for _, g := range All() {
		if g.Suite == name {
			out = append(out, g)
		}
	}
	return out
}

// ByName returns the generator for a trace name.
func ByName(name string) (Generator, error) {
	for _, g := range registry {
		if g.Name == name {
			return g, nil
		}
	}
	return Generator{}, fmt.Errorf("workload: unknown trace %q", name)
}

// Names returns all registered trace names in All() order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, g := range all {
		out[i] = g.Name
	}
	return out
}

// emitter accumulates instructions with a compact builder API. All
// generators use it so that IP assignment and loop-branch emission are
// uniform: every call site gets a stable IP, loads/stores carry that
// IP, and loop back-edges are conditional branches with realistic
// taken/not-taken behaviour for the perceptron predictor.
type emitter struct {
	t      *trace.Trace
	limit  int
	rng    *rand.Rand
	nextIP mem.Addr
}

// Code and data live in disjoint address regions. Each data array gets
// its own region so arrays never alias.
const (
	codeBase = mem.Addr(0x0040_0000)
	dataBase = mem.Addr(0x1_0000_0000)
	// regionSize separates data arrays (64 MiB each).
	regionSize = mem.Addr(64 << 20)
)

func newEmitter(name string, p Params) *emitter {
	return &emitter{
		t:      &trace.Trace{Name: name, Instrs: make([]trace.Instr, 0, p.Instrs+64)},
		limit:  p.Instrs,
		rng:    rand.New(rand.NewSource(p.Seed)),
		nextIP: codeBase,
	}
}

// region returns the base address of data region i.
func region(i int) mem.Addr { return dataBase + mem.Addr(i)*regionSize }

// ip allocates a stable instruction pointer for a static call site.
func (e *emitter) ip() mem.Addr {
	a := e.nextIP
	e.nextIP += 4
	return a
}

// full reports whether the instruction budget is exhausted.
func (e *emitter) full() bool { return len(e.t.Instrs) >= e.limit }

// exec emits n plain ALU instructions at IP ip (modelling loop-body
// compute that separates memory accesses in time).
func (e *emitter) exec(ip mem.Addr, n int) {
	for i := 0; i < n; i++ {
		e.t.Instrs = append(e.t.Instrs, trace.Instr{IP: ip + mem.Addr(i*4)})
	}
}

// load emits a data load of addr at IP ip.
func (e *emitter) load(ip, addr mem.Addr) {
	e.t.Instrs = append(e.t.Instrs, trace.Instr{IP: ip, Load: addr})
}

// store emits a data store of addr at IP ip.
func (e *emitter) store(ip, addr mem.Addr) {
	e.t.Instrs = append(e.t.Instrs, trace.Instr{IP: ip, Store: addr})
}

// branch emits a conditional branch with the given outcome.
func (e *emitter) branch(ip mem.Addr, taken bool) {
	e.t.Instrs = append(e.t.Instrs, trace.Instr{IP: ip, Branch: true, Taken: taken})
}

// done finalizes the trace.
func (e *emitter) done() *trace.Trace { return e.t }

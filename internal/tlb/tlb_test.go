package tlb

import (
	"testing"
	"testing/quick"

	"secpref/internal/mem"
)

func TestLatencyTiers(t *testing.T) {
	h := New(DefaultConfig())
	addr := mem.Addr(0x1234_5678)
	walk := h.Translate(addr)
	if walk != 1+8+60 {
		t.Errorf("cold translation = %d, want full walk 69", walk)
	}
	hit := h.Translate(addr)
	if hit != 1 {
		t.Errorf("dTLB hit = %d, want 1", hit)
	}
	// Evict from the 64-entry dTLB but not the 1536-entry STLB by
	// touching 256 distinct pages.
	for i := 0; i < 256; i++ {
		h.Translate(mem.Addr(0x9000_0000) + mem.Addr(i)<<PageBits)
	}
	stlb := h.Translate(addr)
	if stlb != 1+8 {
		t.Errorf("STLB hit = %d, want 9", stlb)
	}
}

func TestSamePageSameTranslation(t *testing.T) {
	f := func(raw uint64, off uint16) bool {
		h := New(DefaultConfig())
		a := mem.Addr(raw)
		b := mem.Addr(uint64(a)&^uint64(1<<PageBits-1)) + mem.Addr(off)%(1<<PageBits)
		h.Translate(a)
		return h.Translate(b) == 1 // same page: guaranteed dTLB hit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := New(DefaultConfig())
	h.Translate(0x1000)
	h.Translate(0x1000)
	h.Translate(0x2000)
	if h.Stats.Accesses != 3 || h.Stats.L1Misses != 2 || h.Stats.STLBMisses != 2 {
		t.Errorf("stats %+v", h.Stats)
	}
	if h.Stats.WalkRate() <= 0 || h.Stats.L1MissRate() <= 0 {
		t.Error("rates should be positive")
	}
}

func TestFlush(t *testing.T) {
	h := New(DefaultConfig())
	h.Translate(0x5000)
	h.Flush()
	if h.Translate(0x5000) == 1 {
		t.Error("translation survived Flush")
	}
}

func TestLocalityReducesWalks(t *testing.T) {
	h := New(DefaultConfig())
	// A 32-page working set revisited: after the first sweep, no walks.
	for sweep := 0; sweep < 4; sweep++ {
		for p := 0; p < 32; p++ {
			h.Translate(mem.Addr(p) << PageBits)
		}
	}
	if h.Stats.STLBMisses != 32 {
		t.Errorf("%d walks for a 32-page resident set", h.Stats.STLBMisses)
	}
}

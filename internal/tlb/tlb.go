// Package tlb models the address-translation hierarchy of the paper's
// Table II baseline: a 64-entry 4-way L1 dTLB with 1-cycle latency
// backed by a 1536-entry 12-way STLB at 8 cycles, with a fixed-latency
// page-table walk beyond that. The ChampSim version used by the paper
// extends DPC-3 with "detailed memory hierarchy support for address
// translation"; here translation contributes load-issue latency (and
// Berti's VA-to-PA step in Fig. 9 has a home).
//
// Translation is identity (synthetic traces generate physical-like
// addresses); what the model adds is the *timing* of translation and
// its locality behaviour.
package tlb

import (
	"secpref/internal/mem"
	"secpref/internal/stats"
)

// PageBits is log2 of the page size (4 KiB pages).
const PageBits = 12

// Page is a virtual page number.
type Page uint64

// PageOf returns the page containing a.
func PageOf(a mem.Addr) Page { return Page(a >> PageBits) }

// Config sizes one TLB level.
type Config struct {
	Entries int
	Ways    int
	Latency mem.Cycle
}

// HierarchyConfig describes the Table II translation path.
type HierarchyConfig struct {
	L1   Config
	STLB Config
	// WalkLatency is charged when both levels miss (page-table walk
	// served from the cache hierarchy; modeled as a fixed cost).
	WalkLatency mem.Cycle
}

// DefaultConfig returns the Table II translation hierarchy.
func DefaultConfig() HierarchyConfig {
	return HierarchyConfig{
		L1:          Config{Entries: 64, Ways: 4, Latency: 1},
		STLB:        Config{Entries: 1536, Ways: 12, Latency: 8},
		WalkLatency: 60,
	}
}

type entry struct {
	page  Page
	valid bool
	lru   uint32
}

// level is one set-associative TLB array.
type level struct {
	sets  [][]entry
	mask  uint64
	clock uint32
}

func newLevel(cfg Config) *level {
	nsets := cfg.Entries / cfg.Ways
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a positive power of two")
	}
	l := &level{mask: uint64(nsets - 1)}
	l.sets = make([][]entry, nsets)
	backing := make([]entry, nsets*cfg.Ways)
	for i := range l.sets {
		l.sets[i] = backing[i*cfg.Ways : (i+1)*cfg.Ways]
	}
	return l
}

// lookup probes for p, refreshing recency on hit.
func (l *level) lookup(p Page) bool {
	set := l.sets[uint64(p)&l.mask]
	for i := range set {
		if set[i].valid && set[i].page == p {
			l.clock++
			set[i].lru = l.clock
			return true
		}
	}
	return false
}

// insert installs p, evicting the LRU way.
func (l *level) insert(p Page) {
	set := l.sets[uint64(p)&l.mask]
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	l.clock++
	*victim = entry{page: p, valid: true, lru: l.clock}
}

// Hierarchy is the two-level TLB plus walk model.
type Hierarchy struct {
	cfg  HierarchyConfig
	l1   *level
	stlb *level

	// Stats counts per-level outcomes.
	Stats stats.TLBStats
}

// New builds the translation hierarchy.
func New(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{cfg: cfg, l1: newLevel(cfg.L1), stlb: newLevel(cfg.STLB)}
}

// Translate charges the translation latency for a data access to addr:
// 1 cycle on an L1 dTLB hit, L1+STLB on an STLB hit, and the full walk
// beyond. Missing levels are filled (the walk installs into both).
func (h *Hierarchy) Translate(addr mem.Addr) mem.Cycle {
	p := PageOf(addr)
	h.Stats.Accesses++
	if h.l1.lookup(p) {
		return h.cfg.L1.Latency
	}
	h.Stats.L1Misses++
	if h.stlb.lookup(p) {
		h.l1.insert(p)
		return h.cfg.L1.Latency + h.cfg.STLB.Latency
	}
	h.Stats.STLBMisses++
	h.stlb.insert(p)
	h.l1.insert(p)
	return h.cfg.L1.Latency + h.cfg.STLB.Latency + h.cfg.WalkLatency
}

// Flush empties both levels (context/domain switch).
func (h *Hierarchy) Flush() {
	h.l1 = newLevel(h.cfg.L1)
	h.stlb = newLevel(h.cfg.STLB)
}

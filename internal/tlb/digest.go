package tlb

import "secpref/internal/observatory"

// StateDigest hashes the translation hierarchy's architectural state:
// both levels' valid entries with their recency stamps plus the access
// counter.
func (h *Hierarchy) StateDigest() uint64 {
	d := observatory.NewDigest()
	d = digestLevel(d, h.l1)
	d = digestLevel(d, h.stlb)
	d = d.Word(h.Stats.Accesses)
	return d.Sum()
}

func digestLevel(d observatory.Digest, l *level) observatory.Digest {
	d = d.Word(uint64(l.clock))
	for s := range l.sets {
		for w := range l.sets[s] {
			e := &l.sets[s][w]
			if !e.valid {
				continue
			}
			d = d.Word(uint64(s)).Word(uint64(w)).Word(uint64(e.page)).Word(uint64(e.lru))
		}
	}
	return d
}

package observatory

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"secpref/internal/mem"
)

func TestDigestOrderSensitive(t *testing.T) {
	a := NewDigest().Word(1).Word(2).Sum()
	b := NewDigest().Word(2).Word(1).Sum()
	if a == b {
		t.Error("digest is order-insensitive")
	}
	if NewDigest().Word(1).Sum() == NewDigest().Word(1).Word(0).Sum() {
		t.Error("appending a zero word should change the digest")
	}
}

func TestHashBytes(t *testing.T) {
	if HashBytes([]byte("a")) == HashBytes([]byte("b")) {
		t.Error("distinct inputs collide")
	}
	if HashBytes(nil) != HashBytes([]byte{}) {
		t.Error("nil and empty must hash alike")
	}
}

func TestProfileCounters(t *testing.T) {
	p := NewProfile("core", "dram")
	p.Advance(false)
	p.Advance(true)
	p.Gap(1)
	p.Gap(300_000) // overflow bucket
	p.Visit(0, true, true, false, false)
	p.Visit(0, true, false, true, true)
	p.Visit(1, false, false, false, false)
	p.Rearm(0, true)
	p.Rearm(1, false)

	if p.Advances != 2 || p.ClampedAdvances != 1 || p.VisitedCycles != 2 {
		t.Errorf("advance counters: %+v", p)
	}
	if p.SkippedCycles != 300_001 {
		t.Errorf("skipped cycles = %d", p.SkippedCycles)
	}
	if p.GapHist[0] != 1 || p.GapHist[gapBuckets-1] != 1 {
		t.Errorf("gap histogram: %v", p.GapHist)
	}
	core := p.Ranks[0]
	if core.Ticks != 2 || core.DueTicks != 1 || core.WakeTicks != 1 || core.VersionTicks != 1 || core.Rearmed != 1 {
		t.Errorf("core rank: %+v", core)
	}
	if p.Ranks[1].Integrated != 1 || p.Ranks[1].KeptArm != 1 {
		t.Errorf("dram rank: %+v", p.Ranks[1])
	}
	if eff := p.SkipEfficiency(); eff < 0.99 {
		t.Errorf("skip efficiency = %f", eff)
	}
}

func TestProfileMergeAndAggregate(t *testing.T) {
	a := NewProfile("core")
	a.EngineVersion = "ev-test"
	a.Advance(false)
	a.Visit(0, true, true, false, false)
	b := NewProfile("core")
	b.Advance(false)
	b.Gap(4)
	b.Visit(0, false, false, false, false)

	agg := NewAggregate()
	agg.Add(a)
	agg.Add(b)
	s := agg.Snapshot()
	if s.EngineVersion != "ev-test" {
		t.Errorf("merge lost engine version: %q", s.EngineVersion)
	}
	if s.Advances != 2 || s.SkippedCycles != 4 {
		t.Errorf("merged totals: %+v", s)
	}
	if s.Ranks[0].Ticks != 1 || s.Ranks[0].Integrated != 1 {
		t.Errorf("merged rank: %+v", s.Ranks[0])
	}
}

func TestProfileExports(t *testing.T) {
	p := NewProfile("core", "dram")
	p.EngineVersion = "ev-test"
	p.Advance(false)
	p.Gap(16)
	p.Visit(0, true, true, false, false)
	p.TrackSample(100)
	p.TrackSample(100) // same-cycle dedupe
	p.TrackSample(200)
	if len(p.Track) != 2 {
		t.Errorf("track samples = %d, want 2", len(p.Track))
	}

	var js bytes.Buffer
	if err := p.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(js.Bytes(), &env); err != nil {
		t.Fatalf("JSON export invalid: %v", err)
	}
	if env["engine_version"] != "ev-test" {
		t.Errorf("JSON missing engine version: %v", env)
	}

	var csv bytes.Buffer
	if err := p.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != 3 { // header + 2 ranks
		t.Errorf("CSV lines = %d: %q", lines, csv.String())
	}

	var prom bytes.Buffer
	if err := p.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"secpref_sim_advances_total 1",
		"secpref_sim_skipped_cycles_total 16",
		`secpref_sim_rank_ticks_total{rank="core"} 1`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}

	var tr bytes.Buffer
	if err := p.WriteChromeTrace(&tr, "test"); err != nil {
		t.Fatal(err)
	}
	var tf map[string]any
	if err := json.Unmarshal(tr.Bytes(), &tf); err != nil {
		t.Fatalf("Chrome trace invalid: %v", err)
	}
	if evs, ok := tf["traceEvents"].([]any); !ok || len(evs) != 4 { // 2 points × 2 counters
		t.Errorf("trace events = %v", tf["traceEvents"])
	}
}

func TestRecorderAndFirstDivergence(t *testing.T) {
	mk := func(points ...DigestPoint) *Recorder {
		r := NewRecorder()
		for _, p := range points {
			r.Digest(p.Cycle, p.Comps)
		}
		return r
	}
	a := mk(DigestPoint{100, []uint64{1, 2}}, DigestPoint{200, []uint64{3, 4}})

	if div, ok := FirstDivergence(a, mk(DigestPoint{100, []uint64{1, 2}}, DigestPoint{200, []uint64{3, 4}})); ok {
		t.Errorf("identical streams diverge: %v", div)
	}
	div, ok := FirstDivergence(a, mk(DigestPoint{100, []uint64{1, 2}}, DigestPoint{200, []uint64{3, 9}}))
	if !ok || div.Cycle != 200 || div.Component != 1 || div.A != 4 || div.B != 9 {
		t.Errorf("component divergence: %v ok=%v", div, ok)
	}
	div, ok = FirstDivergence(a, mk(DigestPoint{100, []uint64{1, 2}}, DigestPoint{250, []uint64{3, 4}}))
	if !ok || div.Component != -1 || div.Cycle != 200 {
		t.Errorf("cycle mismatch: %v ok=%v", div, ok)
	}
	div, ok = FirstDivergence(a, mk(DigestPoint{100, []uint64{1, 2}}))
	if !ok || div.Component != -1 || div.Cycle != 200 {
		t.Errorf("length mismatch: %v ok=%v", div, ok)
	}
	// The sink contract: the slice is reused by callers; Digest must copy.
	shared := []uint64{7}
	r := NewRecorder()
	r.Digest(1, shared)
	shared[0] = 9
	if r.Points[0].Comps[0] != 7 {
		t.Error("recorder aliased the caller's slice")
	}
}

// scriptedEngine digests as a pure function of its clock — synthetic
// engines for bisector unit tests.
type scriptedEngine struct {
	now  mem.Cycle
	end  mem.Cycle
	comp func(mem.Cycle) []uint64
}

func (e *scriptedEngine) RunToCycle(t mem.Cycle) (mem.Cycle, bool, error) {
	if t > e.end {
		t = e.end
	}
	if t > e.now {
		e.now = t
	}
	return e.now, e.now >= e.end, nil
}

func (e *scriptedEngine) StateDigests(dst []uint64) []uint64 {
	return append(dst, e.comp(e.now)...)
}

func TestBisectScripted(t *testing.T) {
	clean := func(mem.Cycle) []uint64 { return []uint64{1, 2, 3} }
	const fault = mem.Cycle(777)
	faulty := func(c mem.Cycle) []uint64 {
		v := []uint64{1, 2, 3}
		if c >= fault {
			v[1] = 99
		}
		return v
	}
	fresh := func() (DigestEngine, DigestEngine, error) {
		return &scriptedEngine{end: 100_000, comp: clean},
			&scriptedEngine{end: 100_000, comp: faulty}, nil
	}
	div, err := Bisect(fresh, BisectOptions{Step: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil || div.Cycle != fault || div.Component != 1 || div.A != 2 || div.B != 99 {
		t.Errorf("bisect = %v, want cycle %d component 1", div, fault)
	}

	// Clean pair terminates at workload end with no divergence.
	cleanFresh := func() (DigestEngine, DigestEngine, error) {
		return &scriptedEngine{end: 10_000, comp: clean},
			&scriptedEngine{end: 10_000, comp: clean}, nil
	}
	div, err = Bisect(cleanFresh, BisectOptions{Step: 4096})
	if err != nil || div != nil {
		t.Errorf("clean pair: div=%v err=%v", div, err)
	}

	// Engines whose clocks disagree are a structural divergence.
	lame := func() (DigestEngine, DigestEngine, error) {
		return &scriptedEngine{end: 100_000, comp: clean},
			&scriptedEngine{end: 500, comp: clean}, nil
	}
	div, err = Bisect(lame, BisectOptions{Step: 4096, Limit: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if div == nil || div.Component != -1 {
		t.Errorf("clock divergence not structural: %v", div)
	}
}

// Package observatory is the engine-introspection layer: it explains
// where a simulation's host cycles went and proves, cheaply and
// continuously, that two engines executed the same machine.
//
// It has three parts, all zero-overhead-when-off like internal/probe:
//
//   - Attribution profiling (Profile): per-component-rank tick and
//     integrate counts, wake-poke causes, conditional re-arm outcomes,
//     and gap-size histograms for the calendar-queue engine, plus
//     optional sampled wall-time per component tick. Exported as a
//     sim-profile table (JSON/CSV), Perfetto-loadable counter tracks,
//     and Prometheus gauges.
//   - Determinism digests (Digest, Recorder): each component hashes its
//     architectural state into a uint64; the machine emits the rolling
//     per-component digest vector at a configurable cycle interval, so
//     two engines can be compared at every interval instead of
//     DeepEqual-at-end.
//   - Divergence bisection (Bisect): drives two deterministic engines
//     against each other and binary-searches to the first divergent
//     (cycle, component).
//
// The package deliberately depends only on internal/mem so every
// component package can implement StateDigest() with its helpers.
package observatory

// FNV-1a 64-bit parameters, word-folded: state is hashed a uint64 at a
// time (one xor + one multiply per word) rather than per byte. The
// digest is a divergence detector, not a cryptographic commitment —
// what matters is that any single-field difference in architectural
// state flips the result with overwhelming probability, and that the
// fold is cheap enough to run every few thousand cycles.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Digest is a word-folded FNV-1a accumulator over a component's
// architectural state. Components build their StateDigest() with it:
//
//	d := observatory.NewDigest()
//	d = d.Word(uint64(tag)).Word(uint64(lru))
//	return uint64(d)
//
// The accumulator is a value type on purpose: chaining never allocates
// and a forgotten reassignment fails loudly in review, not silently at
// run time.
type Digest uint64

// NewDigest returns the FNV-1a offset basis.
func NewDigest() Digest { return fnvOffset }

// Word folds one 64-bit word into the digest.
func (d Digest) Word(v uint64) Digest {
	return (d ^ Digest(v)) * fnvPrime
}

// Bool folds a flag into the digest.
func (d Digest) Bool(b bool) Digest {
	if b {
		return d.Word(1)
	}
	return d.Word(0)
}

// Sum returns the accumulated digest.
func (d Digest) Sum() uint64 { return uint64(d) }

// HashBytes digests a byte slice with byte-wise FNV-1a (bench records
// fingerprint serialized results with it).
func HashBytes(b []byte) uint64 {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

package observatory

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// gapBuckets is the number of power-of-two histogram buckets for
// calendar gap sizes: bucket i counts gaps of at most 1<<i cycles, the
// last bucket is the overflow.
const gapBuckets = 18

// RankProfile accumulates attribution counters for one component rank
// of the calendar-queue engine.
type RankProfile struct {
	Name string `json:"name"`
	// Ticks counts cycles where the component did (potential) work;
	// Integrated counts cycles it absorbed via SkipIdle(1) at its rank
	// slot instead.
	Ticks      uint64 `json:"ticks"`
	Integrated uint64 `json:"integrated"`
	// Tick causes (one tick can have several): the component's own
	// calendar entry was due, a peer poked its wake counter, or — core
	// only — the GM state version moved.
	DueTicks     uint64 `json:"due_ticks"`
	WakeTicks    uint64 `json:"wake_ticks"`
	VersionTicks uint64 `json:"version_ticks"`
	// Conditional re-arm outcomes after a visited cycle: rescheduled at
	// a fresh NextEvent vs. calendar entry kept untouched.
	Rearmed uint64 `json:"rearmed"`
	KeptArm uint64 `json:"kept_arms"`
	// Sampled wall time spent inside the component's Tick.
	WallNs      uint64 `json:"wall_ns"`
	WallSamples uint64 `json:"wall_samples"`

	// wallPhase drives the every-Nth-tick wall sampling cadence.
	wallPhase uint64
}

// TrackPoint is one sampled point of the per-rank counter tracks
// (Perfetto export): cumulative tick counts per rank at a cycle
// timestamp.
type TrackPoint struct {
	Cycle         uint64   `json:"cycle"`
	Ticks         []uint64 `json:"ticks"`
	SkippedCycles uint64   `json:"skipped_cycles"`
}

// Profile accumulates one run's engine attribution. The zero value is
// ready; the machine fills rank names on attach. Profile is not safe
// for concurrent use — it belongs to exactly one Machine. Use
// Aggregate to combine profiles across a campaign.
type Profile struct {
	// EngineVersion is stamped by the simulator on attach.
	EngineVersion string
	// WallSampleEvery enables sampled wall-time measurement: every Nth
	// Tick of each rank is timed with time.Now. 0 disables (the
	// default; timing syscalls perturb the engine's own numbers).
	WallSampleEvery uint64

	Ranks []RankProfile

	// Advances counts advanceTo calls (event engine) or steps
	// (lockstep); VisitedCycles counts cycles processed in rank order;
	// SkippedCycles counts gap cycles absorbed in O(1);
	// ClampedAdvances counts advances whose jump target was clamped
	// below the calendar's earliest wake (wedge window, cycle budget,
	// or digest boundary).
	Advances        uint64
	VisitedCycles   uint64
	SkippedCycles   uint64
	ClampedAdvances uint64

	// GapHist[i] counts gap skips of at most 1<<i cycles (last bucket
	// overflows).
	GapHist [gapBuckets]uint64

	// Track holds the sampled counter history (TrackSample); the
	// Perfetto counter export reads it.
	Track []TrackPoint
}

// NewProfile returns an empty profile over the given rank names.
func NewProfile(names ...string) *Profile {
	p := &Profile{}
	p.EnsureRanks(names)
	return p
}

// EnsureRanks sizes the rank table and fills missing names. Safe to
// call repeatedly; existing counters are kept.
func (p *Profile) EnsureRanks(names []string) {
	for len(p.Ranks) < len(names) {
		p.Ranks = append(p.Ranks, RankProfile{})
	}
	for i, n := range names {
		if p.Ranks[i].Name == "" {
			p.Ranks[i].Name = n
		}
	}
}

// Advance records one engine advance; clamped marks a jump target
// lowered below the calendar's earliest wake.
func (p *Profile) Advance(clamped bool) {
	p.Advances++
	p.VisitedCycles++
	if clamped {
		p.ClampedAdvances++
	}
}

// Gap records a gap skip of k cycles.
func (p *Profile) Gap(k uint64) {
	p.SkippedCycles += k
	i := 0
	for i < gapBuckets-1 && k > 1<<uint(i) {
		i++
	}
	p.GapHist[i]++
}

// Visit records the outcome of one rank's slot at a visited cycle:
// whether it ticked and, if so, which causes were live.
func (p *Profile) Visit(rank int, ticked, due, woke, ver bool) {
	r := &p.Ranks[rank]
	if !ticked {
		r.Integrated++
		return
	}
	r.Ticks++
	if due {
		r.DueTicks++
	}
	if woke {
		r.WakeTicks++
	}
	if ver {
		r.VersionTicks++
	}
}

// Rearm records the conditional re-arm outcome of one rank after a
// visited cycle.
func (p *Profile) Rearm(rank int, rearmed bool) {
	if rearmed {
		p.Ranks[rank].Rearmed++
	} else {
		p.Ranks[rank].KeptArm++
	}
}

// WallDue reports whether this rank's next Tick should be wall-timed
// (every WallSampleEvery-th tick).
func (p *Profile) WallDue(rank int) bool {
	if p.WallSampleEvery == 0 {
		return false
	}
	r := &p.Ranks[rank]
	r.wallPhase++
	return r.wallPhase%p.WallSampleEvery == 0
}

// WallRecord adds one timed Tick's duration.
func (p *Profile) WallRecord(rank int, d time.Duration) {
	r := &p.Ranks[rank]
	r.WallNs += uint64(d.Nanoseconds())
	r.WallSamples++
}

// TrackSample appends one counter-track point at the given cycle.
// Consecutive samples at the same cycle collapse into one.
func (p *Profile) TrackSample(cycle uint64) {
	if n := len(p.Track); n > 0 && p.Track[n-1].Cycle == cycle {
		return
	}
	ticks := make([]uint64, len(p.Ranks))
	for i := range p.Ranks {
		ticks[i] = p.Ranks[i].Ticks
	}
	p.Track = append(p.Track, TrackPoint{Cycle: cycle, Ticks: ticks, SkippedCycles: p.SkippedCycles})
}

// Merge folds another profile's counters into p (campaign
// aggregation). Counter tracks are per-run time series and are not
// merged.
func (p *Profile) Merge(o *Profile) {
	if p.EngineVersion == "" {
		p.EngineVersion = o.EngineVersion
	}
	names := make([]string, len(o.Ranks))
	for i := range o.Ranks {
		names[i] = o.Ranks[i].Name
	}
	p.EnsureRanks(names)
	for i := range o.Ranks {
		a, b := &p.Ranks[i], &o.Ranks[i]
		a.Ticks += b.Ticks
		a.Integrated += b.Integrated
		a.DueTicks += b.DueTicks
		a.WakeTicks += b.WakeTicks
		a.VersionTicks += b.VersionTicks
		a.Rearmed += b.Rearmed
		a.KeptArm += b.KeptArm
		a.WallNs += b.WallNs
		a.WallSamples += b.WallSamples
	}
	p.Advances += o.Advances
	p.VisitedCycles += o.VisitedCycles
	p.SkippedCycles += o.SkippedCycles
	p.ClampedAdvances += o.ClampedAdvances
	for i := range o.GapHist {
		p.GapHist[i] += o.GapHist[i]
	}
}

// SkipEfficiency is the fraction of simulated cycles absorbed by gap
// skips instead of rank-ordered visits.
func (p *Profile) SkipEfficiency() float64 {
	total := p.SkippedCycles + p.VisitedCycles
	if total == 0 {
		return 0
	}
	return float64(p.SkippedCycles) / float64(total)
}

// Row is one derived line of the sim-profile table.
type Row struct {
	Rank          string  `json:"rank"`
	Ticks         uint64  `json:"ticks"`
	Integrated    uint64  `json:"integrated"`
	DueTicks      uint64  `json:"due_ticks"`
	WakeTicks     uint64  `json:"wake_ticks"`
	VersionTicks  uint64  `json:"version_ticks"`
	Rearmed       uint64  `json:"rearmed"`
	KeptArms      uint64  `json:"kept_arms"`
	TickShare     float64 `json:"tick_share"`
	WallNsPerTick float64 `json:"wall_ns_per_tick"`
	WallSamples   uint64  `json:"wall_samples"`
}

// Table derives the per-rank rows.
func (p *Profile) Table() []Row {
	rows := make([]Row, 0, len(p.Ranks))
	var totalTicks uint64
	for i := range p.Ranks {
		totalTicks += p.Ranks[i].Ticks
	}
	for i := range p.Ranks {
		r := &p.Ranks[i]
		row := Row{
			Rank:         r.Name,
			Ticks:        r.Ticks,
			Integrated:   r.Integrated,
			DueTicks:     r.DueTicks,
			WakeTicks:    r.WakeTicks,
			VersionTicks: r.VersionTicks,
			Rearmed:      r.Rearmed,
			KeptArms:     r.KeptArm,
			WallSamples:  r.WallSamples,
		}
		if totalTicks > 0 {
			row.TickShare = float64(r.Ticks) / float64(totalTicks)
		}
		if r.WallSamples > 0 {
			row.WallNsPerTick = float64(r.WallNs) / float64(r.WallSamples)
		}
		rows = append(rows, row)
	}
	return rows
}

// gapBucketRow is one histogram bucket of the JSON export.
type gapBucketRow struct {
	LE    uint64 `json:"le"` // gap size upper bound, 0 = overflow
	Count uint64 `json:"count"`
}

// profileJSON is the sim-profile export envelope.
type profileJSON struct {
	EngineVersion   string         `json:"engine_version,omitempty"`
	Advances        uint64         `json:"advances"`
	VisitedCycles   uint64         `json:"visited_cycles"`
	SkippedCycles   uint64         `json:"skipped_cycles"`
	ClampedAdvances uint64         `json:"clamped_advances"`
	SkipEfficiency  float64        `json:"skip_efficiency"`
	Ranks           []Row          `json:"ranks"`
	GapHist         []gapBucketRow `json:"gap_hist"`
}

func (p *Profile) export() profileJSON {
	e := profileJSON{
		EngineVersion:   p.EngineVersion,
		Advances:        p.Advances,
		VisitedCycles:   p.VisitedCycles,
		SkippedCycles:   p.SkippedCycles,
		ClampedAdvances: p.ClampedAdvances,
		SkipEfficiency:  p.SkipEfficiency(),
		Ranks:           p.Table(),
	}
	for i, c := range p.GapHist {
		if c == 0 {
			continue
		}
		le := uint64(0)
		if i < gapBuckets-1 {
			le = 1 << uint(i)
		}
		e.GapHist = append(e.GapHist, gapBucketRow{LE: le, Count: c})
	}
	return e
}

// WriteJSON writes the sim-profile table as an indented JSON envelope.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p.export())
}

// WriteCSV writes the per-rank rows as CSV.
func (p *Profile) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "rank,ticks,integrated,due_ticks,wake_ticks,version_ticks,rearmed,kept_arms,tick_share,wall_ns_per_tick,wall_samples\n"); err != nil {
		return err
	}
	for _, r := range p.Table() {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%d,%d,%d,%.4f,%.1f,%d\n",
			r.Rank, r.Ticks, r.Integrated, r.DueTicks, r.WakeTicks, r.VersionTicks,
			r.Rearmed, r.KeptArms, r.TickShare, r.WallNsPerTick, r.WallSamples); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus writes the attribution counters in Prometheus text
// exposition format; they ride the campaign /metrics endpoint.
func (p *Profile) WritePrometheus(w io.Writer) error {
	single := func(name, typ, help string, v float64) error {
		_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
		return err
	}
	if err := single("secpref_sim_advances_total", "counter", "Engine advances (calendar jumps or lockstep steps).", float64(p.Advances)); err != nil {
		return err
	}
	if err := single("secpref_sim_visited_cycles_total", "counter", "Cycles processed in rank order.", float64(p.VisitedCycles)); err != nil {
		return err
	}
	if err := single("secpref_sim_skipped_cycles_total", "counter", "Idle cycles absorbed by gap skips.", float64(p.SkippedCycles)); err != nil {
		return err
	}
	if err := single("secpref_sim_clamped_advances_total", "counter", "Advances clamped below the calendar's earliest wake.", float64(p.ClampedAdvances)); err != nil {
		return err
	}
	if err := single("secpref_sim_skip_efficiency", "gauge", "Fraction of simulated cycles absorbed by gap skips.", p.SkipEfficiency()); err != nil {
		return err
	}
	perRank := func(name, help string, get func(*RankProfile) uint64) error {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name); err != nil {
			return err
		}
		for i := range p.Ranks {
			r := &p.Ranks[i]
			if _, err := fmt.Fprintf(w, "%s{rank=%q} %d\n", name, r.Name, get(r)); err != nil {
				return err
			}
		}
		return nil
	}
	for _, m := range []struct {
		name, help string
		get        func(*RankProfile) uint64
	}{
		{"secpref_sim_rank_ticks_total", "Component ticks at visited cycles.", func(r *RankProfile) uint64 { return r.Ticks }},
		{"secpref_sim_rank_integrated_total", "Idle cycles integrated at the rank slot.", func(r *RankProfile) uint64 { return r.Integrated }},
		{"secpref_sim_rank_due_ticks_total", "Ticks caused by a due calendar entry.", func(r *RankProfile) uint64 { return r.DueTicks }},
		{"secpref_sim_rank_wake_ticks_total", "Ticks caused by a wake-counter poke.", func(r *RankProfile) uint64 { return r.WakeTicks }},
		{"secpref_sim_rank_version_ticks_total", "Ticks caused by a GM state-version move.", func(r *RankProfile) uint64 { return r.VersionTicks }},
		{"secpref_sim_rank_rearms_total", "Conditional re-arms performed.", func(r *RankProfile) uint64 { return r.Rearmed }},
		{"secpref_sim_rank_kept_arms_total", "Calendar entries kept untouched.", func(r *RankProfile) uint64 { return r.KeptArm }},
		{"secpref_sim_rank_wall_ns_total", "Sampled wall nanoseconds inside Tick.", func(r *RankProfile) uint64 { return r.WallNs }},
		{"secpref_sim_rank_wall_samples_total", "Wall-timed Tick samples.", func(r *RankProfile) uint64 { return r.WallSamples }},
	} {
		if err := perRank(m.name, m.help, m.get); err != nil {
			return err
		}
	}
	return nil
}

// WriteChromeTrace writes the sampled counter tracks as Chrome
// trace-event JSON ("C" phase counter events, 1 simulated cycle = 1
// µs — the same timebase as the request-lifecycle tracer, so both load
// side by side in Perfetto).
func (p *Profile) WriteChromeTrace(w io.Writer, label string) error {
	type counterEvent struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Ts   uint64            `json:"ts"`
		Pid  int               `json:"pid"`
		Tid  int               `json:"tid"`
		Args map[string]uint64 `json:"args"`
	}
	type traceFile struct {
		TraceEvents []counterEvent `json:"traceEvents"`
		OtherData   map[string]any `json:"otherData"`
	}
	tf := traceFile{
		TraceEvents: []counterEvent{},
		OtherData: map[string]any{
			"label":          label,
			"engine_version": p.EngineVersion,
		},
	}
	for _, pt := range p.Track {
		args := make(map[string]uint64, len(pt.Ticks))
		for i, t := range pt.Ticks {
			if i < len(p.Ranks) {
				args[p.Ranks[i].Name] = t
			}
		}
		tf.TraceEvents = append(tf.TraceEvents,
			counterEvent{Name: "rank ticks", Ph: "C", Ts: pt.Cycle, Pid: 1, Tid: 1, Args: args},
			counterEvent{Name: "skipped cycles", Ph: "C", Ts: pt.Cycle, Pid: 1, Tid: 1,
				Args: map[string]uint64{"skipped": pt.SkippedCycles}})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// String renders a compact human-readable table (stderr summaries).
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine %s: %d advances, %d visited + %d skipped cycles (%.1f%% skip efficiency), %d clamped\n",
		p.EngineVersion, p.Advances, p.VisitedCycles, p.SkippedCycles, 100*p.SkipEfficiency(), p.ClampedAdvances)
	for _, r := range p.Table() {
		fmt.Fprintf(&b, "  %-5s ticks=%-9d integ=%-9d due=%-9d wake=%-8d ver=%-7d rearm=%-9d kept=%-9d share=%.1f%%",
			r.Rank, r.Ticks, r.Integrated, r.DueTicks, r.WakeTicks, r.VersionTicks, r.Rearmed, r.KeptArms, 100*r.TickShare)
		if r.WallSamples > 0 {
			fmt.Fprintf(&b, " wall=%.0fns/tick", r.WallNsPerTick)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Aggregate is a mutex-guarded campaign-wide profile: worker
// goroutines Add per-run profiles, exporters snapshot it concurrently
// (the /metrics endpoint reads it while the campaign runs).
type Aggregate struct {
	mu sync.Mutex
	p  Profile
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate { return &Aggregate{} }

// Add folds one run's profile in.
func (a *Aggregate) Add(p *Profile) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.p.Merge(p)
}

// Snapshot returns a deep copy of the aggregated profile.
func (a *Aggregate) Snapshot() Profile {
	a.mu.Lock()
	defer a.mu.Unlock()
	cp := a.p
	cp.Ranks = append([]RankProfile(nil), a.p.Ranks...)
	cp.Track = nil
	return cp
}

// WriteJSON writes the aggregated sim-profile table as JSON.
func (a *Aggregate) WriteJSON(w io.Writer) error {
	s := a.Snapshot()
	return s.WriteJSON(w)
}

// WriteCSV writes the aggregated per-rank rows as CSV.
func (a *Aggregate) WriteCSV(w io.Writer) error {
	s := a.Snapshot()
	return s.WriteCSV(w)
}

// WritePrometheus writes the aggregated counters in Prometheus text
// format (rides probe.NewHandler's /metrics endpoint).
func (a *Aggregate) WritePrometheus(w io.Writer) error {
	s := a.Snapshot()
	return s.WritePrometheus(w)
}

// String renders the aggregated table.
func (a *Aggregate) String() string {
	s := a.Snapshot()
	return s.String()
}

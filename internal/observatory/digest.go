package observatory

import (
	"encoding/json"
	"fmt"
	"io"

	"secpref/internal/mem"
)

// DigestSink receives the machine's rolling per-component state
// digests. Digest is called at every digest-interval boundary of a run
// with the cycle and the component digest vector; the slice is reused
// across calls — implementations must copy what they keep.
type DigestSink interface {
	Digest(cycle mem.Cycle, comps []uint64)
}

// DigestPoint is one recorded digest-stream sample.
type DigestPoint struct {
	Cycle mem.Cycle `json:"cycle"`
	Comps []uint64  `json:"digests"`
}

// Recorder is a DigestSink that stores the stream for comparison and
// export. Not safe for concurrent use — one Recorder per run.
type Recorder struct {
	// EngineVersion and Interval are stamped by the simulator when the
	// recorder is attached.
	EngineVersion string    `json:"engine_version,omitempty"`
	Interval      mem.Cycle `json:"interval,omitempty"`
	// Components names the digest vector's indices (stamped on attach).
	Components []string      `json:"components,omitempty"`
	Points     []DigestPoint `json:"points"`
}

// NewRecorder returns an empty digest-stream recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Digest implements DigestSink.
func (r *Recorder) Digest(cycle mem.Cycle, comps []uint64) {
	r.Points = append(r.Points, DigestPoint{Cycle: cycle, Comps: append([]uint64(nil), comps...)})
}

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.Points) }

// WriteJSON writes the digest stream as an indented JSON envelope.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Divergence locates the first disagreement between two digest
// streams or engines.
type Divergence struct {
	// Cycle is the first cycle at which the engines disagree. For
	// stream comparison it is the first divergent checkpoint; Bisect
	// refines it to the exact cycle.
	Cycle mem.Cycle
	// Component is the index of the first divergent component digest,
	// or -1 when the streams disagree structurally (different lengths
	// or checkpoint cycles).
	Component int
	// A and B are the divergent digest values.
	A, B uint64
}

func (d Divergence) String() string {
	if d.Component < 0 {
		return fmt.Sprintf("streams structurally diverge at cycle %d", d.Cycle)
	}
	return fmt.Sprintf("cycle %d component %d: %#x != %#x", d.Cycle, d.Component, d.A, d.B)
}

// comparePoints returns the first divergent component of two digest
// vectors, or -1 if equal.
func comparePoints(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// FirstDivergence compares two recorded digest streams checkpoint by
// checkpoint and returns the first disagreement, or ok=false when the
// streams agree at every common checkpoint and have equal length.
func FirstDivergence(a, b *Recorder) (Divergence, bool) {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	for i := 0; i < n; i++ {
		pa, pb := a.Points[i], b.Points[i]
		if pa.Cycle != pb.Cycle {
			return Divergence{Cycle: minCycle(pa.Cycle, pb.Cycle), Component: -1}, true
		}
		if c := comparePoints(pa.Comps, pb.Comps); c >= 0 {
			var va, vb uint64
			if c < len(pa.Comps) {
				va = pa.Comps[c]
			}
			if c < len(pb.Comps) {
				vb = pb.Comps[c]
			}
			return Divergence{Cycle: pa.Cycle, Component: c, A: va, B: vb}, true
		}
	}
	if len(a.Points) != len(b.Points) {
		var at mem.Cycle
		if n < len(a.Points) {
			at = a.Points[n].Cycle
		} else {
			at = b.Points[n].Cycle
		}
		return Divergence{Cycle: at, Component: -1}, true
	}
	return Divergence{}, false
}

func minCycle(a, b mem.Cycle) mem.Cycle {
	if a < b {
		return a
	}
	return b
}

// DigestRequest folds an in-flight memory request's architectural
// fields into d (component StateDigest implementations share it for
// queue and MSHR contents). A nil request folds a distinct marker.
func DigestRequest(d Digest, r *mem.Request) Digest {
	if r == nil {
		return d.Word(0x6e696c) // "nil"
	}
	d = d.Word(uint64(r.Line)).Word(uint64(r.IP)).Word(uint64(r.Kind))
	d = d.Word(uint64(r.Issued)).Word(r.Timestamp).Word(uint64(r.FillLevel))
	d = d.Bool(r.SpecBypass).Bool(r.Dirty).Word(uint64(r.WBBits))
	d = d.Word(uint64(r.ServedBy)).Bool(r.MergedPrefetch).Word(uint64(r.FillLat))
	d = d.Bool(r.HitPrefetched).Word(uint64(r.OwnerTag))
	return d
}

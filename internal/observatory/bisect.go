package observatory

import (
	"fmt"

	"secpref/internal/mem"
)

// DigestEngine is a steppable, digestible simulation engine. Both the
// event-driven and the lockstep reference engine of internal/sim
// implement it; sharded engines will too.
type DigestEngine interface {
	// RunToCycle advances the engine to exactly cycle t (engines stop
	// short only when the workload finishes first) and returns the
	// clock it stopped at and whether the workload is done.
	RunToCycle(t mem.Cycle) (now mem.Cycle, done bool, err error)
	// StateDigests appends the per-component architectural-state
	// digests to dst and returns it.
	StateDigests(dst []uint64) []uint64
}

// BisectOptions tune the divergence search.
type BisectOptions struct {
	// Limit is the scan horizon in cycles; the coarse pass stops there
	// even if neither engine finished.
	Limit mem.Cycle
	// Step is the coarse checkpoint interval (default 4096).
	Step mem.Cycle
}

// probeOutcome is one digest comparison of a (fresh) engine pair at a
// target cycle.
type probeOutcome struct {
	diverged bool
	comp     int // -1: the clocks/done flags themselves disagree
	a, b     uint64
	done     bool // both engines finished (in agreement)
}

// Bisect localizes the first divergent (cycle, component) between two
// deterministic engines. fresh must build a brand-new engine pair from
// identical inputs on every call — the search restarts the pair to
// probe intermediate cycles, which is what turns an end-of-run
// "DeepEqual mismatch" into an exact coordinate.
//
// The search has two phases: a coarse forward scan comparing digests
// every Step cycles on one pair, then a binary search over the first
// divergent window using a fresh pair per probe. Total cost is
// O(run · log Step). Returns (nil, nil) when the engines agree at
// every checkpoint up to Limit (or to completion).
func Bisect(fresh func() (a, b DigestEngine, err error), opt BisectOptions) (*Divergence, error) {
	if opt.Step == 0 {
		opt.Step = 4096
	}
	if opt.Limit == 0 {
		opt.Limit = mem.Cycle(1) << 62
	}

	var bufA, bufB []uint64
	probe := func(a, b DigestEngine, t mem.Cycle) (probeOutcome, error) {
		nowA, doneA, err := a.RunToCycle(t)
		if err != nil {
			return probeOutcome{}, fmt.Errorf("observatory: engine A at cycle %d: %w", t, err)
		}
		nowB, doneB, err := b.RunToCycle(t)
		if err != nil {
			return probeOutcome{}, fmt.Errorf("observatory: engine B at cycle %d: %w", t, err)
		}
		if nowA != nowB || doneA != doneB {
			// One engine finished or stalled where the other ran on — a
			// structural divergence of the clocks themselves.
			return probeOutcome{diverged: true, comp: -1, a: uint64(nowA), b: uint64(nowB)}, nil
		}
		bufA = a.StateDigests(bufA[:0])
		bufB = b.StateDigests(bufB[:0])
		if c := comparePoints(bufA, bufB); c >= 0 {
			out := probeOutcome{diverged: true, comp: c}
			if c < len(bufA) {
				out.a = bufA[c]
			}
			if c < len(bufB) {
				out.b = bufB[c]
			}
			return out, nil
		}
		return probeOutcome{done: doneA}, nil
	}

	// Coarse scan: one pair, digests compared every Step cycles.
	a, b, err := fresh()
	if err != nil {
		return nil, err
	}
	var lo mem.Cycle // last agreeing checkpoint
	var hi mem.Cycle // first divergent checkpoint
	found := false
	for t := opt.Step; t <= opt.Limit; t += opt.Step {
		out, err := probe(a, b, t)
		if err != nil {
			return nil, err
		}
		if out.diverged {
			hi, found = t, true
			break
		}
		if out.done { // both engines finished in agreement
			return nil, nil
		}
		lo = t
	}
	if !found {
		return nil, nil
	}

	// Binary search (lo, hi]: fresh pair per probe.
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		a, b, err := fresh()
		if err != nil {
			return nil, err
		}
		out, err := probe(a, b, mid)
		if err != nil {
			return nil, err
		}
		if out.diverged {
			hi = mid
		} else {
			lo = mid
		}
	}

	// Final probe at hi extracts the divergent component and values.
	a, b, err = fresh()
	if err != nil {
		return nil, err
	}
	out, err := probe(a, b, hi)
	if err != nil {
		return nil, err
	}
	if !out.diverged {
		// The divergence did not reproduce on replay: the engine pair
		// is not deterministic, which is itself a reportable defect.
		return nil, fmt.Errorf("observatory: divergence at cycle %d did not reproduce on replay (non-deterministic engine pair)", hi)
	}
	return &Divergence{Cycle: hi, Component: out.comp, A: out.a, B: out.b}, nil
}

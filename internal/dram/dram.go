// Package dram models main memory with open-page row buffers and an
// FR-FCFS scheduler, following the paper's Table II: one channel per
// four cores at 6400 MT/s, 4 KB row buffers, and tRP = tRCD = tCAS =
// 12.5 ns each (50 core cycles at 4 GHz).
package dram

import (
	"secpref/internal/mem"
	"secpref/internal/probe"
	"secpref/internal/stats"
)

// Config describes one memory channel.
type Config struct {
	Banks int
	// RowBufKiB is the row-buffer size per bank (page size).
	RowBufKiB int
	// TRP, TRCD, TCAS in core cycles.
	TRP, TRCD, TCAS mem.Cycle
	// BurstCycles is data-bus occupancy per 64 B line (6400 MT/s × 8 B
	// bus ≈ 51.2 GB/s → 1.25 ns/line → 5 core cycles at 4 GHz).
	BurstCycles mem.Cycle
	// RQSize / WQSize bound the controller queues; WriteWatermark is
	// the WQ fill fraction above which writes are drained in preference
	// to reads (Table II: 7/8).
	RQSize, WQSize     int
	WriteWatermarkNum  int
	WriteWatermarkDen  int
	MaxRequestsPerTick int
}

// DefaultConfig returns the Table II channel.
func DefaultConfig() Config {
	return Config{
		Banks:     16,
		RowBufKiB: 4,
		TRP:       50, TRCD: 50, TCAS: 50,
		BurstCycles:        5,
		RQSize:             64,
		WQSize:             64,
		WriteWatermarkNum:  7,
		WriteWatermarkDen:  8,
		MaxRequestsPerTick: 1,
	}
}

type queued struct {
	req     *mem.Request
	arrived mem.Cycle
}

// DRAM is one memory channel implementing cache.Port.
type DRAM struct {
	cfg  Config
	rq   []queued
	wq   []queued
	rows []uint64 // open row per bank (+1; 0 = closed)

	busFreeAt mem.Cycle
	now       mem.Cycle
	resp      []pending
	pool      *mem.RequestPool

	// wake counts externally delivered work (accepted enqueues); see
	// WakeCount.
	wake uint64

	// Stats is the channel's counter block.
	Stats stats.DRAMStats

	// Obs, if set, observes every scheduled access (Hit reports a
	// row-buffer hit). Observers are read-only; see internal/probe.
	Obs probe.Observer
}

// New builds a channel.
func New(cfg Config) *DRAM {
	return &DRAM{cfg: cfg, rows: make([]uint64, cfg.Banks), pool: &mem.RequestPool{}}
}

// SetPool shares the machine-wide request pool with the channel; the
// channel recycles ownerless traffic (writebacks) that terminates here.
func (d *DRAM) SetPool(p *mem.RequestPool) { d.pool = p }

// Config returns the channel configuration.
func (d *DRAM) Config() Config { return d.cfg }

// bankOf maps a line to a bank; rowOf to a row within the bank.
func (d *DRAM) bankOf(l mem.Line) int {
	linesPerRow := uint64(d.cfg.RowBufKiB * 1024 / mem.LineSize)
	return int((uint64(l) / linesPerRow) % uint64(d.cfg.Banks))
}

func (d *DRAM) rowOf(l mem.Line) uint64 {
	linesPerRow := uint64(d.cfg.RowBufKiB * 1024 / mem.LineSize)
	return uint64(l) / linesPerRow / uint64(d.cfg.Banks)
}

// Enqueue accepts a request; returns false when the queue is full.
func (d *DRAM) Enqueue(r *mem.Request) bool {
	if r.Kind == mem.KindWriteback || r.Kind == mem.KindCommitWrite {
		if len(d.wq) >= d.cfg.WQSize {
			d.Stats.QueueFullRejections++
			return false
		}
		d.wq = append(d.wq, queued{r, d.now})
		d.wake++
		return true
	}
	if len(d.rq) >= d.cfg.RQSize {
		d.Stats.QueueFullRejections++
		return false
	}
	d.rq = append(d.rq, queued{r, d.now})
	d.wake++
	return true
}

// WakeCount is a monotonic counter of peer-delivered work (accepted
// Enqueues). A scheduler holding the channel asleep past its own
// NextEvent must re-arm it when the counter moves.
func (d *DRAM) WakeCount() uint64 { return d.wake }

// Tick advances the channel one cycle.
func (d *DRAM) Tick(now mem.Cycle) {
	d.now = now
	d.Deliver(now)
	d.Stats.Cycles++
	d.Stats.QueueOccupancy += uint64(len(d.rq) + len(d.wq))
	if d.busFreeAt > now {
		return
	}
	for n := 0; n < d.cfg.MaxRequestsPerTick; n++ {
		if !d.issueOne() {
			return
		}
	}
}

// issueOne schedules the best candidate per FR-FCFS: row-buffer hits
// first, oldest first; writes are drained when the WQ passes the
// watermark or no reads are pending.
func (d *DRAM) issueOne() bool {
	drainWrites := len(d.wq)*d.cfg.WriteWatermarkDen >= d.cfg.WQSize*d.cfg.WriteWatermarkNum ||
		(len(d.rq) == 0 && len(d.wq) > 0)
	var q *[]queued
	if drainWrites {
		q = &d.wq
	} else if len(d.rq) > 0 {
		q = &d.rq
	} else {
		return false
	}
	idx := d.pickFRFCFS(*q)
	entry := (*q)[idx]
	n := len(*q)
	*q = append((*q)[:idx], (*q)[idx+1:]...)
	(*q)[:n][n-1] = queued{} // clear the vacated tail slot

	bank := d.bankOf(entry.req.Line)
	row := d.rowOf(entry.req.Line) + 1
	rowHit := d.rows[bank] == row
	var lat mem.Cycle
	if rowHit {
		lat = d.cfg.TCAS
		d.Stats.RowHits++
	} else if d.rows[bank] == 0 {
		lat = d.cfg.TRCD + d.cfg.TCAS
		d.Stats.RowMisses++
	} else {
		lat = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		d.Stats.RowMisses++
	}
	d.rows[bank] = row
	d.busFreeAt = d.now + d.cfg.BurstCycles

	if d.Obs != nil {
		d.Obs.Event(probe.Event{
			Kind: probe.EvAccess, Site: probe.SiteDRAM, Cycle: d.now,
			Core: entry.req.Core, Seq: entry.req.Timestamp,
			Line: entry.req.Line, IP: entry.req.IP,
			Req: entry.req.Kind, Hit: rowHit, Aux: uint64(lat),
		})
	}

	if drainWrites {
		d.Stats.Writes++
		// Writes complete silently; ownerless ones terminate (and are
		// recycled) here.
		if entry.req.Owner != nil {
			entry.req.Complete()
		} else {
			d.pool.Put(entry.req)
		}
		return true
	}
	d.Stats.Reads++
	d.Stats.LatencySum += uint64((d.now - entry.arrived) + lat + d.cfg.BurstCycles)
	d.Stats.LatCnt++
	r := entry.req
	r.ServedBy = mem.LvlDRAM
	d.schedule(r, d.now+lat+d.cfg.BurstCycles)
	return true
}

// pickFRFCFS returns the index of the best candidate: the oldest
// request that hits an open row buffer, or the oldest overall if none
// does (first-ready, first-come-first-served).
func (d *DRAM) pickFRFCFS(q []queued) int {
	best := -1
	for i, e := range q {
		bank := d.bankOf(e.req.Line)
		if d.rows[bank] == d.rowOf(e.req.Line)+1 {
			if best == -1 || q[i].arrived < q[best].arrived {
				best = i
			}
		}
	}
	if best >= 0 {
		return best
	}
	best = 0
	for i := range q {
		if q[i].arrived < q[best].arrived {
			best = i
		}
	}
	return best
}

// pending holds in-flight read responses.
type pending struct {
	req   *mem.Request
	ready mem.Cycle
}

// schedule registers a read response for delivery at ready.
func (d *DRAM) schedule(r *mem.Request, ready mem.Cycle) {
	d.resp = append(d.resp, pending{r, ready})
}

// Deliver completes responses whose time has come. The simulator calls
// it once per cycle after Tick.
func (d *DRAM) Deliver(now mem.Cycle) {
	w := 0
	for _, p := range d.resp {
		if p.ready <= now {
			if p.req.Owner != nil {
				p.req.Complete()
			} else {
				d.pool.Put(p.req)
			}
		} else {
			d.resp[w] = p
			w++
		}
	}
	for i := w; i < len(d.resp); i++ {
		d.resp[i] = pending{} // clear vacated slots
	}
	d.resp = d.resp[:w]
}

// NextEvent reports the earliest future cycle at which the channel has
// work: a response becoming ready, or a queued request it can issue
// once the data bus frees. mem.NoEvent means fully idle.
func (d *DRAM) NextEvent(now mem.Cycle) mem.Cycle {
	next := mem.NoEvent
	for _, p := range d.resp {
		if p.ready < next {
			next = p.ready
		}
	}
	if len(d.rq)+len(d.wq) > 0 {
		issue := now + 1
		if d.busFreeAt > issue {
			issue = d.busFreeAt
		}
		if issue < next {
			next = issue
		}
	}
	if next != mem.NoEvent && next <= now {
		next = now + 1
	}
	return next
}

// SkipIdle integrates per-cycle statistics for k cycles during which
// the channel provably does nothing (no response ready, no issuable
// request): identical to calling Tick k times.
func (d *DRAM) SkipIdle(k mem.Cycle) {
	d.now += k // keep arrival stamps exact across the skipped window
	d.Stats.Cycles += uint64(k)
	d.Stats.QueueOccupancy += uint64(len(d.rq)+len(d.wq)) * uint64(k)
}

package dram

import (
	"testing"

	"secpref/internal/mem"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.RQSize, cfg.WQSize = 8, 8
	return cfg
}

// serve issues one read and returns its observed latency.
func serve(d *DRAM, l mem.Line, start mem.Cycle) (mem.Cycle, mem.Cycle) {
	done := mem.Cycle(0)
	r := &mem.Request{Line: l, Kind: mem.KindLoad}
	now := start
	r.Owner = mem.CompleterFunc(func(*mem.Request) { done = now })
	if !d.Enqueue(r) {
		panic("enqueue rejected")
	}
	for done == 0 {
		now++
		d.Tick(now)
		if now > start+10000 {
			panic("request never served")
		}
	}
	return done - start, now
}

func TestRowHitFasterThanConflict(t *testing.T) {
	d := New(testConfig())
	// First access opens the row.
	_, now := serve(d, 0, 0)
	// Same row: hit.
	hitLat, now := serve(d, 1, now)
	// Different row, same bank: conflict (rows interleave across banks;
	// same bank repeats every Banks rows).
	linesPerRow := mem.Line(d.cfg.RowBufKiB * 1024 / mem.LineSize)
	conflict := linesPerRow * mem.Line(d.cfg.Banks)
	confLat, _ := serve(d, conflict, now)
	if hitLat >= confLat {
		t.Errorf("row hit latency %d >= conflict latency %d", hitLat, confLat)
	}
	if hitLat > d.cfg.TCAS+d.cfg.BurstCycles+2 {
		t.Errorf("row hit latency %d too high", hitLat)
	}
	if confLat < d.cfg.TRP+d.cfg.TRCD+d.cfg.TCAS {
		t.Errorf("conflict latency %d below tRP+tRCD+tCAS", confLat)
	}
}

func TestFRFCFSPrefersOpenRow(t *testing.T) {
	d := New(testConfig())
	_, now := serve(d, 0, 0) // open row 0 of bank 0
	linesPerRow := mem.Line(d.cfg.RowBufKiB * 1024 / mem.LineSize)
	conflictLine := linesPerRow * mem.Line(d.cfg.Banks)
	var order []mem.Line
	mk := func(l mem.Line) *mem.Request {
		r := &mem.Request{Line: l, Kind: mem.KindLoad}
		r.Owner = mem.CompleterFunc(func(rr *mem.Request) { order = append(order, rr.Line) })
		return r
	}
	// Older conflict request, then a younger row-hit request.
	d.Enqueue(mk(conflictLine))
	d.Enqueue(mk(2))
	for len(order) < 2 {
		now++
		d.Tick(now)
	}
	if order[0] != 2 {
		t.Errorf("service order %v: FR-FCFS should serve the row hit first", order)
	}
}

func TestWritesDrainEventually(t *testing.T) {
	d := New(testConfig())
	for i := 0; i < 8; i++ {
		if !d.Enqueue(&mem.Request{Line: mem.Line(i), Kind: mem.KindWriteback, Dirty: true}) {
			t.Fatalf("write %d rejected", i)
		}
	}
	for now := mem.Cycle(1); now < 5000; now++ {
		d.Tick(now)
	}
	if d.Stats.Writes != 8 {
		t.Errorf("drained %d writes, want 8", d.Stats.Writes)
	}
}

func TestQueueFullRejects(t *testing.T) {
	d := New(testConfig())
	for i := 0; i < 8; i++ {
		r := &mem.Request{Line: mem.Line(i * 64), Kind: mem.KindLoad}
		if !d.Enqueue(r) {
			t.Fatalf("read %d rejected early", i)
		}
	}
	if d.Enqueue(&mem.Request{Line: 999, Kind: mem.KindLoad}) {
		t.Fatal("9th read should be rejected")
	}
	if d.Stats.QueueFullRejections != 1 {
		t.Errorf("rejections = %d", d.Stats.QueueFullRejections)
	}
}

func TestBankMapping(t *testing.T) {
	d := New(testConfig())
	linesPerRow := d.cfg.RowBufKiB * 1024 / mem.LineSize
	// Consecutive rows land on consecutive banks (interleaving).
	b0 := d.bankOf(0)
	b1 := d.bankOf(mem.Line(linesPerRow))
	if b0 == b1 {
		t.Error("adjacent rows map to the same bank (no interleaving)")
	}
	// Same row, different column: same bank, same row id.
	if d.bankOf(0) != d.bankOf(1) || d.rowOf(0) != d.rowOf(1) {
		t.Error("lines within one row split across banks/rows")
	}
}

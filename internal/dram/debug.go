package dram

// Debug accessors for diagnostics and tests.

// DebugRQ returns the read queue length.
func (d *DRAM) DebugRQ() int { return len(d.rq) }

// DebugWQ returns the write queue length.
func (d *DRAM) DebugWQ() int { return len(d.wq) }

// DebugResp returns the in-flight response count.
func (d *DRAM) DebugResp() int { return len(d.resp) }

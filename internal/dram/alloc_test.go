package dram

import (
	"testing"

	"secpref/internal/mem"
)

// TestTickZeroAllocSteadyState pins the zero-allocation property of the
// channel's hot path: with the pool, queues, and response list warm,
// enqueue→schedule→deliver of ownerless traffic must not allocate.
func TestTickZeroAllocSteadyState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TRP, cfg.TRCD, cfg.TCAS = 5, 5, 5
	cfg.BurstCycles = 1
	d := New(cfg)

	now := mem.Cycle(0)
	i := 0
	step := func() {
		r := d.pool.Get()
		r.Line = mem.Line(i * 64) // walk banks and rows
		r.Kind = mem.KindLoad
		i++
		if !d.Enqueue(r) {
			panic("steady-state enqueue rejected")
		}
		for j := 0; j < 20; j++ { // enough to issue and deliver
			now++
			d.Tick(now)
		}
	}
	for n := 0; n < 100; n++ {
		step()
	}
	if d.Stats.Reads == 0 || d.Stats.LatCnt == 0 {
		t.Fatal("warmup served no reads")
	}

	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Errorf("steady-state DRAM.Tick allocates %.1f objects/op, want 0", avg)
	}
}

package dram

import "secpref/internal/observatory"

// StateDigest hashes the channel's architectural state: queued reads
// and writes with arrival stamps, open rows, bus occupancy, in-flight
// responses, and the headline access counters.
func (d *DRAM) StateDigest() uint64 {
	dg := observatory.NewDigest()
	dg = dg.Word(uint64(len(d.rq)))
	for i := range d.rq {
		dg = observatory.DigestRequest(dg, d.rq[i].req).Word(uint64(d.rq[i].arrived))
	}
	dg = dg.Word(uint64(len(d.wq)))
	for i := range d.wq {
		dg = observatory.DigestRequest(dg, d.wq[i].req).Word(uint64(d.wq[i].arrived))
	}
	for b, row := range d.rows {
		if row != 0 {
			dg = dg.Word(uint64(b)).Word(row)
		}
	}
	dg = dg.Word(uint64(d.busFreeAt)).Word(uint64(d.now))
	dg = dg.Word(uint64(len(d.resp)))
	for i := range d.resp {
		dg = observatory.DigestRequest(dg, d.resp[i].req).Word(uint64(d.resp[i].ready))
	}
	dg = dg.Word(d.wake)
	dg = dg.Word(d.Stats.Reads).Word(d.Stats.Writes).Word(d.Stats.Cycles)
	return dg.Sum()
}

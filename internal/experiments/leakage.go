package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"secpref/internal/attack"
	"secpref/internal/leakage"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// leakageVariants are the attack-harness systems the security
// scoreboard compares: the undefended baseline, GhostMinion with the
// insecure training discipline, and the paper's full defense.
var leakageVariants = []struct {
	name     string
	secure   bool
	onCommit bool
}{
	{"non-secure/on-access", false, false},
	{"secure/on-access", true, false},
	{"secure/on-commit", true, true},
}

// LeakageAudit produces the per-(variant, prefetcher) security
// scoreboard: taint-audit counters and channel estimates for the
// direct cache channel and (when a prefetcher is attached) the
// prefetcher-training channel, plus full-campaign audit rows for the
// secure and insecure disciplines over real traces.
func (r *Runner) LeakageAudit() (*Table, error) {
	t := &Table{
		ID:    "leakage-audit",
		Title: "Security scoreboard: taint-audit counters and channel leakage per variant × prefetcher",
		Header: []string{
			"variant", "prefetcher", "tainted", "spec-trains",
			"direct bits/trial", "direct MI(lat)", "direct sep",
			"pf bits/trial", "pf sep",
		},
		Notes: []string{
			"tainted: persistent-structure mutations (lines, repl-meta, train-tables) by later-squashed work; spec-trains: prefetcher trainings on uncommitted accesses — both must be 0 on secure/on-commit",
			"bits/trial: empirical mutual information of the (secret, inferred) prime+probe channel (16-way secret = 4 bits max); MI(lat): upper bound from probe-latency distributions; sep: mean other-slot minus secret-slot probe latency in cycles",
			"secure rows keep a nonzero MI(lat)/sep: the victim's transient DRAM access leaves its row buffer open and the attacker's matching probe row-hits ~50 cycles faster — the DRAMA-style residue outside GhostMinion's cache-state threat model (the audit columns, its actual claim, are zero)",
			fmt.Sprintf("campaign rows audit full sim runs (berti, %d traces × %d instrs); attack rows use the prime+probe harness, one trial per candidate secret", len(r.opts.Traces), r.opts.Instrs),
		},
	}

	prefetchers := append([]string{"none"}, Prefetchers...)
	type rowResult struct {
		cells []string
		err   error
	}
	rows := make([]rowResult, len(leakageVariants)*len(prefetchers))
	var wg sync.WaitGroup
	for vi, v := range leakageVariants {
		for pi, pf := range prefetchers {
			wg.Add(1)
			go func(idx int, v struct {
				name     string
				secure   bool
				onCommit bool
			}, pf string) {
				defer wg.Done()
				r.sem <- struct{}{}
				defer func() { <-r.sem }()
				cfg := attack.Config{Secure: v.secure, OnCommitPrefetch: v.onCommit}
				if pf != "none" {
					cfg.Prefetcher = pf
				}
				direct, err := attack.MeasureChannel(cfg, attack.ChannelCache, 0)
				if err != nil {
					rows[idx] = rowResult{err: err}
					return
				}
				tainted := direct.Audit.TaintedSurvivors
				trains := direct.Audit.SpecTrains
				pfBits, pfSep := "-", "-"
				if pf != "none" {
					pc, err := attack.MeasureChannel(cfg, attack.ChannelPrefetch, 0)
					if err != nil {
						rows[idx] = rowResult{err: err}
						return
					}
					tainted += pc.Audit.TaintedSurvivors
					trains += pc.Audit.SpecTrains
					pfBits = f2(pc.BitsPerTrial)
					pfSep = f1(pc.Separation)
				}
				rows[idx] = rowResult{cells: []string{
					v.name, pf,
					strconv.FormatUint(tainted, 10), strconv.FormatUint(trains, 10),
					f2(direct.BitsPerTrial), f3(direct.LatencyMI), f1(direct.Separation),
					pfBits, pfSep,
				}}
			}(vi*len(prefetchers)+pi, v, pf)
		}
	}
	wg.Wait()
	for _, row := range rows {
		if row.err != nil {
			return nil, row.err
		}
		t.AddRow(row.cells...)
	}

	// Full-campaign audit: the same scoreboard over real sim runs for
	// the secure discipline (must be zero) and the insecure one.
	for _, v := range []cfgVariant{onCommitSecure("berti"), onAccessNonSecure("berti")} {
		sb, err := r.auditCampaign(v)
		if err != nil {
			return nil, err
		}
		t.AddRow("campaign: "+v.label, v.prefetcher,
			strconv.FormatUint(sb.TaintedSurvivors, 10), strconv.FormatUint(sb.SpecTrains, 10),
			"-", "-", "-", "-", "-")
	}

	if r.opts.TimeseriesDir != "" {
		if err := r.exportLeakageTable(t); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// auditCampaign runs variant v over every trace with a leakage auditor
// attached and returns the merged scoreboard. Audited runs are not
// memoized: they exist for their observer side channel, and the
// equivalence guarantee keeps them bit-identical to the plain runs.
func (r *Runner) auditCampaign(v cfgVariant) (leakage.Scoreboard, error) {
	var (
		mu    sync.Mutex
		total leakage.Scoreboard
	)
	err := r.forEachTrace(func(name string) error {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
		if err != nil {
			return err
		}
		aud := leakage.NewAuditor()
		if _, err := sim.RunProbed(v.config(r.opts), trace.NewSource(tr), sim.Probes{Observer: aud}); err != nil {
			return fmt.Errorf("%s (%s): %w", name, v.label, err)
		}
		sb := aud.Scoreboard()
		mu.Lock()
		total.Merge(&sb)
		mu.Unlock()
		return nil
	})
	return total, err
}

// exportLeakageTable writes the scoreboard as JSON and CSV next to the
// campaign time series (the CI artifact).
func (r *Runner) exportLeakageTable(t *Table) error {
	if err := os.MkdirAll(r.opts.TimeseriesDir, 0o755); err != nil {
		return err
	}
	js, err := t.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(r.opts.TimeseriesDir, t.ID+".json"), js, 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(r.opts.TimeseriesDir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SecureLeakageGate is the CI invariant check. It fails when the
// secure configuration leaves any speculative trace (attack harness or
// full quick campaign), and also when the estimator can no longer see
// the non-secure channels — a dead detector would make the zeros
// meaningless.
func (r *Runner) SecureLeakageGate() error {
	// 1. Detector sanity: the undefended direct channel must audit dirty
	// and leak near the full secret.
	direct, err := attack.MeasureChannel(attack.Config{}, attack.ChannelCache, 0)
	if err != nil {
		return err
	}
	if direct.BitsPerTrial < 0.9 {
		return fmt.Errorf("leakage gate: non-secure direct channel measured %.2f bits/trial, want >= 0.9 (estimator broken?)", direct.BitsPerTrial)
	}
	if direct.Audit.TaintedSurvivors == 0 {
		return fmt.Errorf("leakage gate: non-secure transient fills were not audited as tainted (auditor broken?): %s", direct.Audit.String())
	}
	onAccess, err := attack.MeasureChannel(attack.Config{Secure: true, Prefetcher: "ip-stride"}, attack.ChannelPrefetch, 0)
	if err != nil {
		return err
	}
	if onAccess.Audit.SpecTrains == 0 {
		return fmt.Errorf("leakage gate: on-access training not audited as speculative: %s", onAccess.Audit.String())
	}

	// 2. The defended configurations must audit provably clean.
	for _, pf := range []string{"", "ip-stride"} {
		cfg := attack.Config{Secure: true, Prefetcher: pf, OnCommitPrefetch: pf != ""}
		m, err := attack.MeasureChannel(cfg, attack.ChannelCache, 0)
		if err != nil {
			return err
		}
		if !m.Audit.Clean() {
			return fmt.Errorf("leakage gate: secure config (pf=%q) direct-channel audit: %s", pf, m.Audit.String())
		}
		if pf != "" {
			m, err = attack.MeasureChannel(cfg, attack.ChannelPrefetch, 0)
			if err != nil {
				return err
			}
			if !m.Audit.Clean() {
				return fmt.Errorf("leakage gate: secure config (pf=%q) prefetch-channel audit: %s", pf, m.Audit.String())
			}
		}
	}

	// 3. The secure quick campaign: zero tainted survivors, zero
	// speculative trains across every trace.
	sb, err := r.auditCampaign(onCommitSecure("berti"))
	if err != nil {
		return err
	}
	if !sb.Clean() {
		return fmt.Errorf("leakage gate: secure campaign audit: %s", sb.String())
	}
	if sb.SpecAccesses == 0 {
		return fmt.Errorf("leakage gate: secure campaign audit is vacuous (no speculation witnessed): %s", sb.String())
	}
	return nil
}

package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func leakageTestOpts(dir string) Options {
	opts := DefaultOptions()
	opts.Instrs = 6000
	opts.Warmup = 1000
	opts.Traces = []string{"605.mcf-1554B", "641.leela-1083B"}
	opts.TimeseriesDir = dir
	return opts
}

// TestSecureLeakageGate is the in-repo version of the CI gate: the
// secure configuration audits provably clean, the non-secure one
// provably dirty.
func TestSecureLeakageGate(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs sim campaigns")
	}
	r := NewRunner(leakageTestOpts(""))
	if err := r.SecureLeakageGate(); err != nil {
		t.Fatal(err)
	}
}

// TestLeakageAuditExport checks the table lands in the time-series
// directory as both JSON and CSV, and that the scoreboard rows carry
// the expected verdicts.
func TestLeakageAuditExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sim campaigns")
	}
	dir := t.TempDir()
	r := NewRunner(leakageTestOpts(dir))
	tab, err := r.LeakageAudit()
	if err != nil {
		t.Fatal(err)
	}
	rows := make(map[string][]string)
	for _, row := range tab.Rows {
		rows[row[0]+"|"+row[1]] = row
	}
	// Non-secure with no prefetcher: tainted, full 4-bit direct leak.
	if row := rows["non-secure/on-access|none"]; row == nil || row[2] == "0" || row[4] != "4.00" {
		t.Errorf("non-secure row wrong: %v", row)
	}
	// The full defense: all zeros.
	for _, pf := range append([]string{"none"}, Prefetchers...) {
		row := rows["secure/on-commit|"+pf]
		if row == nil || row[2] != "0" || row[3] != "0" {
			t.Errorf("secure/on-commit %s not clean: %v", pf, row)
		}
	}
	// Campaign rows: secure clean, on-access training dirty.
	if row := rows["campaign: berti/on-commit/secure|berti"]; row == nil || row[2] != "0" || row[3] != "0" {
		t.Errorf("secure campaign row wrong: %v", row)
	}
	if row := rows["campaign: berti/on-access/non-secure|berti"]; row == nil || row[3] == "0" {
		t.Errorf("on-access campaign row should count spec trains: %v", row)
	}
	for _, name := range []string{"leakage-audit.json", "leakage-audit.csv"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("export missing: %v", err)
		}
		if !strings.Contains(string(b), "spec-trains") {
			t.Errorf("%s lacks header: %.80s", name, b)
		}
	}
}

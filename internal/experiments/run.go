package experiments

import "fmt"

// IDs lists every reproducible experiment in paper order.
var IDs = []string{
	"table1", "table2", "table3",
	"fig1", "fig3", "fig4", "fig5", "fig6",
	"fig10", "fig11", "fig12a", "fig12b", "fig13", "fig14", "fig15",
	"suf-accuracy", "suf-traffic",
}

// ExtensionIDs lists the beyond-the-paper experiments (SMT, TSB on
// non-secure systems, ablations, the security scoreboard).
var ExtensionIDs = []string{
	"smt-suf", "tsb-nonsecure", "ablate-gm", "ablate-tlb", "ablate-lateness", "ablate-policy",
	"leakage-audit", "consolidation-interference",
}

// Run regenerates one experiment by id.
func (r *Runner) Run(id string) (*Table, error) {
	switch id {
	case "table1":
		return Table1(), nil
	case "table2":
		return Table2(), nil
	case "table3":
		return Table3()
	case "fig1":
		return r.Fig1()
	case "fig3":
		return r.Fig3()
	case "fig4":
		return r.Fig4()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "fig12a":
		return r.Fig12("spec")
	case "fig12b":
		return r.Fig12("gap")
	case "fig13":
		return r.Fig13()
	case "fig14":
		return r.Fig14()
	case "fig15":
		return r.Fig15()
	case "suf-accuracy":
		return r.SUFAccuracy()
	case "suf-traffic":
		return r.SUFTraffic()
	case "smt-suf":
		return r.SMTSUF()
	case "tsb-nonsecure":
		return r.TSBNonSecure()
	case "ablate-gm":
		return r.AblateGMSize()
	case "ablate-tlb":
		return r.AblateTLB()
	case "ablate-lateness":
		return r.AblateLateness()
	case "ablate-policy":
		return r.AblatePolicy()
	case "leakage-audit":
		return r.LeakageAudit()
	case "consolidation-interference":
		return r.ConsolidationInterference()
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs)
}

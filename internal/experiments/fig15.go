package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"secpref/internal/multicore"
	"secpref/internal/observatory"
)

// fig15Variants are the six systems of Figure 15, in legend order.
func fig15Variants() []cfgVariant {
	return []cfgVariant{
		baseSecure(),
		onAccessNonSecure("berti"),
		onCommitSecure("berti"),
		onCommitSecureSUF("berti"),
		timelySecure("berti"),    // TSB
		timelySecureSUF("berti"), // TSB+SUF
	}
}

// Fig15 reproduces Figure 15: weighted speedup of random 4-core mixes
// under the six Berti-centric configurations, normalized to the
// non-secure no-prefetch multi-core system, sorted by the TSB+SUF
// column as the paper sorts by speedup.
func (r *Runner) Fig15() (*Table, error) {
	t := &Table{
		ID:    "fig15",
		Title: "4-core mix speedup (weighted, normalized to non-secure no-prefetch)",
		Header: []string{"mix", "no-pref/secure", "berti-acc/non-sec", "berti-com/secure",
			"berti-com/secure+SUF", "TSB", "TSB+SUF"},
	}
	mixes := r.randomMixes()
	variants := fig15Variants()

	type row struct {
		name string
		vals []float64
	}
	rows := make([]row, len(mixes))
	var wg sync.WaitGroup
	errs := make([]error, len(mixes))
	for i, mix := range mixes {
		wg.Add(1)
		go func(i int, mix []string) {
			defer wg.Done()
			base, err := r.runMix(baseNonSecure(), mix)
			if err != nil {
				errs[i] = err
				return
			}
			vals := make([]float64, len(variants))
			for j, v := range variants {
				res, err := r.runMix(v, mix)
				if err != nil {
					errs[i] = err
					return
				}
				vals[j] = sumIPCRatio(res, base)
			}
			rows[i] = row{name: fmt.Sprintf("mix%02d", i), vals: vals}
		}(i, mix)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Sort by the last (TSB+SUF) column, as the paper sorts mixes by
	// increasing speedup.
	sort.Slice(rows, func(a, b int) bool {
		return rows[a].vals[len(variants)-1] < rows[b].vals[len(variants)-1]
	})
	sums := make([]float64, len(variants))
	for _, rw := range rows {
		cells := []string{rw.name}
		for j, v := range rw.vals {
			cells = append(cells, f3(v))
			sums[j] += v
		}
		t.AddRow(cells...)
	}
	avg := []string{"mean"}
	for _, s := range sums {
		avg = append(avg, f3(s/float64(len(rows))))
	}
	t.AddRow(avg...)
	t.Notes = append(t.Notes,
		"paper: GhostMinion costs 16.8% at 4 cores without prefetching; TSB+SUF beats on-commit Berti by 23% and the non-secure baseline by 16.1%")
	return t, nil
}

// runMix simulates one 4-core mix under variant v.
func (r *Runner) runMix(v cfgVariant, names []string) (*multicore.Result, error) {
	cfg := multicore.Config{Single: v.config(r.opts), Cores: len(names)}
	// Multi-core runs use a reduced per-core budget so a campaign of
	// many mixes stays tractable.
	cfg.Single.MaxInstrs = r.opts.Instrs / 2
	cfg.Single.WarmupInstrs = r.opts.Warmup / 2
	mix, err := r.mixSources(names)
	if err != nil {
		return nil, err
	}
	var probes multicore.Probes
	var prof *observatory.Profile
	if r.opts.Profile != nil {
		prof = observatory.NewProfile()
		probes.Profile = prof
	}
	res, err := multicore.RunProbed(cfg, mix, probes)
	if err != nil {
		return nil, err
	}
	if prof != nil {
		r.opts.Profile.Add(prof)
	}
	return res, nil
}

// sumIPCRatio computes Σ_i IPC_i(cfg)/IPC_i(base) — with identical
// per-core traces in numerator and denominator this equals the weighted
// speedup normalized to the baseline configuration.
func sumIPCRatio(res, base *multicore.Result) float64 {
	s := 0.0
	n := 0
	for i := range res.PerCore {
		if base.PerCore[i].IPC > 0 {
			s += res.PerCore[i].IPC / base.PerCore[i].IPC
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// randomMixes draws the paper-style random heterogeneous 4-trace mixes
// from the runner's trace set.
func (r *Runner) randomMixes() [][]string {
	rng := rand.New(rand.NewSource(r.opts.Seed * 7919))
	mixes := make([][]string, r.opts.Mixes)
	for i := range mixes {
		mix := make([]string, 4)
		for j := range mix {
			mix[j] = r.opts.Traces[rng.Intn(len(r.opts.Traces))]
		}
		mixes[i] = mix
	}
	return mixes
}

// Fig15Variant labels, exported for the CLI legend.
func Fig15Labels() []string {
	vs := fig15Variants()
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.label
	}
	return out
}

package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secpref/internal/probe"
)

// Lifecycle-tracer sizing for campaign runs: sample every 32nd load and
// keep the most recent 8Ki events per run. Campaign traces are meant for
// spot inspection in Perfetto, not exhaustive capture; the ring bounds
// memory across the fan-out.
const (
	traceSampleEvery = 32
	traceRingCap     = 1 << 13
)

// sanitizeLabel turns a variant label ("berti/TS/secure+SUF") into a
// filename fragment ("berti-TS-secure-SUF").
func sanitizeLabel(label string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '/', '+', ' ', ':':
			return '-'
		}
		return r
	}, label)
}

// exportTimeseries writes one run's sampler and tracer output into
// opts.TimeseriesDir as <trace>__<label>.series.json, .series.csv, and
// .trace.json.
func (r *Runner) exportTimeseries(traceName, label string, s *probe.IntervalSampler, tr *probe.Tracer) error {
	dir := r.opts.TimeseriesDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("timeseries dir: %w", err)
	}
	base := filepath.Join(dir, traceName+"__"+sanitizeLabel(label))
	write := func(path string, emit func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(base+".series.json", func(f *os.File) error {
		return s.WriteJSON(f, label, traceName)
	}); err != nil {
		return err
	}
	if err := write(base+".series.csv", func(f *os.File) error {
		return s.WriteCSV(f)
	}); err != nil {
		return err
	}
	return write(base+".trace.json", func(f *os.File) error {
		return tr.WriteChromeTrace(f, traceName+" "+label)
	})
}

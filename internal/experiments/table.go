package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, data
// rows, and free-form notes (paper-vs-measured commentary).
type Table struct {
	ID     string     `json:"id"` // "fig1", "table2", ...
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
}

// JSON renders the table as indented JSON (for downstream plotting).
func (t *Table) JSON() ([]byte, error) { return json.MarshalIndent(t, "", "  ") }

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// WriteCSV renders the table as CSV: the header row, then data rows.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

package experiments

import (
	"fmt"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
	"secpref/internal/sim"
)

// Table1 reproduces Table I: the taxonomy of transient-execution
// mitigation techniques. It is reference data from the paper (the
// other mechanisms are not implemented here; GhostMinion — the one this
// repository builds on — is).
func Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Mitigation techniques (paper Table I)",
		Header: []string{"technique", "classification", "secure", "storage", "slowdown"},
	}
	rows := [][]string{
		{"CleanupSpec", "undo-based", "no", "<1KB", "medium"},
		{"NDA", "delay-based", "yes", "~150B", "high"},
		{"STT", "delay-based", "yes", "~1.4KB", "medium"},
		{"NDA+Doppelganger", "delay-based", "yes", "~13.5KB", "medium"},
		{"DoM", "delay+invisible", "no", "~0.4KB", "high"},
		{"DoM+Doppelganger", "delay+invisible", "no", "~13.9KB", "high"},
		{"STT+Doppelganger", "delay-based", "yes", "~14.9KB", "low"},
		{"InvisiSpec", "invisible speculation", "no", "~9.5KB", "high"},
		{"MuonTrap", "invisible speculation", "no", "2KB", "low"},
		{"GhostMinion (implemented here)", "invisible speculation", "yes", "2KB", "low"},
	}
	t.Rows = rows
	t.Notes = append(t.Notes, "slowdown bins: low <5%, medium 5-10%, high >10% (paper's categorization)")
	return t
}

// Table2 reproduces Table II: the simulated baseline system parameters,
// read from the live default configuration so the table cannot drift
// from the code.
func Table2() *Table {
	cfg := sim.DefaultConfig()
	t := &Table{
		ID:     "table2",
		Title:  "Baseline system parameters (paper Table II)",
		Header: []string{"component", "configuration"},
	}
	t.AddRow("core", fmt.Sprintf("out-of-order, %d-entry ROB, %d-entry LQ, %d-dispatch, %d-retire, hashed perceptron",
		cfg.Core.ROBSize, cfg.Core.LQSize, cfg.Core.DispatchWidth, cfg.Core.RetireWidth))
	t.AddRow("L1D", fmt.Sprintf("%d KB, %d-way, %d cycles, %d MSHRs, LRU",
		cfg.L1D.SizeKiB, cfg.L1D.Ways, cfg.L1D.Latency, cfg.L1D.MSHRs))
	t.AddRow("L2", fmt.Sprintf("%d KB, %d-way, %d cycles, %d MSHRs, LRU, non-inclusive",
		cfg.L2.SizeKiB, cfg.L2.Ways, cfg.L2.Latency, cfg.L2.MSHRs))
	t.AddRow("LLC", fmt.Sprintf("%d KB/bank, %d-way, %d cycles, %d MSHRs, LRU, non-inclusive",
		cfg.LLC.SizeKiB, cfg.LLC.Ways, cfg.LLC.Latency, cfg.LLC.MSHRs))
	t.AddRow("DRAM", fmt.Sprintf("FR-FCFS, %d banks, %d KB row buffer, tRP=tRCD=tCAS=%d cycles, write watermark %d/%d",
		cfg.DRAM.Banks, cfg.DRAM.RowBufKiB, cfg.DRAM.TCAS, cfg.DRAM.WriteWatermarkNum, cfg.DRAM.WriteWatermarkDen))
	t.AddRow("GM", fmt.Sprintf("%d lines (2 KB), %d-cycle load-to-use, %d MSHRs",
		cfg.GM.Lines, cfg.GM.Latency, cfg.GM.MSHRs))
	return t
}

// Table3 reproduces Table III: the evaluated prefetcher configurations
// and storage budgets, read from the implementations.
func Table3() (*Table, error) {
	t := &Table{
		ID:     "table3",
		Title:  "Prefetcher configurations (paper Table III)",
		Header: []string{"prefetcher", "home", "storage", "configuration"},
	}
	desc := map[string]string{
		"ip-stride": "1024-entry IP table, stride+confidence",
		"ipcp":      "128-entry IP table, 8-entry RST, 128-entry CSPT; CS/CPLX/GS classes",
		"bingo":     "2 KB regions, 64/128/16K-entry FT/AT/PHT, PC+Address then PC+Offset lookup",
		"spp-ppf":   "256-entry ST, 512x4 PT, 8-entry GHR, perceptron filter 4096x4+2048x2+1024x2+128x1",
		"berti":     "128-entry history table, 16-entry delta table x 16 deltas, timely-delta learning",
	}
	for _, name := range Prefetchers {
		pf, err := prefetch.New(name, func(mem.Line, mem.Addr, mem.Level) bool { return true })
		if err != nil {
			return nil, err
		}
		t.AddRow(name, pf.Home().String(), fmt.Sprintf("%.2f KB", float64(pf.StorageBytes())/1024), desc[name])
	}
	t.Notes = append(t.Notes,
		"SUF adds 0.12 KB (2b x 128 LQ + 1b x 768 L1D lines); the TSB X-LQ adds 0.47 KB — 0.59 KB/core total (paper abstract)")
	return t, nil
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"secpref/internal/probe"
)

func TestSanitizeLabel(t *testing.T) {
	for in, want := range map[string]string{
		"berti/TS/secure+SUF":                 "berti-TS-secure-SUF",
		"nopref/non-secure":                   "nopref-non-secure",
		"bingo/on-commit/secure+SUF+classify": "bingo-on-commit-secure-SUF-classify",
	} {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestTimeseriesOutputInvariant pins the observability layer's
// end-to-end guarantee at campaign scope: regenerating an experiment
// with telemetry enabled must render byte-identical tables, while also
// producing valid series and trace files for every (trace, variant) run.
func TestTimeseriesOutputInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	gen := func(dir string, c *probe.Campaign) string {
		opts := QuickOptions()
		opts.Instrs = 6000
		opts.Warmup = 1000
		opts.Traces = []string{"605.mcf-1554B", "bfs-3B"}
		opts.TimeseriesDir = dir
		opts.Campaign = c
		tab, err := NewRunner(opts).Run("fig4")
		if err != nil {
			t.Fatalf("fig4 (timeseries=%q): %v", dir, err)
		}
		return tab.String()
	}

	plain := gen("", nil)
	dir := t.TempDir()
	c := probe.NewCampaign(1)
	probed := gen(dir, c)
	if plain != probed {
		t.Errorf("telemetry perturbed the experiment output:\n--- plain ---\n%s\n--- probed ---\n%s", plain, probed)
	}

	// Every run must have exported its three files.
	series, _ := filepath.Glob(filepath.Join(dir, "*.series.json"))
	csvs, _ := filepath.Glob(filepath.Join(dir, "*.series.csv"))
	traces, _ := filepath.Glob(filepath.Join(dir, "*.trace.json"))
	if len(series) == 0 || len(series) != len(csvs) || len(series) != len(traces) {
		t.Fatalf("export mismatch: %d series.json, %d series.csv, %d trace.json", len(series), len(csvs), len(traces))
	}

	// The series JSON must decode and hold per-interval rows; the trace
	// must be a Chrome trace-event array.
	raw, err := os.ReadFile(filepath.Join(dir, "605.mcf-1554B__"+sanitizeLabel("berti/on-access/secure")+".series.json"))
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Trace     string         `json:"trace"`
		Intervals []probe.Row    `json:"intervals"`
		Samples   []probe.Sample `json:"cumulative"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("series JSON invalid: %v", err)
	}
	if env.Trace != "605.mcf-1554B" || len(env.Intervals) < 3 || len(env.Intervals) != len(env.Samples) {
		t.Errorf("series envelope off: trace=%q intervals=%d samples=%d", env.Trace, len(env.Intervals), len(env.Samples))
	}
	rawTrace, err := os.ReadFile(traces[0])
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rawTrace, &chrome); err != nil {
		t.Fatalf("chrome trace invalid: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("chrome trace empty")
	}

	// The campaign saw every run exactly once (fig4 = 5 prefetchers x 2
	// variants + 2 baselines, per trace), with no failures.
	snap := c.Snapshot()
	if snap.RunsDone != snap.RunsStarted || snap.RunsDone == 0 || snap.RunsFailed != 0 {
		t.Errorf("campaign counters off: %+v", snap)
	}
	if snap.Instructions == 0 || snap.Cycles == 0 {
		t.Errorf("campaign recorded no work: %+v", snap)
	}

	// CSV export has the header plus one line per interval.
	rawCSV, err := os.ReadFile(csvs[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(rawCSV)), "\n")
	if len(lines) < 4 || !strings.HasPrefix(lines[0], "cycle,instructions,ipc,") {
		t.Errorf("csv export off (%d lines, header %q)", len(lines), lines[0])
	}
}

package experiments

import (
	"fmt"
	"sync"

	"secpref/internal/cache"
	"secpref/internal/mem"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// Extension experiments beyond the numbered figures: the §VII-B SMT
// observation, the §VII-A TSB-on-non-secure observation, and ablations
// of design choices DESIGN.md calls out.

// SMTSUF reproduces the §VII-B SMT analysis: on a 2-way SMT core
// (threads share L1D and L2), cross-thread evictions can invalidate
// SUF's recorded hit level — yet accuracy stays high because the
// access-to-commit window is short. Pairs of traces share the core;
// pairs of the same trace (the paper's mcf/cc/bc observation) stress
// accuracy hardest.
func (r *Runner) SMTSUF() (*Table, error) {
	t := &Table{
		ID:     "smt-suf",
		Title:  "SUF accuracy on a 2-way SMT core (TSB+SUF)",
		Header: []string{"thread pair", "suf-acc%% t0", "suf-acc%% t1", "drops/KI t0"},
	}
	pairs := r.smtPairs()
	type row struct{ cells []string }
	rows := make([]row, len(pairs))
	errs := make([]error, len(pairs))
	var wg sync.WaitGroup
	for i, pair := range pairs {
		wg.Add(1)
		go func(i int, pair [2]string) {
			defer wg.Done()
			v := timelySecureSUF("berti")
			cfg := v.config(r.opts)
			cfg.MaxInstrs = r.opts.Instrs / 2
			cfg.WarmupInstrs = r.opts.Warmup / 2
			srcs := make([]trace.Source, 2)
			for j, name := range pair {
				tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
				if err != nil {
					errs[i] = err
					return
				}
				srcs[j] = trace.NewSource(tr)
			}
			res, err := sim.RunSMT(cfg, srcs)
			if err != nil {
				errs[i] = err
				return
			}
			rows[i] = row{cells: []string{
				pair[0] + "+" + pair[1],
				f1(res[0].SUFAccuracy() * 100),
				f1(res[1].SUFAccuracy() * 100),
				f1(perKI(res[0].Core.SUFDrops, res[0].Instructions)),
			}}
		}(i, pair)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, rw := range rows {
		t.AddRow(rw.cells...)
	}
	t.Notes = append(t.Notes,
		"paper: SMT average accuracy stays above 99%; same-trace pairs (mcf, cc, bc) drop to ~92%")
	return t, nil
}

// smtPairs picks heterogeneous pairs plus the paper's same-trace
// stress pairs that exist in the runner's trace set.
func (r *Runner) smtPairs() [][2]string {
	var pairs [][2]string
	ts := r.opts.Traces
	for i := 0; i+1 < len(ts) && len(pairs) < 4; i += 2 {
		pairs = append(pairs, [2]string{ts[i], ts[i+1]})
	}
	for _, same := range []string{"605.mcf-1554B", "cc-14B", "bc-0B"} {
		for _, name := range ts {
			if name == same {
				pairs = append(pairs, [2]string{same, same})
				break
			}
		}
	}
	return pairs
}

// TSBNonSecure reproduces the §VII-A closing observation: TSB applied
// to a NON-secure cache system performs on par with on-access Berti
// while removing the prefetcher's speculative side channel.
func (r *Runner) TSBNonSecure() (*Table, error) {
	t := &Table{
		ID:     "tsb-nonsecure",
		Title:  "TSB on a non-secure cache system (normalized to non-secure, no prefetching)",
		Header: []string{"config", "speedup"},
	}
	acc, err := r.speedups(onAccessNonSecure("berti"))
	if err != nil {
		return nil, err
	}
	tsbNS := cfgVariant{label: "berti/TS/non-secure", prefetcher: "berti", mode: sim.ModeTimelySecure}
	ts, err := r.speedups(tsbNS)
	if err != nil {
		return nil, err
	}
	t.AddRow("on-access Berti (insecure)", f3(geomean(acc)))
	t.AddRow("TSB (prefetcher side channel closed)", f3(geomean(ts)))
	t.Notes = append(t.Notes, "paper: 1.311 vs 1.310 — TSB matches on-access Berti without speculative training")
	return t, nil
}

// AblateGMSize sweeps the GM capacity for the TSB+SUF system: a larger
// GM converts re-fetches into commit writes and raises SUF drop volume.
func (r *Runner) AblateGMSize() (*Table, error) {
	t := &Table{
		ID:     "ablate-gm",
		Title:  "GM capacity ablation (TSB+SUF, speedup vs non-secure no-pref)",
		Header: []string{"GM lines", "speedup", "suf-acc%", "refetch/KI"},
	}
	for _, lines := range []int{16, 32, 64, 128} {
		var mu sync.Mutex
		sp := map[string]float64{}
		var accSum, refetchSum float64
		err := r.forEachTrace(func(name string) error {
			base, err := r.result(name, baseNonSecure())
			if err != nil {
				return err
			}
			v := timelySecureSUF("berti")
			cfg := v.config(r.opts)
			cfg.GM.Lines = lines
			tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
			if err != nil {
				return err
			}
			res, err := sim.Run(cfg, trace.NewSource(tr))
			if err != nil {
				return err
			}
			mu.Lock()
			sp[name] = res.Speedup(base)
			accSum += res.SUFAccuracy() * 100
			refetchSum += perKI(res.Core.CommitGMMisses, res.Instructions)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		n := float64(len(r.opts.Traces))
		t.AddRow(fmt.Sprint(lines), f3(geomean(sp)), f1(accSum/n), f1(refetchSum/n))
	}
	t.Notes = append(t.Notes, "the paper fixes the GM at 32 lines (2 KB); the sweep shows the refetch-vs-capacity tradeoff")
	return t, nil
}

// AblateTLB quantifies the address-translation model's contribution.
func (r *Runner) AblateTLB() (*Table, error) {
	t := &Table{
		ID:     "ablate-tlb",
		Title:  "Translation-model ablation (TSB+SUF speedup vs non-secure no-pref)",
		Header: []string{"translation", "no-pref secure", "TSB+SUF"},
	}
	for _, disable := range []bool{false, true} {
		label := "dTLB+STLB+walk"
		if disable {
			label = "disabled (free translation)"
		}
		row := []string{label}
		for _, v := range []cfgVariant{baseSecure(), timelySecureSUF("berti")} {
			var mu sync.Mutex
			sp := map[string]float64{}
			err := r.forEachTrace(func(name string) error {
				baseCfg := baseNonSecure().config(r.opts)
				baseCfg.DisableTLB = disable
				cfg := v.config(r.opts)
				cfg.DisableTLB = disable
				tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
				if err != nil {
					return err
				}
				base, err := sim.Run(baseCfg, trace.NewSource(tr))
				if err != nil {
					return err
				}
				res, err := sim.Run(cfg, trace.NewSource(tr))
				if err != nil {
					return err
				}
				mu.Lock()
				sp[name] = res.Speedup(base)
				mu.Unlock()
				return nil
			})
			if err != nil {
				return nil, err
			}
			row = append(row, f3(geomean(sp)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// SUFTraffic quantifies what the filter removes: commit-path L1D
// accesses, clean propagations into L2/LLC, and total hierarchy
// traffic, with and without SUF (on-commit Berti). This is the §VII-A
// "memory hierarchy traffic" analysis.
func (r *Runner) SUFTraffic() (*Table, error) {
	t := &Table{
		ID:     "suf-traffic",
		Title:  "Traffic removed by SUF (on-commit Berti, per kilo-instruction)",
		Header: []string{"metric", "without SUF", "with SUF", "reduction %"},
	}
	type agg struct{ commit, prop, l1, l2, llc float64 }
	collect := func(v cfgVariant) (agg, error) {
		var mu sync.Mutex
		var a agg
		err := r.forEachTrace(func(name string) error {
			res, err := r.result(name, v)
			if err != nil {
				return err
			}
			ins := res.Instructions
			mu.Lock()
			a.commit += perKI(res.L1D.Accesses[mem.KindCommitWrite]+res.L1D.Accesses[mem.KindRefetch], ins)
			a.prop += perKI(res.L1D.PropagationsOut+res.L2.PropagationsOut, ins)
			a.l1 += perKI(res.L1D.TotalAccesses(), ins)
			a.l2 += perKI(res.L2.TotalAccesses(), ins)
			a.llc += perKI(res.LLC.TotalAccesses(), ins)
			mu.Unlock()
			return nil
		})
		n := float64(len(r.opts.Traces))
		a.commit /= n
		a.prop /= n
		a.l1 /= n
		a.l2 /= n
		a.llc /= n
		return a, err
	}
	without, err := collect(onCommitSecure("berti"))
	if err != nil {
		return nil, err
	}
	with, err := collect(onCommitSecureSUF("berti"))
	if err != nil {
		return nil, err
	}
	row := func(name string, a, b float64) {
		red := 0.0
		if a > 0 {
			red = (1 - b/a) * 100
		}
		t.AddRow(name, f1(a), f1(b), f1(red))
	}
	row("L1D commit requests /KI", without.commit, with.commit)
	row("clean propagations /KI", without.prop, with.prop)
	row("L1D accesses /KI", without.l1, with.l1)
	row("L2 accesses /KI", without.l2, with.l2)
	row("LLC accesses /KI", without.llc, with.llc)
	t.Notes = append(t.Notes,
		"paper: GhostMinion adds 54.7%/46.6%/40.4% traffic at L1D/L2/LLC; SUF mitigates the increase at every level")
	return t, nil
}

// AblatePolicy compares LRU (the paper's baseline) with SRRIP
// replacement at every cache level under TSB+SUF; SRRIP's distant
// insertion for prefetched lines is a pollution-control alternative to
// the paper's traffic filtering.
func (r *Runner) AblatePolicy() (*Table, error) {
	t := &Table{
		ID:     "ablate-policy",
		Title:  "Replacement-policy ablation (TSB+SUF speedup vs non-secure no-pref)",
		Header: []string{"policy", "speedup", "pref accuracy %"},
	}
	for _, pol := range []cache.Policy{cache.PolicyLRU, cache.PolicySRRIP} {
		var mu sync.Mutex
		sp := map[string]float64{}
		var accSum float64
		err := r.forEachTrace(func(name string) error {
			baseCfg := baseNonSecure().config(r.opts)
			cfg := timelySecureSUF("berti").config(r.opts)
			for _, c := range []*cache.Config{&baseCfg.L1D, &baseCfg.L2, &baseCfg.LLC, &cfg.L1D, &cfg.L2, &cfg.LLC} {
				c.Policy = pol
			}
			tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
			if err != nil {
				return err
			}
			base, err := sim.Run(baseCfg, trace.NewSource(tr))
			if err != nil {
				return err
			}
			res, err := sim.Run(cfg, trace.NewSource(tr))
			if err != nil {
				return err
			}
			mu.Lock()
			sp[name] = res.Speedup(base)
			accSum += res.PrefAccuracy(mem.LvlL1D) * 100
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(pol.String(), f3(geomean(sp)), f1(accSum/float64(len(r.opts.Traces))))
	}
	return t, nil
}

// AblateLateness sweeps the TS lateness threshold for TS-stride; the
// on-commit (no adaptation) row is the envelope.
func (r *Runner) AblateLateness() (*Table, error) {
	t := &Table{
		ID:     "ablate-lateness",
		Title:  "Lateness-threshold ablation (TS-stride speedup vs non-secure no-pref)",
		Header: []string{"threshold", "speedup", "avg adaptations"},
	}
	base, err := r.speedups(onCommitSecure("ip-stride"))
	if err != nil {
		return nil, err
	}
	t.AddRow("no adaptation (on-commit)", f3(geomean(base)), "0.0")
	for _, thr := range []float64{0.05, 0.14, 0.30} {
		var mu sync.Mutex
		sp := map[string]float64{}
		var adapt float64
		err := r.forEachTrace(func(name string) error {
			b, err := r.result(name, baseNonSecure())
			if err != nil {
				return err
			}
			cfg := timelySecure("ip-stride").config(r.opts)
			cfg.LatenessThreshold = thr
			tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
			if err != nil {
				return err
			}
			res, err := sim.Run(cfg, trace.NewSource(tr))
			if err != nil {
				return err
			}
			mu.Lock()
			sp[name] = res.Speedup(b)
			adapt += float64(res.DistanceAdaptations)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.2f", thr), f3(geomean(sp)), f1(adapt/float64(len(r.opts.Traces))))
	}
	t.Notes = append(t.Notes, "the paper uses 0.14 (0.05 for Bingo), just under the average on-commit lateness")
	return t, nil
}

package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"secpref/internal/interference"
	"secpref/internal/multicore"
)

// interferenceCoreCounts are the consolidation points of the study:
// the paper's 4-core system plus 8- and 16-core tenant packings.
var interferenceCoreCounts = []int{4, 8, 16}

// interferenceVariants compares the full secure stack against the
// conventional non-secure prefetching system — the question the table
// answers is whether the secure design changes who hurts whom.
func interferenceVariants() []cfgVariant {
	return []cfgVariant{
		timelySecureSUF("berti"),
		onAccessNonSecure("berti"),
	}
}

// tenantMix draws an n-core heterogeneous tenant mix from the runner's
// trace set, seeded per core count so every campaign sees the same
// packing.
func (r *Runner) tenantMix(n int) []string {
	rng := rand.New(rand.NewSource(r.opts.Seed*6271 + int64(n)))
	mix := make([]string, n)
	for i := range mix {
		mix[i] = r.opts.Traces[rng.Intn(len(r.opts.Traces))]
	}
	return mix
}

// runConsolidation simulates one tenant mix with the interference
// observatory attached. The shared LLC is shrunk to a 32 KiB bank per
// core: campaign instruction budgets are ~1000x smaller than the
// paper's, and a full-size 2 MB bank would never evict within them,
// leaving the attribution matrix vacuously empty.
func (r *Runner) runConsolidation(v cfgVariant, names []string) (*multicore.Result, error) {
	cfg := multicore.Config{Single: v.config(r.opts), Cores: len(names)}
	cfg.Single.MaxInstrs = r.opts.Instrs / 2
	cfg.Single.WarmupInstrs = r.opts.Warmup / 2
	cfg.Single.LLC.SizeKiB = 32
	mix, err := r.mixSources(names)
	if err != nil {
		return nil, err
	}
	return multicore.RunProbed(cfg, mix, multicore.Probes{Interference: true})
}

// ConsolidationInterference runs the cross-core interference study:
// who hurt whom through the shared cache, at 4/8/16-core consolidation
// levels, secure vs non-secure. Each run contributes its top
// aggressor→victim cells (by total evictions) and a whole-matrix total
// row; occ_share is the aggressor's share of occupied LLC lines at run
// end. With -timeseries set, every run's full snapshot is exported as
// JSON, CSV, Prometheus text, and a Perfetto counter trace.
func (r *Runner) ConsolidationInterference() (*Table, error) {
	t := &Table{
		ID:    "consolidation-interference",
		Title: "cross-core interference attribution (top aggressor→victim cells per run)",
		Header: []string{"config", "cell", "demand", "prefetch", "suf", "maint",
			"inflicted", "pollution", "occ_share"},
	}
	const topCells = 5
	for _, cores := range interferenceCoreCounts {
		names := r.tenantMix(cores)
		for _, v := range interferenceVariants() {
			res, err := r.runConsolidation(v, names)
			if err != nil {
				return nil, fmt.Errorf("consolidation-interference %d-core %s: %w", cores, v.label, err)
			}
			if r.opts.Campaign != nil {
				r.opts.Campaign.RunStarted()
				r.opts.Campaign.RunDone(res.PerCore[0].Instructions*uint64(cores), res.Cycles)
			}
			s := res.Interference
			label := fmt.Sprintf("mc%02d/%s", cores, v.label)

			share := make(map[int]float64, cores)
			for _, c := range s.PerCore {
				share[c.Core] = c.OccShare
			}
			cells := append([]interference.CellRow(nil), s.Cells...)
			sort.Slice(cells, func(a, b int) bool {
				ta, tb := cells[a].Total(), cells[b].Total()
				if ta != tb {
					return ta > tb
				}
				if cells[a].Aggressor != cells[b].Aggressor {
					return cells[a].Aggressor < cells[b].Aggressor
				}
				return cells[a].Victim < cells[b].Victim
			})
			var total interference.CellRow
			for _, c := range cells {
				for cl := range c.Evictions {
					total.Evictions[cl] += c.Evictions[cl]
				}
				total.Inflicted += c.Inflicted
				total.Pollution += c.Pollution
			}
			for i, c := range cells {
				if i >= topCells || c.Total() == 0 {
					break
				}
				t.AddRow(label, fmt.Sprintf("c%d→c%d", c.Aggressor, c.Victim),
					u(c.Evictions[interference.ClassDemand]), u(c.Evictions[interference.ClassPrefetch]),
					u(c.Evictions[interference.ClassSUF]), u(c.Evictions[interference.ClassMaintenance]),
					u(c.Inflicted), u(c.Pollution), f3(share[c.Aggressor]))
			}
			t.AddRow(label, "total",
				u(total.Evictions[interference.ClassDemand]), u(total.Evictions[interference.ClassPrefetch]),
				u(total.Evictions[interference.ClassSUF]), u(total.Evictions[interference.ClassMaintenance]),
				u(total.Inflicted), u(total.Pollution), "-")

			if r.opts.TimeseriesDir != "" {
				if err := r.exportInterference(fmt.Sprintf("mc%02d__%s", cores, sanitizeLabel(v.label)), s); err != nil {
					return nil, err
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"inflicted = victim demand misses on lines this aggressor evicted; pollution = the prefetch-caused subset",
		"LLC shrunk to 32 KiB/core bank so laptop-scale budgets exercise capacity contention (paper scale: 2 MB/core)")
	return t, nil
}

// exportInterference writes one run's observatory snapshot into
// opts.TimeseriesDir in all four export formats.
func (r *Runner) exportInterference(base string, s *interference.Snapshot) error {
	dir := r.opts.TimeseriesDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("timeseries dir: %w", err)
	}
	root := filepath.Join(dir, base)
	write := func(path string, emit func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(root+".interference.json", func(f *os.File) error { return s.WriteJSON(f) }); err != nil {
		return err
	}
	if err := write(root+".interference.csv", func(f *os.File) error { return s.WriteCSV(f) }); err != nil {
		return err
	}
	if err := write(root+".interference.prom", func(f *os.File) error { return s.WritePrometheus(f) }); err != nil {
		return err
	}
	return write(root+".interference.trace.json", func(f *os.File) error { return s.WriteChromeTrace(f) })
}

func u(v uint64) string { return fmt.Sprintf("%d", v) }

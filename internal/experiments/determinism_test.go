package experiments

import (
	"testing"
)

// TestRunnerParallelismInvariant regenerates an experiment serially and
// with the default worker count: the rendered tables must match exactly.
// Each simulation owns its machine (and its request pool), so scheduling
// order must be invisible in the output — this is the contract that lets
// the campaign fan out across cores without sacrificing reproducibility.
func TestRunnerParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	gen := func(parallelism int) string {
		opts := QuickOptions()
		opts.Instrs = 6000
		opts.Warmup = 1000
		opts.Traces = []string{"605.mcf-1554B", "bfs-3B", "619.lbm-2676B"}
		opts.Parallelism = parallelism
		r := NewRunner(opts)
		out := ""
		for _, id := range []string{"fig4", "fig6"} {
			tab, err := r.Run(id)
			if err != nil {
				t.Fatalf("%s (p=%d): %v", id, parallelism, err)
			}
			out += tab.String()
		}
		return out
	}
	serial := gen(1)
	parallel := gen(0) // 0 → GOMAXPROCS default
	if serial != parallel {
		t.Errorf("parallel campaign diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

package experiments

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bbbb"},
	}
	tab.AddRow("row1", "1.0")
	tab.AddRow("longer-row", "2.0")
	tab.Notes = append(tab.Notes, "a note")
	s := tab.String()
	for _, want := range []string{"== x: demo ==", "longer-row", "note: a note", "bbbb"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestStaticTables(t *testing.T) {
	if got := len(Table1().Rows); got != 10 {
		t.Errorf("Table1 has %d rows, want 10 mitigation techniques", got)
	}
	t2 := Table2()
	if !strings.Contains(t2.String(), "352-entry ROB") {
		t.Errorf("Table2 missing core parameters:\n%s", t2)
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(Prefetchers) {
		t.Errorf("Table3 rows = %d", len(t3.Rows))
	}
}

func TestUnknownExperiment(t *testing.T) {
	r := NewRunner(QuickOptions())
	if _, err := r.Run("fig99"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestRunnerDefaults(t *testing.T) {
	r := NewRunner(Options{})
	o := r.Options()
	if o.Instrs == 0 || o.Warmup == 0 || len(o.Traces) != 65 || o.Parallelism <= 0 {
		t.Errorf("defaults not applied: %+v", o)
	}
}

// TestFigSmoke regenerates every experiment at tiny scale — the rows
// must exist and the runner must not error on any path.
func TestFigSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	opts := QuickOptions()
	opts.Instrs = 6000
	opts.Warmup = 1000
	opts.Mixes = 2
	opts.Traces = []string{"605.mcf-1554B", "641.leela-1083B"}
	r := NewRunner(opts)
	ids := append(append([]string{}, IDs...), ExtensionIDs...)
	for _, id := range ids {
		tab, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
		if tab.ID == "" || tab.Title == "" || len(tab.Header) == 0 {
			t.Errorf("%s: incomplete table metadata", id)
		}
		if _, err := tab.JSON(); err != nil {
			t.Errorf("%s: JSON rendering failed: %v", id, err)
		}
	}
}

func TestGeomean(t *testing.T) {
	m := map[string]float64{"a": 2, "b": 8}
	if g := geomean(m); g < 3.99 || g > 4.01 {
		t.Errorf("geomean = %f, want 4", g)
	}
	if geomean(nil) != 0 {
		t.Error("empty geomean should be 0")
	}
}

func TestRandomMixesDeterministic(t *testing.T) {
	a := NewRunner(QuickOptions()).randomMixes()
	b := NewRunner(QuickOptions()).randomMixes()
	if len(a) != QuickOptions().Mixes {
		t.Fatalf("%d mixes", len(a))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("mixes not deterministic")
			}
		}
	}
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (see DESIGN.md for the experiment index). Each
// Fig* / Table* method produces a text table with the same series the
// paper plots; cmd/experiments prints them and bench_test.go wraps them
// in benchmarks.
//
// Results are memoized by (trace, configuration) and shared across
// figures — Fig. 1, 3, 4, 13 and 14 reuse the same runs — and the
// runner fans simulations out across CPUs.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// Prefetchers lists the evaluated engines in the paper's plot order.
var Prefetchers = []string{"ip-stride", "ipcp", "bingo", "spp-ppf", "berti"}

// Options size the experiment campaign.
type Options struct {
	// Instrs is the measured instruction budget per run; Warmup runs
	// first (the paper uses 200M/50M; defaults here are laptop-scale).
	Instrs int
	Warmup int
	// Traces restricts the workload set (default: all 65).
	Traces []string
	// Mixes is the number of random 4-core mixes for Fig. 15.
	Mixes int
	// Seed drives workload generation and mix selection.
	Seed int64
	// Parallelism bounds concurrent simulations (default: GOMAXPROCS).
	Parallelism int
	// TimeseriesDir, when non-empty, attaches an interval sampler and a
	// request-lifecycle tracer to every single-core run and exports
	// <trace>__<label>.series.json, .series.csv, and .trace.json into the
	// directory. Attached probes never change the simulated results.
	TimeseriesDir string
	// Campaign, when non-nil, receives live run/instruction counters as
	// the campaign progresses (cmd/experiments wires it to -http).
	Campaign *probe.Campaign
	// Profile, when non-nil, aggregates engine-attribution counters
	// (internal/observatory) across every run of the campaign. Like the
	// other probes, attaching it never changes simulated results.
	Profile *observatory.Aggregate
}

// DefaultOptions returns the standard campaign size.
func DefaultOptions() Options {
	return Options{Instrs: 100_000, Warmup: 20_000, Mixes: 24, Seed: 1}
}

// QuickOptions returns a fast smoke-scale campaign.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Instrs = 20_000
	o.Warmup = 4_000
	o.Mixes = 6
	o.Traces = []string{
		"605.mcf-1554B", "603.bwa-2931B", "619.lbm-2676B", "602.gcc-1850B",
		"654.roms-1007B", "bfs-3B", "sssp-5B", "cc-14B", "pr-3B", "bc-0B",
	}
	return o
}

// Runner executes and memoizes simulations.
type Runner struct {
	opts Options

	mu      sync.Mutex
	results map[resultKey]*entry
	sem     chan struct{}
}

type resultKey struct {
	trace string
	label string
}

type entry struct {
	once sync.Once
	res  *sim.Result
	err  error
}

// NewRunner builds a runner; zero-valued option fields take defaults.
func NewRunner(opts Options) *Runner {
	def := DefaultOptions()
	if opts.Instrs == 0 {
		opts.Instrs = def.Instrs
	}
	if opts.Warmup == 0 {
		opts.Warmup = def.Warmup
	}
	if opts.Mixes == 0 {
		opts.Mixes = def.Mixes
	}
	if opts.Seed == 0 {
		opts.Seed = def.Seed
	}
	if len(opts.Traces) == 0 {
		opts.Traces = workload.Names()
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:    opts,
		results: make(map[resultKey]*entry),
		sem:     make(chan struct{}, opts.Parallelism),
	}
}

// Options returns the effective options.
func (r *Runner) Options() Options { return r.opts }

// cfgVariant describes one evaluated system in figure-legend terms.
type cfgVariant struct {
	label      string
	prefetcher string
	mode       sim.Mode
	secure     bool
	suf        bool
	classify   bool
}

func (v cfgVariant) config(opts Options) sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = opts.Warmup
	cfg.MaxInstrs = opts.Instrs
	cfg.Prefetcher = v.prefetcher
	cfg.Mode = v.mode
	cfg.Secure = v.secure
	cfg.SUF = v.suf
	cfg.Classify = v.classify
	// The paper's TS monitoring intervals (512/4096 misses) assume
	// 200M-instruction runs; scale the L2 prefetchers' interval down so
	// the adaptation can engage at harness scale (L1D's 512 already
	// completes many intervals; see sim.Config.LatenessInterval).
	if opts.Instrs < 10_000_000 && (v.prefetcher == "bingo" || v.prefetcher == "spp-ppf") {
		cfg.LatenessInterval = 512
	}
	return cfg
}

// The recurring variants of the paper's legends.
func baseNonSecure() cfgVariant {
	return cfgVariant{label: "nopref/non-secure", prefetcher: "none"}
}

func baseSecure() cfgVariant {
	return cfgVariant{label: "nopref/secure", prefetcher: "none", secure: true}
}

func baseSecureSUF() cfgVariant {
	return cfgVariant{label: "nopref/secure+SUF", prefetcher: "none", secure: true, suf: true}
}

func onAccessNonSecure(pf string) cfgVariant {
	return cfgVariant{label: pf + "/on-access/non-secure", prefetcher: pf, mode: sim.ModeOnAccess}
}

func onAccessSecure(pf string) cfgVariant {
	return cfgVariant{label: pf + "/on-access/secure", prefetcher: pf, mode: sim.ModeOnAccess, secure: true}
}

func onCommitSecure(pf string) cfgVariant {
	return cfgVariant{label: pf + "/on-commit/secure", prefetcher: pf, mode: sim.ModeOnCommit, secure: true}
}

func onCommitSecureSUF(pf string) cfgVariant {
	return cfgVariant{label: pf + "/on-commit/secure+SUF", prefetcher: pf, mode: sim.ModeOnCommit, secure: true, suf: true}
}

func timelySecure(pf string) cfgVariant {
	return cfgVariant{label: pf + "/TS/secure", prefetcher: pf, mode: sim.ModeTimelySecure, secure: true}
}

func timelySecureSUF(pf string) cfgVariant {
	return cfgVariant{label: pf + "/TS/secure+SUF", prefetcher: pf, mode: sim.ModeTimelySecure, secure: true, suf: true}
}

func classified(v cfgVariant) cfgVariant {
	v.classify = true
	v.label += "+classify"
	return v
}

// result runs (or returns the memoized) simulation of variant v on the
// named trace.
func (r *Runner) result(traceName string, v cfgVariant) (*sim.Result, error) {
	key := resultKey{traceName, v.label}
	r.mu.Lock()
	e, ok := r.results[key]
	if !ok {
		e = &entry{}
		r.results[key] = e
	}
	r.mu.Unlock()
	e.once.Do(func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		tr, err := workload.Get(traceName, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
		if err != nil {
			e.err = err
			return
		}
		if c := r.opts.Campaign; c != nil {
			c.RunStarted()
			defer func() {
				if e.err != nil {
					c.RunFailed()
				} else {
					c.RunDone(e.res.Instructions, e.res.Cycles)
				}
			}()
		}
		src := trace.NewSource(tr)
		var probes sim.Probes
		var prof *observatory.Profile
		if r.opts.Profile != nil {
			prof = observatory.NewProfile()
			probes.Profile = prof
		}
		if r.opts.TimeseriesDir == "" {
			e.res, e.err = sim.RunProbed(v.config(r.opts), src, probes)
		} else {
			sampler := probe.NewIntervalSampler(r.opts.Instrs/int(sim.DefaultWindowInstrs) + 2)
			tracer := probe.NewTracer(traceSampleEvery, traceRingCap)
			probes.Observer = tracer
			probes.Window = sampler
			e.res, e.err = sim.RunProbed(v.config(r.opts), src, probes)
			if e.err == nil {
				e.err = r.exportTimeseries(traceName, v.label, sampler, tracer)
			}
		}
		if e.err == nil && prof != nil {
			r.opts.Profile.Add(prof)
		}
	})
	return e.res, e.err
}

// forEachTrace runs fn for every trace in parallel and collects errors.
func (r *Runner) forEachTrace(fn func(name string) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(r.opts.Traces))
	for i, name := range r.opts.Traces {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			errs[i] = fn(name)
		}(i, name)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// speedups collects per-trace speedups of v over the non-secure
// no-prefetch baseline.
func (r *Runner) speedups(v cfgVariant) (map[string]float64, error) {
	out := make(map[string]float64, len(r.opts.Traces))
	var mu sync.Mutex
	err := r.forEachTrace(func(name string) error {
		base, err := r.result(name, baseNonSecure())
		if err != nil {
			return err
		}
		res, err := r.result(name, v)
		if err != nil {
			return err
		}
		mu.Lock()
		out[name] = res.Speedup(base)
		mu.Unlock()
		return nil
	})
	return out, err
}

// geomean returns the geometric mean of the map's values (the paper's
// averaging rule for normalized numbers).
func geomean(m map[string]float64) float64 {
	if len(m) == 0 {
		return 0
	}
	s := 0.0
	n := 0
	for _, v := range m {
		if v > 0 {
			s += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// mean returns the arithmetic mean (the rule for raw metrics).
func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}

// collect gathers one metric over all traces for a variant and averages
// arithmetically.
func (r *Runner) collect(v cfgVariant, metric func(*sim.Result) float64) (float64, error) {
	var mu sync.Mutex
	var vals []float64
	err := r.forEachTrace(func(name string) error {
		res, err := r.result(name, v)
		if err != nil {
			return err
		}
		mu.Lock()
		vals = append(vals, metric(res))
		mu.Unlock()
		return nil
	})
	return mean(vals), err
}

// sortedTraces returns the runner's traces in registry order.
func (r *Runner) sortedTraces(suite string) []string {
	inSuite := map[string]bool{}
	for _, g := range workload.Suite(suite) {
		inSuite[g.Name] = true
	}
	var out []string
	for _, name := range r.opts.Traces {
		if inSuite[name] {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

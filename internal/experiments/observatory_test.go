package experiments

import (
	"testing"

	"secpref/internal/observatory"
)

// TestDigestEquivalenceGate is the in-repo version of the CI step: the
// two engines must agree at every digest checkpoint of a small
// campaign.
func TestDigestEquivalenceGate(t *testing.T) {
	if testing.Short() {
		t.Skip("gate runs sim campaigns")
	}
	opts := DefaultOptions()
	opts.Instrs = 6000
	opts.Warmup = 1000
	opts.Traces = []string{"605.mcf-1554B", "bfs-3B"}
	r := NewRunner(opts)
	if err := r.DigestEquivalenceGate(); err != nil {
		t.Fatal(err)
	}
}

// TestCampaignProfileAggregation runs a tiny campaign with the
// attribution aggregate attached and checks runs fold into it.
func TestCampaignProfileAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs sim campaigns")
	}
	opts := DefaultOptions()
	opts.Instrs = 6000
	opts.Warmup = 1000
	opts.Traces = []string{"605.mcf-1554B"}
	opts.Profile = observatory.NewAggregate()
	r := NewRunner(opts)
	if _, err := r.result("605.mcf-1554B", baseNonSecure()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.result("605.mcf-1554B", timelySecureSUF("berti")); err != nil {
		t.Fatal(err)
	}
	s := opts.Profile.Snapshot()
	if s.Advances == 0 || s.VisitedCycles == 0 {
		t.Fatalf("aggregate recorded nothing: %+v", s)
	}
	if len(s.Ranks) == 0 || s.Ranks[0].Ticks == 0 {
		t.Fatalf("aggregate has no rank attribution: %+v", s.Ranks)
	}
}

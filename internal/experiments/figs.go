package experiments

import (
	"fmt"
	"sync"

	"secpref/internal/mem"
	"secpref/internal/sim"
)

// Fig1 reproduces Figure 1: speedup of each prefetcher — on-access on
// the non-secure system, on-access on the secure system, on-commit on
// the secure system — normalized to the non-secure system without
// prefetching, plus the secure no-prefetch reference (the red line).
func (r *Runner) Fig1() (*Table, error) {
	t := &Table{
		ID:     "fig1",
		Title:  "Speedup of state-of-the-art prefetchers (normalized to non-secure, no prefetching)",
		Header: []string{"prefetcher", "on-access/non-secure", "on-access/secure", "on-commit/secure"},
	}
	secBase, err := r.speedups(baseSecure())
	if err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		var cells []string
		for _, v := range []cfgVariant{onAccessNonSecure(pf), onAccessSecure(pf), onCommitSecure(pf)} {
			sp, err := r.speedups(v)
			if err != nil {
				return nil, err
			}
			cells = append(cells, f3(geomean(sp)))
		}
		t.AddRow(append([]string{pf}, cells...)...)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("no-pref secure reference line: %s", f3(geomean(secBase))),
		"paper shape: on-access/non-secure > on-access/secure > on-commit/secure, all above the reference line")
	return t, nil
}

// Fig3 reproduces Figure 3: average L1D accesses per kilo instruction,
// split into load / prefetch / commit requests, for the non-secure and
// secure systems under on-access prefetching.
func (r *Runner) Fig3() (*Table, error) {
	t := &Table{
		ID:     "fig3",
		Title:  "L1D APKI split (load/prefetch/commit), on-access prefetching",
		Header: []string{"prefetcher", "system", "load", "prefetch", "commit", "total"},
	}
	add := func(name string, v cfgVariant, system string) error {
		var mu sync.Mutex
		var load, pref, commit float64
		err := r.forEachTrace(func(tr string) error {
			res, err := r.result(tr, v)
			if err != nil {
				return err
			}
			ap := res.L1DAPKI()
			mu.Lock()
			load += ap.Load
			pref += ap.Prefetch
			commit += ap.Commit
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
		n := float64(len(r.opts.Traces))
		t.AddRow(name, system, f1(load/n), f1(pref/n), f1(commit/n), f1((load+pref+commit)/n))
		return nil
	}
	if err := add("no-pref", baseNonSecure(), "non-secure"); err != nil {
		return nil, err
	}
	if err := add("no-pref", baseSecure(), "secure"); err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		if err := add(pf, onAccessNonSecure(pf), "non-secure"); err != nil {
			return nil, err
		}
		if err := add(pf, onAccessSecure(pf), "secure"); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper shape: secure system roughly doubles L1D APKI via commit requests (199 -> 375 APKI without prefetching)")
	return t, nil
}

// Fig4 reproduces Figure 4: average L1D load miss latency under
// on-access prefetching for the four system/prefetch combinations.
func (r *Runner) Fig4() (*Table, error) {
	t := &Table{
		ID:     "fig4",
		Title:  "Average L1D load miss latency (cycles), on-access prefetching",
		Header: []string{"prefetcher", "on-access/non-secure", "on-access/secure", "no-pref/non-secure", "no-pref/secure"},
	}
	baseNS, err := r.collect(baseNonSecure(), func(res *sim.Result) float64 { return res.LoadMissLatency() })
	if err != nil {
		return nil, err
	}
	baseS, err := r.collect(baseSecure(), func(res *sim.Result) float64 { return res.LoadMissLatency() })
	if err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		ns, err := r.collect(onAccessNonSecure(pf), func(res *sim.Result) float64 { return res.LoadMissLatency() })
		if err != nil {
			return nil, err
		}
		s, err := r.collect(onAccessSecure(pf), func(res *sim.Result) float64 { return res.LoadMissLatency() })
		if err != nil {
			return nil, err
		}
		t.AddRow(pf, f1(ns), f1(s), f1(baseNS), f1(baseS))
	}
	t.Notes = append(t.Notes, "paper shape: prefetching raises miss latency, more so with the secure system's extra traffic")
	return t, nil
}

// Fig5 reproduces Figure 5: the 605.mcf-1554B case study — (a) speedup,
// (b) L1D APKI split, (c) L1D load miss latency — for no-pref and each
// prefetcher on both systems with on-access prefetching.
func (r *Runner) Fig5() (*Table, error) {
	const tr = "605.mcf-1554B"
	t := &Table{
		ID:     "fig5",
		Title:  "605.mcf-1554B case study (on-access prefetching)",
		Header: []string{"config", "speedup", "APKI-load", "APKI-pref", "APKI-commit", "miss-lat"},
	}
	base, err := r.result(tr, baseNonSecure())
	if err != nil {
		return nil, err
	}
	add := func(v cfgVariant) error {
		res, err := r.result(tr, v)
		if err != nil {
			return err
		}
		ap := res.L1DAPKI()
		t.AddRow(v.label, f3(res.Speedup(base)), f1(ap.Load), f1(ap.Prefetch), f1(ap.Commit), f1(res.LoadMissLatency()))
		return nil
	}
	variants := []cfgVariant{baseNonSecure(), baseSecure()}
	for _, pf := range Prefetchers {
		variants = append(variants, onAccessNonSecure(pf), onAccessSecure(pf))
	}
	for _, v := range variants {
		if err := add(v); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper shape: on mcf the secure system erases most of the prefetchers' speedup via traffic-induced contention")
	return t, nil
}

// Fig6 reproduces Figure 6: demand MPKI at the prefetcher's home level,
// classified into uncovered / missed-opportunity / late / commit-late,
// for on-access vs on-commit prefetching on the secure system.
func (r *Runner) Fig6() (*Table, error) {
	t := &Table{
		ID:     "fig6",
		Title:  "Home-level demand MPKI by coverage/lateness class (secure system)",
		Header: []string{"prefetcher", "mode", "uncovered", "missed-opp", "late", "commit-late", "total"},
	}
	add := func(pf string, v cfgVariant, mode string) error {
		var mu sync.Mutex
		var unc, mo, late, cl, tot float64
		err := r.forEachTrace(func(tr string) error {
			res, err := r.result(tr, v)
			if err != nil {
				return err
			}
			ins := res.Instructions
			mu.Lock()
			unc += perKI(res.Class.Uncovered, ins)
			mo += perKI(res.Class.MissedOpp, ins)
			late += perKI(res.Class.Late, ins)
			cl += perKI(res.Class.CommitLate, ins)
			tot += perKI(res.Class.TotalMisses, ins)
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
		n := float64(len(r.opts.Traces))
		t.AddRow(pf, mode, f2(unc/n), f2(mo/n), f2(late/n), f2(cl/n), f2(tot/n))
		return nil
	}
	for _, pf := range Prefetchers {
		if err := add(pf, classified(onAccessSecure(pf)), "on-access"); err != nil {
			return nil, err
		}
		if err := add(pf, classified(onCommitSecure(pf)), "on-commit"); err != nil {
			return nil, err
		}
	}
	t.Notes = append(t.Notes, "paper shape: on-commit reduces uncovered misses but introduces the commit-late class, raising total MPKI")
	return t, nil
}

func perKI(count, instr uint64) float64 {
	if instr == 0 {
		return 0
	}
	return float64(count) * 1000 / float64(instr)
}

// Fig10 reproduces Figure 10: speedup of the timely-secure (TS)
// versions against the plain on-commit versions on the secure system.
func (r *Runner) Fig10() (*Table, error) {
	t := &Table{
		ID:     "fig10",
		Title:  "Timely-secure (TS) prefetcher speedup (normalized to non-secure, no prefetching)",
		Header: []string{"prefetcher", "on-commit/secure", "TS/secure", "TS gain %"},
	}
	secBase, err := r.speedups(baseSecure())
	if err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		com, err := r.speedups(onCommitSecure(pf))
		if err != nil {
			return nil, err
		}
		ts, err := r.speedups(timelySecure(pf))
		if err != nil {
			return nil, err
		}
		g1, g2 := geomean(com), geomean(ts)
		t.AddRow(pf, f3(g1), f3(g2), f2((g2/g1-1)*100))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("no-pref secure reference line: %s", f3(geomean(secBase))),
		"paper: TS versions outperform on-commit by 1.9%-4.1%; TSB (berti row) is the best secure prefetcher")
	return t, nil
}

// Fig11 reproduces Figure 11: the SUF effect — on-access non-secure,
// on-commit secure, and on-commit secure + SUF per prefetcher.
func (r *Runner) Fig11() (*Table, error) {
	t := &Table{
		ID:     "fig11",
		Title:  "SUF speedup (normalized to non-secure, no prefetching)",
		Header: []string{"prefetcher", "on-access/non-secure", "on-commit/secure", "on-commit/secure+SUF", "SUF gain %"},
	}
	secBase, err := r.speedups(baseSecure())
	if err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		acc, err := r.speedups(onAccessNonSecure(pf))
		if err != nil {
			return nil, err
		}
		com, err := r.speedups(onCommitSecure(pf))
		if err != nil {
			return nil, err
		}
		suf, err := r.speedups(onCommitSecureSUF(pf))
		if err != nil {
			return nil, err
		}
		gc, gs := geomean(com), geomean(suf)
		t.AddRow(pf, f3(geomean(acc)), f3(gc), f3(gs), f2((gs/gc-1)*100))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("no-pref secure reference line: %s", f3(geomean(secBase))),
		"paper: SUF improves every secure prefetcher, 1.9% (Berti) to 3.7% (Bingo)")
	return t, nil
}

// Fig12 reproduces Figure 12: per-trace speedup of on-commit Berti,
// TSB, and TSB+SUF over the non-secure no-prefetch baseline, for the
// given suite ("spec" for 12a, "gap" for 12b).
func (r *Runner) Fig12(suite string) (*Table, error) {
	t := &Table{
		ID:     "fig12-" + suite,
		Title:  fmt.Sprintf("Per-trace speedup (%s): on-commit Berti vs TSB vs TSB+SUF", suite),
		Header: []string{"trace", "on-commit Berti", "TSB", "TSB+SUF"},
	}
	com, err := r.speedups(onCommitSecure("berti"))
	if err != nil {
		return nil, err
	}
	tsb, err := r.speedups(timelySecure("berti"))
	if err != nil {
		return nil, err
	}
	tsbSUF, err := r.speedups(timelySecureSUF("berti"))
	if err != nil {
		return nil, err
	}
	var gc, gt, gs []float64
	for _, name := range r.sortedTraces(suite) {
		t.AddRow(name, f3(com[name]), f3(tsb[name]), f3(tsbSUF[name]))
		gc = append(gc, com[name])
		gt = append(gt, tsb[name])
		gs = append(gs, tsbSUF[name])
	}
	t.AddRow("geomean", f3(geomeanSlice(gc)), f3(geomeanSlice(gt)), f3(geomeanSlice(gs)))
	t.Notes = append(t.Notes, "paper: TSB+SUF never degrades a trace; biggest wins on large-fetch-latency traces (bwaves, bfs)")
	return t, nil
}

func geomeanSlice(vals []float64) float64 {
	m := make(map[string]float64, len(vals))
	for i, v := range vals {
		m[fmt.Sprint(i)] = v
	}
	return geomean(m)
}

// Fig13 reproduces Figure 13: average prefetch accuracy per prefetcher
// for on-access non-secure, on-commit secure (SUF does not change
// accuracy), and the TS versions.
func (r *Runner) Fig13() (*Table, error) {
	t := &Table{
		ID:     "fig13",
		Title:  "Prefetch accuracy (%)",
		Header: []string{"prefetcher", "on-access/non-secure", "on-commit/secure", "on-commit/secure+SUF", "TS/secure"},
	}
	for _, pf := range Prefetchers {
		home := mem.LvlL1D
		if pf == "bingo" || pf == "spp-ppf" {
			home = mem.LvlL2
		}
		metric := func(res *sim.Result) float64 { return res.PrefAccuracy(home) * 100 }
		acc, err := r.collect(onAccessNonSecure(pf), metric)
		if err != nil {
			return nil, err
		}
		com, err := r.collect(onCommitSecure(pf), metric)
		if err != nil {
			return nil, err
		}
		suf, err := r.collect(onCommitSecureSUF(pf), metric)
		if err != nil {
			return nil, err
		}
		ts, err := r.collect(timelySecure(pf), metric)
		if err != nil {
			return nil, err
		}
		t.AddRow(pf, f1(acc), f1(com), f1(suf), f1(ts))
	}
	t.Notes = append(t.Notes, "paper shape: on-commit loses accuracy (up to 24% for IPCP); SUF leaves accuracy unchanged; TS versions recover it")
	return t, nil
}

// Fig14 reproduces Figure 14: dynamic energy of the memory hierarchy
// normalized to the non-secure no-prefetch baseline.
func (r *Runner) Fig14() (*Table, error) {
	t := &Table{
		ID:     "fig14",
		Title:  "Normalized dynamic energy (lower is better)",
		Header: []string{"prefetcher", "on-access/non-secure", "on-commit/secure", "on-commit/secure+SUF"},
	}
	baseEnergy := map[string]float64{}
	var mu sync.Mutex
	err := r.forEachTrace(func(tr string) error {
		res, err := r.result(tr, baseNonSecure())
		if err != nil {
			return err
		}
		mu.Lock()
		baseEnergy[tr] = res.Energy.Total()
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	norm := func(v cfgVariant) (float64, error) {
		m := map[string]float64{}
		var lk sync.Mutex
		err := r.forEachTrace(func(tr string) error {
			res, err := r.result(tr, v)
			if err != nil {
				return err
			}
			lk.Lock()
			if b := baseEnergy[tr]; b > 0 {
				m[tr] = res.Energy.Total() / b
			}
			lk.Unlock()
			return nil
		})
		return geomean(m), err
	}
	secBase, err := norm(baseSecure())
	if err != nil {
		return nil, err
	}
	for _, pf := range Prefetchers {
		a, err := norm(onAccessNonSecure(pf))
		if err != nil {
			return nil, err
		}
		c, err := norm(onCommitSecure(pf))
		if err != nil {
			return nil, err
		}
		s, err := norm(onCommitSecureSUF(pf))
		if err != nil {
			return nil, err
		}
		t.AddRow(pf, f3(a), f3(c), f3(s))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("no-pref secure reference: %s", f3(secBase)),
		"paper: on-commit secure raises energy ~41.8% over on-access; SUF cuts the increase to ~30%")
	return t, nil
}

// SUFAccuracy reports the §VII-A filter-accuracy statistics.
func (r *Runner) SUFAccuracy() (*Table, error) {
	t := &Table{
		ID:     "suf-accuracy",
		Title:  "SUF filter accuracy (TSB+SUF configuration)",
		Header: []string{"trace", "accuracy %", "drops/KI"},
	}
	v := timelySecureSUF("berti")
	var mu sync.Mutex
	acc := map[string]float64{}
	drops := map[string]float64{}
	err := r.forEachTrace(func(tr string) error {
		res, err := r.result(tr, v)
		if err != nil {
			return err
		}
		mu.Lock()
		acc[tr] = res.SUFAccuracy() * 100
		drops[tr] = perKI(res.Core.SUFDrops, res.Instructions)
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	minName, minV := "", 101.0
	sum := 0.0
	for _, name := range r.opts.Traces {
		if acc[name] < minV {
			minName, minV = name, acc[name]
		}
		sum += acc[name]
	}
	for _, name := range r.opts.Traces {
		t.AddRow(name, f1(acc[name]), f1(drops[name]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("average accuracy %.1f%%, minimum %.1f%% (%s)", sum/float64(len(r.opts.Traces)), minV, minName),
		"paper: average 99.3%, minimum 87.26% (605.mcf-1554B)")
	return t, nil
}

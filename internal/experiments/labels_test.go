package experiments

import (
	"strings"
	"testing"
)

func TestFig15Labels(t *testing.T) {
	labels := Fig15Labels()
	if len(labels) != 6 {
		t.Fatalf("%d fig15 variants, want 6", len(labels))
	}
	wantSubstr := []string{"nopref/secure", "on-access", "on-commit", "SUF", "TS", "TS"}
	for i, w := range wantSubstr {
		if !strings.Contains(labels[i], w) {
			t.Errorf("label %d = %q, want to contain %q", i, labels[i], w)
		}
	}
}

func TestVariantLabelsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	add := func(v cfgVariant) {
		if seen[v.label] {
			t.Errorf("duplicate variant label %q (memoization would alias distinct configs)", v.label)
		}
		seen[v.label] = true
	}
	add(baseNonSecure())
	add(baseSecure())
	add(baseSecureSUF())
	for _, pf := range Prefetchers {
		add(onAccessNonSecure(pf))
		add(onAccessSecure(pf))
		add(onCommitSecure(pf))
		add(onCommitSecureSUF(pf))
		add(timelySecure(pf))
		add(timelySecureSUF(pf))
		add(classified(onAccessSecure(pf)))
		add(classified(onCommitSecure(pf)))
	}
}

func TestIDsHaveNoDuplicates(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range append(append([]string{}, IDs...), ExtensionIDs...) {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
}

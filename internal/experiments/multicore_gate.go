package experiments

import (
	"fmt"

	"secpref/internal/multicore"
	"secpref/internal/observatory"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// multicoreGateVariants mirror the single-core digest gate's coverage:
// the full secure stack and a non-secure on-access system.
func multicoreGateVariants() []cfgVariant {
	return []cfgVariant{
		timelySecureSUF("berti"),
		onAccessNonSecure("berti"),
	}
}

// mixSources builds the trace sources for one named mix with the
// runner's budgets (the runMix convention).
func (r *Runner) mixSources(names []string) ([]trace.Source, error) {
	mix := make([]trace.Source, len(names))
	for i, name := range names {
		tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
		if err != nil {
			return nil, err
		}
		mix[i] = trace.NewSource(tr)
	}
	return mix, nil
}

// MulticoreEquivalenceGate runs representative 4-core mixes under the
// barrier-parallel engine and the serial lockstep reference with
// rolling digest recorders attached, and fails on any disagreement:
// a divergent digest checkpoint, a differing stop cycle, differing
// per-core results (which would silently skew the weighted-speedup
// table), or a barrier-interval sensitivity (interval 1 vs the safety
// bound must be bit-identical). It is the multi-core twin of
// DigestEquivalenceGate.
func (r *Runner) MulticoreEquivalenceGate() error {
	mixes := r.randomMixes()
	if len(mixes) > 2 {
		mixes = mixes[:2]
	}
	var failures []string
	for _, v := range multicoreGateVariants() {
		for mi, names := range mixes {
			cfg := multicore.Config{Single: v.config(r.opts), Cores: len(names)}
			// Same reduced per-core budget as the campaign's runMix, so
			// the gate certifies exactly what Fig15 computes.
			cfg.Single.MaxInstrs = r.opts.Instrs / 2
			cfg.Single.WarmupInstrs = r.opts.Warmup / 2
			id := fmt.Sprintf("%s/mix%02d", v.label, mi)

			run := func(p multicore.Probes) (*multicore.Result, *observatory.Recorder, error) {
				mix, err := r.mixSources(names)
				if err != nil {
					return nil, nil, err
				}
				rec := observatory.NewRecorder()
				p.Digest = rec
				p.DigestEvery = 1024
				res, err := multicore.RunProbed(cfg, mix, p)
				return res, rec, err
			}
			par, recPar, err := run(multicore.Probes{})
			if err != nil {
				return fmt.Errorf("multicore gate %s (parallel): %w", id, err)
			}
			ref, recRef, err := run(multicore.Probes{ReferenceEngine: true})
			if err != nil {
				return fmt.Errorf("multicore gate %s (reference): %w", id, err)
			}
			narrow, _, err := run(multicore.Probes{Interval: 1})
			if err != nil {
				return fmt.Errorf("multicore gate %s (interval=1): %w", id, err)
			}

			if recPar.Len() == 0 {
				return fmt.Errorf("multicore gate %s: no digest checkpoints recorded", id)
			}
			if div, ok := observatory.FirstDivergence(recPar, recRef); ok {
				failures = append(failures, fmt.Sprintf("%s: %s diverges at cycle %d (%#x != %#x)",
					id, multicoreComponent(cfg.Cores, div.Component), div.Cycle, div.A, div.B))
				continue
			}
			if par.Cycles != ref.Cycles {
				failures = append(failures, fmt.Sprintf("%s: stop cycle %d (parallel) != %d (reference)",
					id, par.Cycles, ref.Cycles))
			}
			for i := range par.PerCore {
				if par.PerCore[i].IPC != ref.PerCore[i].IPC || par.PerCore[i].Instructions != ref.PerCore[i].Instructions {
					failures = append(failures, fmt.Sprintf("%s: core %d result diverges (IPC %.6f != %.6f)",
						id, i, par.PerCore[i].IPC, ref.PerCore[i].IPC))
				}
			}
			if !digestsEqual(par.FinalDigests, narrow.FinalDigests) {
				failures = append(failures, fmt.Sprintf("%s: interval 1 vs safety bound final digests differ", id))
			}
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("multicore engine divergence:\n  %s", joinLines(failures))
	}
	return nil
}

// multicoreComponent names an index of the n-core digest vector.
func multicoreComponent(n, c int) string {
	if c < 0 {
		return "structural"
	}
	names := sim.MulticoreComponentNames(n)
	if c < len(names) {
		return names[c]
	}
	return fmt.Sprintf("component %d", c)
}

func digestsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package experiments

import (
	"fmt"
	"sync"

	"secpref/internal/observatory"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// digestGateVariants are the configurations the equivalence gate
// exercises: the full secure stack (GM + SUF + Berti/TSB — every
// digested component live) and a non-secure on-access system (the
// other training/fill wiring).
func digestGateVariants() []cfgVariant {
	return []cfgVariant{
		timelySecureSUF("berti"),
		onAccessNonSecure("berti"),
	}
}

// DigestEquivalenceGate runs every (variant, trace) pair of the
// campaign under both simulation engines — calendar-queue event engine
// and lockstep reference — with rolling state-digest recorders
// attached, and fails on the first divergent checkpoint. It is the CI
// form of the determinism guarantee: not just "the final results
// match" (TestIdleSkipEquivalence) but "the architectural state agrees
// at every digest interval along the way", which turns an engine bug
// into a (cycle, component) coordinate instead of a diff of end-state
// counters.
func (r *Runner) DigestEquivalenceGate() error {
	var mu sync.Mutex
	var failures []string
	for _, v := range digestGateVariants() {
		v := v
		err := r.forEachTrace(func(name string) error {
			run := func(ref bool) (*observatory.Recorder, error) {
				tr, err := workload.Get(name, workload.Params{Instrs: r.opts.Instrs + r.opts.Warmup, Seed: r.opts.Seed})
				if err != nil {
					return nil, err
				}
				rec := observatory.NewRecorder()
				_, err = sim.RunProbed(v.config(r.opts), trace.NewSource(tr), sim.Probes{
					Digest:          rec,
					ReferenceEngine: ref,
				})
				return rec, err
			}
			event, err := run(false)
			if err != nil {
				return fmt.Errorf("digest gate %s/%s (event): %w", v.label, name, err)
			}
			ref, err := run(true)
			if err != nil {
				return fmt.Errorf("digest gate %s/%s (reference): %w", v.label, name, err)
			}
			if event.Len() == 0 {
				return fmt.Errorf("digest gate %s/%s: no digest checkpoints recorded", v.label, name)
			}
			if div, ok := observatory.FirstDivergence(event, ref); ok {
				comp := "structural"
				if div.Component >= 0 && div.Component < sim.NumComponents {
					comp = sim.ComponentNames[div.Component]
				}
				mu.Lock()
				failures = append(failures, fmt.Sprintf("%s/%s: %s digest diverges at cycle %d (%#x != %#x)",
					v.label, name, comp, div.Cycle, div.A, div.B))
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("engine digest divergence:\n  %s", joinLines(failures))
	}
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

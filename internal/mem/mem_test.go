package mem

import (
	"testing"
	"testing/quick"
)

func TestLineAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		l := Line(raw >> LineBits) // any representable line
		return LineOf(l.Addr()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineOfMasksOffset(t *testing.T) {
	f := func(raw uint64, off uint8) bool {
		base := Addr(raw &^ uint64(LineSize-1))
		return LineOf(base+Addr(off)%LineSize) == LineOf(base)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindLoad:        "load",
		KindRFO:         "rfo",
		KindPrefetch:    "prefetch",
		KindWriteback:   "writeback",
		KindCommitWrite: "commit-write",
		KindRefetch:     "refetch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(200).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestKindIsDemand(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		want := k == KindLoad || k == KindRFO
		if k.IsDemand() != want {
			t.Errorf("%v.IsDemand() = %v", k, k.IsDemand())
		}
	}
}

func TestLevelStrings(t *testing.T) {
	for l, s := range map[Level]string{LvlL1D: "L1D", LvlL2: "L2", LvlLLC: "LLC", LvlDRAM: "DRAM"} {
		if l.String() != s {
			t.Errorf("Level(%d) = %q, want %q", l, l.String(), s)
		}
	}
}

func TestLevelOrdering(t *testing.T) {
	// SUF and the fill path rely on L1D < L2 < LLC < DRAM.
	if !(LvlL1D < LvlL2 && LvlL2 < LvlLLC && LvlLLC < LvlDRAM) {
		t.Fatal("level ordering broken")
	}
}

func TestRequestString(t *testing.T) {
	r := &Request{Line: 0x123, IP: 0x400, Kind: KindPrefetch, Timestamp: 7}
	s := r.String()
	if s == "" {
		t.Fatal("empty request string")
	}
}

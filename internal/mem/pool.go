package mem

// Request pool states. Foreign requests (constructed with &Request{...}
// outside a pool, as tests and external harnesses do) are never
// recycled: Put on them is a no-op, so their fields stay inspectable
// after completion.
const (
	pooledForeign uint8 = iota // not pool-managed
	pooledLive                 // checked out of a pool
	pooledFree                 // sitting on a free list
)

// RequestPool is a free list of Requests. One pool is shared per
// machine (all cache levels, DRAM, GhostMinion, and the core), because
// requests flow across components — a writeback born in L1D retires in
// DRAM — and the component that terminally processes a request is the
// one that recycles it.
//
// Pools are not safe for concurrent use; the experiments runner gives
// each parallel simulation its own machine and therefore its own pool.
type RequestPool struct {
	free []*Request

	// Gets and News count checkouts and fresh allocations; steady state
	// has News ≪ Gets.
	Gets uint64
	News uint64
}

// Get returns a zeroed Request checked out of the pool.
func (p *RequestPool) Get() *Request {
	p.Gets++
	if n := len(p.free); n > 0 {
		r := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		r.poolState = pooledLive
		return r
	}
	p.News++
	// Refill in chunks: one backing allocation covers the next
	// poolChunk checkouts, so a growing live set costs O(chunks)
	// allocations instead of one per request.
	chunk := make([]Request, poolChunk)
	for i := len(chunk) - 1; i > 0; i-- {
		chunk[i].poolState = pooledFree
		p.free = append(p.free, &chunk[i])
	}
	chunk[0].poolState = pooledLive
	return &chunk[0]
}

// poolChunk is the refill batch size; see Get.
const poolChunk = 64

// Put recycles a request obtained from Get. Requests not owned by a
// pool are ignored; double-Put of a pooled request panics, since it
// would hand the same request to two owners.
func (p *RequestPool) Put(r *Request) {
	switch r.poolState {
	case pooledForeign:
		return
	case pooledFree:
		panic("mem: RequestPool.Put of already-freed request")
	}
	*r = Request{poolState: pooledFree}
	p.free = append(p.free, r)
}

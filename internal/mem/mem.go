// Package mem defines the common memory-system vocabulary shared by the
// simulator substrates: physical addresses, cache-line arithmetic,
// request kinds, and the cache-level / fill-level enums used throughout
// the hierarchy and by the Secure Update Filter (SUF).
package mem

import "fmt"

// LineBits is log2 of the cache-line size. All caches in the modeled
// system use 64-byte lines, as in the paper's baseline (Table II).
const (
	LineBits = 6
	LineSize = 1 << LineBits
)

// Addr is a byte-granular physical address.
type Addr uint64

// Line is a cache-line-granular address (Addr >> LineBits).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineBits) }

// Addr returns the first byte address of the line.
func (l Line) Addr() Addr { return Addr(l) << LineBits }

// Kind identifies why a request entered the memory system. The secure
// cache system adds two kinds on top of the classic load/RFO/prefetch/
// writeback set: commit writes (GM hit at commit) and re-fetches (GM
// miss at commit), per GhostMinion's on-commit hierarchy update.
type Kind uint8

const (
	// KindLoad is a demand data load.
	KindLoad Kind = iota
	// KindRFO is a read-for-ownership triggered by a store.
	KindRFO
	// KindPrefetch is a hardware prefetch request.
	KindPrefetch
	// KindWriteback is a dirty (or GhostMinion-propagated) eviction
	// moving a line to the next cache level.
	KindWriteback
	// KindCommitWrite is GhostMinion's on-commit write of a committed
	// line from the GM speculative cache into L1D.
	KindCommitWrite
	// KindRefetch is GhostMinion's on-commit re-fetch of a committed
	// line that was evicted from the GM before commit.
	KindRefetch

	// NumKinds is the number of request kinds.
	NumKinds = int(KindRefetch) + 1
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindRFO:
		return "rfo"
	case KindPrefetch:
		return "prefetch"
	case KindWriteback:
		return "writeback"
	case KindCommitWrite:
		return "commit-write"
	case KindRefetch:
		return "refetch"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsDemand reports whether the request kind is a demand access (load or
// RFO) as opposed to prefetch or hierarchy-maintenance traffic.
func (k Kind) IsDemand() bool { return k == KindLoad || k == KindRFO }

// Level identifies a position in the memory hierarchy. The ordering is
// significant: L1D is the lowest (closest to the core), DRAM the
// highest, matching the paper's terminology ("L1D is the lowest level
// and LLC is the highest level of the cache").
type Level uint8

const (
	// LvlL1D is the first-level data cache (searched in parallel with
	// the GM under GhostMinion).
	LvlL1D Level = iota
	// LvlL2 is the private second-level cache.
	LvlL2
	// LvlLLC is the shared last-level cache.
	LvlLLC
	// LvlDRAM is main memory.
	LvlDRAM

	// NumLevels counts the cache levels (excluding DRAM).
	NumLevels = int(LvlLLC) + 1
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case LvlL1D:
		return "L1D"
	case LvlL2:
		return "L2"
	case LvlLLC:
		return "LLC"
	case LvlDRAM:
		return "DRAM"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// HitLevel is SUF's 2-bit encoding of the hierarchy level that served a
// speculative load: 00=L1D (or GM), 01=L2, 10=LLC, 11=DRAM. It is
// stored in the load-queue entry and consulted at commit time to filter
// superfluous non-speculative updates.
type HitLevel = Level

// Cycle is a simulation timestamp in core clock cycles.
type Cycle uint64

// NoEvent is the NextEvent sentinel meaning "nothing scheduled": the
// component will stay idle until some other component hands it work.
const NoEvent = ^Cycle(0)

// Request is a memory-system request descriptor. Requests are passed by
// pointer through the hierarchy; the cache package pools them.
type Request struct {
	Line Line
	IP   Addr // instruction pointer of the triggering instruction (0 for maintenance traffic)
	Kind Kind

	// Core identifies the requesting core (multicore runs).
	Core int

	// Issued is the cycle the request entered the memory system, used
	// for latency accounting and Berti-style fetch-latency measurement.
	Issued Cycle

	// Timestamp is GhostMinion's strictness-ordering timestamp (program
	// order of the triggering instruction). Younger requests may be
	// leapfrogged (replaced) in full MSHRs by older ones.
	Timestamp uint64

	// FillLevel is the level a prefetch should fill to (prefetchers such
	// as IPCP and Berti orchestrate fills between L1D and L2 based on
	// confidence). Demand requests always fill to the requesting level.
	FillLevel Level

	// SpecBypass marks a GhostMinion speculative load: hits must not
	// update replacement state and the miss response fills only the GM,
	// bypassing L1D/L2/LLC.
	SpecBypass bool

	// Dirty marks a writeback carrying modified data (as opposed to a
	// GhostMinion clean propagation).
	Dirty bool

	// WBBits carries the GhostMinion/SUF writeback bits on commit
	// writes and clean propagations: bit 0 is the receiving level's
	// "propagate on eviction" flag, bit 1 the next level's, and so on.
	WBBits uint8

	// ServedBy records the level that provided the data (set on
	// response). This is the SUF hit-level input.
	ServedBy Level

	// MergedPrefetch is set on the response when a demand request merged
	// with an in-flight prefetch MSHR entry (a classic late prefetch).
	MergedPrefetch bool

	// FillLat is set on the response: the fetch latency observed for
	// this request (miss service time), or, for a hit on a prefetched
	// line, the latency stored alongside the line — the signal Berti
	// and the TSB X-LQ train on.
	FillLat Cycle

	// HitPrefetched is set on the response when the request hit a line
	// installed by a prefetch.
	HitPrefetched bool

	// Owner, if non-nil, receives exactly one Complete call when the
	// request's data is available at the requesting level. OwnerTag
	// carries the owner's routing context (ROB slot, MSHR index) so the
	// response needs no captured state — this replaces the per-request
	// Done closure the hot path used to allocate.
	Owner    Completer
	OwnerTag uint32

	// poolState tracks pool membership (see RequestPool); requests
	// constructed outside a pool are never recycled.
	poolState uint8
}

// Completer receives request completions. Implementations use
// Request.OwnerTag (and Timestamp) to locate their per-request state.
type Completer interface {
	Complete(r *Request)
}

// CompleterFunc adapts a function to Completer (tests and harnesses;
// the simulator hot path uses concrete component receivers instead).
type CompleterFunc func(*Request)

// Complete implements Completer.
func (f CompleterFunc) Complete(r *Request) { f(r) }

// Complete notifies the request's owner, if any, that data is
// available. It must be invoked exactly once per issue.
func (r *Request) Complete() {
	if r.Owner != nil {
		r.Owner.Complete(r)
	}
}

// String returns a compact debug representation.
func (r *Request) String() string {
	return fmt.Sprintf("{%s line=%#x ip=%#x t=%d}", r.Kind, uint64(r.Line), uint64(r.IP), r.Timestamp)
}

package core

import "secpref/internal/mem"

// XLQ is TSB's load-queue extension (§V-C): a dual-ported structure
// with one entry per LQ slot (128 in the modeled system), indexed by LQ
// entry id. Each entry holds a valid bit, a Hitp bit (the access hit a
// prefetched line), a 16-bit access timestamp, and a 12-bit fetch
// latency — 0.47 KB total. The speculative phase writes it; commit
// reads it; a domain switch flushes it (the security argument relies on
// per-entry, commit-time-only access plus this flush).
//
// Timestamps and latencies are stored truncated exactly as the hardware
// would (16 and 12 bits); Access and Latency reconstruct full values
// relative to the current cycle, assuming — as the paper does — that a
// load commits within 2^16 cycles of its access.
type XLQ struct {
	entries [xlqSize]xlqEntry
}

const xlqSize = 128

type xlqEntry struct {
	valid    bool
	hitp     bool
	accessTS uint16
	fetchLat uint16 // 12 bits used
}

// Record stores the access timestamp for LQ slot id at a demand miss
// (hitp=false) or a hit on a prefetched line (hitp=true, with the
// line's stored latency).
func (x *XLQ) Record(id int, access mem.Cycle, hitp bool, prefLat mem.Cycle) {
	e := &x.entries[id%xlqSize]
	e.valid = true
	e.hitp = hitp
	e.accessTS = uint16(access)
	if hitp {
		e.fetchLat = uint16(prefLat) & 0xfff
	} else {
		e.fetchLat = 0 // latency arrives at fill time via SetLatency
	}
}

// SetLatency stores the measured fetch latency to the GM once the fill
// completes.
func (x *XLQ) SetLatency(id int, lat mem.Cycle) {
	e := &x.entries[id%xlqSize]
	if e.valid {
		e.fetchLat = uint16(lat) & 0xfff
	}
}

// Read returns the entry for LQ slot id at commit time, reconstructing
// the access cycle from its 16-bit timestamp relative to now. ok is
// false for invalid entries (regular hits take no action at commit).
func (x *XLQ) Read(id int, now mem.Cycle) (access mem.Cycle, latency mem.Cycle, hitp bool, ok bool) {
	e := &x.entries[id%xlqSize]
	if !e.valid {
		return 0, 0, false, false
	}
	// Reconstruct: access <= now and within 2^16 cycles.
	delta := uint16(now) - e.accessTS
	access = now - mem.Cycle(delta)
	return access, mem.Cycle(e.fetchLat), e.hitp, true
}

// Release invalidates the entry when the load leaves the LQ.
func (x *XLQ) Release(id int) { x.entries[id%xlqSize].valid = false }

// Flush invalidates every entry (domain switch).
func (x *XLQ) Flush() {
	for i := range x.entries {
		x.entries[i].valid = false
	}
}

// StorageBytes reports the X-LQ hardware budget (§V-C: 0.47 KB).
func (x *XLQ) StorageBytes() int {
	// 128 entries x (1 valid + 1 hitp + 16 ts + 12 latency) bits.
	return xlqSize * 30 / 8
}

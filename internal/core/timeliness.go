package core

import (
	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

// LatenessMonitor implements the paper's §V-D adaptive-distance
// mechanism for non-self-timing prefetchers (IP-stride, IPCP, Bingo,
// SPP+PPF): prefetch lateness — the ratio of late prefetches to useful
// prefetches — is sampled every interval misses (512 for L1D
// prefetchers, the L1D size in lines; 4096 for L2 prefetchers, half the
// L2 size). If lateness rises for two consecutive intervals, the
// prefetch distance is incremented; single-interval decisions were
// found too noisy. A phase change resets the distance to the base.
type LatenessMonitor struct {
	pf        prefetch.DistanceTunable
	interval  uint64
	threshold float64

	// source returns cumulative (late, useful) prefetch counts at the
	// home level; the monitor differences them per interval.
	source func() (late, useful uint64)

	misses     uint64
	baseLate   uint64
	baseUseful uint64
	prevRatio  float64
	prevRising bool
	havePrev   bool
	phase      PhaseDetector

	// Adaptations and Resets count distance increments and
	// phase-change resets.
	Adaptations uint64
	Resets      uint64
}

// DefaultLateness is the paper's lateness threshold (0.14 for all
// prefetchers except Bingo, which uses 0.05 because its late-prefetch
// population is smaller).
const (
	DefaultLateness = 0.14
	BingoLateness   = 0.05
)

// IntervalFor returns the monitoring interval for a prefetcher's home
// level: 512 misses at L1D (L1D size in lines), 4096 at L2 (half the
// L2's lines).
func IntervalFor(home mem.Level) uint64 {
	if home == mem.LvlL2 {
		return 4096
	}
	return 512
}

// NewLatenessMonitor wires a monitor to a distance-tunable prefetcher.
// source reports cumulative (late, useful) prefetch counts at the home
// level (typically the home cache's PrefLate / PrefUseful counters).
// interval overrides the per-level default when non-zero.
func NewLatenessMonitor(pf prefetch.DistanceTunable, threshold float64, interval uint64, source func() (late, useful uint64)) *LatenessMonitor {
	if interval == 0 {
		interval = IntervalFor(pf.Home())
	}
	return &LatenessMonitor{
		pf:        pf,
		interval:  interval,
		threshold: threshold,
		source:    source,
	}
}

// OnMiss advances the interval counter; the caller invokes it on every
// demand miss at the prefetcher's home level, supplying the IP for
// phase detection.
func (m *LatenessMonitor) OnMiss(ip mem.Addr) {
	if m.phase.Observe(ip) {
		m.pf.SetDistance(m.pf.BaseDistance())
		m.Resets++
		m.misses = 0
		m.baseLate, m.baseUseful = m.source()
		m.havePrev = false
		return
	}
	m.misses++
	if m.misses >= m.interval {
		m.endInterval()
	}
}

// Rebase resets the interval baseline against the (possibly zeroed)
// stats source; the simulator calls it after the warmup stats reset.
func (m *LatenessMonitor) Rebase() {
	m.baseLate, m.baseUseful = m.source()
	m.misses = 0
	m.havePrev = false
	m.prevRising = false
}

func (m *LatenessMonitor) endInterval() {
	late, useful := m.source()
	dl, du := late-m.baseLate, useful-m.baseUseful
	m.baseLate, m.baseUseful = late, useful
	ratio := 0.0
	if du > 0 {
		ratio = float64(dl) / float64(du)
	} else if dl > 0 {
		ratio = 1
	}
	rising := m.havePrev && ratio > m.prevRatio && ratio > m.threshold
	if rising && m.prevRising {
		// Two consecutive rising intervals above threshold: reach
		// further ahead.
		m.pf.SetDistance(m.pf.Distance() + 1)
		m.Adaptations++
		rising = false // restart the hysteresis
	}
	m.prevRising = rising
	m.prevRatio = ratio
	m.havePrev = true
	m.misses = 0
}

// PhaseDetector detects application phase changes from the miss-PC
// working set, after Kalani & Panda [26]: the PCs seen in the current
// window are summarized in a small signature; if the overlap with the
// previous window's signature falls below half, the phase changed.
type PhaseDetector struct {
	window  uint64
	count   uint64
	cur     uint64 // 64-bit PC-set signature (Bloom-style)
	prev    uint64
	hasPrev bool
}

const phaseWindow = 2048

// Observe folds a miss PC into the current window signature and
// reports whether a phase change was just detected (at window ends).
func (d *PhaseDetector) Observe(ip mem.Addr) bool {
	h := (uint64(ip) >> 2) * 0x9e3779b97f4a7c15
	d.cur |= 1 << (h >> 58)
	d.count++
	w := d.window
	if w == 0 {
		w = phaseWindow
	}
	if d.count < w {
		return false
	}
	changed := false
	if d.hasPrev {
		inter := popcount64(d.cur & d.prev)
		union := popcount64(d.cur | d.prev)
		changed = union > 0 && inter*2 < union
	}
	d.prev = d.cur
	d.cur = 0
	d.count = 0
	d.hasPrev = true
	return changed
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

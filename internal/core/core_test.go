package core

import (
	"testing"
	"testing/quick"

	"secpref/internal/mem"
	"secpref/internal/prefetch"
)

func TestSUFDecisionTable(t *testing.T) {
	s := &SUF{}
	cases := []struct {
		hl   mem.Level
		drop bool
		wbb  uint8
	}{
		{mem.LvlL1D, true, 0},    // data already at L1D: drop everything
		{mem.LvlL2, false, 0b00}, // write to L1D, stop there
		{mem.LvlLLC, false, 0b01},
		{mem.LvlDRAM, false, 0b11},
	}
	for _, c := range cases {
		drop, wbb := s.OnCommit(1, c.hl)
		if drop != c.drop || wbb != c.wbb {
			t.Errorf("OnCommit(hl=%v) = (%v,%#b), want (%v,%#b)", c.hl, drop, wbb, c.drop, c.wbb)
		}
	}
	if s.Drops != 1 || s.TrimmedPropagations != 2 || s.FullUpdates != 1 {
		t.Errorf("counters: drops=%d trims=%d full=%d", s.Drops, s.TrimmedPropagations, s.FullUpdates)
	}
}

func TestSUFStorageBudget(t *testing.T) {
	s := &SUF{}
	// Paper §IV: 0.12 KB.
	if got := s.StorageBytes(); got != 128 {
		t.Errorf("StorageBytes = %d, want 128 (0.12 KB)", got)
	}
}

func TestXLQRoundTrip(t *testing.T) {
	x := &XLQ{}
	x.Record(5, 1000, false, 0)
	x.SetLatency(5, 77)
	access, lat, hitp, ok := x.Read(5, 1300)
	if !ok || hitp {
		t.Fatalf("Read: ok=%v hitp=%v", ok, hitp)
	}
	if access != 1000 || lat != 77 {
		t.Errorf("access=%d lat=%d, want 1000/77", access, lat)
	}
	x.Release(5)
	if _, _, _, ok := x.Read(5, 1400); ok {
		t.Error("entry survived Release")
	}
}

func TestXLQHitpCarriesStoredLatency(t *testing.T) {
	x := &XLQ{}
	x.Record(9, 2000, true, 123)
	_, lat, hitp, ok := x.Read(9, 2100)
	if !ok || !hitp || lat != 123 {
		t.Errorf("hitp entry: ok=%v hitp=%v lat=%d", ok, hitp, lat)
	}
}

func TestXLQTimestampWraparound(t *testing.T) {
	// The 16-bit timestamp must reconstruct correctly across the wrap
	// as long as commit follows access within 2^16 cycles.
	f := func(accessRaw uint32, delayRaw uint16) bool {
		access := mem.Cycle(accessRaw)
		commit := access + mem.Cycle(delayRaw)
		x := &XLQ{}
		x.Record(0, access, false, 0)
		got, _, _, ok := x.Read(0, commit)
		return ok && got == access
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXLQFlush(t *testing.T) {
	x := &XLQ{}
	for i := 0; i < 128; i++ {
		x.Record(i, mem.Cycle(i), false, 0)
	}
	x.Flush()
	for i := 0; i < 128; i++ {
		if _, _, _, ok := x.Read(i, 1000); ok {
			t.Fatalf("entry %d survived Flush (domain-switch leak)", i)
		}
	}
}

func TestXLQStorageBudget(t *testing.T) {
	x := &XLQ{}
	// Paper §V-C: 0.47 KB.
	if got := x.StorageBytes(); got != 480 {
		t.Errorf("StorageBytes = %d, want 480 (0.47 KB)", got)
	}
}

// tunable is a DistanceTunable stub.
type tunable struct {
	prefetch.None
	d int
}

func (s *tunable) Distance() int     { return s.d }
func (s *tunable) SetDistance(d int) { s.d = clamp(d, 1, 8) }
func (s *tunable) BaseDistance() int { return 1 }
func (s *tunable) MaxDistance() int  { return 8 }

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func TestLatenessMonitorRaisesDistance(t *testing.T) {
	pf := &tunable{d: 1}
	var late, useful uint64
	m := NewLatenessMonitor(pf, DefaultLateness, 0, func() (uint64, uint64) { return late, useful })
	interval := IntervalFor(pf.Home())
	// Three intervals with rising lateness: interval 1 ratio 0.2,
	// interval 2 ratio 0.4, interval 3 ratio 0.6. The increment fires
	// after the second consecutive rise (end of interval 3).
	ratios := []float64{0.2, 0.4, 0.6}
	for _, ratio := range ratios {
		useful += 100
		late += uint64(100 * ratio)
		for i := uint64(0); i < interval; i++ {
			m.OnMiss(mem.Addr(0x400 + 4*(i%32))) // stable PC set: no phase change
		}
	}
	if pf.d != 2 {
		t.Errorf("distance = %d after two rising intervals, want 2", pf.d)
	}
	if m.Adaptations != 1 {
		t.Errorf("Adaptations = %d", m.Adaptations)
	}
}

func TestLatenessMonitorStableLatenessHolds(t *testing.T) {
	pf := &tunable{d: 1}
	var late, useful uint64
	m := NewLatenessMonitor(pf, DefaultLateness, 0, func() (uint64, uint64) { return late, useful })
	interval := IntervalFor(pf.Home())
	for k := 0; k < 5; k++ {
		useful += 100
		late += 30 // constant ratio 0.3 > threshold but not rising
		for i := uint64(0); i < interval; i++ {
			m.OnMiss(mem.Addr(0x400 + 4*(i%32)))
		}
	}
	if pf.d != 1 {
		t.Errorf("distance = %d under steady lateness, want 1 (needs two RISING intervals)", pf.d)
	}
}

func TestPhaseChangeResetsDistance(t *testing.T) {
	pf := &tunable{d: 5}
	m := NewLatenessMonitor(pf, DefaultLateness, 0, func() (uint64, uint64) { return 0, 0 })
	// Window 1: PC set A. Window 2: disjoint PC set B -> phase change.
	for i := 0; i < phaseWindow; i++ {
		m.OnMiss(mem.Addr(0x1000 + 4*(i%16)))
	}
	for i := 0; i < phaseWindow+1; i++ {
		m.OnMiss(mem.Addr(0x9_0000 + 4*(i%16)))
	}
	if pf.d != 1 {
		t.Errorf("distance = %d after phase change, want reset to 1", pf.d)
	}
	if m.Resets == 0 {
		t.Error("no reset recorded")
	}
}

func TestIntervalFor(t *testing.T) {
	if IntervalFor(mem.LvlL1D) != 512 {
		t.Errorf("L1D interval = %d, want 512", IntervalFor(mem.LvlL1D))
	}
	if IntervalFor(mem.LvlL2) != 4096 {
		t.Errorf("L2 interval = %d, want 4096", IntervalFor(mem.LvlL2))
	}
}

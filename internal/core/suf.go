// Package core implements the paper's two contributions and the
// machinery they share:
//
//   - The Secure Update Filter (SUF, §IV): a 0.12 KB filter that drops
//     or trims GhostMinion's on-commit hierarchy updates using the
//     2-bit hit level recorded in the load queue when the speculative
//     load was served.
//   - The X-LQ (§V-C): the 0.47 KB load-queue extension that carries
//     each load's access timestamp and true fetch latency to the GM
//     from the speculative phase to commit, enabling TSB's timely
//     training.
//   - The timeliness machinery for non-self-timing prefetchers (§V-D):
//     a prefetch-lateness monitor with hysteresis driving an adaptive
//     prefetch distance, and a phase-change detector that resets the
//     distance on application phase changes.
package core

import (
	"secpref/internal/mem"
)

// SUF is the Secure Update Filter. It implements ghostminion.Filter.
//
// At commit, the 2-bit hit level of the load decides the update:
//
//	L1D  -> drop entirely (both the re-fetch and the commit write)
//	L2   -> write GM->L1D, no propagation on eviction
//	LLC  -> write GM->L1D, propagate L1D->L2, stop there
//	DRAM -> write GM->L1D, propagate L1D->L2->LLC (full update)
//
// Storage: 2 bits x 128 LQ entries + 1 L2-writeback bit x 768 L1D
// lines = 0.12 KB.
type SUF struct {
	// Drops and TrimmedPropagations count filtering activity.
	Drops               uint64
	TrimmedPropagations uint64
	FullUpdates         uint64
}

// OnCommit implements ghostminion.Filter.
func (s *SUF) OnCommit(_ mem.Line, hitLevel mem.Level) (drop bool, wbBits uint8) {
	switch hitLevel {
	case mem.LvlL1D:
		s.Drops++
		return true, 0
	case mem.LvlL2:
		s.TrimmedPropagations++
		return false, 0b00
	case mem.LvlLLC:
		s.TrimmedPropagations++
		return false, 0b01
	default: // DRAM
		s.FullUpdates++
		return false, 0b11
	}
}

// StorageBytes reports the SUF hardware budget (§IV: 0.12 KB).
func (s *SUF) StorageBytes() int {
	// 128 LQ entries x 2 bits + 768 L1D lines x 1 bit.
	return (128*2 + 768) / 8
}

package event

import (
	"math/rand"
	"testing"

	"secpref/internal/mem"
)

func TestOrdering(t *testing.T) {
	q := New(4)
	q.Schedule(0, 30)
	q.Schedule(1, 10)
	q.Schedule(2, 20)
	q.Schedule(3, 5)
	if got := q.Next(); got != 5 {
		t.Fatalf("Next() = %d, want 5", got)
	}
	var order []int
	for q.Next() != mem.NoEvent {
		order = q.PopDue(q.Next(), order)
	}
	want := []int{3, 1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
	if got := q.Next(); got != mem.NoEvent {
		t.Fatalf("drained queue Next() = %d, want NoEvent", got)
	}
}

func TestTieBreakByRank(t *testing.T) {
	// Duplicate timestamps must pop in ascending rank order regardless
	// of scheduling order: this is what pins the engine's tick order.
	q := New(5)
	q.Schedule(3, 100)
	q.Schedule(0, 100)
	q.Schedule(4, 100)
	q.Schedule(1, 100)
	q.Schedule(2, 100)
	got := q.PopDue(100, nil)
	want := []int{0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("PopDue = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PopDue = %v, want %v", got, want)
		}
	}
}

func TestCancelReschedule(t *testing.T) {
	q := New(3)
	q.Schedule(0, 10)
	q.Schedule(1, 20)
	q.Cancel(0)
	if got := q.Next(); got != 20 {
		t.Fatalf("after cancel, Next() = %d, want 20", got)
	}
	if got := q.At(0); got != mem.NoEvent {
		t.Fatalf("canceled rank At() = %d, want NoEvent", got)
	}
	// Reschedule both earlier and later than the live entry.
	q.Schedule(1, 5)
	if got := q.Next(); got != 5 {
		t.Fatalf("after earlier reschedule, Next() = %d, want 5", got)
	}
	q.Schedule(1, 50)
	if got := q.Next(); got != 50 {
		t.Fatalf("after later reschedule, Next() = %d, want 50", got)
	}
	// Schedule(NoEvent) is Cancel.
	q.Schedule(1, mem.NoEvent)
	if got := q.Next(); got != mem.NoEvent {
		t.Fatalf("after Schedule(NoEvent), Next() = %d, want NoEvent", got)
	}
	// A drained rank can be scheduled again.
	q.Schedule(2, 7)
	if got := q.PopDue(7, nil); len(got) != 1 || got[0] != 2 {
		t.Fatalf("PopDue = %v, want [2]", got)
	}
}

// naiveCalendar is an independent model: a plain per-rank table whose
// pop is a literal "find minimum, prefer lowest rank" loop written the
// obvious way. The fuzz test drives Queue and the model with the same
// random schedule/cancel/pop mix and demands identical observations.
type naiveCalendar struct {
	at []mem.Cycle
}

func newNaive(ranks int) *naiveCalendar {
	n := &naiveCalendar{at: make([]mem.Cycle, ranks)}
	for i := range n.at {
		n.at[i] = mem.NoEvent
	}
	return n
}

func (n *naiveCalendar) next() mem.Cycle {
	best := mem.NoEvent
	for _, at := range n.at {
		if at < best {
			best = at
		}
	}
	return best
}

func (n *naiveCalendar) popDue(now mem.Cycle) []int {
	var out []int
	for {
		best, bestAt := -1, mem.NoEvent
		for r := len(n.at) - 1; r >= 0; r-- { // reverse scan, <= compare:
			if n.at[r] <= now && n.at[r] <= bestAt { // same result, different walk
				best, bestAt = r, n.at[r]
			}
		}
		if best < 0 {
			return out
		}
		n.at[best] = mem.NoEvent
		out = append(out, best)
	}
}

func TestFuzzVsNaiveMinScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		ranks := 2 + rng.Intn(8)
		q := New(ranks)
		model := newNaive(ranks)
		now := mem.Cycle(0)
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule a random rank at a future cycle
				r := rng.Intn(ranks)
				at := now + 1 + mem.Cycle(rng.Intn(40))
				q.Schedule(r, at)
				model.at[r] = at
			case 2: // cancel a random rank
				r := rng.Intn(ranks)
				q.Cancel(r)
				model.at[r] = mem.NoEvent
			case 3: // advance to the next wake and pop everything due
				next := q.Next()
				if want := model.next(); next != want {
					t.Fatalf("trial %d op %d: Next() = %d, model = %d", trial, op, next, want)
				}
				if next == mem.NoEvent {
					continue
				}
				now = next
				got := q.PopDue(now, nil)
				want := model.popDue(now)
				if len(got) != len(want) {
					t.Fatalf("trial %d op %d: PopDue = %v, model = %v", trial, op, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d op %d: PopDue = %v, model = %v", trial, op, got, want)
					}
				}
			}
			// Per-rank schedules must agree at every step.
			for r := 0; r < ranks; r++ {
				if q.At(r) != model.at[r] {
					t.Fatalf("trial %d op %d: At(%d) = %d, model = %d", trial, op, r, q.At(r), model.at[r])
				}
			}
		}
	}
}

// Package event provides the calendar queue at the heart of the
// discrete-event simulation core: a monotonic priority queue of
// per-component wakeups keyed by (cycle, rank).
//
// Each rank is a component's fixed position in the machine's tick
// order (core < GM < L1D < L2 < LLC < DRAM) and has at most one live
// scheduled wake. Ties at the same cycle pop in ascending rank order,
// which is what keeps the event-driven engine's tick order — and
// therefore every campaign byte — deterministic: two components due on
// the same cycle always tick in the same order the lockstep engine
// ticked them.
//
// The implementation is deliberately not a binary heap. The machine
// has six ranks, and the common case is several ranks rescheduling to
// now+1 every cycle; a heap pays push/sift/stale-pop churn per
// reschedule, while a linear min-scan over the per-rank table is six
// predictable compares with no bookkeeping. (Profiling the bench
// scenario showed the heap variant spending ~8% of the whole run on
// heap maintenance.) The priority-queue *semantics* — earliest cycle
// first, rank-order tie-break, reschedule/cancel — are what the engine
// and the tests pin down; O(n) per operation is the right constant for
// n = 6.
package event

import "secpref/internal/mem"

// Queue is the calendar. The zero value is not usable; call New.
type Queue struct {
	at []mem.Cycle // per-rank scheduled wake; mem.NoEvent = unscheduled
}

// New returns a queue for ranks components, all initially unscheduled.
func New(ranks int) *Queue {
	q := &Queue{at: make([]mem.Cycle, ranks)}
	for i := range q.at {
		q.at[i] = mem.NoEvent
	}
	return q
}

// Ranks returns the number of ranks the queue was built for.
func (q *Queue) Ranks() int { return len(q.at) }

// At returns rank's currently scheduled wake cycle, or mem.NoEvent.
func (q *Queue) At(rank int) mem.Cycle { return q.at[rank] }

// Schedule sets rank's wake cycle, replacing any existing schedule.
// Scheduling mem.NoEvent is equivalent to Cancel.
func (q *Queue) Schedule(rank int, at mem.Cycle) { q.at[rank] = at }

// Cancel unschedules rank.
func (q *Queue) Cancel(rank int) { q.at[rank] = mem.NoEvent }

// Next returns the earliest scheduled wake cycle across all ranks, or
// mem.NoEvent when nothing is scheduled.
func (q *Queue) Next() mem.Cycle {
	next := mem.NoEvent
	for _, at := range q.at {
		if at < next {
			next = at
		}
	}
	return next
}

// PopDue unschedules and appends to dst every rank whose wake is at or
// before now, in ascending (cycle, rank) order, and returns dst.
func (q *Queue) PopDue(now mem.Cycle, dst []int) []int {
	for {
		// Strict < while scanning in rank order yields the lowest rank
		// among ties — the deterministic tie-break.
		best, bestAt := -1, mem.NoEvent
		for r, at := range q.at {
			if at <= now && at < bestAt {
				best, bestAt = r, at
			}
		}
		if best < 0 {
			return dst
		}
		q.at[best] = mem.NoEvent
		dst = append(dst, best)
	}
}

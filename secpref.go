// Package secpref is a cycle-level simulation library reproducing
// "Secure Prefetching for Secure Cache Systems" (MICRO 2024): the
// GhostMinion secure cache system, five state-of-the-art hardware data
// prefetchers (IP-stride, IPCP, Bingo, SPP+PPF, Berti), and the paper's
// contributions — the Secure Update Filter (SUF) and the Timely Secure
// Berti (TSB) prefetcher with timely-secure (TS) variants of the
// others.
//
// The library is organized around three entry points:
//
//   - Run simulates one workload on one configured system and returns
//     detailed statistics (IPC, per-level traffic and latency, prefetch
//     accuracy, miss classification, energy).
//   - RunMix simulates a multi-programmed mix on a multi-core system
//     with a shared LLC.
//   - The Attack functions demonstrate the threat model: Spectre-style
//     transient leaks through the cache and through a speculatively
//     trained prefetcher, and their mitigation.
//
// Workloads are deterministic synthetic traces named after the SPEC
// CPU2017 / GAP traces of the paper's evaluation; see Workloads.
//
// A minimal session:
//
//	cfg := secpref.DefaultConfig()
//	cfg.Secure = true
//	cfg.SUF = true
//	cfg.Prefetcher = "berti"
//	cfg.Mode = secpref.ModeTimelySecure // TSB
//	res, err := secpref.Run(cfg, "605.mcf-1554B", secpref.DefaultWorkloadParams())
package secpref

import (
	"fmt"

	"secpref/internal/attack"
	"secpref/internal/mem"
	"secpref/internal/multicore"
	"secpref/internal/prefetch"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// Config describes one simulated system; see the field documentation in
// the underlying type. Zero values are not useful — start from
// DefaultConfig.
type Config = sim.Config

// Result is the measured outcome of one simulation.
type Result = sim.Result

// Mode selects when the prefetcher trains and triggers prefetches.
type Mode = sim.Mode

// Prefetcher training/trigger modes.
const (
	// ModeOnAccess is conventional (insecure) prefetching.
	ModeOnAccess = sim.ModeOnAccess
	// ModeOnCommit is secure but timeliness-impaired prefetching.
	ModeOnCommit = sim.ModeOnCommit
	// ModeTimelySecure is the paper's contribution: TSB for Berti,
	// lateness-adaptive distance for the other prefetchers.
	ModeTimelySecure = sim.ModeTimelySecure
)

// Cycle is a simulation timestamp in core clock cycles.
type Cycle = mem.Cycle

// WorkloadParams sizes trace generation.
type WorkloadParams = workload.Params

// DefaultConfig returns the paper's Table II single-core baseline.
func DefaultConfig() Config { return sim.DefaultConfig() }

// DefaultWorkloadParams returns the harness defaults (200k instructions,
// seed 1).
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// Prefetchers lists the available prefetcher names.
func Prefetchers() []string { return prefetch.Names() }

// Workloads lists the available trace names (45 SPEC-like + 20
// GAP-like, as in the paper's evaluation).
func Workloads() []string { return workload.Names() }

// WorkloadSuite lists the trace names of one suite ("spec" or "gap").
func WorkloadSuite(suite string) []string {
	gens := workload.Suite(suite)
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// Run simulates the named workload on the configured system.
func Run(cfg Config, traceName string, p WorkloadParams) (*Result, error) {
	tr, err := workload.Get(traceName, p)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg, trace.NewSource(tr))
}

// RunTrace simulates a caller-provided trace (e.g. one loaded with
// LoadTrace) on the configured system.
func RunTrace(cfg Config, t *Trace) (*Result, error) {
	return sim.Run(cfg, trace.NewSource(t))
}

// Probes configures observability attachments for a probed run: a
// fine-grained event observer (e.g. a request-lifecycle tracer) and an
// interval window observer (e.g. a time-series sampler). Attached
// observers never change the simulated outcome. See internal/probe and
// docs/observability.md.
type Probes = sim.Probes

// RunProbed simulates the named workload with observers attached.
func RunProbed(cfg Config, traceName string, p WorkloadParams, pr Probes) (*Result, error) {
	tr, err := workload.Get(traceName, p)
	if err != nil {
		return nil, err
	}
	return sim.RunProbed(cfg, trace.NewSource(tr), pr)
}

// RunTraceProbed simulates a caller-provided trace with observers
// attached.
func RunTraceProbed(cfg Config, t *Trace, pr Probes) (*Result, error) {
	return sim.RunProbed(cfg, trace.NewSource(t), pr)
}

// Trace is an in-memory instruction trace.
type Trace = trace.Trace

// GenerateTrace builds the named synthetic workload trace.
func GenerateTrace(name string, p WorkloadParams) (*Trace, error) {
	return workload.Get(name, p)
}

// MixResult aggregates per-core results of a multi-core run.
type MixResult = multicore.Result

// RunMix simulates a multi-programmed mix: one trace name per core,
// sharing the LLC and DRAM channel (the paper's 4-core system).
func RunMix(cfg Config, traceNames []string, p WorkloadParams) (*MixResult, error) {
	if len(traceNames) == 0 {
		return nil, fmt.Errorf("secpref: empty mix")
	}
	mc := multicore.Config{Single: cfg, Cores: len(traceNames)}
	mix := make([]trace.Source, len(traceNames))
	for i, name := range traceNames {
		tr, err := workload.Get(name, p)
		if err != nil {
			return nil, err
		}
		mix[i] = trace.NewSource(tr)
	}
	return multicore.Run(mc, mix)
}

// AttackConfig selects the system under attack.
type AttackConfig = attack.Config

// AttackOutcome reports one attack attempt.
type AttackOutcome = attack.Outcome

// SpectreCacheLeak mounts the classic transient cache leak; see
// internal/attack for the scenario.
func SpectreCacheLeak(cfg AttackConfig, secret int) (AttackOutcome, error) {
	return attack.SpectreCacheLeak(cfg, secret)
}

// SpectrePrefetchLeak mounts the prefetcher-channel transient leak the
// paper's on-commit prefetching defeats.
func SpectrePrefetchLeak(cfg AttackConfig, secret int) (AttackOutcome, error) {
	return attack.SpectrePrefetchLeak(cfg, secret)
}

// PrefetcherAccuracy returns the prefetch accuracy of a result for the
// named prefetcher, aggregating fills from its home level down (L1D for
// ip-stride/ipcp/berti, L2 for bingo/spp-ppf).
func PrefetcherAccuracy(res *Result, prefetcher string) float64 {
	home := mem.LvlL1D
	if prefetcher == "bingo" || prefetcher == "spp-ppf" {
		home = mem.LvlL2
	}
	return res.PrefAccuracy(home)
}

// Classify demo: reproduces the paper's Fig. 6 analysis for one
// workload — the demand-miss taxonomy that motivates timely secure
// prefetching. A shadow on-access prefetcher runs alongside the real
// on-commit one; misses the shadow would have covered but the real
// prefetcher requested only after the miss are "commit-late" (the
// paper's new class), and misses the commit-order training lost
// entirely are "missed opportunities".
package main

import (
	"fmt"
	"log"

	"secpref"
)

func main() {
	const traceName = "603.bwa-2931B"
	params := secpref.WorkloadParams{Instrs: 150_000, Seed: 1}

	for _, mode := range []struct {
		name string
		m    secpref.Mode
	}{
		{"on-access", secpref.ModeOnAccess},
		{"on-commit", secpref.ModeOnCommit},
		{"timely-secure (TSB)", secpref.ModeTimelySecure},
	} {
		cfg := secpref.DefaultConfig()
		cfg.WarmupInstrs = 25_000
		cfg.MaxInstrs = 120_000
		cfg.Secure = true
		cfg.Prefetcher = "berti"
		cfg.Mode = mode.m
		cfg.Classify = true
		res, err := secpref.Run(cfg, traceName, params)
		if err != nil {
			log.Fatal(err)
		}
		ki := float64(res.Instructions) / 1000
		c := res.Class
		fmt.Printf("%-20s MPKI: uncovered %.2f, missed-opp %.2f, late %.2f, commit-late %.2f (total %.2f)\n",
			mode.name,
			float64(c.Uncovered)/ki, float64(c.MissedOpp)/ki,
			float64(c.Late)/ki, float64(c.CommitLate)/ki, float64(c.TotalMisses)/ki)
	}
	fmt.Println("\ncommit-late misses exist only for commit-triggered prefetching;")
	fmt.Println("TSB's timely training converts them back into covered lines.")
}

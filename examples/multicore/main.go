// Multicore demo: runs a heterogeneous 4-core mix — the paper's §VII-B
// setting — under the non-secure baseline, plain GhostMinion, and
// GhostMinion + TSB + SUF, and reports per-core IPC and normalized
// weighted speedup.
package main

import (
	"fmt"
	"log"

	"secpref"
)

func main() {
	mix := []string{"605.mcf-1554B", "603.bwa-2931B", "bfs-3B", "602.gcc-1850B"}
	params := secpref.WorkloadParams{Instrs: 120_000, Seed: 1}

	run := func(name string, mut func(*secpref.Config)) *secpref.MixResult {
		cfg := secpref.DefaultConfig()
		cfg.WarmupInstrs = 10_000
		cfg.MaxInstrs = 60_000
		mut(&cfg)
		res, err := secpref.RunMix(cfg, mix, params)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-28s", name)
		for i, rc := range res.PerCore {
			fmt.Printf("  core%d %.3f", i, rc.IPC)
		}
		fmt.Println()
		return res
	}

	fmt.Println("mix:", mix)
	base := run("non-secure, no prefetch", func(c *secpref.Config) {})
	gm := run("GhostMinion, no prefetch", func(c *secpref.Config) { c.Secure = true })
	best := run("GhostMinion + TSB + SUF", func(c *secpref.Config) {
		c.Secure = true
		c.SUF = true
		c.Prefetcher = "berti"
		c.Mode = secpref.ModeTimelySecure
	})

	ws := func(r *secpref.MixResult) float64 {
		s := 0.0
		for i := range r.PerCore {
			s += r.PerCore[i].IPC / base.PerCore[i].IPC
		}
		return s / float64(len(r.PerCore))
	}
	fmt.Printf("\nnormalized weighted speedup: GhostMinion %.3f, GhostMinion+TSB+SUF %.3f\n", ws(gm), ws(best))
	fmt.Println("(multi-core magnifies the secure system's traffic cost — and the filter's benefit)")
}

// Spectre demo: mounts the two transient-execution attacks of the
// paper's threat model against four system configurations and reports
// which leak.
//
//  1. The classic cache-channel leak: a squashed victim load touches a
//     secret-indexed probe line; the attacker times the probe array.
//  2. The prefetcher channel (MuonTrap/GhostMinion motivation): the
//     squashed victim loads form a secret-valued stride; an on-access
//     prefetcher extends the pattern into the cache even though the
//     transient fills themselves were invisible.
package main

import (
	"fmt"
	"log"

	"secpref"
)

func main() {
	const secret = 7

	fmt.Println("--- attack 1: transient cache channel ---")
	for _, sys := range []struct {
		name string
		cfg  secpref.AttackConfig
	}{
		{"non-secure cache", secpref.AttackConfig{}},
		{"GhostMinion", secpref.AttackConfig{Secure: true}},
	} {
		o, err := secpref.SpectreCacheLeak(sys.cfg, secret)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %v\n", sys.name, o)
	}

	fmt.Println("\n--- attack 2: transient prefetcher channel ---")
	for _, sys := range []struct {
		name string
		cfg  secpref.AttackConfig
	}{
		{"GhostMinion + on-access ip-stride", secpref.AttackConfig{Secure: true, Prefetcher: "ip-stride"}},
		{"GhostMinion + on-commit ip-stride", secpref.AttackConfig{Secure: true, Prefetcher: "ip-stride", OnCommitPrefetch: true}},
	} {
		o, err := secpref.SpectrePrefetchLeak(sys.cfg, secret)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %v\n", sys.name, o)
	}

	fmt.Println("\nOn-commit prefetching (and hence TSB) closes the prefetcher channel:")
	fmt.Println("the prefetcher is never trained on transient loads, so no secret-")
	fmt.Println("dependent state reaches the cache hierarchy.")
}

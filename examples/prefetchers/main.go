// Prefetcher bake-off: runs all five prefetchers in their timely-secure
// form (with SUF) on a streaming and a graph workload and compares
// speedup, accuracy, and adaptive-distance behaviour — the paper's
// §V-D machinery at work.
package main

import (
	"fmt"
	"log"

	"secpref"
)

func main() {
	params := secpref.WorkloadParams{Instrs: 150_000, Seed: 1}
	for _, traceName := range []string{"603.bwa-2931B", "bfs-3B"} {
		fmt.Printf("=== %s ===\n", traceName)

		base := secpref.DefaultConfig()
		base.WarmupInstrs = 25_000
		base.MaxInstrs = 120_000
		baseRes, err := secpref.Run(base, traceName, params)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-10s %8s %10s %10s %9s\n", "prefetcher", "speedup", "accuracy%", "final-dist", "resets")
		for _, pf := range secpref.Prefetchers() {
			cfg := base
			cfg.Secure = true
			cfg.SUF = true
			cfg.Prefetcher = pf
			cfg.Mode = secpref.ModeTimelySecure
			res, err := secpref.Run(cfg, traceName, params)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %8.3f %10.1f %10d %9d\n",
				pf, res.IPC/baseRes.IPC, secpref.PrefetcherAccuracy(res, pf)*100, res.FinalDistance, res.PhaseResets)
		}
		fmt.Println()
	}
}

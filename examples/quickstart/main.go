// Quickstart: simulate one workload on four systems — the non-secure
// baseline, plain GhostMinion, GhostMinion with an on-commit Berti
// prefetcher, and the paper's full proposal (TSB + SUF) — and compare.
package main

import (
	"fmt"
	"log"

	"secpref"
)

func main() {
	const traceName = "605.mcf-1554B"
	params := secpref.WorkloadParams{Instrs: 250_000, Seed: 1}

	configs := []struct {
		name string
		mut  func(*secpref.Config)
	}{
		{"non-secure baseline", func(c *secpref.Config) {}},
		{"GhostMinion", func(c *secpref.Config) { c.Secure = true }},
		{"GhostMinion + on-commit Berti", func(c *secpref.Config) {
			c.Secure = true
			c.Prefetcher = "berti"
			c.Mode = secpref.ModeOnCommit
		}},
		{"GhostMinion + TSB + SUF (paper)", func(c *secpref.Config) {
			c.Secure = true
			c.SUF = true
			c.Prefetcher = "berti"
			c.Mode = secpref.ModeTimelySecure
		}},
	}

	var baseIPC float64
	fmt.Printf("workload: %s (%d instructions)\n\n", traceName, params.Instrs)
	for i, cc := range configs {
		cfg := secpref.DefaultConfig()
		cfg.WarmupInstrs = 50_000
		cfg.MaxInstrs = 200_000
		cc.mut(&cfg)
		res, err := secpref.Run(cfg, traceName, params)
		if err != nil {
			log.Fatalf("%s: %v", cc.name, err)
		}
		if i == 0 {
			baseIPC = res.IPC
		}
		fmt.Printf("%-32s IPC %.4f  speedup %.3f  load-miss-latency %.1f cycles\n",
			cc.name, res.IPC, res.IPC/baseIPC, res.LoadMissLatency())
	}
	fmt.Println("\nThe paper's proposal recovers most of the secure system's loss:")
	fmt.Println("TSB fixes on-commit prefetch timeliness; SUF removes redundant commit traffic.")
}

package secpref_test

import (
	"testing"

	"secpref"
)

func TestWorkloadCatalog(t *testing.T) {
	all := secpref.Workloads()
	if len(all) != 65 {
		t.Errorf("%d workloads, want 65", len(all))
	}
	if len(secpref.WorkloadSuite("spec")) != 45 {
		t.Error("spec suite size wrong")
	}
	if len(secpref.WorkloadSuite("gap")) != 20 {
		t.Error("gap suite size wrong")
	}
	if len(secpref.Prefetchers()) != 5 {
		t.Errorf("prefetchers: %v", secpref.Prefetchers())
	}
}

func TestRunEndToEnd(t *testing.T) {
	cfg := secpref.DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 15_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = secpref.ModeTimelySecure
	res, err := secpref.Run(cfg, "602.gcc-1850B", secpref.WorkloadParams{Instrs: 17_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions < 15_000 || res.IPC <= 0 {
		t.Fatalf("bad result: instrs=%d ipc=%f", res.Instructions, res.IPC)
	}
}

func TestRunUnknownTrace(t *testing.T) {
	cfg := secpref.DefaultConfig()
	if _, err := secpref.Run(cfg, "not-a-trace", secpref.DefaultWorkloadParams()); err == nil {
		t.Fatal("expected unknown-trace error")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	cfg := secpref.DefaultConfig()
	cfg.SUF = true // without Secure: contradiction
	if _, err := secpref.Run(cfg, "602.gcc-1850B", secpref.DefaultWorkloadParams()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := secpref.DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 8000
	p := secpref.WorkloadParams{Instrs: 9000, Seed: 5}
	a, err := secpref.Run(cfg, "641.leela-1083B", p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := secpref.Run(cfg, "641.leela-1083B", p)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.IPC != b.IPC {
		t.Errorf("simulation not deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestGenerateTraceAndRunTrace(t *testing.T) {
	tr, err := secpref.GenerateTrace("657.xz-2302B", secpref.WorkloadParams{Instrs: 9000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := secpref.DefaultConfig()
	cfg.WarmupInstrs = 1000
	cfg.MaxInstrs = 8000
	res, err := secpref.RunTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceName != "657.xz-2302B" {
		t.Errorf("trace name %q", res.TraceName)
	}
}

func TestRunMix(t *testing.T) {
	cfg := secpref.DefaultConfig()
	cfg.WarmupInstrs = 500
	cfg.MaxInstrs = 5000
	res, err := secpref.RunMix(cfg, []string{"641.leela-1083B", "657.xz-2302B"}, secpref.WorkloadParams{Instrs: 6000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCore) != 2 {
		t.Fatalf("%d cores", len(res.PerCore))
	}
	if _, err := secpref.RunMix(cfg, nil, secpref.DefaultWorkloadParams()); err == nil {
		t.Fatal("expected empty-mix error")
	}
}

func TestAttackAPI(t *testing.T) {
	o, err := secpref.SpectreCacheLeak(secpref.AttackConfig{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Leaked {
		t.Error("non-secure system should leak")
	}
	o, err = secpref.SpectrePrefetchLeak(secpref.AttackConfig{Secure: true, Prefetcher: "ip-stride", OnCommitPrefetch: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if o.Leaked {
		t.Error("on-commit prefetching should not leak")
	}
}

func TestPrefetcherAccuracyHelper(t *testing.T) {
	cfg := secpref.DefaultConfig()
	cfg.WarmupInstrs = 2000
	cfg.MaxInstrs = 20_000
	cfg.Prefetcher = "ip-stride"
	res, err := secpref.Run(cfg, "619.lbm-2676B", secpref.WorkloadParams{Instrs: 22_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	acc := secpref.PrefetcherAccuracy(res, "ip-stride")
	if acc < 0 || acc > 1.5 {
		t.Errorf("implausible accuracy %f", acc)
	}
}

// Command bench measures the simulator's hot-path throughput and emits
// (or checks) a machine-readable baseline, so performance regressions
// fail loudly instead of rotting silently.
//
// The scenario mirrors BenchmarkSimulatorThroughput: the full secure
// single-core system (GhostMinion + TSB + SUF + Berti) over 50k
// instructions of 602.gcc-1850B — the heaviest configuration the paper
// evaluates.
//
// Usage:
//
//	bench                     # print measurement as JSON to stdout
//	bench -runs 5             # 5 interleaved plain/probed pairs; best
//	                          # of each, median per-pair probe overhead
//	bench -update FILE        # rewrite FILE's "after" section in place
//	bench -check FILE -tol 25 # exit 1 if >tol% slower than FILE's "after"
//	bench -cpuprofile cpu.out # also write a CPU profile of the runs
//	bench -memprofile mem.out # also write an allocation profile
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"secpref/internal/probe"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// Measurement is one benchmark observation.
type Measurement struct {
	Date         string  `json:"date,omitempty"`
	GoVersion    string  `json:"go_version,omitempty"`
	NsPerOp      float64 `json:"ns_per_op"`
	InstrsPerSec float64 `json:"instrs_per_sec"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in before/after record (BENCH_baseline.json).
// Probed measures the same scenario with the observability layer
// attached (interval sampler + lifecycle tracer, campaign sizing);
// ProbeOverheadPct is its slowdown relative to After.
type Baseline struct {
	Benchmark        string      `json:"benchmark"`
	Scenario         string      `json:"scenario"`
	Before           Measurement `json:"before"`
	After            Measurement `json:"after"`
	Speedup          float64     `json:"speedup"`
	Probed           Measurement `json:"probed"`
	ProbeOverheadPct float64     `json:"probe_overhead_pct"`
}

const scenario = "602.gcc-1850B, 50k instrs, secure GhostMinion + TSB + SUF + Berti"

func measureOnce(probed bool) (Measurement, error) {
	tr, err := workload.Get("602.gcc-1850B", workload.Params{Instrs: 50_000, Seed: 1})
	if err != nil {
		return Measurement{}, err
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 50_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeTimelySecure

	var probes sim.Probes
	if probed {
		// Campaign-style attachments (cf. internal/experiments): every 32nd
		// load traced into an 8Ki ring, one sample per 1k instructions.
		probes = sim.Probes{
			Observer: probe.NewTracer(32, 1<<13),
			Window:   probe.NewIntervalSampler(52),
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := sim.RunProbed(cfg, trace.NewSource(tr), probes)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{
		Date:         time.Now().UTC().Format("2006-01-02"),
		GoVersion:    runtime.Version(),
		NsPerOp:      float64(elapsed.Nanoseconds()),
		InstrsPerSec: float64(res.Instructions) / elapsed.Seconds(),
		AllocsPerOp:  float64(ms1.Mallocs - ms0.Mallocs),
	}, nil
}

// median returns the middle value of xs (mean of the two middle values
// for even lengths). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// measure runs plain and probed back to back `runs` times and reports
// the best of each plus the median per-pair probe overhead. Pairing the
// two within each iteration cancels the drift (page cache, frequency
// scaling, heap shape) that made two sequential best-of-N batches
// report a negative overhead: the second batch always ran warmer.
func measure(runs int) (plain, probed Measurement, overheadPct float64, err error) {
	// One untimed warmup pair (page cache, branch predictors, heap shape).
	if _, err = measureOnce(false); err != nil {
		return
	}
	if _, err = measureOnce(true); err != nil {
		return
	}
	deltas := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		var m, p Measurement
		if m, err = measureOnce(false); err != nil {
			return
		}
		if p, err = measureOnce(true); err != nil {
			return
		}
		deltas = append(deltas, (p.NsPerOp/m.NsPerOp-1)*100)
		// Best time, minimum allocations: the sim's allocation count is
		// deterministic, and MemStats noise (background runtime goroutines)
		// only ever inflates it.
		if i == 0 {
			plain, probed = m, p
		}
		if m.NsPerOp < plain.NsPerOp {
			a := plain.AllocsPerOp
			plain = m
			plain.AllocsPerOp = a
		}
		if m.AllocsPerOp < plain.AllocsPerOp {
			plain.AllocsPerOp = m.AllocsPerOp
		}
		if p.NsPerOp < probed.NsPerOp {
			a := probed.AllocsPerOp
			probed = p
			probed.AllocsPerOp = a
		}
		if p.AllocsPerOp < probed.AllocsPerOp {
			probed.AllocsPerOp = p.AllocsPerOp
		}
	}
	return plain, probed, median(deltas), nil
}

func main() {
	runs := flag.Int("runs", 3, "measurement runs (best is reported)")
	update := flag.String("update", "", "baseline file whose 'after' section to rewrite")
	check := flag.String("check", "", "baseline file to compare against")
	tol := flag.Float64("tol", 25, "allowed slowdown vs baseline 'after', percent")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "bench: -runs must be at least 1")
		os.Exit(2)
	}

	// The profiles cover exactly what the measurement does: every timed
	// plain/probed pair (plus the warmup pair, which profiles the same
	// code). Profiling perturbs the timings slightly, so numbers from a
	// profiled run should not be fed to -update.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	m, mp, overhead, err := measure(*runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC() // flush accumulated allocation records
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	switch {
	case *update != "":
		var b Baseline
		if data, err := os.ReadFile(*update); err == nil {
			if err := json.Unmarshal(data, &b); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *update, err)
				os.Exit(1)
			}
		}
		b.Benchmark = "SimulatorThroughput"
		b.Scenario = scenario
		b.After = m
		b.Probed = mp
		if b.Before.NsPerOp > 0 {
			b.Speedup = b.Before.NsPerOp / b.After.NsPerOp
		}
		b.ProbeOverheadPct = overhead
		out, _ := json.MarshalIndent(&b, "", "  ")
		if err := os.WriteFile(*update, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("updated %s: %.1f ms/op, %.0f instrs/s, %.0fx vs before; probed %.1f ms/op (%.1f%% overhead)\n",
			*update, m.NsPerOp/1e6, m.InstrsPerSec, b.Speedup, mp.NsPerOp/1e6, b.ProbeOverheadPct)
	case *check != "":
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *check, err)
			os.Exit(1)
		}
		slowdown := (m.NsPerOp/b.After.NsPerOp - 1) * 100
		fmt.Printf("current: %.1f ms/op (%.0f instrs/s); baseline: %.1f ms/op; slowdown %.1f%% (tolerance %.0f%%)\n",
			m.NsPerOp/1e6, m.InstrsPerSec, b.After.NsPerOp/1e6, slowdown, *tol)
		fail := slowdown > *tol
		if b.Probed.NsPerOp > 0 {
			probedSlowdown := (mp.NsPerOp/b.Probed.NsPerOp - 1) * 100
			fmt.Printf("probed:  %.1f ms/op (%.0f instrs/s, %.0f allocs); baseline: %.1f ms/op; slowdown %.1f%%\n",
				mp.NsPerOp/1e6, mp.InstrsPerSec, mp.AllocsPerOp, b.Probed.NsPerOp/1e6, probedSlowdown)
			fail = fail || probedSlowdown > *tol
		}
		if fail {
			fmt.Fprintln(os.Stderr, "bench: performance regression beyond tolerance")
			os.Exit(1)
		}
	default:
		out, _ := json.MarshalIndent(&struct {
			Plain            Measurement `json:"plain"`
			Probed           Measurement `json:"probed"`
			ProbeOverheadPct float64     `json:"probe_overhead_pct"`
		}{m, mp, overhead}, "", "  ")
		fmt.Println(string(out))
	}
}

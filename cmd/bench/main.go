// Command bench measures the simulator's hot-path throughput and emits
// (or checks) a machine-readable baseline, so performance regressions
// fail loudly instead of rotting silently.
//
// The scenario mirrors BenchmarkSimulatorThroughput: the full secure
// single-core system (GhostMinion + TSB + SUF + Berti) over 50k
// instructions of 602.gcc-1850B — the heaviest configuration the paper
// evaluates.
//
// Usage:
//
//	bench                     # print measurement as JSON to stdout
//	bench -runs 5             # 5 interleaved plain/probed pairs; best
//	                          # of each, median per-pair probe overhead
//	bench -update FILE        # rewrite FILE's "after" section in place
//	bench -check FILE -tol 25 # exit 1 if >tol% slower than FILE's "after"
//	bench -history FILE       # append a JSONL record; exit 1 if >tol%
//	                          # slower than the median of the last 5
//	bench -cpuprofile cpu.out # also write a CPU profile of the runs
//	bench -memprofile mem.out # also write an allocation profile
//	bench -simprofile PATH    # also write the engine-attribution
//	                          # sim-profile table (PATH.json, PATH.csv)
//	                          # and fail if any single rank holds more
//	                          # than -max-tick-share of engine ticks
//
// -check additionally enforces allocs/op against the baseline record
// (-alloc-tol percent headroom): single-core against the "after"
// section, -multicore against both the lockstep and parallel records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"secpref/internal/multicore"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

// Measurement is one benchmark observation.
type Measurement struct {
	Date          string  `json:"date,omitempty"`
	GoVersion     string  `json:"go_version,omitempty"`
	EngineVersion string  `json:"engine_version,omitempty"`
	NsPerOp       float64 `json:"ns_per_op"`
	InstrsPerSec  float64 `json:"instrs_per_sec"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
}

// Baseline is the checked-in before/after record (BENCH_baseline.json).
// Probed measures the same scenario with the observability layer
// attached (interval sampler + lifecycle tracer, campaign sizing);
// ProbeOverheadPct is its slowdown relative to After.
type Baseline struct {
	Benchmark        string      `json:"benchmark"`
	Scenario         string      `json:"scenario"`
	Before           Measurement `json:"before"`
	After            Measurement `json:"after"`
	Speedup          float64     `json:"speedup"`
	Probed           Measurement `json:"probed"`
	ProbeOverheadPct float64     `json:"probe_overhead_pct"`
	// Multicore is the 4-core engine's section, written and checked by
	// the -multicore mode; single-core invocations leave it untouched.
	Multicore *MulticoreBaseline `json:"multicore,omitempty"`
}

const scenario = "602.gcc-1850B, 50k instrs, secure GhostMinion + TSB + SUF + Berti"

// MulticoreBaseline is the 4-core engine's before/after record inside
// BENCH_baseline.json: the serial lockstep reference versus the
// barrier-parallel engine over the same mix (bit-identical output, the
// measurement enforces it).
type MulticoreBaseline struct {
	Scenario string      `json:"scenario"`
	Lockstep Measurement `json:"lockstep"`
	Parallel Measurement `json:"parallel"`
	Speedup  float64     `json:"speedup"`
	// Observed is the parallel engine with the full observer complement
	// attached (interference observatory, per-core window samplers,
	// shared-domain tracer); ObserverOverheadPct is its slowdown
	// relative to Parallel.
	Observed            Measurement `json:"observed"`
	ObserverOverheadPct float64     `json:"observer_overhead_pct"`
}

// The bench scenario is rate mode (four copies of the memory-bound
// mcf trace, disjoint address spaces): every core spends most cycles
// waiting on the shared DRAM, which is both the contention case the
// paper's multi-core study is about and the one where the event
// engine's idle-skipping has cycles to reclaim. A compute-bound mix
// ticks every component every cycle on either engine.
const mcScenario = "4-core rate 605.mcf-1554B, 10k instrs/core, secure GhostMinion + TSB + SUF + Berti"

var mcTraces = []string{"605.mcf-1554B", "605.mcf-1554B", "605.mcf-1554B", "605.mcf-1554B"}

func multicoreConfig() multicore.Config {
	cfg := multicore.DefaultConfig()
	cfg.Single.WarmupInstrs = 2000
	cfg.Single.MaxInstrs = 10_000
	cfg.Single.Secure = true
	cfg.Single.SUF = true
	cfg.Single.Prefetcher = "berti"
	cfg.Single.Mode = sim.ModeTimelySecure
	return cfg
}

// Multicore engine flavors measured by -multicore.
const (
	mcLockstep = iota // serial lockstep reference
	mcParallel        // barrier-parallel engine, unobserved
	mcObserved        // barrier-parallel with the full observer complement
)

// mcObservedProbes arms the campaign-style observer complement the
// overhead gate prices: the interference observatory, one interval
// sampler per core, and a shared-domain lifecycle tracer.
func mcObservedProbes(cores int) multicore.Probes {
	windows := make([]probe.WindowObserver, cores)
	for i := range windows {
		windows[i] = probe.NewIntervalSampler(16)
	}
	return multicore.Probes{
		Interference:   true,
		Windows:        windows,
		WindowInstrs:   1000,
		SharedObserver: probe.NewTracer(32, 1<<13),
	}
}

// measureMulticoreOnce times one 4-core run on the selected engine
// flavor and fingerprints its full Result. InstrsPerSec counts
// instructions retired across all cores in the measured window.
func measureMulticoreOnce(kind int) (Measurement, uint64, error) {
	mix := make([]trace.Source, len(mcTraces))
	for i, n := range mcTraces {
		tr, err := workload.Get(n, workload.Params{Instrs: 12_000, Seed: 1})
		if err != nil {
			return Measurement{}, 0, err
		}
		mix[i] = trace.NewSource(tr)
	}
	var p multicore.Probes
	switch kind {
	case mcLockstep:
		p = multicore.Probes{ReferenceEngine: true}
	case mcObserved:
		p = mcObservedProbes(len(mcTraces))
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := multicore.RunProbed(multicoreConfig(), mix, p)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return Measurement{}, 0, err
	}
	// Hash the architectural outcome only: the observed flavor's digest
	// must equal the plain engines' (observers never change results),
	// which the snapshot itself would trivially break.
	res.Interference = nil
	var instrs uint64
	for _, rc := range res.PerCore {
		instrs += rc.Instructions
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return Measurement{}, 0, err
	}
	return Measurement{
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		EngineVersion: sim.EngineVersion,
		NsPerOp:       float64(elapsed.Nanoseconds()),
		InstrsPerSec:  float64(instrs) / elapsed.Seconds(),
		AllocsPerOp:   float64(ms1.Mallocs - ms0.Mallocs),
	}, observatory.HashBytes(raw), nil
}

// better folds one fresh measurement into the best-of record: best
// time and minimum allocations, tracked independently (the simulation's
// allocation count is deterministic; MemStats noise only inflates it).
func better(best, m Measurement) Measurement {
	if m.NsPerOp < best.NsPerOp {
		a := best.AllocsPerOp
		best = m
		best.AllocsPerOp = a
	}
	if m.AllocsPerOp < best.AllocsPerOp {
		best.AllocsPerOp = m.AllocsPerOp
	}
	return best
}

// measureMulticore interleaves lockstep/parallel/observed triples (same
// drift cancellation as measure) and insists on one digest across all
// three flavors and every run — the speedup and the observer overhead
// are only meaningful if the outputs are bit-identical.
func measureMulticore(runs int) (lockstep, parallel, observed Measurement, speedup, observerPct float64, digest uint64, err error) {
	if _, _, err = measureMulticoreOnce(mcParallel); err != nil {
		return
	}
	for i := 0; i < runs; i++ {
		var l, p, o Measurement
		var ld, pd, od uint64
		if l, ld, err = measureMulticoreOnce(mcLockstep); err != nil {
			return
		}
		if p, pd, err = measureMulticoreOnce(mcParallel); err != nil {
			return
		}
		if o, od, err = measureMulticoreOnce(mcObserved); err != nil {
			return
		}
		if ld != pd {
			err = fmt.Errorf("parallel engine changed the simulation output: digest %#x != %#x", pd, ld)
			return
		}
		if od != pd {
			err = fmt.Errorf("observers changed the simulation output: digest %#x != %#x", od, pd)
			return
		}
		if digest != 0 && ld != digest {
			err = fmt.Errorf("non-deterministic simulation output: digest %#x != %#x", ld, digest)
			return
		}
		digest = ld
		if i == 0 {
			lockstep, parallel, observed = l, p, o
		}
		lockstep = better(lockstep, l)
		parallel = better(parallel, p)
		observed = better(observed, o)
	}
	// Overhead compares the best-of times, not per-pair deltas: a single
	// noisy 70ms pair can swing a pairwise median by ±20% on a busy
	// machine, while the minimum over interleaved runs converges on the
	// true cost floor of each flavor.
	observerPct = (observed.NsPerOp/parallel.NsPerOp - 1) * 100
	if observerPct < 0 {
		observerPct = 0
	}
	return lockstep, parallel, observed, lockstep.NsPerOp / parallel.NsPerOp, observerPct, digest, nil
}

// benchConfig is the single-core scenario configuration shared by the
// timed runs and the attribution-profiled run.
func benchConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 50_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeTimelySecure
	return cfg
}

func measureOnce(probed bool) (Measurement, uint64, error) {
	tr, err := workload.Get("602.gcc-1850B", workload.Params{Instrs: 50_000, Seed: 1})
	if err != nil {
		return Measurement{}, 0, err
	}
	cfg := benchConfig()

	var probes sim.Probes
	if probed {
		// Campaign-style attachments (cf. internal/experiments): every 32nd
		// load traced into an 8Ki ring, one sample per 1k instructions.
		probes = sim.Probes{
			Observer: probe.NewTracer(32, 1<<13),
			Window:   probe.NewIntervalSampler(52),
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	res, err := sim.RunProbed(cfg, trace.NewSource(tr), probes)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		return Measurement{}, 0, err
	}
	// The result fingerprint hashes the full serialized Result: identical
	// across runs (the simulator is deterministic), identical between
	// plain and probed (probes never change outcomes), and different
	// whenever a change moves any simulated number.
	raw, err := json.Marshal(res)
	if err != nil {
		return Measurement{}, 0, err
	}
	return Measurement{
		Date:          time.Now().UTC().Format("2006-01-02"),
		GoVersion:     runtime.Version(),
		EngineVersion: sim.EngineVersion,
		NsPerOp:       float64(elapsed.Nanoseconds()),
		InstrsPerSec:  float64(res.Instructions) / elapsed.Seconds(),
		AllocsPerOp:   float64(ms1.Mallocs - ms0.Mallocs),
	}, observatory.HashBytes(raw), nil
}

// median returns the middle value of xs (mean of the two middle values
// for even lengths). xs is not modified.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// profiledRun repeats the single-core scenario once with engine
// attribution profiling armed (the timed runs stay unprofiled — the
// per-rank counters are not free) and returns the profile.
func profiledRun() (*observatory.Profile, error) {
	tr, err := workload.Get("602.gcc-1850B", workload.Params{Instrs: 50_000, Seed: 1})
	if err != nil {
		return nil, err
	}
	p := observatory.NewProfile()
	if _, err := sim.RunProbed(benchConfig(), trace.NewSource(tr), sim.Probes{Profile: p}); err != nil {
		return nil, err
	}
	return p, nil
}

// writeProfileTable exports the sim-profile table as base.json and
// base.csv, mirroring cmd/experiments -simprofile.
func writeProfileTable(p *observatory.Profile, base string) error {
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := p.WriteJSON(jf); err != nil {
		return err
	}
	cf, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer cf.Close()
	return p.WriteCSV(cf)
}

// allocGate compares a measured allocation count against its recorded
// baseline. The measurements keep the minimum across runs and MemStats
// noise only ever inflates the count, so the gate can be much tighter
// than the timing tolerance: tolPct relative headroom plus a small
// absolute slack for background runtime allocations.
func allocGate(what string, got, want, tolPct float64) error {
	if want <= 0 {
		return nil // baseline predates alloc recording
	}
	const slack = 64
	if limit := want*(1+tolPct/100) + slack; got > limit {
		return fmt.Errorf("%s allocation regression: %.0f allocs/op exceeds baseline %.0f (limit %.0f = +%.0f%% +%d)",
			what, got, want, limit, tolPct, slack)
	}
	return nil
}

// clampOverhead turns the per-pair overhead deltas into a headline
// number that cannot report phantom speedups: when the median is
// negative but within the pairing noise band — twice the median
// absolute deviation, floored at half a percentage point — the probes
// are indistinguishable from free and the overhead is 0. A negative
// median beyond the band is kept as-is: that is a real anomaly the
// reader should see, not noise to hide.
func clampOverhead(deltas []float64) float64 {
	med := median(deltas)
	if med >= 0 {
		return med
	}
	dev := make([]float64, len(deltas))
	for i, d := range deltas {
		dev[i] = d - med
		if dev[i] < 0 {
			dev[i] = -dev[i]
		}
	}
	band := 2 * median(dev)
	if band < 0.5 {
		band = 0.5
	}
	if -med <= band {
		return 0
	}
	return med
}

// measure runs plain and probed back to back `runs` times and reports
// the best of each plus the noise-clamped median per-pair probe
// overhead and the simulation's output digest. Pairing the two within
// each iteration cancels the drift (page cache, frequency scaling,
// heap shape) that made two sequential best-of-N batches report a
// negative overhead: the second batch always ran warmer.
func measure(runs int) (plain, probed Measurement, overheadPct float64, digest uint64, err error) {
	// One untimed warmup pair (page cache, branch predictors, heap shape).
	if _, _, err = measureOnce(false); err != nil {
		return
	}
	if _, _, err = measureOnce(true); err != nil {
		return
	}
	deltas := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		var m, p Measurement
		var md, pd uint64
		if m, md, err = measureOnce(false); err != nil {
			return
		}
		if p, pd, err = measureOnce(true); err != nil {
			return
		}
		if md != pd {
			err = fmt.Errorf("probed run changed the simulation output: digest %#x != %#x", pd, md)
			return
		}
		if digest != 0 && md != digest {
			err = fmt.Errorf("non-deterministic simulation output: digest %#x != %#x", md, digest)
			return
		}
		digest = md
		deltas = append(deltas, (p.NsPerOp/m.NsPerOp-1)*100)
		// Best time, minimum allocations: the sim's allocation count is
		// deterministic, and MemStats noise (background runtime goroutines)
		// only ever inflates it.
		if i == 0 {
			plain, probed = m, p
		}
		if m.NsPerOp < plain.NsPerOp {
			a := plain.AllocsPerOp
			plain = m
			plain.AllocsPerOp = a
		}
		if m.AllocsPerOp < plain.AllocsPerOp {
			plain.AllocsPerOp = m.AllocsPerOp
		}
		if p.NsPerOp < probed.NsPerOp {
			a := probed.AllocsPerOp
			probed = p
			probed.AllocsPerOp = a
		}
		if p.AllocsPerOp < probed.AllocsPerOp {
			probed.AllocsPerOp = p.AllocsPerOp
		}
	}
	return plain, probed, clampOverhead(deltas), digest, nil
}

// HistoryRecord is one line of BENCH_history.jsonl: enough context to
// explain a throughput shift (engine version, scenario, toolchain) and
// an output digest so behavioral changes are distinguishable from pure
// performance ones.
type HistoryRecord struct {
	Date              string  `json:"date"`
	GoVersion         string  `json:"go_version"`
	EngineVersion     string  `json:"engine_version"`
	Scenario          string  `json:"scenario"`
	NsPerOp           float64 `json:"ns_per_op"`
	InstrsPerSec      float64 `json:"instrs_per_sec"`
	AllocsPerOp       float64 `json:"allocs_per_op"`
	ProbedNsPerOp     float64 `json:"probed_ns_per_op"`
	ProbedAllocsPerOp float64 `json:"probed_allocs_per_op"`
	ProbeOverheadPct  float64 `json:"probe_overhead_pct"`
	OutputDigest      string  `json:"output_digest"`
	// Multicore-mode extras: the serial reference's time and the
	// parallel engine's speedup over it.
	LockstepNsPerOp   float64 `json:"lockstep_ns_per_op,omitempty"`
	SpeedupVsLockstep float64 `json:"speedup_vs_lockstep,omitempty"`
}

// readHistory parses a JSONL history file, ignoring blank lines. A
// missing file is an empty history, not an error.
func readHistory(path string) ([]HistoryRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var recs []HistoryRecord
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var r HistoryRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// checkHistory compares rec against the median NsPerOp of the last (up
// to) 5 prior same-scenario records — the median absorbs one noisy CI
// runner — and reports a non-nil error when rec is more than tol%
// slower. It also returns a human note when the output digest moved,
// which is informational: a modeling change legitimately shifts the
// digest, but the reader should know the comparison crosses one.
func checkHistory(prior []HistoryRecord, rec HistoryRecord, tol float64) (note string, err error) {
	var same []HistoryRecord
	for _, p := range prior {
		if p.Scenario == rec.Scenario {
			same = append(same, p)
		}
	}
	if len(same) == 0 {
		return "no prior history for this scenario; recorded as first entry", nil
	}
	if len(same) > 5 {
		same = same[len(same)-5:]
	}
	ns := make([]float64, len(same))
	for i, p := range same {
		ns[i] = p.NsPerOp
	}
	ref := median(ns)
	slowdown := (rec.NsPerOp/ref - 1) * 100
	note = fmt.Sprintf("vs median of last %d record(s): %+.1f%% (tolerance %.0f%%)", len(same), slowdown, tol)
	if last := same[len(same)-1]; last.OutputDigest != rec.OutputDigest {
		note += fmt.Sprintf("; output digest changed (%s -> %s)", last.OutputDigest, rec.OutputDigest)
	}
	if slowdown > tol {
		return note, fmt.Errorf("throughput regression: %.1f ms/op is %.1f%% slower than history median %.1f ms/op (tolerance %.0f%%)",
			rec.NsPerOp/1e6, slowdown, ref/1e6, tol)
	}
	return note, nil
}

func main() {
	runs := flag.Int("runs", 3, "measurement runs (best is reported)")
	update := flag.String("update", "", "baseline file whose 'after' section to rewrite")
	check := flag.String("check", "", "baseline file to compare against")
	history := flag.String("history", "", "JSONL history file to append to and regression-check against")
	tol := flag.Float64("tol", 25, "allowed slowdown vs baseline 'after', percent")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	mcMode := flag.Bool("multicore", false, "measure the 4-core engine (parallel vs serial lockstep) instead of the single-core scenario")
	minSpeedup := flag.Float64("min-speedup", 0, "with -multicore: fail unless the parallel engine beats lockstep by this factor")
	// 25% prices reality, not aspiration: the full observer complement
	// costs ~10% on a 4-worker box (the event stream rides the serial
	// shared-domain phase, so its cost lands on the barrier critical
	// path undiluted), and flavor-to-flavor wall noise adds ±10%. The
	// sharp zero-tolerance gate is the deterministic allocs budget; this
	// one catches an accidental map, alloc, or lock on the event path.
	observerTol := flag.Float64("observer-tol", 25, "with -multicore: fail if the observed engine (interference observatory + samplers + tracer) is more than this percent slower than plain parallel")
	allocTol := flag.Float64("alloc-tol", 50, "allowed allocs/op growth vs baseline in -check mode, percent (plus a fixed 64-alloc slack)")
	simProfile := flag.String("simprofile", "", "write the single-core sim-profile table as PATH.json and PATH.csv and gate on -max-tick-share")
	maxTickShare := flag.Float64("max-tick-share", 0.40, "with -simprofile: fail if any single rank holds more than this fraction of engine ticks")
	flag.Parse()
	if *simProfile != "" && *mcMode {
		fmt.Fprintln(os.Stderr, "bench: -simprofile applies to the single-core scenario; drop -multicore")
		os.Exit(2)
	}
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "bench: -runs must be at least 1")
		os.Exit(2)
	}

	// The profiles cover exactly what the measurement does: every timed
	// plain/probed pair (plus the warmup pair, which profiles the same
	// code). Profiling perturbs the timings slightly, so numbers from a
	// profiled run should not be fed to -update.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	var m, mp, lockstep, observed Measurement
	var overhead, speedup, observerPct float64
	var digest uint64
	var err error
	if *mcMode {
		lockstep, m, observed, speedup, observerPct, digest, err = measureMulticore(*runs)
	} else {
		m, mp, overhead, digest, err = measure(*runs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *mcMode && *minSpeedup > 0 && speedup < *minSpeedup {
		fmt.Fprintf(os.Stderr, "bench: parallel engine speedup %.2fx below required %.2fx (lockstep %.1f ms/op, parallel %.1f ms/op)\n",
			speedup, *minSpeedup, lockstep.NsPerOp/1e6, m.NsPerOp/1e6)
		os.Exit(1)
	}
	if *mcMode && *observerTol > 0 && observerPct > *observerTol {
		fmt.Fprintf(os.Stderr, "bench: observer overhead %.1f%% exceeds %.0f%% (plain %.1f ms/op, observed %.1f ms/op) — the observatory's event path has gained real per-event cost (map? alloc? lock?)\n",
			observerPct, *observerTol, m.NsPerOp/1e6, observed.NsPerOp/1e6)
		os.Exit(1)
	}

	if *simProfile != "" {
		// One extra attribution-profiled run (outside the timed pairs):
		// export the per-rank table and refuse a profile where any single
		// component re-dominates — the flat profile is a maintained
		// property, not an accident.
		prof, err := profiledRun()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := writeProfileTable(prof, *simProfile); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("sim-profile table in %s.json and %s.csv\n", *simProfile, *simProfile)
		for _, row := range prof.Table() {
			if row.TickShare > *maxTickShare {
				fmt.Fprintf(os.Stderr, "bench: rank %q holds %.1f%% of engine ticks (max %.0f%%) — one component re-dominates the profile\n",
					row.Rank, 100*row.TickShare, 100**maxTickShare)
				os.Exit(1)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		runtime.GC() // flush accumulated allocation records
		if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
	}

	switch {
	case *update != "":
		var b Baseline
		if data, err := os.ReadFile(*update); err == nil {
			if err := json.Unmarshal(data, &b); err != nil {
				fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *update, err)
				os.Exit(1)
			}
		}
		if *mcMode {
			b.Multicore = &MulticoreBaseline{
				Scenario:            mcScenario,
				Lockstep:            lockstep,
				Parallel:            m,
				Speedup:             speedup,
				Observed:            observed,
				ObserverOverheadPct: observerPct,
			}
		} else {
			b.Benchmark = "SimulatorThroughput"
			b.Scenario = scenario
			b.After = m
			b.Probed = mp
			if b.Before.NsPerOp > 0 {
				b.Speedup = b.Before.NsPerOp / b.After.NsPerOp
			}
			b.ProbeOverheadPct = overhead
		}
		out, _ := json.MarshalIndent(&b, "", "  ")
		if err := os.WriteFile(*update, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if *mcMode {
			fmt.Printf("updated %s: 4-core parallel %.1f ms/op (%.0f instrs/s), lockstep %.1f ms/op, %.2fx; observed %.1f ms/op (%.1f%% overhead)\n",
				*update, m.NsPerOp/1e6, m.InstrsPerSec, lockstep.NsPerOp/1e6, speedup, observed.NsPerOp/1e6, observerPct)
		} else {
			fmt.Printf("updated %s: %.1f ms/op, %.0f instrs/s, %.0fx vs before; probed %.1f ms/op (%.1f%% overhead)\n",
				*update, m.NsPerOp/1e6, m.InstrsPerSec, b.Speedup, mp.NsPerOp/1e6, b.ProbeOverheadPct)
		}
	case *check != "":
		data, err := os.ReadFile(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", *check, err)
			os.Exit(1)
		}
		if *mcMode {
			if b.Multicore == nil {
				fmt.Fprintf(os.Stderr, "bench: %s has no multicore section; run -multicore -update first\n", *check)
				os.Exit(1)
			}
			slowdown := (m.NsPerOp/b.Multicore.Parallel.NsPerOp - 1) * 100
			fmt.Printf("multicore: %.1f ms/op (%.0f instrs/s, %.2fx vs lockstep); baseline: %.1f ms/op; slowdown %.1f%% (tolerance %.0f%%)\n",
				m.NsPerOp/1e6, m.InstrsPerSec, speedup, b.Multicore.Parallel.NsPerOp/1e6, slowdown, *tol)
			fmt.Printf("multicore observed: %.1f ms/op (%.1f%% observer overhead, %.0f allocs); baseline: %.1f ms/op (%.1f%%)\n",
				observed.NsPerOp/1e6, observerPct, observed.AllocsPerOp,
				b.Multicore.Observed.NsPerOp/1e6, b.Multicore.ObserverOverheadPct)
			fmt.Printf("multicore allocs/op: lockstep %.0f (baseline %.0f), parallel %.0f (baseline %.0f), alloc tolerance %.0f%%\n",
				lockstep.AllocsPerOp, b.Multicore.Lockstep.AllocsPerOp,
				m.AllocsPerOp, b.Multicore.Parallel.AllocsPerOp, *allocTol)
			if slowdown > *tol {
				fmt.Fprintln(os.Stderr, "bench: performance regression beyond tolerance")
				os.Exit(1)
			}
			if b.Multicore.Observed.NsPerOp > 0 {
				if obsSlow := (observed.NsPerOp/b.Multicore.Observed.NsPerOp - 1) * 100; obsSlow > *tol {
					fmt.Fprintf(os.Stderr, "bench: observed-engine regression: %.1f%% slower than baseline (tolerance %.0f%%)\n", obsSlow, *tol)
					os.Exit(1)
				}
			}
			// Both engine flavors' allocation counts are enforced the same
			// way the single-core figure is: the hot paths are supposed to
			// be allocation-free, so growth here is a leak, not noise.
			for _, g := range []struct {
				what      string
				got, want float64
			}{
				{"multicore lockstep", lockstep.AllocsPerOp, b.Multicore.Lockstep.AllocsPerOp},
				{"multicore parallel", m.AllocsPerOp, b.Multicore.Parallel.AllocsPerOp},
				{"multicore observed", observed.AllocsPerOp, b.Multicore.Observed.AllocsPerOp},
			} {
				if err := allocGate(g.what, g.got, g.want, *allocTol); err != nil {
					fmt.Fprintln(os.Stderr, "bench:", err)
					os.Exit(1)
				}
			}
			break
		}
		slowdown := (m.NsPerOp/b.After.NsPerOp - 1) * 100
		fmt.Printf("current: %.1f ms/op (%.0f instrs/s); baseline: %.1f ms/op; slowdown %.1f%% (tolerance %.0f%%)\n",
			m.NsPerOp/1e6, m.InstrsPerSec, b.After.NsPerOp/1e6, slowdown, *tol)
		fail := slowdown > *tol
		if b.Probed.NsPerOp > 0 {
			probedSlowdown := (mp.NsPerOp/b.Probed.NsPerOp - 1) * 100
			fmt.Printf("probed:  %.1f ms/op (%.0f instrs/s, %.0f allocs); baseline: %.1f ms/op; slowdown %.1f%%\n",
				mp.NsPerOp/1e6, mp.InstrsPerSec, mp.AllocsPerOp, b.Probed.NsPerOp/1e6, probedSlowdown)
			fail = fail || probedSlowdown > *tol
		}
		if fail {
			fmt.Fprintln(os.Stderr, "bench: performance regression beyond tolerance")
			os.Exit(1)
		}
		if err := allocGate("single-core", m.AllocsPerOp, b.After.AllocsPerOp, *allocTol); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	default:
		if *history != "" {
			break
		}
		if *mcMode {
			out, _ := json.MarshalIndent(&struct {
				Lockstep            Measurement `json:"lockstep"`
				Parallel            Measurement `json:"parallel"`
				Observed            Measurement `json:"observed"`
				Speedup             float64     `json:"speedup"`
				ObserverOverheadPct float64     `json:"observer_overhead_pct"`
				OutputDigest        string      `json:"output_digest"`
			}{lockstep, m, observed, speedup, observerPct, fmt.Sprintf("%016x", digest)}, "", "  ")
			fmt.Println(string(out))
			break
		}
		out, _ := json.MarshalIndent(&struct {
			Plain            Measurement `json:"plain"`
			Probed           Measurement `json:"probed"`
			ProbeOverheadPct float64     `json:"probe_overhead_pct"`
			OutputDigest     string      `json:"output_digest"`
		}{m, mp, overhead, fmt.Sprintf("%016x", digest)}, "", "  ")
		fmt.Println(string(out))
	}

	if *history != "" {
		prior, err := readHistory(*history)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rec := HistoryRecord{
			Date:              m.Date,
			GoVersion:         m.GoVersion,
			EngineVersion:     m.EngineVersion,
			Scenario:          scenario,
			NsPerOp:           m.NsPerOp,
			InstrsPerSec:      m.InstrsPerSec,
			AllocsPerOp:       m.AllocsPerOp,
			ProbedNsPerOp:     mp.NsPerOp,
			ProbedAllocsPerOp: mp.AllocsPerOp,
			ProbeOverheadPct:  overhead,
			OutputDigest:      fmt.Sprintf("%016x", digest),
		}
		if *mcMode {
			// Its own scenario string keeps checkHistory's same-scenario
			// median from mixing single- and multi-core records. The probed
			// slots carry the observed-engine figures so the interference
			// observatory's overhead shows up in the same trend lines.
			rec.Scenario = mcScenario
			rec.LockstepNsPerOp = lockstep.NsPerOp
			rec.SpeedupVsLockstep = speedup
			rec.ProbedNsPerOp = observed.NsPerOp
			rec.ProbedAllocsPerOp = observed.AllocsPerOp
			rec.ProbeOverheadPct = observerPct
		}
		note, herr := checkHistory(prior, rec, *tol)
		// Append before deciding: a regressed record still belongs in the
		// history, and the last-5 median absorbs it going forward.
		line, _ := json.Marshal(&rec)
		f, err := os.OpenFile(*history, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if _, err := f.Write(append(line, '\n')); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("history %s: appended %.1f ms/op, %.0f instrs/s, %.0f allocs; %s\n",
			*history, rec.NsPerOp/1e6, rec.InstrsPerSec, rec.AllocsPerOp, note)
		if herr != nil {
			fmt.Fprintln(os.Stderr, "bench:", herr)
			os.Exit(1)
		}
	}
}

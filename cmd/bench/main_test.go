package main

import "testing"

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{9, 1, 5}, 5},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"outlier", []float64{2, 2, 2, 100}, 2},
		{"negative", []float64{-5, 3, 1}, 1},
	}
	for _, c := range cases {
		if got := median(c.xs); got != c.want {
			t.Errorf("%s: median(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// The input must not be reordered in place.
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("median mutated its input: %v", xs)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{7}, 7},
		{"odd", []float64{9, 1, 5}, 5},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"outlier", []float64{2, 2, 2, 100}, 2},
		{"negative", []float64{-5, 3, 1}, 1},
	}
	for _, c := range cases {
		if got := median(c.xs); got != c.want {
			t.Errorf("%s: median(%v) = %v, want %v", c.name, c.xs, got, c.want)
		}
	}
	// The input must not be reordered in place.
	xs := []float64{3, 1, 2}
	median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("median mutated its input: %v", xs)
	}
}

func TestClampOverhead(t *testing.T) {
	cases := []struct {
		name   string
		deltas []float64
		want   float64
	}{
		{"positive passes through", []float64{1.2, 2.0, 1.5}, 1.5},
		{"zero passes through", []float64{0, 0, 0}, 0},
		// Median -0.9 with tight spread: within the 0.5pp floor? No —
		// deviations are {0.1, 0, 0.2}, MAD 0.1, band max(0.2, 0.5)=0.5,
		// and 0.9 > 0.5, so the negative survives as a visible anomaly.
		{"large negative kept", []float64{-1.0, -0.9, -0.7}, -0.9},
		// Median -0.3 is inside the 0.5pp floor: clamp to 0.
		{"small negative clamped by floor", []float64{-0.4, -0.3, -0.1}, 0},
		// Median -2 but deviations {3, 0, 3}: MAD 3, band 6, clamp.
		{"noisy negative clamped by MAD band", []float64{-5, -2, 1}, 0},
		// Median -8, deviations {1, 0, 1}: band max(2, 0.5)=2 < 8 — keep.
		{"consistent large negative kept", []float64{-9, -8, -7}, -8},
	}
	for _, c := range cases {
		if got := clampOverhead(c.deltas); got != c.want {
			t.Errorf("%s: clampOverhead(%v) = %v, want %v", c.name, c.deltas, got, c.want)
		}
	}
}

func historyFixture() []HistoryRecord {
	mk := func(ns float64, digest string) HistoryRecord {
		return HistoryRecord{Scenario: scenario, NsPerOp: ns, OutputDigest: digest}
	}
	return []HistoryRecord{
		mk(100e6, "aaaa"), mk(102e6, "aaaa"), mk(98e6, "aaaa"),
		mk(101e6, "aaaa"), mk(99e6, "aaaa"), mk(100e6, "bbbb"),
	}
}

func TestCheckHistory(t *testing.T) {
	prior := historyFixture()
	// Median of the last 5 (102, 98, 101, 99, 100) is 100 ms/op.
	rec := HistoryRecord{Scenario: scenario, NsPerOp: 110e6, OutputDigest: "bbbb"}
	if note, err := checkHistory(prior, rec, 25); err != nil {
		t.Errorf("10%% slowdown within 25%% tolerance should pass: %v (%s)", err, note)
	}
	rec.NsPerOp = 130e6
	if _, err := checkHistory(prior, rec, 25); err == nil {
		t.Error("30% slowdown beyond 25% tolerance should fail")
	}
	// A digest change is informational, never a failure.
	rec.NsPerOp = 100e6
	rec.OutputDigest = "cccc"
	note, err := checkHistory(prior, rec, 25)
	if err != nil {
		t.Errorf("digest change alone should not fail: %v", err)
	}
	if !strings.Contains(note, "digest changed") {
		t.Errorf("note should flag the digest change, got %q", note)
	}
	// Records from other scenarios must not enter the comparison.
	other := append(historyFixture(), HistoryRecord{Scenario: "something else", NsPerOp: 1e6})
	rec = HistoryRecord{Scenario: scenario, NsPerOp: 110e6, OutputDigest: "bbbb"}
	if _, err := checkHistory(other, rec, 25); err != nil {
		t.Errorf("foreign-scenario record skewed the median: %v", err)
	}
	// Empty history: first entry, no failure.
	if note, err := checkHistory(nil, rec, 25); err != nil || !strings.Contains(note, "first entry") {
		t.Errorf("empty history: note=%q err=%v", note, err)
	}
}

func TestReadHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if recs, err := readHistory(path); err != nil || recs != nil {
		t.Fatalf("missing file should be empty history, got %v, %v", recs, err)
	}
	data := `{"date":"2026-08-07","scenario":"s","ns_per_op":1,"output_digest":"ab"}

{"date":"2026-08-08","scenario":"s","ns_per_op":2,"output_digest":"cd"}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := readHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].NsPerOp != 1 || recs[1].OutputDigest != "cd" {
		t.Fatalf("parsed %+v", recs)
	}
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readHistory(path); err == nil {
		t.Error("malformed line should error with its line number")
	}
}

// Command tracegen generates a synthetic workload trace and writes it
// in the binary trace format.
//
// Usage:
//
//	tracegen -name 605.mcf-1554B -instrs 1000000 -o mcf.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"secpref/internal/trace"
	"secpref/internal/workload"
)

func main() {
	var (
		name   = flag.String("name", "", "workload name (see secpref -list)")
		instrs = flag.Int("instrs", 1_000_000, "instruction count")
		seed   = flag.Int64("seed", 1, "generation seed")
		out    = flag.String("o", "", "output file (default <name>.trace)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -name is required; available traces:")
		for _, n := range workload.Names() {
			fmt.Fprintln(os.Stderr, " ", n)
		}
		os.Exit(2)
	}
	tr, err := workload.Get(*name, workload.Params{Instrs: *instrs, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = *name + ".trace"
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := trace.Write(f, tr); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d instructions to %s\n", tr.Len(), path)
}

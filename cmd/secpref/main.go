// Command secpref runs one simulation and prints its statistics.
//
// Usage:
//
//	secpref -trace 605.mcf-1554B -prefetcher berti -mode ts -secure -suf
//	secpref -trace 605.mcf-1554B -prefetcher berti -mode ts -timeseries out/
//	secpref -list
//
// -timeseries additionally exports an interval time series
// (<base>.series.json/.csv) and a Perfetto-loadable request-lifecycle
// trace (<base>.trace.json) into the given directory; -simprofile
// attaches engine-attribution profiling and writes the sim-profile
// table as PATH.json/.csv (plus PATH.trace.json counter tracks when
// combined with -timeseries); see docs/observability.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secpref"
	"secpref/internal/leakage"
	"secpref/internal/mem"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/trace"
)

func main() {
	var (
		traceName = flag.String("trace", "605.mcf-1554B", "workload trace name")
		traceFile = flag.String("tracefile", "", "binary trace file (from tracegen) instead of -trace")
		pf        = flag.String("prefetcher", "none", "prefetcher: none|ip-stride|ipcp|bingo|spp-ppf|berti")
		mode      = flag.String("mode", "on-access", "prefetch mode: on-access|on-commit|ts")
		secure    = flag.Bool("secure", false, "use the GhostMinion secure cache system")
		suf       = flag.Bool("suf", false, "enable the Secure Update Filter")
		instrs    = flag.Int("instrs", 200_000, "measured instructions")
		warmup    = flag.Int("warmup", 50_000, "warmup instructions")
		seed      = flag.Int64("seed", 1, "workload seed")
		list      = flag.Bool("list", false, "list available traces and exit")
		tsDir     = flag.String("timeseries", "", "export interval time series and lifecycle trace into this directory")
		leak      = flag.Bool("leakage", false, "attach the leakage auditor and print the taint scoreboard after the run")
		simProf   = flag.String("simprofile", "", "attach engine-attribution profiling and write the sim-profile table as PATH.json and PATH.csv")
	)
	flag.Parse()

	if *list {
		fmt.Println("SPEC-like traces:")
		fmt.Println(" ", strings.Join(secpref.WorkloadSuite("spec"), " "))
		fmt.Println("GAP traces:")
		fmt.Println(" ", strings.Join(secpref.WorkloadSuite("gap"), " "))
		return
	}

	cfg := secpref.DefaultConfig()
	cfg.Prefetcher = *pf
	cfg.Secure = *secure
	cfg.SUF = *suf
	cfg.WarmupInstrs = *warmup
	cfg.MaxInstrs = *instrs
	switch *mode {
	case "on-access":
		cfg.Mode = secpref.ModeOnAccess
	case "on-commit":
		cfg.Mode = secpref.ModeOnCommit
	case "ts", "timely-secure":
		cfg.Mode = secpref.ModeTimelySecure
	default:
		fmt.Fprintf(os.Stderr, "secpref: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// With -timeseries, the run carries an interval sampler and a
	// request-lifecycle tracer; both are exported after the run. A single
	// interactive run affords denser sampling than a campaign: every 16th
	// load is traced into a 32Ki-event ring.
	var probes secpref.Probes
	var sampler *probe.IntervalSampler
	var tracer *probe.Tracer
	if *tsDir != "" {
		sampler = probe.NewIntervalSampler(*instrs/1000 + 2)
		tracer = probe.NewTracer(16, 1<<15)
		probes = secpref.Probes{Observer: tracer, Window: sampler}
	}
	var auditor *leakage.Auditor
	if *leak {
		auditor = leakage.NewAuditor()
		probes.Observer = probe.Fanout(probes.Observer, auditor)
	}
	var prof *observatory.Profile
	if *simProf != "" {
		prof = observatory.NewProfile()
		probes.Profile = prof
	}

	var res *secpref.Result
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "secpref:", ferr)
			os.Exit(1)
		}
		tr, ferr := trace.Read(f)
		f.Close()
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "secpref:", ferr)
			os.Exit(1)
		}
		res, err = secpref.RunTraceProbed(cfg, tr, probes)
	} else {
		res, err = secpref.RunProbed(cfg, *traceName, secpref.WorkloadParams{Instrs: *instrs + *warmup, Seed: *seed}, probes)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "secpref:", err)
		os.Exit(1)
	}
	if *tsDir != "" {
		if err := exportTimeseries(*tsDir, res.TraceName, cfg.Label(), sampler, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "secpref:", err)
			os.Exit(1)
		}
	}
	if prof != nil {
		if err := exportSimProfile(prof, *simProf, res.TraceName+" "+cfg.Label(), *tsDir != ""); err != nil {
			fmt.Fprintln(os.Stderr, "secpref:", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, prof.String())
	}

	fmt.Printf("trace:            %s\n", res.TraceName)
	fmt.Printf("config:           %s\n", cfg.Label())
	fmt.Printf("instructions:     %d\n", res.Instructions)
	fmt.Printf("cycles:           %d\n", res.Cycles)
	fmt.Printf("IPC:              %.4f\n", res.IPC)
	fmt.Printf("load miss lat:    %.1f cycles\n", res.LoadMissLatency())
	ap := res.L1DAPKI()
	fmt.Printf("L1D APKI:         load=%.1f prefetch=%.1f commit=%.1f\n", ap.Load, ap.Prefetch, ap.Commit)
	fmt.Printf("branch mispred:   %.2f%%\n", res.Core.MispredictRate()*100)
	if cfg.Prefetcher != "none" {
		home := mem.LvlL1D
		if cfg.Prefetcher == "bingo" || cfg.Prefetcher == "spp-ppf" {
			home = mem.LvlL2
		}
		fmt.Printf("pref accuracy:    %.1f%% (at %s)\n", res.PrefAccuracy(home)*100, home)
	}
	if cfg.Secure {
		fmt.Printf("GM miss rate:     %.1f%%\n", 100*float64(res.GM.Misses[mem.KindLoad])/float64(max(1, res.GM.Accesses[mem.KindLoad])))
		fmt.Printf("commit writes:    %d, refetches: %d\n", res.L1D.Accesses[mem.KindCommitWrite], res.L1D.Accesses[mem.KindRefetch])
	}
	if cfg.SUF {
		fmt.Printf("SUF drops:        %d (accuracy %.2f%%)\n", res.Core.SUFDrops, res.SUFAccuracy()*100)
	}
	fmt.Printf("dynamic energy:   %.2f uJ\n", res.Energy.Total()/1e6)
	if auditor != nil {
		sb := auditor.Scoreboard()
		fmt.Printf("leakage audit:    %s\n", sb.String())
	}
}

// exportTimeseries writes <trace>__<label>.series.json, .series.csv,
// and .trace.json into dir and reports the paths on stderr.
func exportTimeseries(dir, traceName, label string, s *probe.IntervalSampler, tr *probe.Tracer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sanitized := strings.Map(func(r rune) rune {
		switch r {
		case '/', '+', ' ', ':':
			return '-'
		}
		return r
	}, label)
	base := filepath.Join(dir, traceName+"__"+sanitized)
	write := func(path string, emit func(*os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := emit(f); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(base+".series.json", func(f *os.File) error { return s.WriteJSON(f, label, traceName) }); err != nil {
		return err
	}
	if err := write(base+".series.csv", func(f *os.File) error { return s.WriteCSV(f) }); err != nil {
		return err
	}
	if err := write(base+".trace.json", func(f *os.File) error { return tr.WriteChromeTrace(f, traceName+" "+label) }); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "secpref: wrote %s.series.json, .series.csv, .trace.json (%d windows, %d trace events)\n",
		base, s.Len(), len(tr.Events()))
	return nil
}

// exportSimProfile writes the engine-attribution table as base.json
// and base.csv, plus base.trace.json counter tracks when the run also
// sampled windows (the tracks ride the window cadence).
func exportSimProfile(p *observatory.Profile, base, label string, withTracks bool) error {
	if dir := filepath.Dir(base); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	if err := p.WriteJSON(jf); err != nil {
		jf.Close()
		return err
	}
	if err := jf.Close(); err != nil {
		return err
	}
	cf, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	if err := p.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	names := []string{base + ".json", base + ".csv"}
	if withTracks && len(p.Track) > 0 {
		tf, err := os.Create(base + ".trace.json")
		if err != nil {
			return err
		}
		if err := p.WriteChromeTrace(tf, label); err != nil {
			tf.Close()
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
		names = append(names, base+".trace.json")
	}
	fmt.Fprintf(os.Stderr, "secpref: wrote %s\n", strings.Join(names, ", "))
	return nil
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

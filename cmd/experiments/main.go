// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-instrs N] [-warmup N] [-mixes N] [-traces a,b,c] [-fig id | -table n | -all]
//
// Each experiment prints the same rows/series the paper reports (see
// DESIGN.md for the per-experiment index). -all runs everything in
// paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"secpref/internal/experiments"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "smoke-scale campaign (fewer traces, shorter runs)")
		instrs = flag.Int("instrs", 0, "measured instructions per run (0 = default)")
		warmup = flag.Int("warmup", 0, "warmup instructions per run (0 = default)")
		mixes  = flag.Int("mixes", 0, "4-core mixes for fig15 (0 = default)")
		traces = flag.String("traces", "", "comma-separated trace subset")
		figID  = flag.String("fig", "", "figure to regenerate (1,3,4,5,6,10,11,12a,12b,13,14,15,suf-accuracy)")
		tabID  = flag.String("table", "", "table to regenerate (1,2,3)")
		all    = flag.Bool("all", false, "regenerate every paper experiment")
		ext    = flag.Bool("ext", false, "also run extension experiments (SMT, ablations)")
		par    = flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
		asJSON = flag.Bool("json", false, "emit tables as JSON instead of text")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *instrs > 0 {
		opts.Instrs = *instrs
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	if *traces != "" {
		opts.Traces = strings.Split(*traces, ",")
	}
	if *par > 0 {
		opts.Parallelism = *par
	}
	r := experiments.NewRunner(opts)

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs
		if *ext {
			ids = append(append([]string{}, ids...), experiments.ExtensionIDs...)
		}
	case *ext:
		ids = experiments.ExtensionIDs
	case *figID != "":
		id := *figID
		if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "suf") &&
			!strings.HasPrefix(id, "smt") && !strings.HasPrefix(id, "ablate") && !strings.HasPrefix(id, "tsb") {
			id = "fig" + id
		}
		ids = []string{id}
	case *tabID != "":
		ids = []string{"table" + *tabID}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig, -table, or -all; experiments:", strings.Join(experiments.IDs, " "))
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		t, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *asJSON {
			raw, err := t.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(t.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
	}
}

// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-quick] [-instrs N] [-warmup N] [-mixes N] [-traces a,b,c]
//	            [-timeseries DIR] [-http ADDR] [-leakage-gate] [-digest-gate]
//	            [-multicore-gate] [-simprofile PATH] [-fig id | -table n | -all]
//
// Each experiment prints the same rows/series the paper reports (see
// DESIGN.md for the per-experiment index). -all runs everything in
// paper order. -timeseries additionally exports a per-run interval
// time series and request-lifecycle trace; -http serves live campaign
// telemetry (Prometheus /metrics, expvar, pprof) while running;
// -simprofile aggregates engine-attribution counters across every run
// and writes the sim-profile table as PATH.json and PATH.csv;
// -digest-gate verifies the event engine against the lockstep
// reference at every state-digest checkpoint. See
// docs/observability.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"secpref/internal/experiments"
	"secpref/internal/observatory"
	"secpref/internal/probe"
	"secpref/internal/sim"
)

// figChoices regenerates the -fig help from the experiment registry so
// the flag text can never go stale against experiments.IDs.
func figChoices() string {
	var out []string
	for _, id := range experiments.IDs {
		if strings.HasPrefix(id, "table") {
			continue
		}
		out = append(out, strings.TrimPrefix(id, "fig"))
	}
	out = append(out, experiments.ExtensionIDs...)
	return strings.Join(out, ",")
}

func tableChoices() string {
	var out []string
	for _, id := range experiments.IDs {
		if strings.HasPrefix(id, "table") {
			out = append(out, strings.TrimPrefix(id, "table"))
		}
	}
	return strings.Join(out, ",")
}

func main() {
	var (
		quick      = flag.Bool("quick", false, "smoke-scale campaign (fewer traces, shorter runs)")
		instrs     = flag.Int("instrs", 0, "measured instructions per run (0 = default)")
		warmup     = flag.Int("warmup", 0, "warmup instructions per run (0 = default)")
		mixes      = flag.Int("mixes", 0, "4-core mixes for fig15 (0 = default)")
		traces     = flag.String("traces", "", "comma-separated trace subset")
		figID      = flag.String("fig", "", "figure to regenerate ("+figChoices()+")")
		tabID      = flag.String("table", "", "table to regenerate ("+tableChoices()+")")
		all        = flag.Bool("all", false, "regenerate every paper experiment")
		ext        = flag.Bool("ext", false, "also run extension experiments (SMT, ablations)")
		par        = flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
		asJSON     = flag.Bool("json", false, "emit tables as JSON instead of text")
		timeseries = flag.String("timeseries", "", "export per-run interval time series and lifecycle traces into this directory")
		httpAddr   = flag.String("http", "", "serve live campaign telemetry (/metrics, /debug/vars, /debug/pprof) on this address")
		leakGate   = flag.Bool("leakage-gate", false, "fail unless the secure configuration audits zero tainted survivors and zero speculative trains (CI gate)")
		digestGate = flag.Bool("digest-gate", false, "fail unless the event engine and the lockstep reference agree at every state-digest checkpoint (CI gate)")
		mcGate     = flag.Bool("multicore-gate", false, "fail unless the barrier-parallel multicore engine matches the serial lockstep reference bit-for-bit on representative mixes (CI gate)")
		simProfile = flag.String("simprofile", "", "aggregate engine-attribution profiling across all runs and write the sim-profile table as PATH.json and PATH.csv")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *instrs > 0 {
		opts.Instrs = *instrs
	}
	if *warmup > 0 {
		opts.Warmup = *warmup
	}
	if *mixes > 0 {
		opts.Mixes = *mixes
	}
	if *traces != "" {
		opts.Traces = strings.Split(*traces, ",")
	}
	if *par > 0 {
		opts.Parallelism = *par
	}
	opts.TimeseriesDir = *timeseries

	var ids []string
	switch {
	case *all:
		ids = experiments.IDs
		if *ext {
			ids = append(append([]string{}, ids...), experiments.ExtensionIDs...)
		}
	case *ext:
		ids = experiments.ExtensionIDs
	case *figID != "":
		id := *figID
		if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "suf") &&
			!strings.HasPrefix(id, "smt") && !strings.HasPrefix(id, "ablate") && !strings.HasPrefix(id, "tsb") &&
			!strings.HasPrefix(id, "leakage") && !strings.HasPrefix(id, "consolidation") {
			id = "fig" + id
		}
		ids = []string{id}
	case *tabID != "":
		ids = []string{"table" + *tabID}
	case *leakGate, *digestGate, *mcGate:
		// Gate-only invocation: no experiment tables, just the checks.
	case *timeseries != "":
		// A time-series export with no experiment selected defaults to the
		// miss-latency study — the figure its per-window metrics track.
		ids = []string{"fig4"}
	default:
		fmt.Fprintln(os.Stderr, "specify -fig, -table, or -all; experiments:", strings.Join(experiments.IDs, " "))
		os.Exit(2)
	}

	campaign := probe.NewCampaign(len(ids))
	campaign.SetEngineVersion(sim.EngineVersion)
	opts.Campaign = campaign
	var aggregate *observatory.Aggregate
	if *simProfile != "" {
		aggregate = observatory.NewAggregate()
		opts.Profile = aggregate
	}
	if *httpAddr != "" {
		campaign.Publish()
		var extra []probe.PrometheusWriter
		if aggregate != nil {
			extra = append(extra, aggregate)
		}
		addr, _, err := probe.Serve(*httpAddr, campaign, extra...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: telemetry server: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: telemetry on http://%s (/metrics, /debug/vars, /debug/pprof/)\n", addr)
	}
	r := experiments.NewRunner(opts)

	for i, id := range ids {
		start := time.Now()
		doneBefore, _ := campaign.Runs()
		campaign.ExperimentStarted(id)
		t, err := r.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		campaign.ExperimentDone()
		if *asJSON {
			raw, err := t.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(string(raw))
		} else {
			fmt.Print(t.String())
			fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
		}
		done, _ := campaign.Runs()
		summary := fmt.Sprintf("experiments: [%d/%d] %s: %d runs in %.1fs", i+1, len(ids), id, done-doneBefore, time.Since(start).Seconds())
		if eta := campaign.ETA(); eta > 0 {
			summary += fmt.Sprintf(", ETA %s", eta.Round(time.Second))
		}
		fmt.Fprintln(os.Stderr, summary)
	}
	if *leakGate {
		start := time.Now()
		if err := r.SecureLeakageGate(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: leakage gate passed in %.1fs (secure config audits clean; non-secure channels detected)\n", time.Since(start).Seconds())
	}
	if *digestGate {
		start := time.Now()
		if err := r.DigestEquivalenceGate(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: digest gate passed in %.1fs (event and reference engines agree at every checkpoint)\n", time.Since(start).Seconds())
	}
	if *mcGate {
		start := time.Now()
		if err := r.MulticoreEquivalenceGate(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "experiments: multicore gate passed in %.1fs (parallel and reference engines bit-identical; barrier interval immaterial)\n", time.Since(start).Seconds())
	}
	if aggregate != nil {
		if err := writeSimProfile(aggregate, *simProfile); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprint(os.Stderr, aggregate.String())
		fmt.Fprintf(os.Stderr, "experiments: sim-profile table in %s.json and %s.csv\n", *simProfile, *simProfile)
	}
	if *timeseries != "" {
		fmt.Fprintf(os.Stderr, "experiments: time series and lifecycle traces in %s\n", *timeseries)
	}
}

// writeSimProfile exports the aggregated attribution table as
// base.json and base.csv.
func writeSimProfile(a *observatory.Aggregate, base string) error {
	jf, err := os.Create(base + ".json")
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := a.WriteJSON(jf); err != nil {
		return err
	}
	cf, err := os.Create(base + ".csv")
	if err != nil {
		return err
	}
	defer cf.Close()
	return a.WriteCSV(cf)
}

#!/bin/sh
# Assembles EXPERIMENTS.md from the commentary header and the raw
# campaign output. Run from the repository root after
# `go run ./cmd/experiments -all -ext > experiments_full.txt`.
set -e
{
	cat docs/experiments_header.md
	echo '```'
	cat experiments_full.txt
	echo '```'
} > EXPERIMENTS.md
echo "wrote EXPERIMENTS.md"

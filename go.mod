module secpref

go 1.22

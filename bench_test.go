// Benchmarks regenerating every table and figure of the paper (one
// benchmark per experiment; see DESIGN.md for the index), plus
// microbenchmarks of the simulator core.
//
// The figure benchmarks share a memoizing runner, so a full
// `go test -bench=.` sweep simulates each (trace, configuration) pair
// once; the first benchmark to need a result pays for it. Each
// benchmark logs the regenerated table with -v.
package secpref_test

import (
	"sync"
	"testing"

	"secpref"
	"secpref/internal/experiments"
	"secpref/internal/sim"
	"secpref/internal/trace"
	"secpref/internal/workload"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

// benchOpts returns a campaign small enough for benchmarking but large
// enough to exercise every subsystem.
func runner() *experiments.Runner {
	benchOnce.Do(func() {
		opts := experiments.QuickOptions()
		benchRunner = experiments.NewRunner(opts)
	})
	return benchRunner
}

// benchExperiment is the common body: regenerate the experiment each
// iteration (memoized after the first) and log the table once.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := runner()
	var out string
	for i := 0; i < b.N; i++ {
		t, err := r.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		out = t.String()
	}
	b.Log("\n" + out)
}

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkFig01(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig03(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig04(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig05(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig06(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12a(b *testing.B) { benchExperiment(b, "fig12a") }
func BenchmarkFig12b(b *testing.B) { benchExperiment(b, "fig12b") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkSUFAcc(b *testing.B) { benchExperiment(b, "suf-accuracy") }

// BenchmarkSimulatorThroughput measures simulated instructions per
// second of the full secure system with TSB+SUF — the heaviest
// single-core configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, err := workload.Get("602.gcc-1850B", workload.Params{Instrs: 50_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.WarmupInstrs = 0
	cfg.MaxInstrs = 50_000
	cfg.Secure = true
	cfg.SUF = true
	cfg.Prefetcher = "berti"
	cfg.Mode = sim.ModeTimelySecure
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, trace.NewSource(tr))
		if err != nil {
			b.Fatal(err)
		}
		total += int(res.Instructions)
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkTraceGeneration measures synthetic workload generation.
func BenchmarkTraceGeneration(b *testing.B) {
	g, err := workload.ByName("605.mcf-1554B")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = g.Gen(workload.Params{Instrs: 20_000, Seed: int64(i)})
	}
}

// BenchmarkAttack measures the end-to-end Spectre prefetch-leak
// scenario (prime, transient execute, squash, probe).
func BenchmarkAttack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o, err := secpref.SpectrePrefetchLeak(secpref.AttackConfig{Secure: true, Prefetcher: "ip-stride"}, i%16)
		if err != nil {
			b.Fatal(err)
		}
		if !o.Leaked {
			b.Fatal("expected leak")
		}
	}
}
